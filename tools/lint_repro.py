"""Project-specific AST lint rules for the repro codebase.

Run as ``python -m tools.lint_repro`` from the repository root (CI does).
Three rules that generic linters don't know about:

* **REPRO001 mutable-default** — a function parameter defaulting to a
  mutable literal (``[]``, ``{}``, ``set()``) is shared across calls;
  every such default in this codebase has historically been a latent
  aliasing bug.
* **REPRO002 backend-run** — backends execute only through the plan
  path (``Plan.run`` / ``execute_plan``); calling ``<backend>.run(...)``
  directly skips plan validation, admission analysis and the serving
  caches.  Allowed only inside ``repro/api/backends.py`` itself.
* **REPRO003 coeff-loop** — a ``for _ in range(...)`` loop that
  subscripts arrays per iteration inside the :mod:`repro.rns` hot paths
  is a per-coefficient Python-int loop; those stages must be vectorized
  (the whole point of PR 4's batched kernel engine).

A finding is silenced by a same-line pragma naming its rule, e.g.::

    for j in range(n):  # lint: allow-coeff-loop

Exit status is 1 if any unsuppressed finding remains.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, NamedTuple, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

#: rule id -> (pragma slug, one-line description)
RULES = {
    "REPRO001": ("mutable-default",
                 "mutable default argument is shared across calls"),
    "REPRO002": ("backend-run",
                 "direct backend .run() bypasses the plan/admission path"),
    "REPRO003": ("coeff-loop",
                 "per-coefficient Python loop in an rns/ hot path"),
}

#: Only this module may talk to backend objects directly.
BACKEND_RUN_ALLOWED = ("api/backends.py",)

#: REPRO003 applies to the RNS hot-path modules only.
COEFF_LOOP_PATHS = ("rns/",)


class Finding(NamedTuple):
    path: Path
    line: int
    rule: str
    message: str

    def render(self) -> str:
        rel = self.path.relative_to(REPO_ROOT)
        return f"{rel}:{self.line}: {self.rule} {self.message}"


def _pragmas(source: str) -> dict:
    """Map line number -> set of rule slugs allowed on that line."""
    allowed: dict = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "# lint: allow-" not in text:
            continue
        slugs = {
            chunk.split()[0]
            for chunk in text.split("# lint: allow-")[1:]
        }
        allowed[lineno] = slugs
    return allowed


_MUTABLE_CALLS = {"list", "dict", "set"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
        and not node.args
        and not node.keywords
    )


def _check_mutable_defaults(tree: ast.AST) -> Iterator[Tuple[int, str, str]]:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                yield (default.lineno, "REPRO001",
                       f"in {node.name}(): use None and create inside")


def _receiver_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _receiver_name(node.func)
    return ""


def _check_backend_run(tree: ast.AST) -> Iterator[Tuple[int, str, str]]:
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "run"):
            continue
        receiver = _receiver_name(node.func.value)
        if "backend" in receiver.lower():
            yield (node.lineno, "REPRO002",
                   f"call {receiver}.run(...) through Plan.run()/"
                   f"execute_plan() instead")


def _subscripts_in_body(loop: ast.For) -> bool:
    for node in ast.walk(loop):
        if isinstance(node, ast.Subscript):
            return True
    return False


def _bounds_coefficient_axis(call: ast.Call) -> bool:
    """Whether a ``range(...)`` bound spans the coefficient axis.

    By repo convention the coefficient count is the local ``n`` (or a
    direct ``X.shape[1]`` read — residue matrices are ``(towers, n)``).
    Tower/limb loops (``range(len(moduli))``, ``range(limbs.shape[0])``)
    are O(L) over whole vectors and stay legal.
    """
    for arg in call.args:
        for node in ast.walk(arg):
            if isinstance(node, ast.Name) and node.id == "n":
                return True
            if (isinstance(node, ast.Subscript)
                    and isinstance(node.value, ast.Attribute)
                    and node.value.attr == "shape"
                    and isinstance(node.slice, ast.Constant)
                    and node.slice.value == 1):
                return True
    return False


def _check_coeff_loops(tree: ast.AST) -> Iterator[Tuple[int, str, str]]:
    for node in ast.walk(tree):
        if not (isinstance(node, ast.For)
                and isinstance(node.iter, ast.Call)
                and isinstance(node.iter.func, ast.Name)
                and node.iter.func.id == "range"):
            continue
        if not _bounds_coefficient_axis(node.iter):
            continue
        if _subscripts_in_body(node):
            yield (node.lineno, "REPRO003",
                   "vectorize with numpy (or pragma if the per-element "
                   "python work is provably O(1) and unavoidable)")


def lint_file(path: Path) -> List[Finding]:
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    allowed = _pragmas(source)
    rel = path.relative_to(SRC_ROOT).as_posix()

    checks = [_check_mutable_defaults(tree)]
    if rel not in BACKEND_RUN_ALLOWED:
        checks.append(_check_backend_run(tree))
    if any(rel.startswith(prefix) for prefix in COEFF_LOOP_PATHS):
        checks.append(_check_coeff_loops(tree))

    findings = []
    for check in checks:
        for lineno, rule, message in check:
            slug = RULES[rule][0]
            if slug in allowed.get(lineno, ()):
                continue
            findings.append(Finding(path, lineno, rule, message))
    return findings


def main(argv: List[str] = None) -> int:
    paths = [Path(p) for p in (argv or [])] or sorted(SRC_ROOT.rglob("*.py"))
    findings: List[Finding] = []
    for path in paths:
        findings.extend(lint_file(path))
    for finding in sorted(findings):
        print(finding.render())
    checked = len(paths)
    if findings:
        print(f"\n{len(findings)} finding(s) in {checked} file(s)")
        return 1
    print(f"{checked} files clean "
          f"({', '.join(sorted(RULES))})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
