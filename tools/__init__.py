"""Repository tooling (linters, maintenance scripts) — not shipped."""
