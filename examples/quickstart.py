"""Quickstart: CKKS with hybrid key switching, end to end.

One ``FHESession`` replaces the six hand-wired objects of the classic
setup; ``CipherVector`` operators multiply, rotate and add encrypted
vectors (multiply and rotate each invoke the hybrid key-switching
algorithm the paper analyzes) with all evk and scale management handled
by the session.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import FHESession


def main() -> None:
    # N=2^10 (512 slots), 6 levels, 3 digits — keys generated lazily.
    session = FHESession.create("n10_fast", seed=1)
    print(f"session: {session.context}")

    rng = np.random.default_rng(3)
    x = rng.uniform(-1, 1, session.num_slots)
    y = rng.uniform(-1, 1, session.num_slots)
    ct_x, ct_y = session.encrypt_many([x, y])

    # Multiply: relinearization evk generated on first use, auto-rescaled.
    product = ct_x * ct_y
    err = np.max(np.abs(product.decrypt() - x * y))
    print(f"multiply:  max error {err:.2e}  (level {product.level})")

    # Rotate: the Galois key for step 5 is generated once and cached.
    steps = 5
    rotated = ct_x << steps
    err = np.max(np.abs(rotated.decrypt() - np.roll(x, -steps)))
    print(f"rotate({steps}): max error {err:.2e}")

    # Additions are cheap — no key switching involved.
    total = ct_x + ct_y
    print(f"add:       max error {np.max(np.abs(total.decrypt() - (x + y))):.2e}")


if __name__ == "__main__":
    main()
