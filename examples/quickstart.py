"""Quickstart: CKKS with hybrid key switching, end to end.

Encrypts two vectors, multiplies and rotates them homomorphically (both
operations invoke the hybrid key-switching algorithm the paper analyzes),
and decrypts the results.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CKKSContext,
    CKKSParams,
    Decryptor,
    Encoder,
    Encryptor,
    Evaluator,
    KeyGenerator,
)


def main() -> None:
    # A small, fast parameter set: N=2^10 (512 slots), 6 levels, 3 digits.
    params = CKKSParams(n=1 << 10, num_levels=6, num_aux=2, dnum=3,
                        q_bits=28, p_bits=29, scale_bits=26)
    context = CKKSContext(params)
    print(f"context: {context}")

    keygen = KeyGenerator(context, seed=1)
    encoder = Encoder(context)
    encryptor = Encryptor(context, keygen.public_key(), seed=2)
    decryptor = Decryptor(context, keygen.secret_key)
    evaluator = Evaluator(context)

    rng = np.random.default_rng(3)
    x = rng.uniform(-1, 1, encoder.num_slots)
    y = rng.uniform(-1, 1, encoder.num_slots)

    ct_x = encryptor.encrypt(encoder.encode(x))
    ct_y = encryptor.encrypt(encoder.encode(y))

    # Multiply: the tensor product's degree-2 term is key-switched back
    # under the secret key using the relinearization evk (one HKS call).
    relin_key = keygen.relinearization_key()
    product = evaluator.rescale(evaluator.multiply(ct_x, ct_y, relin_key))
    got = encoder.decode(decryptor.decrypt(product), scale=product.scale)
    err = np.max(np.abs(got - x * y))
    print(f"multiply:  max error {err:.2e}  (level {product.level})")

    # Rotate: the Galois automorphism needs another HKS call.
    steps = 5
    rot_key = keygen.rotation_key(steps)
    rotated = evaluator.rotate(ct_x, steps, rot_key)
    got = encoder.decode(decryptor.decrypt(rotated))
    err = np.max(np.abs(got - np.roll(x, -steps)))
    print(f"rotate({steps}): max error {err:.2e}")

    # Additions are cheap — no key switching involved.
    total = evaluator.add(ct_x, ct_y)
    got = encoder.decode(decryptor.decrypt(total))
    print(f"add:       max error {np.max(np.abs(got - (x + y))):.2e}")


if __name__ == "__main__":
    main()
