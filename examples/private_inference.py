"""A private neural-network layer, end to end.

Runs ``y = relu_approx(W @ x + b)`` on an encrypted input: a BSGS
matrix-vector product (rotations -> hybrid key switches), a bias addition,
and a polynomial activation (ciphertext multiplies -> more key switches).
The ``FHESession`` facade owns the keys; the BSGS transform from
:mod:`repro.ckks.linear` composes with it through the session's
``evaluator``/``keygen`` handles, showing how the research layers remain
reachable under the facade.  The script ends by asking the RPU backend
what fraction of a full ResNet-20-class run those key switches cost.

Run:  python examples/private_inference.py
"""

import numpy as np

from repro import FHESession
from repro.ckks.linear import LinearTransform, generate_bsgs_keys
from repro.ckks.polyeval import evaluate_horner
from repro.params import get_benchmark
from repro.workloads import HEOpMix, hks_time_share

# Degree-2 ReLU approximation on [-1, 1] (Chebyshev-fit style constants).
RELU_COEFFS = [0.1250, 0.5000, 0.3466]


def main() -> None:
    session = FHESession.create("n10_fast", seed=10)
    encoder, evaluator = session.encoder, session.evaluator

    dim = 16
    rng = np.random.default_rng(12)
    weights = rng.uniform(-0.4, 0.4, (dim, dim))
    bias = rng.uniform(-0.1, 0.1, dim)
    x = rng.uniform(-0.8, 0.8, dim)

    # Encrypt the input tiled across all slots (BSGS rotation convention).
    tiled = np.tile(x, session.num_slots // dim)
    ct = session.encrypt(tiled)

    # Linear part: W @ x via baby-step/giant-step diagonals.
    transform = LinearTransform(encoder, weights)
    baby_keys, giant_keys = generate_bsgs_keys(session.keygen, transform)
    linear = transform.evaluate(evaluator, ct.ciphertext, baby_keys, giant_keys)
    rotations_used = len(transform.required_rotations()["baby"]) + len(
        transform.required_rotations()["giant"]
    )

    # Bias, then the polynomial activation.
    pre_act = evaluator.add_plain(
        linear,
        encoder.encode(np.tile(bias, session.num_slots // dim),
                       level=linear.level, scale=linear.scale),
        plain_scale=linear.scale,
    )
    activated = evaluate_horner(evaluator, encoder, pre_act, RELU_COEFFS,
                                session.relin_key)

    got = session.decrypt(activated)[:dim].real
    pre = weights @ x + bias
    expected = RELU_COEFFS[0] + RELU_COEFFS[1] * pre + RELU_COEFFS[2] * pre**2
    err = np.max(np.abs(got - expected))
    print(f"encrypted layer: dim {dim}, {rotations_used} rotations, "
          f"{len(RELU_COEFFS) - 1} ct-ct multiplies")
    print(f"max error vs plaintext layer: {err:.2e}")
    print(f"levels consumed: {session.max_level - activated.level} "
          f"of {session.max_level}")

    # Scale up: what share of a full ResNet-20-class run is key switching?
    print("\nprojected HKS share of a ResNet-20-class run (RPU model @ 64 GB/s):")
    for dataflow in ("MP", "OC"):
        row = hks_time_share(get_benchmark("DPRIVE"), HEOpMix(), dataflow=dataflow)
        print(f"  {dataflow}: {row['hks_share'] * 100:5.1f}% of "
              f"{row['total_s']:.1f}s  ({row['hks_ms_per_call']:.2f} ms per key switch)")


if __name__ == "__main__":
    main()
