"""Dataflow verification: schedules are real computations, not just models.

Runs the MP, DC and OC operation orders *functionally* on actual RNS tower
data and checks them bit-for-bit against the reference hybrid key switch —
then shows the performance side of the same three orders through the
``repro.api`` RPU backend.  This is the repository's core claim in one
script: same arithmetic, very different memory behaviour.  The functional
half reaches below the facade (``session.context`` / ``session.keygen``);
the performance half is a single ``session.estimate`` call.

Run:  python examples/dataflow_verification.py
"""

import numpy as np

from repro import DATAFLOWS, FHESession, key_switch
from repro.ckks.keys import sample_ternary
from repro.core.functional import execute_dataflow
from repro.params import MB


def main() -> None:
    # --- functional side: bit-exact equivalence ----------------------------
    session = FHESession.create("tiny_ci", seed=8)
    context, params = session.context, session.params
    rng = np.random.default_rng(9)
    key = session.keygen.switch_key(sample_ternary(params.n, rng))
    level = params.max_level
    from repro.rns.poly import RNSPoly

    poly = RNSPoly.random_uniform(context.level_basis(level), params.n, rng)

    ref0, ref1 = key_switch(context, poly, key, level)
    print("functional check (N=256, 6 towers, 3 digits):")
    for dataflow in DATAFLOWS.values():
        out0, out1 = execute_dataflow(dataflow, context, poly, key, level)
        exact = np.array_equal(out0.data, ref0.data) and np.array_equal(
            out1.data, ref1.data
        )
        print(f"  {dataflow.name}: bit-identical to reference HKS = {exact}")

    # --- performance side: same orders on the RPU backend ------------------
    print("\nperformance check (BTS3 @ 16 GB/s, 32 MB SRAM):")
    for report in session.estimate("BTS3", backend="rpu", schedule="all",
                                   bandwidth_gbs=16.0):
        print(
            f"  {report.schedule}: {report.latency_ms:7.2f} ms, "
            f"{report.data_bytes / MB:6.0f} MB data traffic, "
            f"compute idle {report.compute_idle_fraction * 100:4.1f}%"
        )
    print(
        "\nsame modular arithmetic, same op count — only the operation order "
        "(and therefore on-chip reuse) differs."
    )


if __name__ == "__main__":
    main()
