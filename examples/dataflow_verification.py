"""Dataflow verification: schedules are real computations, not just models.

Runs the MP, DC and OC operation orders *functionally* on actual RNS tower
data and checks them bit-for-bit against the reference hybrid key switch —
then shows the performance side of the same three orders on the RPU model.
This is the repository's core claim in one script: same arithmetic, very
different memory behaviour.

Run:  python examples/dataflow_verification.py
"""

import numpy as np

from repro import CKKSContext, CKKSParams, DATAFLOWS, KeyGenerator, key_switch
from repro.ckks.keys import sample_ternary
from repro.core import DataflowConfig
from repro.core.functional import execute_dataflow
from repro.params import MB, get_benchmark
from repro.rns.poly import RNSPoly
from repro.rpu import RPUConfig, RPUSimulator


def main() -> None:
    # --- functional side: bit-exact equivalence ----------------------------
    params = CKKSParams(n=256, num_levels=6, num_aux=2, dnum=3,
                        q_bits=28, p_bits=29, scale_bits=26)
    context = CKKSContext(params)
    keygen = KeyGenerator(context, seed=8)
    rng = np.random.default_rng(9)
    key = keygen.switch_key(sample_ternary(params.n, rng))
    level = params.max_level
    poly = RNSPoly.random_uniform(context.level_basis(level), params.n, rng)

    ref0, ref1 = key_switch(context, poly, key, level)
    print("functional check (N=256, 6 towers, 3 digits):")
    for dataflow in DATAFLOWS.values():
        out0, out1 = execute_dataflow(dataflow, context, poly, key, level)
        exact = np.array_equal(out0.data, ref0.data) and np.array_equal(
            out1.data, ref1.data
        )
        print(f"  {dataflow.name}: bit-identical to reference HKS = {exact}")

    # --- performance side: same orders on the RPU model --------------------
    spec = get_benchmark("BTS3")
    config = DataflowConfig(data_sram_bytes=32 * MB, evk_on_chip=True)
    machine = RPUConfig(bandwidth_bytes_per_s=16e9)
    print(f"\nperformance check ({spec.name} @ 16 GB/s, 32 MB SRAM):")
    for dataflow in DATAFLOWS.values():
        graph = dataflow.build(spec, config)
        res = RPUSimulator(machine).simulate(graph)
        print(
            f"  {dataflow.name}: {res.runtime_ms:7.2f} ms, "
            f"{res.data_bytes / MB:6.0f} MB data traffic, "
            f"compute idle {res.compute_idle_fraction * 100:4.1f}%"
        )
    print(
        "\nsame modular arithmetic, same op count — only the operation order "
        "(and therefore on-chip reuse) differs."
    )


if __name__ == "__main__":
    main()
