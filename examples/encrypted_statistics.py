"""Encrypted statistics: mean and variance of a private vector.

The rotate-and-sum reduction used here is the pattern that makes key
switching dominate private-inference workloads (the paper's motivation:
one ResNet-20 inference needs 3,306 rotations, ~70% of time in HKS).
``CipherVector.sum_slots`` performs the reduction fluently; every
rotation it issues is one hybrid key switch served from the session's
lazy Galois-key cache, and the script counts them at the end.

Run:  python examples/encrypted_statistics.py
"""

import numpy as np

from repro import FHESession


def main() -> None:
    session = FHESession.create("n10_fast", seed=4)

    width = 64  # fold the first 64 slots
    rng = np.random.default_rng(6)
    data = rng.uniform(0, 1, width)
    slots = np.zeros(session.num_slots)
    slots[:width] = data

    ct = session.encrypt(slots)

    # --- mean = (rotate-and-sum) / width -----------------------------------
    mean_ct = ct.sum_slots(width) * (1.0 / width)
    mean = mean_ct.decrypt()[0].real
    print(f"mean:     {mean:.6f}  (true {data.mean():.6f})")

    # --- variance = E[x^2] - E[x]^2 ----------------------------------------
    ex2_ct = ct.square().sum_slots(width) * (1.0 / width)
    ex2 = ex2_ct.decrypt()[0].real
    variance = ex2 - mean**2
    print(f"variance: {variance:.6f}  (true {data.var():.6f})")

    cached = session.key_cache_info()
    rotations = 2 * int(np.log2(width))
    print(
        f"\nhomomorphic ops: {rotations} rotations + 1 multiply "
        f"= {rotations + 1} hybrid key switches "
        f"(served by {cached['galois']} cached Galois keys + 1 relin key)"
    )
    print(
        "every one of those key switches is the kernel whose dataflow the "
        "paper (and repro.core) optimizes"
    )


if __name__ == "__main__":
    main()
