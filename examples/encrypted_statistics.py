"""Encrypted statistics: mean and variance of a private vector.

The rotation-and-sum reduction used here is the pattern that makes key
switching dominate private-inference workloads (the paper's motivation:
one ResNet-20 inference needs 3,306 rotations, ~70% of time in HKS).
Every rotation below triggers one hybrid key switch; the script counts
them and reports what fraction of the homomorphic work they represent.

Run:  python examples/encrypted_statistics.py
"""

import numpy as np

from repro import (
    CKKSContext,
    CKKSParams,
    Decryptor,
    Encoder,
    Encryptor,
    Evaluator,
    KeyGenerator,
)


def rotate_and_sum(evaluator, ct, keys, width):
    """log2(width) rotations fold the first ``width`` slots into slot 0."""
    hks_calls = 0
    step = width // 2
    while step >= 1:
        ct = evaluator.add(ct, evaluator.rotate(ct, step, keys[step]))
        hks_calls += 1
        step //= 2
    return ct, hks_calls


def main() -> None:
    params = CKKSParams(n=1 << 10, num_levels=6, num_aux=2, dnum=3,
                        q_bits=28, p_bits=29, scale_bits=26)
    context = CKKSContext(params)
    keygen = KeyGenerator(context, seed=4)
    encoder = Encoder(context)
    encryptor = Encryptor(context, keygen.public_key(), seed=5)
    decryptor = Decryptor(context, keygen.secret_key)
    evaluator = Evaluator(context)
    relin_key = keygen.relinearization_key()

    width = 64  # fold the first 64 slots
    rotation_keys = {
        step: keygen.rotation_key(step)
        for step in (32, 16, 8, 4, 2, 1)
    }

    rng = np.random.default_rng(6)
    data = rng.uniform(0, 1, width)
    slots = np.zeros(encoder.num_slots)
    slots[:width] = data

    ct = encryptor.encrypt(encoder.encode(slots))

    # --- mean = (rotate-and-sum) / width -----------------------------------
    total, hks_rot = rotate_and_sum(evaluator, ct, rotation_keys, width)
    mean_ct = evaluator.rescale(
        evaluator.multiply_plain(total, encoder.encode([1.0 / width] * encoder.num_slots))
    )
    mean = encoder.decode(decryptor.decrypt(mean_ct), scale=mean_ct.scale)[0].real
    print(f"mean:     {mean:.6f}  (true {data.mean():.6f})")

    # --- variance = E[x^2] - E[x]^2 ----------------------------------------
    sq = evaluator.rescale(evaluator.square(ct, relin_key))
    sq_total, hks_rot2 = rotate_and_sum(evaluator, sq, rotation_keys, width)
    ex2_ct = evaluator.rescale(
        evaluator.multiply_plain(sq_total, encoder.encode([1.0 / width] * encoder.num_slots))
    )
    ex2 = encoder.decode(decryptor.decrypt(ex2_ct), scale=ex2_ct.scale)[0].real
    variance = ex2 - mean**2
    print(f"variance: {variance:.6f}  (true {data.var():.6f})")

    hks_total = hks_rot + hks_rot2 + 1  # +1 for the relinearization
    print(
        f"\nhomomorphic ops: {hks_rot + hks_rot2} rotations + 1 multiply "
        f"= {hks_total} hybrid key switches"
    )
    print(
        "every one of those key switches is the kernel whose dataflow the "
        "paper (and repro.core) optimizes"
    )


if __name__ == "__main__":
    main()
