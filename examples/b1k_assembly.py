"""Programming the RPU directly: B1K assembly on the functional VM.

Shows the lowest layer of the stack — the one every ``repro.api``
``estimate`` call ultimately models: a hand-written B1K kernel, the
generated NTT kernel, and the dynamic instruction statistics the RPU's
three issue queues would see.  Every result is checked against the numpy
reference — the ISA model executes, it doesn't just count.  (There is
deliberately no facade at this layer; assembly is research surface.)

Run:  python examples/b1k_assembly.py
"""

import numpy as np

from repro.ntt.primes import generate_primes
from repro.ntt.transform import NTTContext
from repro.rpu.codegen import build_ntt_kernel, run_kernel
from repro.rpu.program import assemble
from repro.rpu.vm import B1KVM

AXPY = """
; v3 = (v1 * v2 + v3) mod q, tiled over a 4-vector tower
    setvl   1024
    setmod  m0
    li      s0, 0        ; x base
    li      s1, 4096     ; y base
    li      s2, 8192     ; acc base
    li      s3, 4        ; vectors remaining
loop:
    vld     v1, s0
    vld     v2, s1
    vld     v3, s2
    vmmac   v3, v1, v2
    vst     v3, s2
    sadd    s0, s0, 1024
    sadd    s1, s1, 1024
    sadd    s2, s2, 1024
    sadd    s3, s3, -1
    bnez    s3, loop
    halt
"""


def main() -> None:
    n = 4096
    q = generate_primes(1, n, 28)[0]
    rng = np.random.default_rng(20)

    # --- a hand-written multiply-accumulate kernel --------------------------
    program = assemble(AXPY, "axpy")
    print("hand-written kernel listing:")
    print(program.render())
    vm = B1KVM(vector_length=1024, memory_words=1 << 16)
    vm.set_modulus_register(0, q)
    x = rng.integers(0, q, n)
    y = rng.integers(0, q, n)
    acc = rng.integers(0, q, n)
    vm.write_memory(0, x)
    vm.write_memory(4096, y)
    vm.write_memory(8192, acc)
    vm.run(program)
    got = vm.read_memory(8192, n)
    assert np.array_equal(got, (acc + x * y % q) % q)
    print(f"\naxpy over {n} coefficients: OK "
          f"({vm.stats.executed} dynamic instructions)")

    # --- the generated NTT kernel -------------------------------------------
    n_ntt = 1024
    q_ntt = generate_primes(1, n_ntt, 28)[0]
    image = build_ntt_kernel(n_ntt, q_ntt)
    vm = B1KVM(vector_length=n_ntt, memory_words=1 << 18)
    a = rng.integers(0, q_ntt, n_ntt)
    out = run_kernel(image, vm, {image.input_address: a}, n_ntt)
    assert np.array_equal(out, NTTContext(n_ntt, q_ntt).forward(a))
    print(f"\ngenerated {image.program.name}: matches the numpy NTT bit-for-bit")
    print("dynamic instruction mix per issue queue:")
    for pipe, count in vm.stats.per_pipe().items():
        print(f"  {pipe.value:8} {count:4} instructions")


if __name__ == "__main__":
    main()
