"""Dataflow analysis: DRAM traffic and arithmetic intensity of HKS.

Reproduces the paper's Table II analysis for the five benchmarks through
the ``repro.api`` backend registry — one ``estimate`` call per cell,
never touching :mod:`repro.core` directly — then demonstrates the same
API on a custom accelerator configuration (16 MB SRAM) to show how the
OC advantage grows as on-chip memory shrinks.

Run:  python examples/dataflow_analysis.py
"""

from repro import BENCHMARKS, estimate
from repro.experiments.report import format_table
from repro.params import MB


def traffic_table(sram_mb: int, evk_on_chip: bool):
    rows = []
    for name in BENCHMARKS:
        for report in estimate(name, backend="analytic", schedule="all",
                               sram_mb=sram_mb, evk_on_chip=evk_on_chip):
            rows.append(
                {
                    "benchmark": report.benchmark,
                    "schedule": report.schedule,
                    "traffic_MB": round(report.total_mb, 0),
                    "AI_ops/B": round(report.arithmetic_intensity, 2),
                    "spill_stores": report.spill_stores,
                    "reloads": report.reloads,
                }
            )
    return rows


def main() -> None:
    print("=== Table II setup: 32 MB data SRAM, evks streamed ===")
    print(format_table(traffic_table(32, evk_on_chip=False)))
    print()

    print("=== Halving on-chip memory to 16 MB widens the OC advantage ===")
    rows = traffic_table(16, evk_on_chip=False)
    print(format_table([r for r in rows if r["benchmark"] in ("ARK", "BTS3")]))
    print()

    # The working-set and per-buffer views live below the facade.
    print("=== Spill-free MP would need this much SRAM (paper: ~675 MB class) ===")
    from repro.core import minimum_mp_working_set_bytes

    for spec in BENCHMARKS.values():
        need = minimum_mp_working_set_bytes(spec) / MB
        print(f"  {spec.name:8} {need:8.0f} MB")
    print()

    print("=== Where BTS3's traffic comes from, per dataflow ===")
    from repro.core import DATAFLOWS, DataflowConfig, traffic_rows
    from repro.params import get_benchmark

    spec = get_benchmark("BTS3")
    config = DataflowConfig(data_sram_bytes=32 * MB, evk_on_chip=False)
    for dataflow in DATAFLOWS.values():
        graph = dataflow.build(spec, config)
        print(f"--- {dataflow.name} ---")
        print(format_table(traffic_rows(graph)))


if __name__ == "__main__":
    main()
