"""Bandwidth/compute design-space exploration on the RPU simulator.

Answers the accelerator designer's questions for one benchmark:
* how does each dataflow's HKS runtime scale with DRAM bandwidth?
* at what bandwidth does OC match the MP @ 64 GB/s baseline (OCbase)?
* what does streaming the evaluation keys (12.25x less SRAM) cost?

Run:  python examples/bandwidth_exploration.py [BENCHMARK]
"""

import sys

from repro.experiments.common import (
    baseline_runtime_ms,
    grid_ocbase,
    matching_bandwidth,
    runtime_ms,
    simulate,
)
from repro.experiments.report import format_table
from repro.rpu import standard_sweep


def main(benchmark: str = "ARK") -> None:
    print(f"=== {benchmark}: runtime vs bandwidth (evks on-chip) ===")
    rows = []
    for bw in standard_sweep(extended=True):
        res_oc = simulate(benchmark, "OC", bandwidth_gbs=bw)
        rows.append(
            {
                "BW_GBs": bw,
                "MP_ms": round(runtime_ms(benchmark, "MP", bandwidth_gbs=bw), 2),
                "DC_ms": round(runtime_ms(benchmark, "DC", bandwidth_gbs=bw), 2),
                "OC_ms": round(res_oc.runtime_ms, 2),
                "OC_idle_%": round(res_oc.compute_idle_fraction * 100, 1),
            }
        )
    print(format_table(rows))
    print()

    base = baseline_runtime_ms(benchmark)
    ocbase = grid_ocbase(benchmark, base)
    print(f"baseline (MP @ 64 GB/s, keys on-chip): {base:.2f} ms")
    if ocbase:
        mp_at = runtime_ms(benchmark, "MP", bandwidth_gbs=ocbase)
        oc_at = runtime_ms(benchmark, "OC", bandwidth_gbs=ocbase)
        print(
            f"OCbase = {ocbase} GB/s ({64 / ocbase:.1f}x bandwidth saved); "
            f"at that point OC is {mp_at / oc_at:.2f}x faster than MP"
        )

    onchip_ms = runtime_ms(benchmark, "OC", bandwidth_gbs=ocbase or 64.0)
    equiv = matching_bandwidth(benchmark, "OC", onchip_ms, evk_on_chip=False)
    if equiv:
        print(
            f"streaming keys: need {equiv:.1f} GB/s to match on-chip keys at "
            f"{ocbase} GB/s — {equiv / (ocbase or 64.0):.2f}x more bandwidth "
            f"for 12.25x less SRAM"
        )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "ARK")
