"""Bandwidth/compute design-space exploration through ``repro.api``.

Answers the accelerator designer's questions for one benchmark with
nothing but ``estimate`` calls against the RPU backend:
* how does each dataflow's HKS runtime scale with DRAM bandwidth?
* at what bandwidth does OC match the MP @ 64 GB/s baseline (OCbase)?
* what does streaming the evaluation keys (12.25x less SRAM) cost?

Run:  python examples/bandwidth_exploration.py [BENCHMARK]
"""

import sys

from repro import estimate
from repro.experiments.common import OCBASE_GRID, matching_bandwidth
from repro.experiments.report import format_table
from repro.rpu import standard_sweep


def runtime_ms(benchmark, schedule, bw, **options) -> float:
    return estimate(benchmark, backend="rpu", schedule=schedule,
                    bandwidth_gbs=bw, **options).latency_ms


def main(benchmark: str = "ARK") -> None:
    print(f"=== {benchmark}: runtime vs bandwidth (evks on-chip) ===")
    rows = []
    for bw in standard_sweep(extended=True):
        mp, dc, oc = estimate(benchmark, backend="rpu", schedule="all",
                              bandwidth_gbs=bw)
        rows.append(
            {
                "BW_GBs": bw,
                "MP_ms": round(mp.latency_ms, 2),
                "DC_ms": round(dc.latency_ms, 2),
                "OC_ms": round(oc.latency_ms, 2),
                "OC_idle_%": round(oc.compute_idle_fraction * 100, 1),
            }
        )
    print(format_table(rows))
    print()

    # OCbase: the smallest grid bandwidth where OC beats MP @ 64 GB/s.
    base = runtime_ms(benchmark, "MP", 64.0)
    ocbase = next(
        (bw for bw in OCBASE_GRID if runtime_ms(benchmark, "OC", bw) <= base),
        None,
    )
    print(f"baseline (MP @ 64 GB/s, keys on-chip): {base:.2f} ms")
    if ocbase:
        mp_at = runtime_ms(benchmark, "MP", ocbase)
        oc_at = runtime_ms(benchmark, "OC", ocbase)
        print(
            f"OCbase = {ocbase} GB/s ({64 / ocbase:.1f}x bandwidth saved); "
            f"at that point OC is {mp_at / oc_at:.2f}x faster than MP"
        )

    # Streaming keys: bisect for the bandwidth that wins back the
    # on-chip-key runtime once evks must come from DRAM.
    onchip_ms = runtime_ms(benchmark, "OC", ocbase or 64.0)
    equiv = matching_bandwidth(benchmark, "OC", onchip_ms, evk_on_chip=False)
    if equiv:
        print(
            f"streaming keys: need {equiv:.1f} GB/s to match on-chip keys at "
            f"{ocbase} GB/s — {equiv / (ocbase or 64.0):.2f}x more bandwidth "
            f"for 12.25x less SRAM"
        )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "ARK")
