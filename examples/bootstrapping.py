"""Bootstrapping: refresh an exhausted ciphertext and keep computing.

A levelled CKKS ciphertext dies when its modulus chain runs out.
Bootstrapping — ModRaise, CoeffToSlot, EvalMod, SlotToCoeff — re-encrypts
the message homomorphically at the top of the chain: the one workload
whose thousands of hybrid key switches motivate the paper's accelerator
analysis.  This example burns a ciphertext down to level 0, refreshes it
with ``CipherVector.bootstrap()``, keeps computing, and then prices the
same circuit at accelerator scale via the ``BOOT`` workload.

Run:  python examples/bootstrapping.py
"""

import numpy as np

from repro import FHESession


def main() -> None:
    # Bootstrappable preset: 16 levels, wide base prime, sparse secret.
    session = FHESession.create("n7_boot", seed=1)
    print(f"session: {session.context}")

    rng = np.random.default_rng(7)
    z = rng.uniform(-0.2, 0.2, session.num_slots)

    # Exhaust the budget: encrypt at level 0 — no multiply possible.
    ct = session.encrypt(z, level=0)
    print(f"exhausted ciphertext: level {ct.level}")

    # One call rebuilds the circuit + keys lazily, then refreshes.
    fresh = ct.bootstrap()
    err = np.max(np.abs(fresh.decrypt() - z))
    print(f"bootstrapped: level {fresh.level}, max slot error {err:.2e}")

    bs = session.bootstrapper()
    print(f"circuit: sine degree {bs.sine_degree}, "
          f"{bs.plan.op_counts().hks_calls} hybrid key switches, "
          f"{bs.levels_consumed()} levels consumed")

    # The refreshed ciphertext computes like a fresh one.
    result = (fresh * fresh + 0.25) << 3
    expected = np.roll(z * z + 0.25, -3)
    print(f"post-bootstrap (z^2 + 0.25) <<3: max error "
          f"{np.max(np.abs(result.decrypt() - expected)):.2e} "
          f"(level {result.level})")

    # The same circuit at accelerator scale (N=2^16), on all schedules.
    # Each pipeline stage is priced at its true (descending) chain level.
    print("\nBOOT workload on the RPU (64 GB/s, evks on-chip):")
    for report in session.estimate("BOOT", backend="rpu", schedule="all"):
        print(f"  {report.schedule}: {report.latency_ms / 1e3:6.2f} s, "
              f"{report.total_bytes / 1e9:6.1f} GB moved, "
              f"{report.hks_calls} HKS calls")

    print("\nper-phase breakdown (OC): level-aware HKS pricing")
    oc = session.estimate("BOOT", backend="rpu", schedule="OC")
    for phase in oc.phases:
        print(f"  {phase.benchmark:8s} {phase.latency_ms / 1e3:6.2f} s, "
              f"{phase.hks_calls:4d} HKS")

    # Deep bootstrapped programs compose the same phases: inference with
    # mid-network refreshes, and an encrypted training loop.
    print("\ndeep workloads (OC):")
    for name in ("RESNET_BOOT", "HELR"):
        report = session.estimate(name, backend="rpu", schedule="OC")
        print(f"  {name:12s} {report.latency_ms / 1e3:7.2f} s, "
              f"{report.hks_calls} HKS across {len(report.phases)} phases")


if __name__ == "__main__":
    main()
