"""Serving: plan once, execute everywhere — and let a service dedup it.

Three escalating views of the plan/execute pipeline:

1. a single session splits ``estimate()`` into ``plan()`` + ``run()``
   and shows the plan's stable content digest;
2. many "tenants" submit identical plans to an :class:`EstimateService`
   — the backend runs once, every handle gets the same report;
3. an ``asyncio`` front-end serves concurrent awaiters from one batch,
   and a :class:`ShardPool` spreads *distinct* plans across processes.

Run:  PYTHONPATH=src python examples/serving.py
"""

import asyncio
import time

from repro import FHESession
from repro.api import build_plan
from repro.serve import AsyncEstimateService, EstimateService, ShardPool


def plan_and_execute() -> None:
    session = FHESession.create("n10_fast")
    plan = session.plan("HELR", backend="rpu", schedule="OC")
    print(f"plan: {plan}")
    print(f"  digest (stable across processes): {plan.digest}")

    report = plan.run()
    legacy = session.estimate("HELR", backend="rpu", schedule="OC")
    print(f"  plan().run() == estimate(): {report == legacy}")
    print(f"  latency {report.latency_ms:.1f} ms, "
          f"{report.hks_calls} HKS, {len(report.phases)} phases")


def multi_session_dedup(tenants: int = 50) -> None:
    print(f"\n{tenants} tenants ask for the same HELR estimate:")
    service = EstimateService(disk_cache=False)
    handles = [
        service.submit(build_plan("HELR", backend="rpu", schedule="OC"))
        for _ in range(tenants)
    ]
    start = time.perf_counter()
    answered = service.gather()
    elapsed = time.perf_counter() - start
    reports = {id(h.result()) for h in handles}
    stats = service.stats
    print(f"  answered {answered} handles in {elapsed * 1e3:.1f} ms "
          f"({len(reports)} distinct report object(s))")
    print(f"  computed {stats.computed}x, dedup hit rate "
          f"{stats.dedup_hit_rate:.0%}")


def sharded_async(workers: int = 2) -> None:
    print(f"\nasync front-end, {workers} worker processes for cold plans:")
    mixed = [
        build_plan(name, backend="rpu", schedule="OC")
        for name in ("ARK", "BTS1", "BTS2", "BTS3", "ARK", "BTS1")
    ]

    async def main() -> None:
        with ShardPool(workers) as pool:
            async with AsyncEstimateService(
                EstimateService(pool=pool, disk_cache=False)
            ) as service:
                reports = await service.estimate_many(mixed)
                for plan, report in zip(mixed, reports):
                    print(f"  {report.benchmark:>6}: "
                          f"{report.latency_ms:8.2f} ms  "
                          f"(digest {plan.digest[:10]}...)")
                print(f"  stats: {service.stats.as_row()}")

    asyncio.run(main())


if __name__ == "__main__":
    plan_and_execute()
    multi_session_dedup()
    sharded_async()
