"""Named CKKS parameter presets for one-line session creation.

Choosing CKKS parameters requires balancing ring degree, chain length,
digit count and prime sizes — exactly the knobs a newcomer should not have
to learn before encrypting their first vector.  Each preset is a vetted
:class:`~repro.ckks.context.CKKSParams` instance; ``FHESession.create``
accepts a preset name (optionally with per-field overrides) so the
quickstart collapses to a single call.

The functional layer runs at small ring degrees (``2**8 .. 2**12``);
performance modelling of the paper's ``2**16``/``2**17`` benchmarks goes
through :mod:`repro.api.backends` and never instantiates these rings.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.ckks.context import CKKSParams
from repro.errors import ParameterError

#: Vetted parameter sets, smallest first.  ``n10_fast`` mirrors the
#: original quickstart; ``tiny_ci`` is the N=256 world the test suite uses.
PRESETS: Dict[str, CKKSParams] = {
    "tiny_ci": CKKSParams(n=256, num_levels=6, num_aux=2, dnum=3,
                          q_bits=28, p_bits=29, scale_bits=26),
    "n10_fast": CKKSParams(n=1 << 10, num_levels=6, num_aux=2, dnum=3,
                           q_bits=28, p_bits=29, scale_bits=26),
    "n11_balanced": CKKSParams(n=1 << 11, num_levels=8, num_aux=3, dnum=4,
                               q_bits=30, p_bits=31, scale_bits=28),
    "n12_deep": CKKSParams(n=1 << 12, num_levels=10, num_aux=3, dnum=5,
                           q_bits=32, p_bits=33, scale_bits=30),
    # Bootstrappable world: a 16-level chain whose primes match the scale
    # (so the Chebyshev ladder's rescales preserve it), a wide base prime
    # (q_0/Delta = 16 gives EvalMod's sine approximation headroom) and a
    # sparse secret bounding the ModRaise overflow.  Small ring: a
    # bootstrap is ~100 hybrid key switches, and the performance story
    # lives in the BOOT workload, not here.
    "n7_boot": CKKSParams(n=1 << 7, num_levels=16, num_aux=5, dnum=4,
                          q_bits=26, p_bits=29, scale_bits=26,
                          q0_bits=30, hamming_weight=8),
    "n8_boot": CKKSParams(n=1 << 8, num_levels=16, num_aux=5, dnum=4,
                          q_bits=26, p_bits=29, scale_bits=26,
                          q0_bits=30, hamming_weight=12),
}

DEFAULT_PRESET = "n10_fast"


def get_preset(name: str, **overrides: object) -> CKKSParams:
    """Look up a preset by name, optionally overriding individual fields."""
    key = name.lower()
    if key not in PRESETS:
        raise ParameterError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}"
        )
    params = PRESETS[key]
    return replace(params, **overrides) if overrides else params


def list_presets() -> List[str]:
    return list(PRESETS)
