"""Typed estimate plans: the request half of the plan/execute pipeline.

``session.estimate()`` historically resolved the workload, the schedule
and the backend on *every* call, which made requests impossible to share:
two sessions asking for the same HELR estimate could not discover they
were asking for the same thing.  A :class:`Plan` is that resolution done
once, frozen into a value object:

* **validated** — the workload is resolved to a
  :class:`~repro.params.BenchmarkSpec` or a
  :class:`~repro.workloads.ir.WorkloadProgram`, the schedule to one of
  the paper's three dataflows, the options to a typed
  :class:`~repro.api.backends.EstimateOptions`;
* **hashable** — every field is a frozen dataclass, so plans key
  dictionaries and caches directly;
* **JSON-serializable** — :meth:`Plan.to_json` / :meth:`Plan.from_json`
  round-trip the full request, which is how
  :class:`~repro.serve.ShardPool` ships plans to worker processes;
* **content-addressed** — :attr:`Plan.digest` is a stable SHA-256 over
  the canonical JSON payload (sorted keys, phase ``kind`` tags included),
  identical across processes, interpreter hash seeds and dict insertion
  orders.  The serving layer dedups and caches by this digest.

``Plan.run()`` executes the plan on its backend and returns the same
:class:`~repro.api.backends.RunReport` that ``estimate()`` produces —
bit-identical, because ``estimate()`` itself now builds a plan per
schedule and runs it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Dict, Optional, Union

if TYPE_CHECKING:
    from repro.analysis import AnalysisReport
    from repro.api.backends import EstimateOptions, RunReport, Workload

from repro.errors import ParameterError
from repro.params import BenchmarkSpec
from repro.workloads.ir import (
    CompositeWorkload,
    HEOpMix,
    Phase,
    WorkloadProgram,
    as_program,
)

#: Bump when the digest payload layout changes; digests (and anything
#: keyed by them, e.g. the serve layer's disk-cached reports) from other
#: versions then stop colliding with the new format.
PLAN_FORMAT_VERSION = 1

#: The resolved workload forms a plan can carry.
PlanWorkload = Union[BenchmarkSpec, WorkloadProgram]


# -- payload codecs -------------------------------------------------------------
#
# Hand-rolled rather than dataclasses.asdict: the payload is a stable
# wire format (digests depend on it), so every field is spelled out and
# unknown input keys are rejected.

def _spec_to_dict(spec: BenchmarkSpec) -> Dict[str, object]:
    return {
        "name": spec.name,
        "log_n": spec.log_n,
        "kl": spec.kl,
        "kp": spec.kp,
        "dnum": spec.dnum,
    }


def _spec_from_dict(data: Dict[str, object]) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=str(data["name"]),
        log_n=int(data["log_n"]),
        kl=int(data["kl"]),
        kp=int(data["kp"]),
        dnum=int(data["dnum"]),
    )


def _mix_to_dict(mix: HEOpMix) -> Dict[str, int]:
    return {
        "rotations": mix.rotations,
        "ct_multiplies": mix.ct_multiplies,
        "pt_multiplies": mix.pt_multiplies,
        "additions": mix.additions,
    }


def _mix_from_dict(data: Dict[str, object]) -> HEOpMix:
    return HEOpMix(
        rotations=int(data["rotations"]),
        ct_multiplies=int(data["ct_multiplies"]),
        pt_multiplies=int(data["pt_multiplies"]),
        additions=int(data["additions"]),
    )


def _phase_to_dict(phase: Phase) -> Dict[str, object]:
    return {
        "label": phase.label,
        "kind": phase.kind,
        "spec": _spec_to_dict(phase.spec),
        "mix": _mix_to_dict(phase.mix),
    }


def _phase_from_dict(data: Dict[str, object]) -> Phase:
    return Phase(
        label=str(data["label"]),
        spec=_spec_from_dict(data["spec"]),
        mix=_mix_from_dict(data["mix"]),
        kind=str(data.get("kind", "app")),
    )


def _workload_to_dict(workload: PlanWorkload) -> Dict[str, object]:
    if isinstance(workload, BenchmarkSpec):
        return {"benchmark": _spec_to_dict(workload)}
    return {
        "program": {
            "name": workload.name,
            "description": workload.description,
            "phases": [_phase_to_dict(p) for p in workload.phases],
        }
    }


def _workload_from_dict(data: Dict[str, object]) -> PlanWorkload:
    if "benchmark" in data:
        return _spec_from_dict(data["benchmark"])
    if "program" in data:
        prog = data["program"]
        return WorkloadProgram(
            name=str(prog["name"]),
            phases=tuple(_phase_from_dict(p) for p in prog["phases"]),
            description=str(prog.get("description", "")),
        )
    raise ParameterError(
        f"plan workload payload needs a 'benchmark' or 'program' key, "
        f"got {sorted(data)}"
    )


def _options_to_dict(options: "EstimateOptions") -> Dict[str, object]:
    return {
        "bandwidth_gbs": options.bandwidth_gbs,
        "sram_mb": options.sram_mb,
        "evk_on_chip": options.evk_on_chip,
        "key_compression": options.key_compression,
        "modops_scale": options.modops_scale,
    }


def _options_from_dict(data: Dict[str, object]) -> "EstimateOptions":
    from repro.api.backends import EstimateOptions

    valid = set(EstimateOptions.__dataclass_fields__)
    unknown = sorted(set(data) - valid)
    if unknown:
        raise ParameterError(
            f"unknown estimate option(s) {unknown} in plan payload"
        )
    return EstimateOptions(**data)


@lru_cache(maxsize=4096)
def _digest_for(workload: PlanWorkload, backend: str, schedule: str,
                options: "EstimateOptions") -> str:
    """Content digest, memoized by the (hashable) plan fields.

    Serving workloads submit thousands of plans over the *same* resolved
    program object, so the canonical-JSON walk is paid once per distinct
    request shape, not once per request.
    """
    payload = {
        "version": PLAN_FORMAT_VERSION,
        "backend": backend,
        "schedule": schedule,
        "options": _options_to_dict(options),
        "workload": _workload_to_dict(workload),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass(frozen=True)
class Plan:
    """One fully resolved estimate request: workload x backend x schedule.

    Build plans with :meth:`FHESession.plan` or :func:`build_plan`; the
    constructor validates eagerly so an invalid request fails where it is
    made, not where it is executed.
    """

    workload: PlanWorkload
    backend: str = "rpu"
    schedule: str = "OC"
    options: "EstimateOptions" = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        from repro.api.backends import (
            KNOWN_SCHEDULES,
            EstimateOptions,
            get_backend,
        )

        if self.options is None:
            object.__setattr__(self, "options", EstimateOptions())
        if not isinstance(self.options, EstimateOptions):
            raise ParameterError(
                f"plan options must be EstimateOptions, "
                f"got {type(self.options).__name__}"
            )
        if isinstance(self.workload, CompositeWorkload):
            # The deprecated flat representation lifts (with its warning)
            # to the one-phase program, which prices identically.
            object.__setattr__(self, "workload", as_program(self.workload))
        if not isinstance(self.workload, (BenchmarkSpec, WorkloadProgram)):
            raise ParameterError(
                f"plan workload must be a BenchmarkSpec or WorkloadProgram, "
                f"got {type(self.workload).__name__}"
            )
        object.__setattr__(self, "backend", str(self.backend).lower())
        get_backend(self.backend)  # fail now, not at run time
        schedule = str(self.schedule).upper()
        if schedule not in KNOWN_SCHEDULES:
            raise ParameterError(
                f"unknown schedule {self.schedule!r}; "
                f"choose from {KNOWN_SCHEDULES}"
            )
        object.__setattr__(self, "schedule", schedule)

    # -- identity ---------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.workload.name

    @property
    def digest(self) -> str:
        """Stable SHA-256 content digest of this request.

        Identical for identical requests across processes, hash seeds and
        construction orders; differs when any priced input differs —
        including per-phase ``kind`` tags and every estimate option.
        """
        return _digest_for(self.workload, self.backend, self.schedule,
                           self.options)

    def __repr__(self) -> str:
        return (
            f"Plan({self.name!r}, backend={self.backend!r}, "
            f"schedule={self.schedule!r}, digest={self.digest[:12]}...)"
        )

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Full-fidelity JSON-compatible payload (see :meth:`from_dict`)."""
        return {
            "version": PLAN_FORMAT_VERSION,
            "backend": self.backend,
            "schedule": self.schedule,
            "options": _options_to_dict(self.options),
            "workload": _workload_to_dict(self.workload),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Plan":
        version = int(data.get("version", PLAN_FORMAT_VERSION))
        if version != PLAN_FORMAT_VERSION:
            raise ParameterError(
                f"plan payload version {version} != {PLAN_FORMAT_VERSION}"
            )
        return cls(
            workload=_workload_from_dict(data["workload"]),
            backend=str(data["backend"]),
            schedule=str(data["schedule"]),
            options=_options_from_dict(dict(data.get("options", {}))),
        )

    def to_json(self) -> str:
        """Canonical JSON (sorted keys — digests are computed over this)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "Plan":
        return cls.from_dict(json.loads(text))

    # -- execution --------------------------------------------------------------

    def run(self) -> "RunReport":
        """Execute on the plan's backend; bit-identical to ``estimate()``."""
        from repro.api.backends import execute_plan

        return execute_plan(self)

    def verify(self) -> "AnalysisReport":
        """Run the static analyzers over this plan (and its workload IR).

        Returns the :class:`~repro.analysis.AnalysisReport`; raises
        :class:`~repro.errors.AnalysisError` if any pass reports an
        error.  Read-only: the plan (and its digest) are unchanged.
        """
        from repro.analysis import analyze

        report = analyze(self)
        report.raise_if_errors()
        return report


def build_plan(workload: "Workload", *, backend: str = "rpu",
               schedule: str = "OC",
               options: Optional["EstimateOptions"] = None,
               **option_fields: object) -> Plan:
    """Resolve an estimate request into a :class:`Plan`.

    ``workload`` accepts everything ``estimate()`` accepts — a Table III
    benchmark name or :class:`BenchmarkSpec`, a registered program name
    (``"BOOT"``, ``"RESNET_BOOT"``, ``"HELR"``) or any
    :class:`WorkloadProgram`.  Options come either as a ready
    ``options=EstimateOptions(...)`` object or as keyword fields
    (``bandwidth_gbs=12.8``), never both.  ``schedule`` must name a single
    dataflow — a plan is one executable request; loop (or use
    ``estimate(schedule="all")``) for sweeps.
    """
    from repro.api.backends import EstimateOptions, _resolve_workload

    if options is not None and option_fields:
        raise ParameterError(
            "pass options=EstimateOptions(...) or option keywords, not both"
        )
    if options is None:
        valid = sorted(EstimateOptions.__dataclass_fields__)
        unknown = sorted(set(option_fields) - set(valid))
        if unknown:
            raise ParameterError(
                f"unknown estimate option(s) {unknown}; valid options: {valid}"
            )
        options = EstimateOptions(**option_fields)
    if not isinstance(schedule, str) or schedule.lower() == "all":
        raise ParameterError(
            "a plan targets exactly one schedule; build one plan per "
            "dataflow (or call estimate(schedule='all') for the sweep)"
        )
    return Plan(
        workload=_resolve_workload(workload),
        backend=backend,
        schedule=schedule,
        options=options,
    )


# -- RunReport wire codec -------------------------------------------------------
#
# The serving layer persists reports on disk and ships them between
# worker processes; both paths use this JSON codec so a report survives
# the round-trip bit-identically (Python's json preserves ints exactly
# and floats via repr, which round-trips IEEE-754 doubles).

def report_to_dict(report: "RunReport") -> Dict[str, object]:
    return {
        "benchmark": report.benchmark,
        "backend": report.backend,
        "schedule": report.schedule,
        "total_bytes": report.total_bytes,
        "data_bytes": report.data_bytes,
        "evk_bytes": report.evk_bytes,
        "mod_ops": report.mod_ops,
        "num_tasks": report.num_tasks,
        "peak_on_chip_bytes": report.peak_on_chip_bytes,
        "spill_stores": report.spill_stores,
        "reloads": report.reloads,
        "latency_ms": report.latency_ms,
        "compute_idle_fraction": report.compute_idle_fraction,
        "hks_calls": report.hks_calls,
        "phases": [report_to_dict(p) for p in report.phases],
        "options": _options_to_dict(report.options),
        "schedule_stats": (
            None if report.schedule_stats is None
            else report.schedule_stats.to_dict()
        ),
    }


def report_from_dict(data: Dict[str, object]) -> "RunReport":
    from repro.api.backends import RunReport

    from repro.sched.stats import ScheduleStats as SchedStats

    latency = data.get("latency_ms")
    idle = data.get("compute_idle_fraction")
    hks = data.get("hks_calls")
    raw_stats = data.get("schedule_stats")
    return RunReport(
        benchmark=str(data["benchmark"]),
        backend=str(data["backend"]),
        schedule=str(data["schedule"]),
        total_bytes=int(data["total_bytes"]),
        data_bytes=int(data["data_bytes"]),
        evk_bytes=int(data["evk_bytes"]),
        mod_ops=int(data["mod_ops"]),
        num_tasks=int(data["num_tasks"]),
        peak_on_chip_bytes=int(data["peak_on_chip_bytes"]),
        spill_stores=int(data.get("spill_stores", 0)),
        reloads=int(data.get("reloads", 0)),
        latency_ms=None if latency is None else float(latency),
        compute_idle_fraction=None if idle is None else float(idle),
        hks_calls=None if hks is None else int(hks),
        phases=tuple(report_from_dict(p) for p in data.get("phases", ())),
        options=_options_from_dict(dict(data.get("options", {}))),
        schedule_stats=(
            None if raw_stats is None else SchedStats.from_dict(dict(raw_stats))
        ),
    )
