"""Pluggable estimation backends behind one typed report.

The seed code grew three dataflow schedulers in :mod:`repro.core` and a
cycle-level simulator in :mod:`repro.rpu`, each with its own entry point
(``analyze_dataflow``, ``RPUSimulator.simulate`` + hand-built configs).
This module unifies them behind a small protocol:

* a :class:`Backend` turns ``(benchmark, schedule, options)`` into a
  :class:`RunReport` — one flat, typed summary (latency, traffic,
  arithmetic intensity) no matter which engine produced it;
* a registry (:func:`register_backend` / :func:`get_backend`) lets later
  PRs plug in new engines (GPU cost models, remote estimators) without
  touching call sites;
* :func:`estimate` is the single request path used by
  ``FHESession.estimate``, the CLI and the examples.

Users never import :mod:`repro.core` or :mod:`repro.rpu` directly; those
stay implementation details of the two built-in backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

if TYPE_CHECKING:
    from repro.api.plan import Plan
    from repro.core import DataflowReport, ScheduleStats, TaskGraph
    from repro.rpu import RPUConfig, SimResult
    from repro.sched import Objective, SolvedSchedule
    from repro.workloads import CompositeWorkload, HEOpMix, Phase, WorkloadProgram

from repro.errors import ParameterError
from repro.params import BENCHMARKS, MB, BenchmarkSpec, get_benchmark
from repro.sched import stats as sched_stats_mod
from repro.sched.stats import ScheduleStats as SchedStats

#: Short ids of the paper's three HKS dataflow schedules.
SCHEDULES = ("MP", "DC", "OC")

#: Everything a :class:`~repro.api.plan.Plan` may name as a schedule: the
#: hand-written trio plus the solver's search (``"SOLVER"``).  ``"all"``
#: still expands to the hand-written trio only, so comparison tables keep
#: their three-column shape.
KNOWN_SCHEDULES = SCHEDULES + ("SOLVER",)


@dataclass(frozen=True)
class EstimateOptions:
    """Machine knobs shared by every backend (the paper's sweep axes)."""

    bandwidth_gbs: float = 64.0
    sram_mb: int = 32
    evk_on_chip: bool = True
    key_compression: bool = False
    modops_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0 or self.sram_mb <= 0 or self.modops_scale <= 0:
            raise ParameterError("bandwidth, SRAM and MODOPS scale must be positive")


@dataclass(frozen=True)
class RunReport:
    """Uniform result of estimating one (benchmark, schedule) point.

    ``latency_ms`` is ``None`` for backends that model traffic only (the
    analytic backend); simulation backends always fill it.  Composite
    workload estimates additionally carry ``phases`` — one nested report
    per :class:`~repro.workloads.ir.Phase`, in program order, so callers
    can see where inside the circuit the time/traffic goes.
    """

    benchmark: str
    backend: str
    schedule: str
    total_bytes: int
    data_bytes: int
    evk_bytes: int
    mod_ops: int
    num_tasks: int
    peak_on_chip_bytes: int
    spill_stores: int = 0
    reloads: int = 0
    latency_ms: Optional[float] = None
    compute_idle_fraction: Optional[float] = None
    #: For composite workloads (e.g. ``"BOOT"``): how many hybrid key
    #: switches the estimated circuit performs.  ``None`` for single-HKS
    #: benchmark estimates.
    hks_calls: Optional[int] = None
    #: Per-phase breakdown of a composite workload estimate (one report
    #: per program phase, in order).  Empty for single-HKS estimates.
    phases: Tuple["RunReport", ...] = ()
    options: EstimateOptions = field(default_factory=EstimateOptions)
    #: Structural summary of the underlying schedule (queue occupancy,
    #: critical path, SRAM high-water) — filled by every built-in backend.
    schedule_stats: Optional[SchedStats] = None

    @property
    def total_mb(self) -> float:
        return self.total_bytes / MB

    @property
    def arithmetic_intensity(self) -> Optional[float]:
        """Modular operations per DRAM byte (paper Table II's "AI").

        ``None`` when the estimate moved no bytes at all (possible for
        degenerate add-only phases) — callers must not divide by traffic
        that does not exist.
        """
        if self.total_bytes == 0:
            return None
        return self.mod_ops / self.total_bytes

    @property
    def achieved_gbs(self) -> Optional[float]:
        if not self.latency_ms:  # None for analytic, 0 for empty phases
            return None
        return self.total_bytes / (self.latency_ms / 1e3) / 1e9

    @property
    def achieved_gops(self) -> Optional[float]:
        if not self.latency_ms:
            return None
        return self.mod_ops / (self.latency_ms / 1e3) / 1e9

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary for ``format_table``-style rendering."""
        ai = self.arithmetic_intensity
        row: Dict[str, object] = {
            "benchmark": self.benchmark,
            "backend": self.backend,
            "schedule": self.schedule,
            "MB": round(self.total_mb, 1),
            "AI": round(ai, 2) if ai is not None else "-",
            "spills": self.spill_stores,
        }
        if self.hks_calls is not None:
            row["hks"] = self.hks_calls
        if self.latency_ms is not None:
            row["latency_ms"] = round(self.latency_ms, 2)
        if self.compute_idle_fraction is not None:
            row["idle_%"] = round(self.compute_idle_fraction * 100, 1)
        return row

    def phase_rows(self) -> List[Dict[str, object]]:
        """Per-phase breakdown as flat dictionaries (empty if no phases)."""
        return [p.as_row() for p in self.phases]


@lru_cache(maxsize=None)
def _cached_schedule(spec: BenchmarkSpec, schedule: str, sram_mb: int,
                     evk_on_chip: bool,
                     key_compression: bool) -> Tuple[TaskGraph, ScheduleStats]:
    """One (graph, stats) build per schedule configuration.

    Schedules depend only on the memory configuration, not on bandwidth
    or MODOPS, so sweep-style estimate() loops (the common request
    pattern) reuse one build — the same memoization the experiment
    harness applies in :mod:`repro.experiments.common`.
    """
    from repro.core import DataflowConfig, get_dataflow

    config = DataflowConfig(
        data_sram_bytes=sram_mb * MB,
        evk_on_chip=evk_on_chip,
        key_compression=key_compression,
    )
    return get_dataflow(schedule).build_with_stats(spec, config)


@lru_cache(maxsize=None)
def _cached_analysis(spec: BenchmarkSpec, schedule: str, sram_mb: int,
                     evk_on_chip: bool,
                     key_compression: bool) -> DataflowReport:
    """Memoized :func:`repro.core.analyze_dataflow` (reports are frozen)."""
    from repro.core import DataflowConfig, analyze_dataflow, get_dataflow

    config = DataflowConfig(
        data_sram_bytes=sram_mb * MB,
        evk_on_chip=evk_on_chip,
        key_compression=key_compression,
    )
    return analyze_dataflow(spec, get_dataflow(schedule), config)


def _dataflow_config(options: EstimateOptions) -> "DataflowConfig":
    """The schedule-generation view of an options record."""
    from repro.core import DataflowConfig

    return DataflowConfig(
        data_sram_bytes=options.sram_mb * MB,
        evk_on_chip=options.evk_on_chip,
        key_compression=options.key_compression,
    )


def _machine_of(options: EstimateOptions) -> "RPUConfig":
    """The RPU timing model an options record denotes (both backends use
    it for occupancy stats; the RPU backend also simulates on it)."""
    from repro.rpu import RPUConfig

    return RPUConfig(
        bandwidth_bytes_per_s=options.bandwidth_gbs * 1e9,
        data_sram_bytes=options.sram_mb * MB,
        key_sram_bytes=360 * MB if options.evk_on_chip else 0,
        modops_scale=options.modops_scale,
    )


@lru_cache(maxsize=None)
def _cached_rpu_sim(spec: BenchmarkSpec, schedule: str,
                    options: EstimateOptions) -> "SimResult":
    """One simulation per (spec, schedule, options) — shared between the
    RPU backend and the solver's legacy-anchor evaluations, so whichever
    runs first warms the other."""
    from repro.rpu import RPUSimulator

    graph, _ = _cached_schedule(
        spec, schedule, options.sram_mb, options.evk_on_chip,
        options.key_compression,
    )
    return RPUSimulator(_machine_of(options)).simulate(graph)


def _solver_objective_of(backend_name: str,
                         options: EstimateOptions) -> "Objective":
    """The solver objective a backend prices schedules under."""
    from repro.sched import Objective

    if backend_name == "analytic":
        return Objective.traffic()
    return Objective.latency(bandwidth_gbs=options.bandwidth_gbs,
                             modops_scale=options.modops_scale)


#: Mix field -> pointwise graph kind (rotations also pay an automorphism).
_POINTWISE_KINDS = (
    ("rotations", "automorphism"),
    ("ct_multiplies", "tensor"),
    ("pt_multiplies", "plain"),
    ("additions", "add"),
)


@lru_cache(maxsize=None)
def _pointwise_graph(spec: BenchmarkSpec, kind: str) -> TaskGraph:
    """Task graph of one non-HKS homomorphic op (shared by both backends)."""
    from repro.workloads import build_pointwise_graph

    return build_pointwise_graph(spec, kind)


def _fold_phase_reports(name: str, backend: str, schedule: str,
                        phase_reports: Sequence[RunReport],
                        options: EstimateOptions) -> RunReport:
    """Sum per-phase reports into one program-level :class:`RunReport`.

    Integer resources add; the on-chip peak is the max across phases
    (phases run back-to-back, never concurrently); latency adds with the
    idle fraction folded busy-time-weighted.  Folding a single phase
    reproduces that phase's numbers exactly — the degenerate case the
    legacy flat path maps onto.
    """
    latency_ms: Optional[float] = 0.0
    busy_ms = 0.0
    for report in phase_reports:
        if report.latency_ms is None:
            latency_ms = None
            break
        latency_ms += report.latency_ms
        if report.compute_idle_fraction is not None:
            busy_ms += report.latency_ms * (1.0 - report.compute_idle_fraction)
    return RunReport(
        benchmark=name,
        backend=backend,
        schedule=schedule,
        total_bytes=sum(p.total_bytes for p in phase_reports),
        data_bytes=sum(p.data_bytes for p in phase_reports),
        evk_bytes=sum(p.evk_bytes for p in phase_reports),
        mod_ops=sum(p.mod_ops for p in phase_reports),
        num_tasks=sum(p.num_tasks for p in phase_reports),
        peak_on_chip_bytes=max(p.peak_on_chip_bytes for p in phase_reports),
        spill_stores=sum(p.spill_stores for p in phase_reports),
        reloads=sum(p.reloads for p in phase_reports),
        latency_ms=latency_ms,
        compute_idle_fraction=(
            1.0 - busy_ms / latency_ms if latency_ms else None
        ),
        hks_calls=sum(p.hks_calls or 0 for p in phase_reports),
        phases=tuple(phase_reports),
        options=options,
        schedule_stats=(
            sched_stats_mod.fold([p.schedule_stats for p in phase_reports])
            if any(p.schedule_stats is not None for p in phase_reports)
            else None
        ),
    )


class PlanBackendBase:
    """Plan-execution skeleton shared by the built-in backends.

    :meth:`run_plan` is the primary entry point: it dispatches a resolved
    :class:`~repro.api.plan.Plan` to the engine's single-benchmark
    pricing (``_spec_report``) or folds its phase-structured program
    through ``_phase_report``.  The historic ``run`` / ``run_composite``
    methods survive as thin adapters that wrap their arguments into a
    plan — one execution path, however the request arrives.
    """

    #: Backends that search regardless of the plan's schedule name (the
    #: ``auto`` backend) set this; ``run_plan`` then rewrites the schedule
    #: to ``"SOLVER"`` before dispatching.
    force_solver = False

    def run_plan(self, plan: "Plan") -> RunReport:
        """Execute one resolved plan (the primary backend entry point)."""
        workload = plan.workload
        schedule = plan.schedule
        if self.force_solver:
            schedule = "SOLVER"
        solver_ctx = (self._prepare_solver(plan)
                      if schedule == "SOLVER" else None)
        try:
            if isinstance(workload, BenchmarkSpec):
                return self._spec_report(workload, schedule, plan.options)
            phase_reports = [
                self._phase_report(phase, schedule, plan.options)
                for phase in workload.phases
            ]
            return _fold_phase_reports(
                workload.name, self.name, phase_reports[0].schedule,
                phase_reports, plan.options,
            )
        finally:
            if solver_ctx is not None:
                self._finish_solver(solver_ctx)

    def _prepare_solver(self, plan: "Plan") -> Tuple[str, bool]:
        """Seed the solver memo from this plan's recorded bundle, or start
        recording one.  A warm process (or a fresh worker against a warm
        cache) loads every per-spec solve with a single cache read."""
        from repro import sched

        objective = _solver_objective_of(self.name, plan.options)
        key = sched.solver.bundle_key(plan.digest, objective)
        loaded = sched.solver.preload_bundle(key)
        if not loaded:
            sched.solver.begin_recording()
        return key, loaded

    def _finish_solver(self, ctx: Tuple[str, bool]) -> None:
        from repro import sched

        key, loaded = ctx
        if not loaded:
            sched.solver.store_bundle(key, sched.solver.end_recording())

    def run(self, spec: BenchmarkSpec, schedule: str,
            options: EstimateOptions) -> RunReport:
        """Thin adapter: wrap a single-benchmark request into a plan."""
        from repro.api.plan import Plan

        return self.run_plan(Plan(workload=spec, backend=self.name,
                                  schedule=schedule, options=options))

    def run_composite(self, workload: Union[WorkloadProgram, CompositeWorkload],
                      schedule: str,
                      options: EstimateOptions) -> RunReport:
        """Thin adapter: wrap a workload program (or the deprecated flat
        ``CompositeWorkload``, which warns while lifting) into a plan."""
        from repro.api.plan import Plan

        return self.run_plan(Plan(workload=workload, backend=self.name,
                                  schedule=schedule, options=options))


@lru_cache(maxsize=None)
def _cached_rpu_mix_report(backend: "RPUBackend", spec: BenchmarkSpec,
                           mix: HEOpMix, schedule: str,
                           options: EstimateOptions) -> RunReport:
    """Label-free RPU phase numbers, memoized across repeated phases.

    Every argument is hashable (frozen dataclasses; the backend by
    identity), and :class:`RunReport` is frozen, so repeated bootstrap
    phases inside deep programs — and repeated estimate() requests —
    share one simulation instead of re-running it."""
    return backend._mix_report(spec, mix, schedule, options)


@runtime_checkable
class Backend(Protocol):
    """Anything that can execute a resolved estimate plan.

    ``run_plan`` is the primary entry point.  Backends that predate the
    plan API may instead expose the legacy ``run(spec, schedule,
    options)`` / ``run_composite(workload, schedule, options)`` pair;
    :func:`execute_plan` adapts either shape.
    """

    name: str

    def run_plan(self, plan: "Plan") -> RunReport:
        """Produce a :class:`RunReport` for one resolved :class:`Plan`."""
        ...


class AnalyticBackend(PlanBackendBase):
    """Traffic/AI analysis of the generated schedules (paper Table II).

    Wraps :func:`repro.core.analyze_dataflow`; no timing model, so
    ``latency_ms`` is ``None``.
    """

    name = "analytic"

    def _spec_report(self, spec: BenchmarkSpec, schedule: str,
                     options: EstimateOptions) -> RunReport:
        if schedule.upper() == "SOLVER":
            return self._solver_spec_report(spec, options)
        report = _cached_analysis(
            spec, schedule.upper(), options.sram_mb, options.evk_on_chip,
            options.key_compression,
        )
        graph, stats = _cached_schedule(
            spec, schedule.upper(), options.sram_mb, options.evk_on_chip,
            options.key_compression,
        )
        return RunReport(
            benchmark=spec.name,
            backend=self.name,
            schedule=report.dataflow,
            total_bytes=report.total_bytes,
            data_bytes=report.data_bytes,
            evk_bytes=report.evk_bytes,
            mod_ops=report.mod_ops,
            num_tasks=report.num_tasks,
            peak_on_chip_bytes=report.peak_on_chip_bytes,
            spill_stores=report.spill_stores,
            reloads=report.reloads,
            options=options,
            schedule_stats=sched_stats_mod.from_graph(
                graph, _machine_of(options), stats.peak_bytes,
            ),
        )

    def _solver_spec_report(self, spec: BenchmarkSpec,
                            options: EstimateOptions) -> RunReport:
        """Price the solver's minimum-traffic schedule for one spec."""
        from repro import sched

        config = _dataflow_config(options)
        objective = _solver_objective_of(self.name, options)
        solved = sched.solve(spec, config, objective)
        graph, stats = sched.solved_graph(spec, config, objective, solved)
        return RunReport(
            benchmark=spec.name,
            backend=self.name,
            schedule="SOLVER",
            total_bytes=solved.total_bytes,
            data_bytes=solved.data_bytes,
            evk_bytes=solved.evk_bytes,
            mod_ops=solved.mod_ops,
            num_tasks=solved.num_tasks,
            peak_on_chip_bytes=solved.peak_bytes,
            spill_stores=solved.spill_stores,
            reloads=solved.reloads,
            options=options,
            schedule_stats=sched_stats_mod.from_graph(
                graph, _machine_of(options), stats.peak_bytes,
            ),
        )

    def _phase_report(self, phase: Phase, schedule: str,
                      options: EstimateOptions) -> RunReport:
        """Traffic/ops of one phase: HKS calls + point-wise ops at its level."""
        base = self._spec_report(phase.spec, schedule, options)
        calls = phase.hks_calls
        total_bytes = calls * base.total_bytes
        data_bytes = calls * base.data_bytes
        mod_ops = calls * base.mod_ops
        num_tasks = calls * base.num_tasks
        extra_mem = extra_comp = extra_crit = 0
        for mix_field, kind in _POINTWISE_KINDS:
            count = getattr(phase.mix, mix_field)
            if count == 0:
                continue
            graph = _pointwise_graph(phase.spec, kind)
            total_bytes += count * graph.total_bytes()
            data_bytes += count * graph.total_bytes()
            mod_ops += count * graph.total_mod_ops()
            num_tasks += count * len(graph)
            mem, comp, crit = sched_stats_mod.graph_task_counts(graph)
            extra_mem += count * mem
            extra_comp += count * comp
            extra_crit += count * crit
        if base.schedule_stats is not None and calls:
            stats = base.schedule_stats.scaled(calls)
        else:
            stats = SchedStats()
        return RunReport(
            benchmark=phase.label,
            backend=self.name,
            schedule=base.schedule,
            total_bytes=total_bytes,
            data_bytes=data_bytes,
            evk_bytes=calls * base.evk_bytes,
            mod_ops=mod_ops,
            num_tasks=num_tasks,
            # A key-switch-free phase never holds the HKS working set.
            peak_on_chip_bytes=base.peak_on_chip_bytes if calls else 0,
            spill_stores=calls * base.spill_stores,
            reloads=calls * base.reloads,
            hks_calls=calls,
            options=options,
            schedule_stats=stats.plus_tasks(extra_mem, extra_comp,
                                            extra_crit),
        )

class RPUBackend(PlanBackendBase):
    """Cycle-level replay on the dual-queue RPU simulator (paper Section V).

    Program estimates fold phase by phase; each phase simulates at its
    own point of the modulus chain, so descending tower counts make late
    phases strictly cheaper than flat top-of-chain pricing.
    """

    name = "rpu"

    def _spec_report(self, spec: BenchmarkSpec, schedule: str,
                     options: EstimateOptions) -> RunReport:
        if schedule.upper() == "SOLVER":
            return self._solver_spec_report(spec, options)
        graph, stats = _cached_schedule(
            spec, schedule.upper(), options.sram_mb, options.evk_on_chip,
            options.key_compression,
        )
        result = _cached_rpu_sim(spec, schedule.upper(), options)
        return RunReport(
            benchmark=spec.name,
            backend=self.name,
            schedule=schedule.upper(),
            total_bytes=result.total_bytes,
            data_bytes=result.data_bytes,
            evk_bytes=result.evk_bytes,
            mod_ops=result.total_modops,
            num_tasks=result.num_tasks,
            peak_on_chip_bytes=stats.peak_bytes,
            spill_stores=stats.spill_stores,
            reloads=stats.reloads,
            latency_ms=result.runtime_ms,
            compute_idle_fraction=result.compute_idle_fraction,
            options=options,
            schedule_stats=sched_stats_mod.from_graph(
                graph, _machine_of(options), stats.peak_bytes,
                latency_s=result.runtime_s,
            ),
        )

    def _solver_spec_report(self, spec: BenchmarkSpec,
                            options: EstimateOptions) -> RunReport:
        """Price the solver's minimum-latency schedule for one spec.

        Warm path: the solve comes from cache, the schedule is rebuilt
        deterministically (digest-verified) and the *stored* latency is
        reused — no simulation runs.
        """
        from repro import sched

        config = _dataflow_config(options)
        objective = _solver_objective_of(self.name, options)
        solved = sched.solve(spec, config, objective)
        graph, stats = sched.solved_graph(spec, config, objective, solved)
        latency_s = (None if solved.latency_ms is None
                     else solved.latency_ms / 1e3)
        return RunReport(
            benchmark=spec.name,
            backend=self.name,
            schedule="SOLVER",
            total_bytes=solved.total_bytes,
            data_bytes=solved.data_bytes,
            evk_bytes=solved.evk_bytes,
            mod_ops=solved.mod_ops,
            num_tasks=solved.num_tasks,
            peak_on_chip_bytes=solved.peak_bytes,
            spill_stores=solved.spill_stores,
            reloads=solved.reloads,
            latency_ms=solved.latency_ms,
            compute_idle_fraction=solved.compute_idle_fraction,
            options=options,
            schedule_stats=sched_stats_mod.from_graph(
                graph, _machine_of(options), stats.peak_bytes,
                latency_s=latency_s,
            ),
        )

    def _machine(self, options: EstimateOptions) -> RPUConfig:
        return _machine_of(options)

    def _phase_report(self, phase: Phase, schedule: str,
                      options: EstimateOptions) -> RunReport:
        """Latency of one phase: one simulation per distinct kernel at the
        phase's level, scaled by the phase op mix (the simulator replays
        one HKS / one point-wise op; a real run would interleave them
        identically in steady state).

        Deep programs repeat the same bootstrap phases many times (HELR:
        one per training iteration), so the label-free numbers are
        memoized per ``(spec, mix, schedule, options)`` and only the
        phase label is stamped on per call."""
        from dataclasses import replace

        numbers = _cached_rpu_mix_report(
            self, phase.spec, phase.mix, schedule, options
        )
        return replace(numbers, benchmark=phase.label)

    def _mix_report(self, spec: BenchmarkSpec, mix: HEOpMix, schedule: str,
                    options: EstimateOptions) -> RunReport:
        from repro.rpu import RPUSimulator

        base = self._spec_report(spec, schedule, options)
        sim = RPUSimulator(self._machine(options))
        calls = mix.hks_calls
        total_bytes = calls * base.total_bytes
        data_bytes = calls * base.data_bytes
        mod_ops = calls * base.mod_ops
        num_tasks = calls * base.num_tasks
        latency_ms = calls * base.latency_ms
        busy_ms = calls * base.latency_ms * (1.0 - base.compute_idle_fraction)
        if schedule.upper() == "SOLVER" and calls > 1:
            # Steady-state pricing: repeat calls pay the pipeline marginal
            # (never above the cold single-call latency, so match-or-beat
            # against `calls x hand-written` is preserved; never below the
            # busier queue, so the folded idle fraction stays in range).
            from repro import sched

            config = _dataflow_config(options)
            objective = _solver_objective_of(self.name, options)
            solved = sched.solve(spec, config, objective)
            marginal = sched.pipeline_marginal_ms(
                spec, config, objective, solved
            )
            latency_ms = base.latency_ms + (calls - 1) * marginal
        for mix_field, kind in _POINTWISE_KINDS:
            count = getattr(mix, mix_field)
            if count == 0:
                continue
            graph = _pointwise_graph(spec, kind)
            result = sim.simulate(graph)
            total_bytes += count * result.total_bytes
            data_bytes += count * result.data_bytes
            mod_ops += count * result.total_modops
            num_tasks += count * result.num_tasks
            latency_ms += count * result.runtime_ms
            busy_ms += count * result.runtime_ms * (
                1.0 - result.compute_idle_fraction
            )
        if base.schedule_stats is not None and calls:
            stats = base.schedule_stats.scaled(calls)
        else:
            stats = SchedStats()
        extra_mem = extra_comp = extra_crit = 0
        for mix_field, kind in _POINTWISE_KINDS:
            count = getattr(mix, mix_field)
            if count == 0:
                continue
            mem, comp, crit = sched_stats_mod.graph_task_counts(
                _pointwise_graph(spec, kind)
            )
            extra_mem += count * mem
            extra_comp += count * comp
            extra_crit += count * crit
        return RunReport(
            benchmark=spec.name,
            backend=self.name,
            schedule=base.schedule,
            total_bytes=total_bytes,
            data_bytes=data_bytes,
            evk_bytes=calls * base.evk_bytes,
            mod_ops=mod_ops,
            num_tasks=num_tasks,
            # A key-switch-free phase never holds the HKS working set.
            peak_on_chip_bytes=base.peak_on_chip_bytes if calls else 0,
            spill_stores=calls * base.spill_stores,
            reloads=calls * base.reloads,
            latency_ms=latency_ms,
            compute_idle_fraction=(
                1.0 - busy_ms / latency_ms if latency_ms else None
            ),
            hks_calls=calls,
            options=options,
            schedule_stats=stats.plus_tasks(extra_mem, extra_comp,
                                            extra_crit),
        )


class AutoBackend(RPUBackend):
    """Schedule search per phase: the solver picks the best dataflow.

    An :class:`RPUBackend` that ignores the plan's schedule name and
    prices every spec under the solver's argmin schedule — guaranteed to
    match or beat the best hand-written dataflow, because the solver
    always evaluates MP/DC/OC exactly and only displaces them with
    analysis-clean improvements.  Solves are content-addressed in
    :mod:`repro.cache`, so only the first cold request searches.
    """

    name = "auto"
    force_solver = True


# -- registry -----------------------------------------------------------------

_REGISTRY: Dict[str, Backend] = {}


def register_backend(backend: Backend, replace: bool = False) -> None:
    """Add a backend to the registry under its ``name``.

    A backend must expose ``run_plan`` (preferred) or the legacy ``run``
    method; either satisfies :func:`execute_plan`.
    """
    name = backend.name.lower()
    if not replace and name in _REGISTRY:
        raise ParameterError(f"backend {name!r} is already registered")
    if not (callable(getattr(backend, "run_plan", None))
            or callable(getattr(backend, "run", None))):
        raise ParameterError(
            f"backend {name!r} has no run_plan() or run() method"
        )
    _REGISTRY[name] = backend


def get_backend(name: str) -> Backend:
    key = name.lower()
    if key not in _REGISTRY:
        raise ParameterError(
            f"unknown backend {name!r}; choose from {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key]


def list_backends() -> List[str]:
    """Registered backend names in deterministic (sorted) order.

    Stable across registration order, interpreter hash seeds and
    processes — serving configurations and docs may rely on it.
    """
    return sorted(_REGISTRY)


def describe_backends() -> Dict[str, str]:
    """Backend name -> one-line description, in :func:`list_backends` order."""
    out: Dict[str, str] = {}
    for name in list_backends():
        doc = (_REGISTRY[name].__doc__ or "").strip()
        out[name] = doc.splitlines()[0] if doc else ""
    return out


register_backend(AnalyticBackend())
register_backend(RPUBackend())
register_backend(AutoBackend())


# -- the single request path ---------------------------------------------------

Workload = Union[str, BenchmarkSpec, "WorkloadProgram", "CompositeWorkload"]


def _resolve_workload(workload: Workload) -> Workload:
    """Resolve a name/spec to a :class:`BenchmarkSpec` or workload program.

    Names check Table III benchmarks first (``"ARK"``), then the named
    workload programs of :mod:`repro.workloads` (``"BOOT"``,
    ``"RESNET_BOOT"``, ``"HELR"``).
    """
    if isinstance(workload, BenchmarkSpec):
        return workload
    if not isinstance(workload, str):
        from repro.workloads import CompositeWorkload, WorkloadProgram

        if isinstance(workload, (WorkloadProgram, CompositeWorkload)):
            return workload
        raise ParameterError(
            f"workload must be a name, BenchmarkSpec, WorkloadProgram or "
            f"CompositeWorkload, got {type(workload).__name__}"
        )
    try:
        return get_benchmark(workload)
    except ParameterError:
        from repro.workloads import get_workload, list_workloads

        try:
            return get_workload(workload)
        except ParameterError:
            raise ParameterError(
                f"unknown workload {workload!r}; benchmarks: "
                f"{sorted(BENCHMARKS)}, composite workloads: "
                f"{list_workloads()}"
            ) from None


def _resolve_schedules(schedule: Union[str, Sequence[str]]) -> List[str]:
    if isinstance(schedule, str):
        if schedule.lower() == "all":
            return list(SCHEDULES)
        names = [schedule]
    else:
        names = list(schedule)
    out = []
    for name in names:
        key = name.upper()
        if key not in KNOWN_SCHEDULES:
            raise ParameterError(
                f"unknown schedule {name!r}; choose from {KNOWN_SCHEDULES} "
                f"or 'all'"
            )
        out.append(key)
    return out


def execute_plan(plan: "Plan") -> RunReport:
    """Run one resolved plan on its backend — the single execution path.

    Prefers the backend's ``run_plan``; backends registered with only the
    legacy ``run`` / ``run_composite`` surface are adapted in place.
    """
    engine = get_backend(plan.backend)
    run_plan = getattr(engine, "run_plan", None)
    if callable(run_plan):
        return run_plan(plan)
    if isinstance(plan.workload, BenchmarkSpec):
        return engine.run(plan.workload, plan.schedule, plan.options)
    runner = getattr(engine, "run_composite", None)
    if runner is None:
        raise ParameterError(
            f"backend {plan.backend!r} cannot estimate composite workloads "
            f"like {plan.workload.name!r}"
        )
    return runner(plan.workload, plan.schedule, plan.options)


def estimate(
    workload: Workload,
    *,
    backend: str = "rpu",
    schedule: Union[str, Sequence[str]] = "OC",
    **options: Any,
) -> Union[RunReport, List[RunReport]]:
    """Estimate ``workload`` on one backend across one or more schedules.

    ``workload`` is a Table III benchmark name (``"ARK"``), a
    :class:`BenchmarkSpec`, or a named workload program (``"BOOT"``,
    ``"RESNET_BOOT"``, ``"HELR"`` — or any
    :class:`~repro.workloads.ir.WorkloadProgram`); program estimates are
    folded phase by phase at each phase's own chain level, with the
    per-phase breakdown on ``report.phases``.  ``schedule`` is
    ``"MP"``/``"DC"``/``"OC"``, a sequence of those, or ``"all"``.
    Remaining keyword arguments populate :class:`EstimateOptions`.
    Returns one report for a single schedule, a list (in request order)
    otherwise.

    This is a thin wrapper over the plan/execute pipeline: one
    :class:`~repro.api.plan.Plan` is built per schedule and executed via
    :func:`execute_plan`, so results are bit-identical to
    ``session.plan(...).run()``.
    """
    from repro.api.plan import Plan

    spec = _resolve_workload(workload)
    get_backend(backend)  # unknown backends fail before option parsing
    valid = sorted(EstimateOptions.__dataclass_fields__)
    unknown = sorted(set(options) - set(valid))
    if unknown:
        raise ParameterError(
            f"unknown estimate option(s) {unknown}; valid options: {valid}"
        )
    opts = EstimateOptions(**options)
    schedules = _resolve_schedules(schedule)
    if backend.lower() == "auto" and len(schedules) > 1:
        # The auto backend ignores the requested schedule (every plan
        # normalizes to the solver's pick), so "all" is one report.
        schedules = ["SOLVER"]
    reports = [
        execute_plan(Plan(workload=spec, backend=backend, schedule=s,
                          options=opts))
        for s in schedules
    ]
    if isinstance(schedule, str) and schedule.lower() != "all":
        return reports[0]
    return reports
