"""Pluggable estimation backends behind one typed report.

The seed code grew three dataflow schedulers in :mod:`repro.core` and a
cycle-level simulator in :mod:`repro.rpu`, each with its own entry point
(``analyze_dataflow``, ``RPUSimulator.simulate`` + hand-built configs).
This module unifies them behind a small protocol:

* a :class:`Backend` turns ``(benchmark, schedule, options)`` into a
  :class:`RunReport` — one flat, typed summary (latency, traffic,
  arithmetic intensity) no matter which engine produced it;
* a registry (:func:`register_backend` / :func:`get_backend`) lets later
  PRs plug in new engines (GPU cost models, remote estimators) without
  touching call sites;
* :func:`estimate` is the single request path used by
  ``FHESession.estimate``, the CLI and the examples.

Users never import :mod:`repro.core` or :mod:`repro.rpu` directly; those
stay implementation details of the two built-in backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Protocol, Sequence, Union, runtime_checkable

from repro.errors import ParameterError
from repro.params import BENCHMARKS, MB, BenchmarkSpec, get_benchmark

#: Short ids of the paper's three HKS dataflow schedules.
SCHEDULES = ("MP", "DC", "OC")


@dataclass(frozen=True)
class EstimateOptions:
    """Machine knobs shared by every backend (the paper's sweep axes)."""

    bandwidth_gbs: float = 64.0
    sram_mb: int = 32
    evk_on_chip: bool = True
    key_compression: bool = False
    modops_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0 or self.sram_mb <= 0 or self.modops_scale <= 0:
            raise ParameterError("bandwidth, SRAM and MODOPS scale must be positive")


@dataclass(frozen=True)
class RunReport:
    """Uniform result of estimating one (benchmark, schedule) point.

    ``latency_ms`` is ``None`` for backends that model traffic only (the
    analytic backend); simulation backends always fill it.
    """

    benchmark: str
    backend: str
    schedule: str
    total_bytes: int
    data_bytes: int
    evk_bytes: int
    mod_ops: int
    num_tasks: int
    peak_on_chip_bytes: int
    spill_stores: int = 0
    reloads: int = 0
    latency_ms: Optional[float] = None
    compute_idle_fraction: Optional[float] = None
    #: For composite workloads (e.g. ``"BOOT"``): how many hybrid key
    #: switches the estimated circuit performs.  ``None`` for single-HKS
    #: benchmark estimates.
    hks_calls: Optional[int] = None
    options: EstimateOptions = field(default_factory=EstimateOptions)

    @property
    def total_mb(self) -> float:
        return self.total_bytes / MB

    @property
    def arithmetic_intensity(self) -> float:
        """Modular operations per DRAM byte (paper Table II's "AI")."""
        if self.total_bytes == 0:
            return float("inf")
        return self.mod_ops / self.total_bytes

    @property
    def achieved_gbs(self) -> Optional[float]:
        if self.latency_ms is None or self.latency_ms == 0:
            return None
        return self.total_bytes / (self.latency_ms / 1e3) / 1e9

    @property
    def achieved_gops(self) -> Optional[float]:
        if self.latency_ms is None or self.latency_ms == 0:
            return None
        return self.mod_ops / (self.latency_ms / 1e3) / 1e9

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary for ``format_table``-style rendering."""
        row: Dict[str, object] = {
            "benchmark": self.benchmark,
            "backend": self.backend,
            "schedule": self.schedule,
            "MB": round(self.total_mb, 1),
            "AI": round(self.arithmetic_intensity, 2),
            "spills": self.spill_stores,
        }
        if self.hks_calls is not None:
            row["hks"] = self.hks_calls
        if self.latency_ms is not None:
            row["latency_ms"] = round(self.latency_ms, 2)
        if self.compute_idle_fraction is not None:
            row["idle_%"] = round(self.compute_idle_fraction * 100, 1)
        return row


@lru_cache(maxsize=None)
def _cached_schedule(spec: BenchmarkSpec, schedule: str, sram_mb: int,
                     evk_on_chip: bool, key_compression: bool):
    """One (graph, stats) build per schedule configuration.

    Schedules depend only on the memory configuration, not on bandwidth
    or MODOPS, so sweep-style estimate() loops (the common request
    pattern) reuse one build — the same memoization the experiment
    harness applies in :mod:`repro.experiments.common`.
    """
    from repro.core import DataflowConfig, get_dataflow

    config = DataflowConfig(
        data_sram_bytes=sram_mb * MB,
        evk_on_chip=evk_on_chip,
        key_compression=key_compression,
    )
    return get_dataflow(schedule).build_with_stats(spec, config)


@lru_cache(maxsize=None)
def _cached_analysis(spec: BenchmarkSpec, schedule: str, sram_mb: int,
                     evk_on_chip: bool, key_compression: bool):
    """Memoized :func:`repro.core.analyze_dataflow` (reports are frozen)."""
    from repro.core import DataflowConfig, analyze_dataflow, get_dataflow

    config = DataflowConfig(
        data_sram_bytes=sram_mb * MB,
        evk_on_chip=evk_on_chip,
        key_compression=key_compression,
    )
    return analyze_dataflow(spec, get_dataflow(schedule), config)


#: Mix field -> pointwise graph kind (rotations also pay an automorphism).
_POINTWISE_KINDS = (
    ("rotations", "automorphism"),
    ("ct_multiplies", "tensor"),
    ("pt_multiplies", "plain"),
    ("additions", "add"),
)


@lru_cache(maxsize=None)
def _pointwise_graph(spec: BenchmarkSpec, kind: str):
    """Task graph of one non-HKS homomorphic op (shared by both backends)."""
    from repro.workloads import build_pointwise_graph

    return build_pointwise_graph(spec, kind)


@runtime_checkable
class Backend(Protocol):
    """Anything that can estimate one (benchmark, schedule) point."""

    name: str

    def run(self, spec: BenchmarkSpec, schedule: str,
            options: EstimateOptions) -> RunReport:
        """Produce a :class:`RunReport` for ``spec`` under ``schedule``."""
        ...


class AnalyticBackend:
    """Traffic/AI analysis of the generated schedules (paper Table II).

    Wraps :func:`repro.core.analyze_dataflow`; no timing model, so
    ``latency_ms`` is ``None``.
    """

    name = "analytic"

    def run(self, spec: BenchmarkSpec, schedule: str,
            options: EstimateOptions) -> RunReport:
        report = _cached_analysis(
            spec, schedule.upper(), options.sram_mb, options.evk_on_chip,
            options.key_compression,
        )
        return RunReport(
            benchmark=spec.name,
            backend=self.name,
            schedule=report.dataflow,
            total_bytes=report.total_bytes,
            data_bytes=report.data_bytes,
            evk_bytes=report.evk_bytes,
            mod_ops=report.mod_ops,
            num_tasks=report.num_tasks,
            peak_on_chip_bytes=report.peak_on_chip_bytes,
            spill_stores=report.spill_stores,
            reloads=report.reloads,
            options=options,
        )

    def run_composite(self, workload, schedule: str,
                      options: EstimateOptions) -> RunReport:
        """Traffic/ops of a whole circuit: HKS calls + point-wise ops."""
        base = self.run(workload.spec, schedule, options)
        calls = workload.hks_calls
        total_bytes = calls * base.total_bytes
        data_bytes = calls * base.data_bytes
        mod_ops = calls * base.mod_ops
        num_tasks = calls * base.num_tasks
        for mix_field, kind in _POINTWISE_KINDS:
            count = getattr(workload.mix, mix_field)
            graph = _pointwise_graph(workload.spec, kind)
            total_bytes += count * graph.total_bytes()
            data_bytes += count * graph.total_bytes()
            mod_ops += count * graph.total_mod_ops()
            num_tasks += count * len(graph)
        return RunReport(
            benchmark=workload.name,
            backend=self.name,
            schedule=base.schedule,
            total_bytes=total_bytes,
            data_bytes=data_bytes,
            evk_bytes=calls * base.evk_bytes,
            mod_ops=mod_ops,
            num_tasks=num_tasks,
            peak_on_chip_bytes=base.peak_on_chip_bytes,
            spill_stores=calls * base.spill_stores,
            reloads=calls * base.reloads,
            hks_calls=calls,
            options=options,
        )


class RPUBackend:
    """Cycle-level replay on the dual-queue RPU simulator (paper Section V)."""

    name = "rpu"

    def run(self, spec: BenchmarkSpec, schedule: str,
            options: EstimateOptions) -> RunReport:
        from repro.rpu import RPUSimulator

        graph, stats = _cached_schedule(
            spec, schedule.upper(), options.sram_mb, options.evk_on_chip,
            options.key_compression,
        )
        result = RPUSimulator(self._machine(options)).simulate(graph)
        return RunReport(
            benchmark=spec.name,
            backend=self.name,
            schedule=schedule.upper(),
            total_bytes=result.total_bytes,
            data_bytes=result.data_bytes,
            evk_bytes=result.evk_bytes,
            mod_ops=result.total_modops,
            num_tasks=result.num_tasks,
            peak_on_chip_bytes=stats.peak_bytes,
            spill_stores=stats.spill_stores,
            reloads=stats.reloads,
            latency_ms=result.runtime_ms,
            compute_idle_fraction=result.compute_idle_fraction,
            options=options,
        )

    def _machine(self, options: EstimateOptions):
        from repro.rpu import RPUConfig

        return RPUConfig(
            bandwidth_bytes_per_s=options.bandwidth_gbs * 1e9,
            data_sram_bytes=options.sram_mb * MB,
            key_sram_bytes=360 * MB if options.evk_on_chip else 0,
            modops_scale=options.modops_scale,
        )

    def run_composite(self, workload, schedule: str,
                      options: EstimateOptions) -> RunReport:
        """Latency of a whole circuit: one simulation per distinct kernel,
        scaled by the op mix (the simulator replays one HKS / one
        point-wise op; a real run would interleave them identically in
        steady state)."""
        from repro.rpu import RPUSimulator

        base = self.run(workload.spec, schedule, options)
        sim = RPUSimulator(self._machine(options))
        calls = workload.hks_calls
        total_bytes = calls * base.total_bytes
        data_bytes = calls * base.data_bytes
        mod_ops = calls * base.mod_ops
        num_tasks = calls * base.num_tasks
        latency_ms = calls * base.latency_ms
        busy_ms = calls * base.latency_ms * (1.0 - base.compute_idle_fraction)
        for mix_field, kind in _POINTWISE_KINDS:
            count = getattr(workload.mix, mix_field)
            graph = _pointwise_graph(workload.spec, kind)
            result = sim.simulate(graph)
            total_bytes += count * result.total_bytes
            data_bytes += count * result.data_bytes
            mod_ops += count * result.total_modops
            num_tasks += count * result.num_tasks
            latency_ms += count * result.runtime_ms
            busy_ms += count * result.runtime_ms * (
                1.0 - result.compute_idle_fraction
            )
        return RunReport(
            benchmark=workload.name,
            backend=self.name,
            schedule=base.schedule,
            total_bytes=total_bytes,
            data_bytes=data_bytes,
            evk_bytes=calls * base.evk_bytes,
            mod_ops=mod_ops,
            num_tasks=num_tasks,
            peak_on_chip_bytes=base.peak_on_chip_bytes,
            spill_stores=calls * base.spill_stores,
            reloads=calls * base.reloads,
            latency_ms=latency_ms,
            compute_idle_fraction=(
                1.0 - busy_ms / latency_ms if latency_ms else None
            ),
            hks_calls=calls,
            options=options,
        )


# -- registry -----------------------------------------------------------------

_REGISTRY: Dict[str, Backend] = {}


def register_backend(backend: Backend, replace: bool = False) -> None:
    """Add a backend to the registry under its ``name``."""
    name = backend.name.lower()
    if not replace and name in _REGISTRY:
        raise ParameterError(f"backend {name!r} is already registered")
    if not callable(getattr(backend, "run", None)):
        raise ParameterError(f"backend {name!r} has no run() method")
    _REGISTRY[name] = backend


def get_backend(name: str) -> Backend:
    key = name.lower()
    if key not in _REGISTRY:
        raise ParameterError(
            f"unknown backend {name!r}; choose from {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key]


def list_backends() -> List[str]:
    return sorted(_REGISTRY)


register_backend(AnalyticBackend())
register_backend(RPUBackend())


# -- the single request path ---------------------------------------------------

Workload = Union[str, BenchmarkSpec]


def _resolve_workload(workload: Workload):
    """Resolve a name/spec to a :class:`BenchmarkSpec` or composite workload.

    Names check Table III benchmarks first (``"ARK"``), then the named
    composite circuits of :mod:`repro.workloads` (``"BOOT"``).
    """
    if isinstance(workload, BenchmarkSpec):
        return workload
    if not isinstance(workload, str):
        from repro.workloads import CompositeWorkload

        if isinstance(workload, CompositeWorkload):
            return workload
        raise ParameterError(
            f"workload must be a name, BenchmarkSpec or CompositeWorkload, "
            f"got {type(workload).__name__}"
        )
    try:
        return get_benchmark(workload)
    except ParameterError:
        from repro.workloads import get_workload, list_workloads

        try:
            return get_workload(workload)
        except ParameterError:
            raise ParameterError(
                f"unknown workload {workload!r}; benchmarks: "
                f"{sorted(BENCHMARKS)}, composite workloads: "
                f"{list_workloads()}"
            ) from None


def _resolve_schedules(schedule: Union[str, Sequence[str]]) -> List[str]:
    if isinstance(schedule, str):
        if schedule.lower() == "all":
            return list(SCHEDULES)
        names = [schedule]
    else:
        names = list(schedule)
    out = []
    for name in names:
        key = name.upper()
        if key not in SCHEDULES:
            raise ParameterError(
                f"unknown schedule {name!r}; choose from {SCHEDULES} or 'all'"
            )
        out.append(key)
    return out


def estimate(
    workload: Workload,
    *,
    backend: str = "rpu",
    schedule: Union[str, Sequence[str]] = "OC",
    **options,
) -> Union[RunReport, List[RunReport]]:
    """Estimate ``workload`` on one backend across one or more schedules.

    ``workload`` is a Table III benchmark name (``"ARK"``) or a
    :class:`BenchmarkSpec`; ``schedule`` is ``"MP"``/``"DC"``/``"OC"``, a
    sequence of those, or ``"all"``.  Remaining keyword arguments populate
    :class:`EstimateOptions`.  Returns one report for a single schedule, a
    list (in request order) otherwise.
    """
    spec = _resolve_workload(workload)
    engine = get_backend(backend)
    valid = sorted(EstimateOptions.__dataclass_fields__)
    unknown = sorted(set(options) - set(valid))
    if unknown:
        raise ParameterError(
            f"unknown estimate option(s) {unknown}; valid options: {valid}"
        )
    opts = EstimateOptions(**options)
    schedules = _resolve_schedules(schedule)
    if isinstance(spec, BenchmarkSpec):
        runner = engine.run
    else:
        runner = getattr(engine, "run_composite", None)
        if runner is None:
            raise ParameterError(
                f"backend {backend!r} cannot estimate composite workloads "
                f"like {spec.name!r}"
            )
    reports = [runner(spec, s, opts) for s in schedules]
    if isinstance(schedule, str) and schedule.lower() != "all":
        return reports[0]
    return reports
