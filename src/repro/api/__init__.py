"""repro.api — the documented way to use this library.

Three layers, smallest surface first:

* :class:`FHESession` — one-line setup of a full CKKS working set
  (``FHESession.create("n10_fast")``), with lazily generated, cached
  evaluation keys;
* :class:`CipherVector` — fluent encrypted vectors with operator
  overloading (``+``, ``-``, ``*``, ``<<``, ``>>``) and automatic
  level/scale management;
* the backend registry — ``session.estimate(workload, backend=...,
  schedule=...)`` answers accelerator-scale performance questions for all
  three paper dataflows and the RPU simulator through one typed
  :class:`RunReport`.

The lower layers (:mod:`repro.ckks`, :mod:`repro.core`, :mod:`repro.rpu`)
remain importable for research code that needs the knobs; this package is
the stable facade on top of them.
"""

from repro.api.backends import (
    AnalyticBackend,
    Backend,
    EstimateOptions,
    RPUBackend,
    RunReport,
    SCHEDULES,
    estimate,
    get_backend,
    list_backends,
    register_backend,
)
from repro.api.cipher import CipherVector
from repro.api.presets import DEFAULT_PRESET, PRESETS, get_preset, list_presets
from repro.api.session import FHESession

__all__ = [
    "AnalyticBackend",
    "Backend",
    "CipherVector",
    "DEFAULT_PRESET",
    "EstimateOptions",
    "FHESession",
    "PRESETS",
    "RPUBackend",
    "RunReport",
    "SCHEDULES",
    "estimate",
    "get_backend",
    "get_preset",
    "list_backends",
    "list_presets",
    "register_backend",
]
