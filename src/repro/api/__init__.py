"""repro.api — the documented way to use this library.

Three layers, smallest surface first:

* :class:`FHESession` — one-line setup of a full CKKS working set
  (``FHESession.create("n10_fast")``), with lazily generated, cached
  evaluation keys;
* :class:`CipherVector` — fluent encrypted vectors with operator
  overloading (``+``, ``-``, ``*``, ``<<``, ``>>``) and automatic
  level/scale management;
* the backend registry — ``session.estimate(workload, backend=...,
  schedule=...)`` answers accelerator-scale performance questions for all
  three paper dataflows, the :mod:`repro.sched` schedule solver
  (``schedule="SOLVER"`` or ``backend="auto"``) and the RPU simulator
  through one typed :class:`RunReport`;
* the plan/execute pipeline — ``session.plan(...)`` freezes a request
  into a typed, hashable, content-addressed :class:`Plan`;
  ``plan.run()`` (via :func:`execute_plan`) produces the same
  :class:`RunReport` bit for bit, and :mod:`repro.serve` batches, dedups
  and shards plans for multi-session throughput.

The lower layers (:mod:`repro.ckks`, :mod:`repro.core`, :mod:`repro.rpu`)
remain importable for research code that needs the knobs; this package is
the stable facade on top of them.
"""

from repro.api.backends import (
    AnalyticBackend,
    AutoBackend,
    Backend,
    EstimateOptions,
    KNOWN_SCHEDULES,
    RPUBackend,
    RunReport,
    SCHEDULES,
    describe_backends,
    estimate,
    execute_plan,
    get_backend,
    list_backends,
    register_backend,
)
from repro.api.cipher import CipherBatch, CipherVector
from repro.api.plan import Plan, build_plan, report_from_dict, report_to_dict
from repro.api.presets import DEFAULT_PRESET, PRESETS, get_preset, list_presets
from repro.api.session import FHESession

__all__ = [
    "AnalyticBackend",
    "AutoBackend",
    "Backend",
    "CipherBatch",
    "CipherVector",
    "DEFAULT_PRESET",
    "EstimateOptions",
    "FHESession",
    "KNOWN_SCHEDULES",
    "PRESETS",
    "Plan",
    "RPUBackend",
    "RunReport",
    "SCHEDULES",
    "build_plan",
    "describe_backends",
    "estimate",
    "execute_plan",
    "get_backend",
    "get_preset",
    "list_backends",
    "list_presets",
    "register_backend",
    "report_from_dict",
    "report_to_dict",
]
