"""Fluent ciphertext wrapper: operator overloading with automatic
level and scale management.

``CipherVector`` wraps a raw :class:`~repro.ckks.encrypt.Ciphertext`
together with the owning :class:`~repro.api.session.FHESession`, so user
code composes homomorphic programs the way it composes numpy expressions::

    z = (x * y + 0.5) << 3        # multiply, add a constant, rotate left

Every operation delegates to the session's :class:`Evaluator` — a
``CipherVector`` expression produces bit-identical polynomials to the
equivalent hand-written ``Evaluator`` calls.  What the wrapper adds is the
bookkeeping the seed quickstart forced on users:

* ciphertext-ciphertext operands are auto-aligned: the shallower level
  wins (exact tower drop), and mismatched scales are corrected with the
  multiply-by-one trick :mod:`repro.ckks.polyeval` uses internally;
* products are auto-rescaled; plaintext factors are encoded at the
  current top prime's scale so ciphertext-plaintext multiplies preserve
  the operand's scale *exactly* (the running scale stays within 0.5 of
  ``params.scale`` along plaintext chains);
* rotation (``<<`` / ``>>``) and conjugation fetch their Galois keys from
  the session's lazy cache — no key juggling at call sites.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ckks.encrypt import Ciphertext
from repro.ckks.noise import NoiseEstimate
from repro.errors import ParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.session import FHESession
    from repro.ckks.context import CKKSContext
    from repro.ckks.evaluator import Evaluator
    from repro.rns.poly import RNSPoly

#: Things accepted as plaintext operands: scalars and slot vectors.
PlainOperand = Union[int, float, complex, np.ndarray, list, tuple]

#: Scales differing by no more than this are treated as equal (the same
#: tolerance Evaluator._check_aligned uses).
SCALE_TOL = 0.5

#: Alignment rounds before giving up (each round can drop one level).
_MAX_ALIGN_ROUNDS = 4


class CipherVector:
    """An encrypted slot vector bound to its session."""

    __array_priority__ = 1000  # numpy defers binary ops to us

    def __init__(self, session: "FHESession", ciphertext: Ciphertext,
                 noise: Optional[NoiseEstimate] = None):
        self.session = session
        self.ciphertext = ciphertext
        #: Tracked heuristic noise bound (``None`` when the session's
        #: ``noise_policy`` is ``"off"`` or the handle was built from a
        #: raw ciphertext of unknown history).  Propagated through every
        #: operation and checked at decryption.
        self.noise = noise

    # -- metadata ----------------------------------------------------------------

    @property
    def level(self) -> int:
        return self.ciphertext.level

    @property
    def scale(self) -> float:
        return self.ciphertext.scale

    @property
    def num_slots(self) -> int:
        return self.session.num_slots

    def copy(self) -> "CipherVector":
        return CipherVector(self.session, self.ciphertext.copy(), self.noise)

    def decrypt(self) -> np.ndarray:
        """Decrypt and decode back to the complex slot vector."""
        return self.session.decrypt(self)

    def __repr__(self) -> str:
        return (
            f"CipherVector(slots={self.num_slots}, level={self.level}, "
            f"scale=2^{np.log2(self.scale):.2f})"
        )

    # -- arithmetic --------------------------------------------------------------

    def __add__(self, other: Union[PlainOperand, "CipherVector"]) -> "CipherVector":
        if isinstance(other, CipherVector):
            a, b = self._aligned_with(other)
            pair = self._pair_noise(other, a, b)
            noise = None if pair is None \
                else self.session.noise_model.add(*pair)
            return self._wrap(self._ev.add(a, b), noise)
        pt = self._encode_at(other, self.level, self.scale)
        noise = None if self.noise is None else NoiseEstimate(
            # Plaintext addition only contributes encoding rounding; one
            # conservative bit covers it.
            self.noise.log2_noise + 1.0, self.level, self.scale
        )
        return self._wrap(self._ev.add_plain(self.ciphertext, pt,
                                             plain_scale=self.scale), noise)

    def __radd__(self, other: Union[PlainOperand, "CipherVector"]) -> "CipherVector":
        return self.__add__(other)

    def __sub__(self, other: Union[PlainOperand, "CipherVector"]) -> "CipherVector":
        if isinstance(other, CipherVector):
            a, b = self._aligned_with(other)
            pair = self._pair_noise(other, a, b)
            noise = None if pair is None \
                else self.session.noise_model.add(*pair)
            return self._wrap(self._ev.sub(a, b), noise)
        return self.__add__(_negated(other))

    def __rsub__(self, other: Union[PlainOperand, "CipherVector"]) -> "CipherVector":
        return (-self).__add__(other)

    def __neg__(self) -> "CipherVector":
        return self._wrap(self._ev.negate(self.ciphertext), self.noise)

    def __mul__(self, other: Union[PlainOperand, "CipherVector"]) -> "CipherVector":
        if isinstance(other, CipherVector):
            a, b = self._aligned_with(other, for_multiply=True)
            product = self._ev.multiply(a, b, self.session.relin_key)
            pair = self._pair_noise(other, a, b)
            noise = None
            if pair is not None:
                model = self.session.noise_model
                noise = model.rescale(model.multiply(*pair))
            return self._wrap(self._ev.rescale(product), noise)
        # Plaintext factor: encode at the top prime's scale so the rescale
        # cancels it exactly and the ciphertext scale is preserved.
        if self.level == 0:
            raise ParameterError("out of levels: cannot rescale below level 0")
        plain_scale = float(self._ctx.q_basis.moduli[self.level])
        pt = self._encode_at(other, self.level, plain_scale)
        product = self._ev.multiply_plain(self.ciphertext, pt,
                                          plain_scale=plain_scale)
        noise = None
        if self.noise is not None:
            model = self.session.noise_model
            noise = model.rescale(model.multiply_plain(
                self._pin(self.noise, self.ciphertext),
                plain_scale=plain_scale,
            ))
        return self._wrap(self._ev.rescale(product), noise)

    def __rmul__(self, other: Union[PlainOperand, "CipherVector"]) -> "CipherVector":
        return self.__mul__(other)

    def square(self) -> "CipherVector":
        return self.__mul__(self)

    # -- rotations ---------------------------------------------------------------

    def rotate(self, steps: int) -> "CipherVector":
        """Cyclic rotation: slot ``i`` receives the value of slot ``i+steps``."""
        steps %= self.num_slots
        if steps == 0:
            return self.copy()
        key = self.session.rotation_key(steps)
        return self._wrap(self._ev.rotate(self.ciphertext, steps, key),
                          self._turned_noise())

    def __lshift__(self, steps: int) -> "CipherVector":
        return self.rotate(steps)

    def __rshift__(self, steps: int) -> "CipherVector":
        return self.rotate(-steps)

    def conjugate(self) -> "CipherVector":
        return self._wrap(
            self._ev.conjugate(self.ciphertext, self.session.conjugation_key),
            self._turned_noise(),
        )

    def bootstrap(self) -> "CipherVector":
        """Refresh this ciphertext: same message, level budget restored.

        Runs the full ModRaise -> CoeffToSlot -> EvalMod -> SlotToCoeff
        pipeline (~100 hybrid key switches); the session builds and caches
        the circuit and its keys on first use.  Requires bootstrappable
        parameters (e.g. the ``n7_boot`` preset).
        """
        return self.session.bootstrap(self)

    def sum_slots(self, width: int) -> "CipherVector":
        """Fold the first ``width`` (power-of-two) slots into slot 0.

        The classic rotate-and-sum reduction: ``log2(width)`` rotations,
        each one a hybrid key switch served from the session's key cache.
        """
        if width < 1 or width & (width - 1):
            raise ParameterError(f"width must be a positive power of two, got {width}")
        out = self
        step = width // 2
        while step >= 1:
            out = out + out.rotate(step)
            step //= 2
        return out

    # -- helpers ------------------------------------------------------------------

    @property
    def _ev(self) -> "Evaluator":
        return self.session.evaluator

    @property
    def _ctx(self) -> "CKKSContext":
        return self.session.context

    def _wrap(self, ct: Ciphertext,
              noise: Optional[NoiseEstimate] = None) -> "CipherVector":
        if noise is not None:
            noise = self._pin(noise, ct)
        return CipherVector(self.session, ct, noise)

    @staticmethod
    def _pin(noise: NoiseEstimate, ct: Ciphertext) -> NoiseEstimate:
        """Re-pin a tracked bound onto a ciphertext's actual level/scale
        (alignment may have dropped levels or corrected scales; the
        log2 bound itself is conservative either way)."""
        if noise.level == ct.level and abs(noise.scale - ct.scale) <= SCALE_TOL:
            return noise
        return NoiseEstimate(noise.log2_noise, ct.level, ct.scale)

    def _pair_noise(
        self, other: "CipherVector", a: Ciphertext, b: Ciphertext
    ) -> Optional[Tuple[NoiseEstimate, NoiseEstimate]]:
        """Both operands' bounds pinned to their aligned ciphertexts, or
        ``None`` when either side is untracked."""
        if self.noise is None or other.noise is None:
            return None
        return self._pin(self.noise, a), self._pin(other.noise, b)

    def _turned_noise(self) -> Optional[NoiseEstimate]:
        """Noise after one key-switched automorphism (rotate/conjugate)."""
        if self.noise is None:
            return None
        return self.session.noise_model.rotate(
            self._pin(self.noise, self.ciphertext)
        )

    def _encode_at(self, values: PlainOperand, level: int,
                   scale: float) -> "RNSPoly":
        if isinstance(values, CipherVector):  # defensive: callers filter first
            raise ParameterError("expected a plaintext operand")
        arr = np.atleast_1d(np.asarray(values, dtype=np.complex128))
        if arr.size == 1:
            arr = np.full(self.num_slots, arr[0])
        return self.session.encode(arr, level=level, scale=scale)

    def _aligned_with(self, other: "CipherVector",
                      for_multiply: bool = False) -> Tuple[Ciphertext, Ciphertext]:
        """Equalize levels (and, for addition, scales) of the two operands."""
        if other.session is not self.session:
            raise ParameterError("cannot combine CipherVectors from different sessions")
        a, b = self.ciphertext, other.ciphertext
        for _ in range(_MAX_ALIGN_ROUNDS):
            level = min(a.level, b.level)
            if a.level > level:
                a = self._ev.mod_switch_to_level(a, level)
            if b.level > level:
                b = self._ev.mod_switch_to_level(b, level)
            if for_multiply or abs(a.scale - b.scale) <= SCALE_TOL:
                return a, b
            if a.scale < b.scale:
                a = self._scale_correct(a, b.scale)
            else:
                b = self._scale_correct(b, a.scale)
        raise ParameterError("could not align ciphertext scales")

    def _scale_correct(self, ct: Ciphertext, target_scale: float) -> Ciphertext:
        """Bring ``ct`` to exactly ``target_scale`` (costs one level)."""
        if ct.level == 0:
            raise ParameterError("out of levels while aligning scales")
        q_next = self._ctx.q_basis.moduli[ct.level]
        corr = target_scale * q_next / ct.scale
        if corr < 1.0:
            raise ParameterError(
                f"cannot correct scale {ct.scale:g} up to {target_scale:g}"
            )
        pt = self._encode_at(1.0, ct.level, corr)
        bumped = Ciphertext(ct.c0 * pt, ct.c1 * pt, ct.level, ct.scale * corr)
        return self._ev.rescale(bumped)


class CipherBatch(CipherVector):
    """B encrypted slot vectors evaluated as one stacked ciphertext.

    The cross-ciphertext batch axis surfaced as a fluent handle: the
    wrapped :class:`~repro.ckks.encrypt.Ciphertext` holds ``(B, L, N)``
    :class:`~repro.rns.poly.PolyBatch` halves, and every operation routes
    through the session's :class:`~repro.ckks.batch.BatchEvaluator`, so B
    users' ciphertexts pay one stacked kernel pass per operation instead
    of B.  The expression surface is inherited from
    :class:`CipherVector` unchanged — plaintext operands broadcast across
    the batch, alignment/rescale bookkeeping applies to all members at
    once — and every result is bit-identical to running the same
    expression member by member.

    Build one with :meth:`FHESession.encrypt_batch` or
    :meth:`from_vectors`; get the per-user results back with
    :meth:`decrypt` (a ``(B, slots)`` array) or :meth:`members`.
    """

    def __init__(self, session: "FHESession", ciphertext: Ciphertext,
                 noise: Optional[NoiseEstimate] = None):
        from repro.ckks.batch import is_batched

        if not is_batched(ciphertext):
            raise ParameterError(
                "CipherBatch wraps a batched ciphertext (PolyBatch "
                "halves); use CipherVector for a single ciphertext"
            )
        super().__init__(session, ciphertext, noise)

    @classmethod
    def from_vectors(cls, vectors: "Sequence[CipherVector]") -> "CipherBatch":
        """Stack same-level :class:`CipherVector` handles into a batch."""
        from repro.ckks.batch import stack_ciphertexts

        vectors = list(vectors)
        if not vectors:
            raise ParameterError("cannot batch zero CipherVectors")
        session = vectors[0].session
        for i, vec in enumerate(vectors[1:], start=1):
            if vec.session is not session:
                raise ParameterError(
                    f"batch[{i}]: belongs to a different session"
                )
        # The batch's tracked bound is the worst member's — conservative
        # for everyone; untracked members disable tracking for the batch.
        tracked = [v.noise for v in vectors if v.noise is not None]
        noise = max(tracked, key=lambda n: n.log2_noise) \
            if len(tracked) == len(vectors) else None
        return cls(
            session, stack_ciphertexts([v.ciphertext for v in vectors]),
            noise,
        )

    # -- metadata ----------------------------------------------------------------

    @property
    def batch_size(self) -> int:
        return self.ciphertext.c0.batch_size

    def members(self) -> "List[CipherVector]":
        """Split back into per-user :class:`CipherVector` handles."""
        from repro.ckks.batch import unstack_ciphertexts

        return [
            CipherVector(self.session, ct, self.noise)
            for ct in unstack_ciphertexts(self.ciphertext)
        ]

    def member(self, b: int) -> "CipherVector":
        ct = self.ciphertext
        return CipherVector(
            self.session,
            Ciphertext(ct.c0.member(b), ct.c1.member(b), ct.level, ct.scale),
            self.noise,
        )

    def copy(self) -> "CipherBatch":
        return CipherBatch(self.session, self.ciphertext.copy(), self.noise)

    def decrypt(self) -> np.ndarray:
        """Decrypt all members: a ``(B, num_slots)`` complex array."""
        self.session.check_noise(self.noise)
        raw = self.ciphertext
        dec = self.session.decryptor.decrypt(raw)  # PolyBatch
        return np.stack([
            self.session.decode(poly, scale=raw.scale)
            for poly in dec.unstack()
        ])

    def __repr__(self) -> str:
        return (
            f"CipherBatch(B={self.batch_size}, slots={self.num_slots}, "
            f"level={self.level}, scale=2^{np.log2(self.scale):.2f})"
        )

    # -- batched rotations -------------------------------------------------------

    def rotate_many(self, steps: "Sequence[int]") -> "Dict[int, CipherBatch]":
        """Hoisted rotations of the whole batch: one shared ModUp for all
        B members, one stacked automorphism/ApplyKey/ModDown per step."""
        rotated = self.session.rotate_many(self, steps)
        return {
            s: CipherBatch(self.session, cv.ciphertext)
            for s, cv in rotated.items()
        }

    # -- dispatch hooks ----------------------------------------------------------

    @property
    def _ev(self) -> "Evaluator":
        return self.session.batch_evaluator

    def _wrap(self, ct: Ciphertext,
              noise: Optional[NoiseEstimate] = None) -> "CipherBatch":
        if noise is not None:
            noise = self._pin(noise, ct)
        return CipherBatch(self.session, ct, noise)


def _negated(value: PlainOperand) -> PlainOperand:
    arr = np.asarray(value)
    return -arr if arr.ndim else -arr.item()
