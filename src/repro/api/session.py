"""One-object FHE sessions: context, keys, codecs and estimation in one place.

The seed quickstart hand-wired six objects (params -> context -> keygen /
encoder / encryptor / decryptor / evaluator) and threaded every evk by
hand.  ``FHESession`` owns that whole constellation:

* ``FHESession.create("n10_fast")`` builds everything from a named preset
  (:mod:`repro.api.presets`);
* relinearization, conjugation and per-step rotation keys are generated
  lazily on first use and cached — repeated rotations by the same step
  reuse one Galois key, mirroring how accelerator runtimes stage evks;
* ``encrypt`` returns fluent :class:`~repro.api.cipher.CipherVector`
  handles; ``encrypt_many`` / ``rotate_many`` batch the common fan-out
  patterns (``rotate_many`` routes through the hoisting path so all
  rotations of one ciphertext share a single ModUp);
* ``estimate`` forwards to the backend registry
  (:mod:`repro.api.backends`), so the same session object also answers
  performance questions about the paper's accelerator-scale benchmarks.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.api.backends import (
    EstimateOptions,
    RunReport,
    Workload,
    estimate as _estimate,
)
from repro.api.cipher import CipherBatch, CipherVector
from repro.api.plan import Plan, build_plan
from repro.api.presets import DEFAULT_PRESET, get_preset
from repro.ckks.batch import BatchEvaluator, is_batched, stack_ciphertexts
from repro.ckks.bootstrap import BootstrapConfig, BootstrapKeys, Bootstrapper
from repro.ckks.context import CKKSContext, CKKSParams
from repro.ckks.encoding import Encoder
from repro.ckks.encrypt import Ciphertext, Decryptor, Encryptor
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeyGenerator, KeySwitchKey, rotation_galois_element
from repro.ckks.noise import NoiseEstimate, NoiseModel
from repro.errors import NoiseBudgetError, NoiseBudgetWarning, ParameterError
from repro.rns.poly import RNSPoly

#: What :meth:`FHESession.check_noise` does when the tracked budget hits
#: zero: raise, warn (default), or skip tracking entirely.
NOISE_POLICIES = ("strict", "warn", "off")


class FHESession:
    """A complete CKKS working set behind one handle."""

    def __init__(self, params: CKKSParams, *, seed: Optional[int] = 0,
                 noise_policy: str = "warn"):
        if noise_policy not in NOISE_POLICIES:
            raise ParameterError(
                f"unknown noise policy {noise_policy!r}; "
                f"expected one of {NOISE_POLICIES}"
            )
        #: ``"strict"`` raises :class:`NoiseBudgetError` at decryption
        #: when the tracked budget is gone, ``"warn"`` (default) emits a
        #: :class:`NoiseBudgetWarning`, ``"off"`` disables tracking.
        self.noise_policy = noise_policy
        self.params = params
        self.context = CKKSContext(params)
        self.keygen = KeyGenerator(self.context, seed=seed)
        self.encoder = Encoder(self.context)
        enc_seed = None if seed is None else seed + 1
        self.encryptor = Encryptor(self.context, self.keygen.public_key(),
                                   seed=enc_seed)
        self.decryptor = Decryptor(self.context, self.keygen.secret_key)
        self.evaluator = Evaluator(self.context)
        self._batch_evaluator: Optional[BatchEvaluator] = None
        self._relin_key: Optional[KeySwitchKey] = None
        self._conj_key: Optional[KeySwitchKey] = None
        #: Galois keys cached by Galois element (steps that differ by a
        #: multiple of the slot count share one key).
        self._galois_keys: Dict[int, KeySwitchKey] = {}
        self._bootstrapper: Optional[Bootstrapper] = None
        self._bootstrap_keys: Optional[BootstrapKeys] = None
        self._noise_model: Optional[NoiseModel] = None

    @classmethod
    def create(cls, preset: Union[str, CKKSParams] = DEFAULT_PRESET, *,
               seed: Optional[int] = 0, noise_policy: str = "warn",
               **overrides: Any) -> "FHESession":
        """Build a session from a preset name (or explicit params).

        Keyword overrides patch individual preset fields, e.g.
        ``FHESession.create("n10_fast", num_levels=8)``.
        """
        if isinstance(preset, CKKSParams):
            if overrides:
                raise ParameterError(
                    "pass field overrides only with a preset name; "
                    "use dataclasses.replace on explicit CKKSParams"
                )
            return cls(preset, seed=seed, noise_policy=noise_policy)
        return cls(get_preset(preset, **overrides), seed=seed,
                   noise_policy=noise_policy)

    @classmethod
    def from_params(cls, params: CKKSParams, *, seed: Optional[int] = 0,
                    noise_policy: str = "warn") -> "FHESession":
        return cls(params, seed=seed, noise_policy=noise_policy)

    # -- metadata ----------------------------------------------------------------

    @property
    def num_slots(self) -> int:
        return self.encoder.num_slots

    @property
    def max_level(self) -> int:
        return self.params.max_level

    def __repr__(self) -> str:
        return (
            f"FHESession(N={self.params.n}, slots={self.num_slots}, "
            f"levels={self.params.num_levels}, dnum={self.params.dnum}, "
            f"cached_keys={self.key_cache_info()})"
        )

    @property
    def batch_evaluator(self) -> BatchEvaluator:
        """Evaluator for :class:`CipherBatch` handles (built on first use)."""
        if self._batch_evaluator is None:
            self._batch_evaluator = BatchEvaluator(self.context)
        return self._batch_evaluator

    # -- noise tracking ----------------------------------------------------------

    @property
    def noise_model(self) -> NoiseModel:
        """The session's heuristic noise tracker (built on first use)."""
        if self._noise_model is None:
            self._noise_model = NoiseModel(self.context)
        return self._noise_model

    def _fresh_noise(self, ct: Ciphertext) -> Optional[NoiseEstimate]:
        """Encryption-noise estimate pinned to ``ct``'s level and scale
        (``None`` when the session's policy disables tracking)."""
        if self.noise_policy == "off":
            return None
        fresh = self.noise_model.fresh()
        if fresh.level == ct.level and fresh.scale == ct.scale:
            return fresh
        return NoiseEstimate(fresh.log2_noise, ct.level, ct.scale)

    def check_noise(self, noise: Optional[NoiseEstimate]) -> None:
        """Enforce the session's noise policy against a tracked bound.

        Called by :meth:`decrypt` (and :meth:`CipherBatch.decrypt <
        repro.api.cipher.CipherBatch.decrypt>`) with the ciphertext's
        tracked :class:`~repro.ckks.noise.NoiseEstimate`.  A non-positive
        :meth:`~repro.ckks.noise.NoiseEstimate.budget_bits` means the
        heuristic bound has reached ``Q_level / 2`` — the decode is
        unreliable.  Policy ``"strict"`` raises
        :class:`~repro.errors.NoiseBudgetError`, ``"warn"`` (default)
        emits a :class:`~repro.errors.NoiseBudgetWarning`, ``"off"``
        (or an untracked ciphertext) is a no-op.
        """
        if noise is None or self.noise_policy == "off":
            return
        budget = noise.budget_bits(self.context)
        if budget > 0.0:
            return
        message = (
            f"noise budget exhausted: {budget:.1f} bits remaining at "
            f"level {noise.level} (tracked bound 2^{noise.log2_noise:.1f}"
            f" vs Q/2) — decryption is unreliable; bootstrap earlier or "
            f"use a preset with more levels"
        )
        if self.noise_policy == "strict":
            raise NoiseBudgetError(message)
        warnings.warn(message, NoiseBudgetWarning, stacklevel=3)

    # -- lazy key material -------------------------------------------------------

    @property
    def relin_key(self) -> KeySwitchKey:
        """The relinearization evk (generated on first multiply)."""
        if self._relin_key is None:
            self._relin_key = self.keygen.relinearization_key()
        return self._relin_key

    @property
    def conjugation_key(self) -> KeySwitchKey:
        if self._conj_key is None:
            self._conj_key = self.keygen.conjugation_key()
        return self._conj_key

    def galois_key(self, galois_element: int) -> KeySwitchKey:
        """Cached Galois evk for an explicit automorphism element."""
        key = self._galois_keys.get(galois_element)
        if key is None:
            key = self.keygen.galois_key(galois_element)
            self._galois_keys[galois_element] = key
        return key

    def rotation_key(self, steps: int) -> KeySwitchKey:
        """Cached Galois evk for a slot rotation by ``steps``."""
        return self.galois_key(rotation_galois_element(steps, self.params.n))

    def key_cache_info(self) -> Dict[str, int]:
        """How many evks this session has generated so far."""
        return {
            "relin": int(self._relin_key is not None),
            "conjugation": int(self._conj_key is not None),
            "galois": len(self._galois_keys),
        }

    def missing_evks(self, workload: Workload) -> Dict[str, int]:
        """Evk kinds a workload needs that this session has not generated.

        The static-analysis prevalidation hook: the analyzer's
        :func:`~repro.analysis.required_evks` derives the evk demand of a
        workload program (relin keys from multiplies, Galois keys from
        rotations), and this method subtracts what :meth:`key_cache_info`
        says is already cached.  Returns ``{kind: max_level}`` for each
        kind still missing — empty means every first-use generation cost
        has already been paid.
        """
        from repro.analysis import required_evks
        from repro.api.backends import _resolve_workload

        resolved = _resolve_workload(workload)
        needed = required_evks(resolved)
        have = self.key_cache_info()
        return {
            kind: level for kind, level in needed.items()
            if not have.get(kind, 0)
        }

    # -- bootstrapping ------------------------------------------------------------

    def bootstrapper(self, config: Optional[BootstrapConfig] = None) -> Bootstrapper:
        """The session's bootstrap circuit (built on first use).

        Pass a :class:`BootstrapConfig` on the *first* call to shape the
        pipeline (DFT factor count, sine degree); later calls must not
        contradict the circuit already built, since its rotation keys may
        already be cached.
        """
        if self._bootstrapper is None:
            self._bootstrapper = Bootstrapper(self.context, config)
        elif config is not None and config != self._bootstrapper.config:
            raise ParameterError(
                "bootstrapper already built with a different config; "
                "create a fresh session to change the bootstrap shape"
            )
        return self._bootstrapper

    def bootstrap_keys(self) -> BootstrapKeys:
        """Evks the bootstrap circuit needs, served from the lazy caches.

        Like :attr:`relin_key`, generation happens on first use: the
        relinearization and conjugation keys plus one rotation key per
        distinct DFT step (all shared with ordinary rotations by the same
        amounts).
        """
        bs = self.bootstrapper()
        if self._bootstrap_keys is None:
            self._bootstrap_keys = BootstrapKeys(
                relin=self.relin_key,
                conjugation=self.conjugation_key,
                rotations={
                    s: self.rotation_key(s)
                    for s in bs.required_rotation_steps()
                },
            )
        return self._bootstrap_keys

    def bootstrap(self, ct: Union[CipherVector, Ciphertext]) -> CipherVector:
        """Refresh a ciphertext: same message, level budget restored.

        A :class:`CipherBatch` (or raw batched ciphertext) runs the whole
        pipeline through :attr:`batch_evaluator` — one stacked circuit
        for all B members, amortizing every hybrid key switch — and comes
        back as a :class:`CipherBatch`.
        """
        raw = ct.ciphertext if isinstance(ct, CipherVector) else ct
        evaluator = self.batch_evaluator if is_batched(raw) else self.evaluator
        out = self.bootstrapper().bootstrap(evaluator, raw,
                                            self.bootstrap_keys())
        # A refreshed ciphertext restarts its noise budget at fresh-
        # encryption levels (pinned to the pipeline's output level).
        if is_batched(out):
            return CipherBatch(self, out, noise=self._fresh_noise(out))
        return CipherVector(self, out, noise=self._fresh_noise(out))

    # -- encode / encrypt / decrypt ----------------------------------------------

    def encode(self, values: Any, *, level: Optional[int] = None,
               scale: Optional[float] = None) -> RNSPoly:
        return self.encoder.encode(values, level=level, scale=scale)

    def decode(self, poly: RNSPoly, *, scale: Optional[float] = None) -> np.ndarray:
        return self.encoder.decode(poly, scale=scale)

    def encrypt(self, values: Any, *, level: Optional[int] = None,
                scale: Optional[float] = None) -> CipherVector:
        """Encode + encrypt a slot vector (or scalar broadcast)."""
        pt = self.encoder.encode(values, level=level, scale=scale)
        ct = self.encryptor.encrypt(pt, level=level, scale=scale)
        return CipherVector(self, ct, noise=self._fresh_noise(ct))

    def encrypt_many(self, vectors: Iterable[Any], *,
                     level: Optional[int] = None,
                     scale: Optional[float] = None) -> List[CipherVector]:
        """Encrypt a batch of slot vectors in one call."""
        return [self.encrypt(v, level=level, scale=scale) for v in vectors]

    def encrypt_batch(self, vectors: Iterable[Any], *,
                      level: Optional[int] = None,
                      scale: Optional[float] = None) -> CipherBatch:
        """Encrypt B slot vectors into one stacked :class:`CipherBatch`.

        Members are encrypted one at a time (the encryptor's rng draws
        stay in the same order as :meth:`encrypt_many`, so each member is
        bit-identical to its standalone encryption) and stacked into a
        ``(B, L, N)`` batched ciphertext whose every subsequent operation
        runs as one kernel pass for all B users.
        """
        return CipherBatch.from_vectors(
            self.encrypt_many(vectors, level=level, scale=scale)
        )

    def decrypt(self, ct: Union[CipherVector, Ciphertext],
                *, scale: Optional[float] = None) -> np.ndarray:
        """Decrypt back to the complex slot vector (scale read from the ct).

        A :class:`CipherVector` with a tracked noise bound is checked
        against the session's :attr:`noise_policy` first (see
        :meth:`check_noise`).
        """
        if isinstance(ct, CipherVector):
            self.check_noise(ct.noise)
        raw = ct.ciphertext if isinstance(ct, CipherVector) else ct
        return self.encoder.decode(
            self.decryptor.decrypt(raw), scale=scale or raw.scale
        )

    # -- batched rotations ---------------------------------------------------------

    def rotate_many(self, ct: Union[CipherVector, Ciphertext],
                    steps: Sequence[int]) -> Dict[int, CipherVector]:
        """Rotate one ciphertext by many steps with a single shared ModUp.

        Routes through :func:`repro.ckks.hoisting.hoisted_rotations`, the
        Halevi-Shoup optimization accelerator runtimes use: the expensive
        ModUp of ``c1`` is paid once and every rotation reuses it.  Keys
        come from (and populate) the session cache.  Returns a mapping
        from step to result, bit-identical to one-at-a-time rotation;
        steps that normalize to 0 need no key switch and map to a copy.
        A batched ciphertext shares one ModUp across *all* B members as
        well as all steps, via :attr:`batch_evaluator`.
        """
        raw = ct.ciphertext if isinstance(ct, CipherVector) else ct
        evaluator = self.batch_evaluator if is_batched(raw) else self.evaluator
        normalized: Dict[int, int] = {s: s % self.num_slots for s in steps}
        nonzero = {n for n in normalized.values() if n != 0}
        keys = {n: self.rotation_key(n) for n in nonzero}
        rotated = evaluator.hoisted_rotations(raw, keys) if keys else {}
        wrap = CipherBatch if is_batched(raw) else CipherVector
        base = ct.noise if isinstance(ct, CipherVector) else None
        turned = None
        if base is not None and self.noise_policy != "off":
            turned = self.noise_model.rotate(
                NoiseEstimate(base.log2_noise, raw.level, raw.scale)
            )
        return {
            s: wrap(self, rotated[n], noise=turned) if n
            else wrap(self, raw.copy(), noise=base)
            for s, n in normalized.items()
        }

    # -- performance estimation ----------------------------------------------------

    def plan(self, workload: Workload, *, backend: str = "rpu",
             schedule: str = "OC",
             options: Optional[EstimateOptions] = None,
             **option_fields: Any) -> Plan:
        """Resolve an estimate request into a typed, executable :class:`Plan`.

        The plan/execute split of :meth:`estimate`: the workload name,
        backend, schedule and options are validated and frozen once, and
        the returned :class:`~repro.api.plan.Plan` is hashable,
        JSON-serializable and content-addressed (``plan.digest``) — the
        unit the serving layer (:mod:`repro.serve`) batches, dedups and
        caches.  ``plan(...).run()`` is bit-identical to
        ``estimate(...)`` with the same arguments.
        """
        return build_plan(workload, backend=backend, schedule=schedule,
                          options=options, **option_fields)

    def estimate(self, workload: Workload, *, backend: str = "rpu",
                 schedule: Union[str, Sequence[str]] = "OC",
                 **options: Any) -> Union[RunReport, List[RunReport]]:
        """Estimate an accelerator-scale workload via the backend registry.

        ``workload`` is a paper Table III benchmark name or spec, or a
        phase-structured workload program (``"BOOT"``, ``"RESNET_BOOT"``,
        ``"HELR"`` or any :class:`~repro.workloads.ir.WorkloadProgram`) —
        programs are priced phase by phase at descending chain levels,
        with the breakdown on ``report.phases``.  See
        :func:`repro.api.backends.estimate` for schedules and options.
        The session's functional parameters are independent of the
        performance model, so any session can answer these queries.

        Back-compat wrapper: each (workload, schedule) point builds a
        :meth:`plan` and executes it, so results match ``plan().run()``
        bit for bit.
        """
        return _estimate(workload, backend=backend, schedule=schedule, **options)
