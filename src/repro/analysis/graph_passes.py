"""Static checks over HKS task graphs (the MP/DC/OC schedules).

A :class:`~repro.core.taskgraph.TaskGraph` executes as two in-order
queues plus cross-queue dependencies, so its legality is decidable
without simulating it:

* ``graph.structure`` — indices are positional, dependencies point
  strictly backward (the only way a cycle can exist in this IR), memory
  tasks move bytes and compute tasks do work.  ``TaskGraph.add()``
  enforces these at build time; this pass re-checks them on graphs that
  arrived through deserialization or hand mutation.
* ``graph.buffer-race`` — two tasks that *write* the same on-chip
  buffer must be ordered (one reachable from the other through
  dependencies or same-queue program order), else the simulator's
  outcome depends on dispatch timing.  Buffer identities come from the
  schedule's label conventions (``"load X"`` and compute labels ending
  in ``"-> X"`` write X; ``"store X"``/``"spill X"`` read it).
* ``graph.resources`` — a single transfer larger than the data SRAM can
  never fit, and a compute task whose direct load dependencies jointly
  exceed the SRAM cannot have all operands resident at once.  Peak
  per-task operand footprint is reported as an INFO metric.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.analysis.diagnostics import Diagnostic, error, info
from repro.analysis.registry import AnalysisContext, analysis_pass
from repro.core.taskgraph import Kind, Queue, Task, TaskGraph


def _task_loc(task: Task) -> str:
    label = f" {task.label!r}" if task.label else ""
    return f"task[{task.index}]{label}"


@analysis_pass("graph.structure", "graph",
               "indices, dependencies and per-queue work are consistent")
def check_structure(graph: TaskGraph,
                    ctx: AnalysisContext) -> Iterator[Diagnostic]:
    pid = "graph.structure"
    for position, task in enumerate(graph.tasks):
        if task.index != position:
            yield error(pid, _task_loc(task),
                        f"task.index {task.index} != list position "
                        f"{position}",
                        hint="rebuild the graph through TaskGraph.add()")
        for dep in task.deps:
            if not 0 <= dep < len(graph.tasks):
                yield error(pid, _task_loc(task),
                            f"dependency {dep} does not name a task")
            elif dep >= position:
                yield error(
                    pid, _task_loc(task),
                    f"dependency {dep} does not precede the task — the "
                    f"two queues would deadlock waiting on each other",
                    hint="dependencies must point strictly backward in "
                         "emission order",
                )
        if task.queue is Queue.MEMORY and task.bytes_moved <= 0:
            yield error(pid, _task_loc(task),
                        "memory task moves no bytes")
        if task.queue is Queue.COMPUTE and task.mod_ops <= 0:
            yield error(pid, _task_loc(task),
                        "compute task performs no modular work")


def written_buffer(task: Task) -> Optional[str]:
    """The on-chip buffer a task writes, per the label conventions.

    Loads write the buffer they fetch (``"load X"``); compute tasks
    write the destination named after ``"->"`` in labels like
    ``"ModUp.P3 ntt d0->t7"``.  Stores and spills *read* on-chip state,
    and unlabeled tasks are unknown — both return ``None``.
    """
    label = task.label.strip()
    if not label:
        return None
    if task.kind is Kind.LOAD:
        if label.startswith("load "):
            return label[len("load "):].strip() or None
        return None
    if task.kind is Kind.STORE:
        return None
    if "->" in label:
        target = label.rsplit("->", 1)[1].strip()
        return target.split()[0] if target else None
    return None


def _reachability(graph: TaskGraph) -> List[int]:
    """Ancestor bitsets over deps plus same-queue program order.

    ``reach[i]`` has bit ``j`` set iff task ``j`` is ``i`` or must
    complete before ``i`` starts (the queues dispatch in order, so a
    task's same-queue predecessor is an implicit dependency).
    """
    reach: List[int] = []
    prev_in_queue: Dict[Queue, int] = {}
    for task in graph.tasks:
        bits = 1 << task.index
        pred = prev_in_queue.get(task.queue)
        if pred is not None:
            bits |= reach[pred]
        for dep in task.deps:
            if 0 <= dep < task.index:
                bits |= reach[dep]
        reach.append(bits)
        prev_in_queue[task.queue] = task.index
    return reach


#: Above this task count the O(n^2/64) reachability bitsets get heavy;
#: the race pass degrades to an INFO rather than silently skipping.
RACE_CHECK_TASK_LIMIT = 50_000


@analysis_pass("graph.buffer-race", "graph",
               "concurrent writers of one buffer are ordered")
def check_buffer_races(graph: TaskGraph,
                       ctx: AnalysisContext) -> Iterator[Diagnostic]:
    pid = "graph.buffer-race"
    writers: Dict[str, List[Task]] = {}
    for task in graph.tasks:
        buffer = written_buffer(task)
        if buffer is not None:
            writers.setdefault(buffer, []).append(task)
    if not any(len(tasks) > 1 for tasks in writers.values()):
        return
    if len(graph.tasks) > RACE_CHECK_TASK_LIMIT:
        yield info(pid, f"graph ({len(graph.tasks)} tasks)",
                   f"race check skipped above {RACE_CHECK_TASK_LIMIT} "
                   f"tasks")
        return
    reach = _reachability(graph)
    for buffer, tasks in sorted(writers.items()):
        for first, second in zip(tasks, tasks[1:]):
            if not reach[second.index] >> first.index & 1:
                yield error(
                    pid, _task_loc(second),
                    f"writes buffer {buffer!r} concurrently with "
                    f"{_task_loc(first)}: neither orders the other, so "
                    f"the surviving value depends on dispatch timing",
                    hint="add a dependency between the writers",
                )


@analysis_pass("graph.resources", "graph",
               "transfers and per-task operand sets fit the data SRAM")
def check_resources(graph: TaskGraph,
                    ctx: AnalysisContext) -> Iterator[Diagnostic]:
    pid = "graph.resources"
    budget = ctx.data_sram_bytes
    load_bytes: Dict[int, int] = {}
    for task in graph.tasks:
        if task.queue is Queue.MEMORY:
            if task.kind is Kind.LOAD:
                load_bytes[task.index] = task.bytes_moved
            if task.bytes_moved > budget:
                yield error(
                    pid, _task_loc(task),
                    f"single transfer of {task.bytes_moved} bytes "
                    f"exceeds the {budget}-byte data SRAM",
                    hint="tile the transfer or raise "
                         "AnalysisContext.data_sram_bytes",
                )
    peak = 0
    peak_task: Optional[Task] = None
    for task in graph.tasks:
        if task.queue is not Queue.COMPUTE:
            continue
        operand_bytes = sum(load_bytes.get(d, 0) for d in task.deps)
        if operand_bytes > peak:
            peak, peak_task = operand_bytes, task
        if operand_bytes > budget:
            yield error(
                pid, _task_loc(task),
                f"direct load operands total {operand_bytes} bytes, "
                f"over the {budget}-byte data SRAM — they can never be "
                f"resident together",
            )
    if peak_task is not None:
        yield info(
            pid, _task_loc(peak_task),
            f"peak per-task operand footprint {peak} bytes "
            f"({peak / budget:.1%} of the data SRAM)",
        )
