"""repro.analysis — static verification of plans, IR and RPU programs.

The legality kernel of the estimation stack: ``analyze(obj)`` runs a
registry of read-only passes over a :class:`~repro.api.plan.Plan`, a
:class:`~repro.workloads.ir.WorkloadProgram`, a B1K
:class:`~repro.rpu.program.Program` or a
:class:`~repro.core.taskgraph.TaskGraph` and returns an
:class:`AnalysisReport` of located, severity-tagged
:class:`Diagnostic` findings; ``verify(obj)`` additionally raises
:class:`~repro.errors.AnalysisError` on any error.

Four pass families ship here:

* **plan/IR** (``plan.*``, ``ir.*``) — level monotonicity, tower
  budgets, bootstrap-group structure, HKS-count cross-checks against
  the :class:`~repro.ckks.bootstrap.plan.BootstrapPlan` arithmetic, and
  required-evk derivation (:func:`required_evks`);
* **RPU programs** (``rpu.*``) — a linear abstract interpreter catching
  def-before-use, missing ``setmod``, ``setvl``/shuffle illegalities,
  capacity overflows and cross-pipe hazards before the VM ever runs;
* **task graphs** (``graph.*``) — structural/deadlock checks, buffer
  write-write races and SRAM resource overflow for the MP/DC/OC
  schedules;
* **solved schedules** (``sched.*``) — op-count invariance, key/data
  traffic bounds, SRAM-budget and decision-legality checks on every
  :class:`~repro.sched.solver.ScheduleArtifact` the schedule solver
  emits.

Integration points: ``EstimateService`` verifies plans at admission,
``repro.rpu.codegen`` verifies emitted kernels when
``REPRO_VERIFY_CODEGEN`` is set, and ``python -m repro verify`` runs
the whole registry from the command line.
"""

from repro.analysis.diagnostics import (
    AnalysisReport,
    Diagnostic,
    Severity,
)
from repro.analysis.registry import (
    AnalysisContext,
    AnalysisPass,
    analysis_pass,
    analyze,
    registered_passes,
    verify,
)

# Importing the pass modules registers their passes.
from repro.analysis import (  # noqa: F401,E402
    graph_passes,
    plan_passes,
    rpu_passes,
    sched_passes,
)
from repro.analysis.plan_passes import required_evks
from repro.errors import AnalysisError

__all__ = [
    "AnalysisContext",
    "AnalysisError",
    "AnalysisPass",
    "AnalysisReport",
    "Diagnostic",
    "Severity",
    "analysis_pass",
    "analyze",
    "registered_passes",
    "required_evks",
    "verify",
]
