"""Shared diagnostic types for the static-analysis framework.

Every analysis pass reports through the same vocabulary: a
:class:`Diagnostic` pins one finding to a severity, the pass that raised
it, a human-readable location inside the analyzed object (a phase index,
a program counter, a task index) and an optional fix hint.  A run of
``analyze()`` collects them into an :class:`AnalysisReport`, which is the
unit the serving layer attaches to admission failures and the CLI
renders.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

from repro.errors import AnalysisError


class Severity(enum.IntEnum):
    """How bad a finding is; orderable (``ERROR`` sorts first)."""

    ERROR = 0
    WARNING = 1
    INFO = 2

    def __str__(self) -> str:  # "error" rather than "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass.

    Attributes
    ----------
    severity:
        :class:`Severity` of the finding; only ``ERROR`` findings make
        :meth:`AnalysisReport.raise_if_errors` raise.
    pass_id:
        Dotted id of the pass that produced the finding
        (``"ir.level-monotonic"``, ``"rpu.def-before-use"``, ...).
    location:
        Where inside the analyzed object: ``"phase[3] 'cts0'"``,
        ``"pc=7 `vshuf v3, v1, v2`"``, ``"task[12]"`` — free-form but
        always present so findings are actionable.
    message:
        What is wrong.
    hint:
        Optional suggestion for fixing it.
    """

    severity: Severity
    pass_id: str
    location: str
    message: str
    hint: str = ""

    def render(self) -> str:
        text = f"{self.severity}: [{self.pass_id}] {self.location}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


def error(pass_id: str, location: str, message: str, hint: str = "") -> Diagnostic:
    return Diagnostic(Severity.ERROR, pass_id, location, message, hint)


def warning(pass_id: str, location: str, message: str, hint: str = "") -> Diagnostic:
    return Diagnostic(Severity.WARNING, pass_id, location, message, hint)


def info(pass_id: str, location: str, message: str, hint: str = "") -> Diagnostic:
    return Diagnostic(Severity.INFO, pass_id, location, message, hint)


@dataclass(frozen=True)
class AnalysisReport:
    """All diagnostics one ``analyze()`` run produced for one object."""

    subject: str
    diagnostics: Tuple[Diagnostic, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "diagnostics", tuple(self.diagnostics))

    # -- views -------------------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings/infos do not fail a verify)."""
        return not self.errors

    def by_pass(self, pass_id: str) -> List[Diagnostic]:
        """Findings of one pass (or of a ``"family."`` prefix)."""
        if pass_id.endswith("."):
            return [d for d in self.diagnostics if d.pass_id.startswith(pass_id)]
        return [d for d in self.diagnostics if d.pass_id == pass_id]

    def merged(self, other: "AnalysisReport") -> "AnalysisReport":
        return AnalysisReport(self.subject, self.diagnostics + other.diagnostics)

    # -- rendering / raising ------------------------------------------------------

    def summary(self) -> str:
        return (
            f"{self.subject}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {len(self.infos)} info(s)"
        )

    def render(self) -> str:
        lines = [self.summary()]
        for diag in sorted(self.diagnostics, key=lambda d: d.severity):
            lines.append("  " + diag.render())
        return "\n".join(lines)

    def raise_if_errors(self) -> "AnalysisReport":
        """Raise :class:`~repro.errors.AnalysisError` on any ERROR finding."""
        if not self.ok:
            first = self.errors[0]
            raise AnalysisError(
                f"{self.subject} failed verification with "
                f"{len(self.errors)} error(s); first: {first.render()}",
                report=self,
            )
        return self

    def __repr__(self) -> str:
        return (
            f"AnalysisReport({self.subject!r}, errors={len(self.errors)}, "
            f"warnings={len(self.warnings)}, infos={len(self.infos)})"
        )


def collect(diags: Iterable[Diagnostic]) -> Tuple[Diagnostic, ...]:
    """Materialize a pass's diagnostic stream (tolerates generators)."""
    return tuple(diags)
