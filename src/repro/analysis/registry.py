"""Pass registry and the ``analyze()`` entry point.

Passes register against an object *family* — ``"plan"``
(:class:`~repro.api.plan.Plan`), ``"workload"``
(:class:`~repro.workloads.ir.WorkloadProgram`), ``"rpu"``
(:class:`~repro.rpu.program.Program`), ``"graph"``
(:class:`~repro.core.taskgraph.TaskGraph`) or ``"sched"``
(:class:`~repro.sched.solver.ScheduleArtifact`).  ``analyze(obj)`` dispatches
on the object's type, runs every registered pass of the matching family
and folds the diagnostics into one
:class:`~repro.analysis.diagnostics.AnalysisReport`.  Analyzing a plan
recurses into its workload program, so one call covers the whole
request.

Analysis is read-only by contract: no pass may mutate the object it
inspects (the test suite property-checks plan digests and program
contents across ``analyze()``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.errors import ParameterError
from repro.params import MB

#: The known pass families, in dispatch-priority order.
FAMILIES = ("plan", "workload", "rpu", "graph", "sched")


@dataclass(frozen=True)
class AnalysisContext:
    """Machine/model assumptions the passes check against.

    Defaults mirror the RPU configuration
    (:class:`~repro.rpu.config.RPUConfig`): B1K vectors and a 32 MB data
    SRAM.  Tests and callers targeting a differently shaped VM pass their
    own context.
    """

    #: Maximum B1K vector length (``setvl`` upper bound).
    vl_max: int = 1024
    #: Words of VM data memory programs may address.
    memory_words: int = 1 << 20
    #: On-chip data SRAM budget for schedule resource checks.
    data_sram_bytes: int = 32 * MB


PassFn = Callable[[object, AnalysisContext], Iterable[Diagnostic]]


@dataclass(frozen=True)
class AnalysisPass:
    """One registered pass: an id, the family it inspects, and its body."""

    pass_id: str
    family: str
    title: str
    fn: PassFn


_REGISTRY: Dict[str, List[AnalysisPass]] = {family: [] for family in FAMILIES}


def analysis_pass(pass_id: str, family: str,
                  title: str) -> Callable[[PassFn], PassFn]:
    """Decorator registering ``fn(obj, context) -> Iterable[Diagnostic]``."""
    if family not in FAMILIES:
        raise ParameterError(
            f"unknown pass family {family!r}; choose from {FAMILIES}"
        )

    def decorate(fn: PassFn) -> PassFn:
        if any(p.pass_id == pass_id for p in _REGISTRY[family]):
            raise ParameterError(f"duplicate analysis pass id {pass_id!r}")
        _REGISTRY[family].append(AnalysisPass(pass_id, family, title, fn))
        return fn

    return decorate


def registered_passes(family: Optional[str] = None) -> List[AnalysisPass]:
    """The registered passes (of one family, or all of them)."""
    if family is not None:
        if family not in FAMILIES:
            raise ParameterError(
                f"unknown pass family {family!r}; choose from {FAMILIES}"
            )
        return list(_REGISTRY[family])
    return [p for fam in FAMILIES for p in _REGISTRY[fam]]


def _family_of(obj: object) -> Optional[str]:
    from repro.api.plan import Plan
    from repro.core.taskgraph import TaskGraph
    from repro.rpu.program import Program
    from repro.sched.solver import ScheduleArtifact
    from repro.workloads.ir import WorkloadProgram

    if isinstance(obj, Plan):
        return "plan"
    if isinstance(obj, WorkloadProgram):
        return "workload"
    if isinstance(obj, Program):
        return "rpu"
    if isinstance(obj, TaskGraph):
        return "graph"
    if isinstance(obj, ScheduleArtifact):
        return "sched"
    return None


def _subject_of(obj: object, family: str) -> str:
    if family == "plan":
        return f"plan {getattr(obj, 'name', '?')}"
    if family == "workload":
        return f"workload {getattr(obj, 'name', '?')}"
    if family == "rpu":
        name = getattr(obj, "name", "") or "<unnamed>"
        return f"rpu program {name}"
    if family == "sched":
        spec = getattr(obj, "spec", None)
        name = getattr(spec, "name", "?")
        return f"solved schedule {name}"
    name = getattr(obj, "name", "") or "<unnamed>"
    return f"task graph {name}"


def analyze(obj: object, *, context: Optional[AnalysisContext] = None,
            passes: Optional[Sequence[str]] = None) -> AnalysisReport:
    """Run every registered pass that applies to ``obj``.

    Dispatches on type: plans, workload programs, RPU programs and task
    graphs.  Analyzing a :class:`~repro.api.plan.Plan` also analyzes its
    workload program (a plan over a bare
    :class:`~repro.params.BenchmarkSpec` has no program-level structure
    to check).  ``passes`` optionally restricts to specific pass ids (or
    ``"family."`` prefixes).  Never mutates ``obj``.
    """
    from repro.workloads.ir import WorkloadProgram

    family = _family_of(obj)
    if family is None:
        from repro.params import BenchmarkSpec

        if isinstance(obj, BenchmarkSpec):
            # A bare benchmark spec is validated at construction; there
            # is no cross-phase structure for passes to check.
            return AnalysisReport(f"benchmark {obj.name}", ())
        raise ParameterError(
            f"analyze() supports Plan, WorkloadProgram, rpu Program and "
            f"TaskGraph, got {type(obj).__name__}"
        )
    ctx = context or AnalysisContext()
    diags: List[Diagnostic] = []
    for a_pass in _REGISTRY[family]:
        if passes is not None and not any(
            a_pass.pass_id == p or (p.endswith(".") and
                                    a_pass.pass_id.startswith(p))
            for p in passes
        ):
            continue
        diags.extend(a_pass.fn(obj, ctx))
    if family == "plan" and isinstance(obj.workload, WorkloadProgram):
        sub = analyze(obj.workload, context=ctx, passes=passes)
        diags.extend(sub.diagnostics)
    return AnalysisReport(_subject_of(obj, family), tuple(diags))


def verify(obj: object, *, context: Optional[AnalysisContext] = None,
           passes: Optional[Sequence[str]] = None) -> AnalysisReport:
    """``analyze()`` that raises :class:`~repro.errors.AnalysisError`
    when any error-severity diagnostic is found; returns the (clean or
    warning-only) report otherwise."""
    return analyze(obj, context=context, passes=passes).raise_if_errors()
