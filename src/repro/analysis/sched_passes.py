"""Schedule-validity passes: the solver's output, independently checked.

The ``sched`` family inspects a :class:`~repro.sched.solver.
ScheduleArtifact` — a solved schedule bundled with its deterministically
rebuilt task graph — and re-derives the invariants every legal HKS
schedule must satisfy, mirroring the assertions
:func:`repro.core.analyze_dataflow` applies to the hand-written trio:

* compute work equals the dataflow-independent stage algebra (plus the
  key-regeneration passes when streamed keys are seed-compressed),
* streamed evk traffic covers the key size (equality is not required:
  a prefetching schedule may re-stream an evicted key tower, trading
  key bytes for overlap — but it can never *undercount* them),
* data traffic includes at least the compulsory input + output movement,
* the emitted schedule's SRAM high-water respects the budget it was
  generated for,
* the recorded decision is legal for the spec (pin capacity, digest
  consistency between the record and the rebuilt graph).

The solver itself gates every non-legacy winner through ``analyze()``;
these passes make the same evidence available to admission control and
``python -m repro verify``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.diagnostics import Diagnostic, error, info
from repro.analysis.registry import AnalysisContext, analysis_pass
from repro.core.stages import HKSShape

if TYPE_CHECKING:
    from repro.sched.solver import ScheduleArtifact


@analysis_pass("sched.ops-invariant", "sched",
               "compute work equals the dataflow-independent stage algebra")
def check_ops_invariant(art: "ScheduleArtifact",
                        ctx: AnalysisContext) -> Iterator[Diagnostic]:
    spec = art.spec
    expected = HKSShape(spec).total_ops()
    compressed = art.config.key_compression and not art.config.evk_on_chip
    regen_muls = (spec.dnum * spec.extended_towers * spec.n
                  if compressed else 0)
    muls = sum(t.mod_muls for t in art.graph.tasks)
    adds = sum(t.mod_adds for t in art.graph.tasks)
    if (muls, adds) != (expected.muls + regen_muls, expected.adds):
        yield error(
            "sched.ops-invariant", f"schedule {spec.name}",
            f"op count drifted from the stage algebra: "
            f"{muls} muls / {adds} adds vs expected "
            f"{expected.muls + regen_muls} / {expected.adds}",
            hint="the decision emitter dropped or duplicated a stage kernel",
        )


@analysis_pass("sched.evk-traffic", "sched",
               "streamed key traffic covers the key size")
def check_evk_traffic(art: "ScheduleArtifact",
                      ctx: AnalysisContext) -> Iterator[Diagnostic]:
    spec, config = art.spec, art.config
    evk_bytes = art.solved.evk_bytes
    if config.evk_on_chip:
        if evk_bytes != 0:
            yield error(
                "sched.evk-traffic", f"schedule {spec.name}",
                f"on-chip keys must stream zero bytes, saw {evk_bytes}",
            )
        return
    expected = (spec.evk_bytes // 2 if config.key_compression
                else spec.evk_bytes)
    if evk_bytes < expected:
        yield error(
            "sched.evk-traffic", f"schedule {spec.name}",
            f"streamed evk traffic {evk_bytes} below the key size "
            f"{expected}: some key towers were never loaded",
        )
    elif evk_bytes > expected:
        yield info(
            "sched.evk-traffic", f"schedule {spec.name}",
            f"evk traffic {evk_bytes} exceeds the key size {expected}: "
            f"prefetched key towers were evicted and re-streamed",
        )


@analysis_pass("sched.compulsory-data", "sched",
               "data traffic includes compulsory input + output movement")
def check_compulsory_data(art: "ScheduleArtifact",
                          ctx: AnalysisContext) -> Iterator[Diagnostic]:
    spec = art.spec
    compulsory = spec.input_bytes + spec.output_bytes
    if art.solved.data_bytes < compulsory:
        yield error(
            "sched.compulsory-data", f"schedule {spec.name}",
            f"data traffic {art.solved.data_bytes} below the compulsory "
            f"{compulsory}: the schedule skipped loading inputs or "
            f"storing outputs",
        )


@analysis_pass("sched.sram-budget", "sched",
               "SRAM high-water respects the generation budget")
def check_sram_budget(art: "ScheduleArtifact",
                      ctx: AnalysisContext) -> Iterator[Diagnostic]:
    budget = art.config.data_sram_bytes
    peak = art.stats.peak_bytes
    if peak > budget:
        yield error(
            "sched.sram-budget", f"schedule {art.spec.name}",
            f"on-chip peak {peak} exceeds the {budget}-byte budget the "
            f"schedule was generated for",
        )


@analysis_pass("sched.decision-legal", "sched",
               "the recorded decision is legal and matches the graph")
def check_decision_legal(art: "ScheduleArtifact",
                         ctx: AnalysisContext) -> Iterator[Diagnostic]:
    from repro.sched.solver import schedule_digest
    from repro.sched.space import pin_capacity

    spec, config = art.spec, art.config
    decision = art.solved.decision
    subject = f"schedule {spec.name}"
    if not decision.is_legacy:
        capacity = pin_capacity(spec, config)
        if min(decision.pinned_digits, spec.dnum) > capacity:
            yield error(
                "sched.decision-legal", subject,
                f"decision pins {decision.pinned_digits} digits but only "
                f"{capacity} digit prefixes fit the "
                f"{config.data_sram_bytes}-byte budget",
            )
    digest = schedule_digest(art.graph)
    if digest != art.solved.digest:
        yield error(
            "sched.decision-legal", subject,
            f"graph digest {digest} does not match the solved record's "
            f"{art.solved.digest}: the rebuild is not deterministic",
        )
