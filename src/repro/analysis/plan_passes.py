"""Plan and workload-IR verification passes.

These passes encode the level/structure invariants the estimation
backends *assume* but never check: a :class:`~repro.workloads.ir.Phase`
sequence must descend the modulus chain except at ModRaise boundaries,
bootstrap groups must be shaped ``cts+ evalmod stc+`` with per-stage
level burns, and the per-stage HKS counts of a registry-shaped bootstrap
must match what the :class:`~repro.ckks.bootstrap.plan.BootstrapPlan`
arithmetic derives.  A plan that passes these checks prices the circuit
it claims to price; one that fails them would produce a silently wrong
estimate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple

from repro.analysis.diagnostics import Diagnostic, error, info, warning
from repro.analysis.registry import AnalysisContext, analysis_pass
from repro.workloads.ir import WorkloadProgram, Phase

if TYPE_CHECKING:
    from repro.api.plan import Plan

#: Evaluation-key kinds a workload can require from a session's cache.
EVK_KINDS = ("relin", "galois")


def required_evks(workload: object) -> Dict[str, int]:
    """Which evaluation keys a workload implies, and at how many towers.

    Returns ``{kind: max_towers}`` where *kind* is ``"relin"`` (needed by
    any ciphertext multiply) or ``"galois"`` (needed by any rotation —
    conjugations fold into rotations in :class:`HEOpMix`), and
    *max_towers* is the widest chain point the key must cover.  Programs
    only; a bare benchmark spec models one generic HKS whose key kind is
    unspecified, so it maps to ``{}``.
    """
    if not isinstance(workload, WorkloadProgram):
        return {}
    needs: Dict[str, int] = {}
    for phase in workload.phases:
        if phase.mix.ct_multiplies > 0:
            needs["relin"] = max(needs.get("relin", 0), phase.spec.kl)
        if phase.mix.rotations > 0:
            needs["galois"] = max(needs.get("galois", 0), phase.spec.kl)
    return needs


def _phase_loc(index: int, phase: Phase) -> str:
    return f"phase[{index}] {phase.label!r}"


# -- plan-level passes ------------------------------------------------------------


@analysis_pass("plan.backend", "plan",
               "backend and schedule name a registered engine/dataflow")
def check_plan_backend(plan: "Plan",
                       ctx: AnalysisContext) -> Iterator[Diagnostic]:
    from repro.api.backends import KNOWN_SCHEDULES, list_backends

    if plan.backend not in list_backends():
        yield error("plan.backend", f"backend {plan.backend!r}",
                    "plan names an unregistered backend",
                    hint=f"registered backends: {list_backends()}")
    if plan.schedule not in KNOWN_SCHEDULES:
        yield error("plan.backend", f"schedule {plan.schedule!r}",
                    "plan names an unknown dataflow schedule",
                    hint=f"choose from {KNOWN_SCHEDULES}")


@analysis_pass("plan.options", "plan",
               "estimate options are internally consistent")
def check_plan_options(plan: "Plan",
                       ctx: AnalysisContext) -> Iterator[Diagnostic]:
    opts = plan.options
    if opts.key_compression and opts.evk_on_chip:
        yield warning(
            "plan.options", "options",
            "key_compression=True has no effect with evk_on_chip=True "
            "(compression applies to streamed keys only)",
            hint="set evk_on_chip=False to model compressed key streaming",
        )


@analysis_pass("plan.required-evks", "plan",
               "derive the evaluation keys the plan implies")
def check_required_evks(plan: "Plan",
                        ctx: AnalysisContext) -> Iterator[Diagnostic]:
    needs = required_evks(plan.workload)
    for kind in sorted(needs):
        yield info(
            "plan.required-evks", "workload",
            f"requires a {kind} evaluation key covering {needs[kind]} towers",
        )


# -- workload-IR passes -----------------------------------------------------------


@analysis_pass("ir.level-monotonic", "workload",
               "tower counts only increase at ModRaise boundaries")
def check_level_monotonic(program: WorkloadProgram,
                          ctx: AnalysisContext) -> Iterator[Diagnostic]:
    phases = program.phases
    for i in range(1, len(phases)):
        prev, cur = phases[i - 1], phases[i]
        if cur.spec.kl > prev.spec.kl and cur.kind != "cts":
            yield error(
                "ir.level-monotonic", _phase_loc(i, cur),
                f"tower count rises {prev.spec.kl} -> {cur.spec.kl} outside "
                f"a ModRaise boundary (phase kind {cur.kind!r})",
                hint="only the first CoeffToSlot stage of a bootstrap "
                     "(kind='cts') may re-enter the chain higher",
            )


@analysis_pass("ir.tower-budget", "workload",
               "per-phase parameters stay inside the top-of-chain budget")
def check_tower_budget(program: WorkloadProgram,
                       ctx: AnalysisContext) -> Iterator[Diagnostic]:
    top = program.spec  # widest phase
    for i, phase in enumerate(program.phases):
        spec = phase.spec
        if spec.log_n != top.log_n:
            yield error(
                "ir.tower-budget", _phase_loc(i, phase),
                f"ring dimension changes mid-program "
                f"(log_n {spec.log_n} != {top.log_n})",
                hint="all phases of one circuit share one ring",
            )
        if spec.kp != top.kp:
            yield error(
                "ir.tower-budget", _phase_loc(i, phase),
                f"auxiliary basis changes mid-program "
                f"(kp {spec.kp} != {top.kp})",
                hint="P is fixed at key-generation time and never shrinks",
            )
        expected_dnum = max(1, min(top.dnum, -(-spec.kl // top.alpha)))
        if spec.dnum != expected_dnum:
            yield warning(
                "ir.tower-budget", _phase_loc(i, phase),
                f"digit count {spec.dnum} diverges from the fixed-alpha "
                f"derivation ceil({spec.kl}/{top.alpha}) = {expected_dnum}",
                hint="derive lowered specs with workloads.ir.level_spec",
            )


def _bootstrap_runs(program: WorkloadProgram) -> List[List[Tuple[int, Phase]]]:
    """Maximal consecutive runs of bootstrap-kind phases, with indices."""
    runs: List[List[Tuple[int, Phase]]] = []
    current: List[Tuple[int, Phase]] = []
    for i, phase in enumerate(program.phases):
        if phase.is_bootstrap:
            current.append((i, phase))
        elif current:
            runs.append(current)
            current = []
    if current:
        runs.append(current)
    return runs


@analysis_pass("ir.bootstrap-structure", "workload",
               "bootstrap groups are shaped cts+ evalmod stc+ with "
               "one-level burns")
def check_bootstrap_structure(program: WorkloadProgram,
                              ctx: AnalysisContext) -> Iterator[Diagnostic]:
    pid = "ir.bootstrap-structure"
    for run in _bootstrap_runs(program):
        kinds = [p.kind for _, p in run]
        cts = [(i, p) for i, p in run if p.kind == "cts"]
        evalmod = [(i, p) for i, p in run if p.kind == "evalmod"]
        stc = [(i, p) for i, p in run if p.kind == "stc"]
        first_i, first_p = run[0]
        expected = (["cts"] * len(cts) + ["evalmod"] * len(evalmod)
                    + ["stc"] * len(stc))
        if kinds != expected or not cts or len(evalmod) != 1 or not stc:
            yield error(
                pid, _phase_loc(first_i, first_p),
                f"bootstrap group has stage kinds {kinds}; expected "
                f"one or more 'cts', exactly one 'evalmod', then one or "
                f"more 'stc'",
                hint="lower bootstraps with workloads.builders"
                     ".bootstrap_phases",
            )
            continue
        for stage in (cts, stc):
            for (i1, p1), (i2, p2) in zip(stage, stage[1:]):
                if p2.spec.kl != p1.spec.kl - 1:
                    yield error(
                        pid, _phase_loc(i2, p2),
                        f"{p2.kind} stage towers {p1.spec.kl} -> "
                        f"{p2.spec.kl}; each DFT factor burns exactly "
                        f"one level",
                    )
        em_i, em_p = evalmod[0]
        last_cts = cts[-1][1]
        if em_p.spec.kl != last_cts.spec.kl - 1:
            yield error(
                pid, _phase_loc(em_i, em_p),
                f"evalmod enters at {em_p.spec.kl} towers but the last "
                f"CoeffToSlot stage ran at {last_cts.spec.kl} (must burn "
                f"exactly one level)",
            )
        first_stc = stc[0][1]
        if first_stc.spec.kl >= em_p.spec.kl:
            yield error(
                pid, _phase_loc(stc[0][0], first_stc),
                f"SlotToCoeff enters at {first_stc.spec.kl} towers, not "
                f"below evalmod's {em_p.spec.kl}; the sine ladder must "
                f"burn at least one level",
            )
        last_i, last_p = stc[-1]
        if last_p.spec.kl < 2:
            yield error(
                pid, _phase_loc(last_i, last_p),
                f"last SlotToCoeff stage runs at {last_p.spec.kl} "
                f"tower(s); burning its level would leave no usable "
                f"budget",
            )


@analysis_pass("ir.hks-consistency", "workload",
               "bootstrap-stage HKS counts match the BootstrapPlan "
               "derivation")
def check_hks_consistency(program: WorkloadProgram,
                          ctx: AnalysisContext) -> Iterator[Diagnostic]:
    pid = "ir.hks-consistency"
    from repro.ckks.bootstrap.plan import transform_counts
    from repro.workloads.builders import bootstrap_plan

    plan = bootstrap_plan()
    for run in _bootstrap_runs(program):
        cts = [(i, p) for i, p in run if p.kind == "cts"]
        evalmod = [(i, p) for i, p in run if p.kind == "evalmod"]
        stc = [(i, p) for i, p in run if p.kind == "stc"]
        shape_matches = (
            len(cts) == len(plan.cts_diagonals)
            and len(evalmod) == 1
            and len(stc) == len(plan.stc_diagonals)
            and run[0][1].spec.n == 2 * plan.num_slots
        )
        if not shape_matches:
            first_i, first_p = run[0]
            yield info(
                pid, _phase_loc(first_i, first_p),
                f"bootstrap group shape ({len(cts)} cts, {len(stc)} stc, "
                f"N=2^{run[0][1].spec.log_n}) is not the registry's "
                f"{len(plan.cts_diagonals)}+{len(plan.stc_diagonals)} "
                f"split at N={2 * plan.num_slots}; HKS cross-check "
                f"skipped",
            )
            continue
        stages = (
            [(i, p, transform_counts(plan.num_slots, diag).hks_calls)
             for (i, p), diag in zip(cts, plan.cts_diagonals)]
            + [(evalmod[0][0], evalmod[0][1],
                plan.evalmod_counts().hks_calls)]
            + [(i, p, transform_counts(plan.num_slots, diag).hks_calls)
               for (i, p), diag in zip(stc, plan.stc_diagonals)]
        )
        for i, phase, derived in stages:
            if phase.mix.hks_calls != derived:
                yield error(
                    pid, _phase_loc(i, phase),
                    f"phase prices {phase.mix.hks_calls} HKS calls but "
                    f"the bootstrap plan derives {derived} for this "
                    f"stage",
                    hint="rebuild the phases from bootstrap_phases() "
                         "instead of editing op counts by hand",
                )
