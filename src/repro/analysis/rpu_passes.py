"""Static analysis of B1K programs: a linear abstract interpreter.

Walks a :class:`~repro.rpu.program.Program` once, in instruction order,
tracking what is statically knowable — which registers have been
written, constant values propagated through ``li``/``sadd``/``smul``/
``vbcast``, the active vector length, whether ``setmod`` has executed,
and every memory access window whose address is a known constant.  The
checks mirror the :class:`~repro.rpu.vm.B1KVM`'s dynamic
``SimulationError`` classes, so a program the VM would kill at ``pc=k``
is diagnosed here at the same instruction *without* running it:

* ``rpu.def-before-use`` — reading a never-written vector register
  (error; the VM raises) or scalar register (warning; hosts may
  pre-seed scalars via ``write_scalar``);
* ``rpu.modulus`` — a modular-arithmetic instruction before ``setmod``;
* ``rpu.vl`` — ``setvl`` constants outside ``[1, vl_max]`` and
  ``vswap``/``vbfly``/``vsplit``/``vmerge`` width incompatibilities;
* ``rpu.shuffle-bounds`` — ``vshuf`` with a broadcast-constant index
  vector outside ``[0, vl)``;
* ``rpu.capacity`` — constant-address accesses beyond data memory, plus
  an INFO footprint metric (registers used, words touched);
* ``rpu.hazards`` — cross-pipe memory aliasing without an ordering
  ``fence``, and dead vector-register writes (straight-line programs
  only; loops are skipped to avoid back-edge false positives).

The interpreter is linear: it follows fall-through order and does not
join states across branches, which is exact for the straight-line
kernels :mod:`repro.rpu.codegen` emits and a sound first-iteration
approximation for its counted loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.analysis.diagnostics import Diagnostic, error, info, warning
from repro.analysis.registry import AnalysisContext, PassFn, analysis_pass
from repro.rpu.isa import B1K_ISA, Pipe
from repro.rpu.program import (
    NUM_SREGS,
    NUM_VREGS,
    AsmInstr,
    Program,
    is_mreg,
    is_sreg,
    is_vreg,
    reg_index,
)

#: An instruction operand: a register name or an immediate.
Operand = Union[str, int]

#: Mnemonics that require an active modulus (mirrors the VM's gate).
MODULAR_OPS = frozenset(
    {"vmadd", "vmsub", "vmmul", "vmmac", "vmneg", "vmscale", "vbfly"}
)

#: Mnemonics whose legality depends on an even vector length.
_EVEN_VL_OPS = frozenset({"vbfly", "vsplit", "vmerge"})


@dataclass
class _MemAccess:
    """One memory window touched at a known or unknown address."""

    pc: int
    instr: AsmInstr
    pipe: Pipe
    is_write: bool
    address: Optional[int]
    length: Optional[int]
    #: fences seen before this access (ordering epoch).
    epoch: int

    def overlaps(self, other: "_MemAccess") -> bool:
        if None in (self.address, self.length, other.address, other.length):
            return False
        return (self.address < other.address + other.length
                and other.address < self.address + self.length)


@dataclass
class _State:
    """Abstract machine state threaded through the linear walk."""

    vl: Optional[int]
    vl_max: int
    mod_active: bool = False
    sdef: List[bool] = field(default_factory=lambda: [False] * NUM_SREGS)
    sconst: Dict[int, int] = field(default_factory=dict)
    vdef: List[bool] = field(default_factory=lambda: [False] * NUM_VREGS)
    #: vreg -> broadcast constant (every lane equal), when known.
    vconst: Dict[int, int] = field(default_factory=dict)
    accesses: List[_MemAccess] = field(default_factory=list)
    epoch: int = 0
    sregs_used: Set[int] = field(default_factory=set)
    vregs_used: Set[int] = field(default_factory=set)
    #: vreg -> pc of the last write not yet read (for dead-write WAW).
    last_vwrite: Dict[int, Tuple[int, AsmInstr]] = field(default_factory=dict)


def _loc(pc: int, instr: AsmInstr) -> str:
    return f"pc={pc} `{instr.render()}`"


class _Interpreter:
    """One linear walk; collects ``(category, Diagnostic)`` findings."""

    def __init__(self, program: Program, ctx: AnalysisContext):
        self.program = program
        self.ctx = ctx
        self.state = _State(vl=ctx.vl_max, vl_max=ctx.vl_max)
        self.findings: List[Tuple[str, Diagnostic]] = []
        self.has_branch = any(
            i.mnemonic in ("bnez", "jal") for i in program.instructions
        )

    # -- reporting helpers -------------------------------------------------------

    def _emit(self, category: str, diag: Diagnostic) -> None:
        self.findings.append((category, diag))

    # -- register helpers --------------------------------------------------------

    def _sread(self, op: Operand, pc: int,
               instr: AsmInstr) -> Optional[int]:
        """Read a scalar operand; returns its constant value if known."""
        if isinstance(op, int):
            return op
        if not is_sreg(op):
            return None
        idx = reg_index(op)
        self.state.sregs_used.add(idx)
        if not self.state.sdef[idx]:
            self._emit("rpu.def-before-use", warning(
                "rpu.def-before-use", _loc(pc, instr),
                f"scalar register {op} read before any in-program write",
                hint="initialize with li, or document the host-side "
                     "write_scalar contract",
            ))
            # A host may have seeded it; treat as defined-unknown from
            # here so one missing init is reported once.
            self.state.sdef[idx] = True
        return self.state.sconst.get(idx)

    def _swrite(self, op: Operand, const: Optional[int]) -> None:
        idx = reg_index(op)
        self.state.sregs_used.add(idx)
        self.state.sdef[idx] = True
        if const is None:
            self.state.sconst.pop(idx, None)
        else:
            self.state.sconst[idx] = const

    def _vread(self, op: Operand, pc: int,
               instr: AsmInstr) -> Optional[int]:
        """Read a vector operand; returns its broadcast constant if known."""
        if not is_vreg(op):
            return None
        idx = reg_index(op)
        self.state.vregs_used.add(idx)
        if not self.state.vdef[idx]:
            self._emit("rpu.def-before-use", error(
                "rpu.def-before-use", _loc(pc, instr),
                f"vector register {op} read before any write "
                f"(the VM raises SimulationError here)",
                hint="load or broadcast into the register first",
            ))
            self.state.vdef[idx] = True  # report each missing init once
        self.state.last_vwrite.pop(idx, None)
        return self.state.vconst.get(idx)

    def _vwrite(self, op: Operand, pc: int, instr: AsmInstr,
                const: Optional[int] = None) -> None:
        idx = reg_index(op)
        self.state.vregs_used.add(idx)
        if not self.has_branch and idx in self.state.last_vwrite:
            prev_pc, prev_instr = self.state.last_vwrite[idx]
            self._emit("rpu.hazards", warning(
                "rpu.hazards", _loc(pc, instr),
                f"dead write: {op} written at pc={prev_pc} "
                f"(`{prev_instr.render()}`) is overwritten without "
                f"being read",
            ))
        self.state.vdef[idx] = True
        self.state.last_vwrite[idx] = (pc, instr)
        if const is None:
            self.state.vconst.pop(idx, None)
        else:
            self.state.vconst[idx] = const

    def _mem(self, pc: int, instr: AsmInstr, *, write: bool,
             address: Optional[int], length: Optional[int]) -> None:
        pipe = B1K_ISA[instr.mnemonic].pipe
        self.state.accesses.append(_MemAccess(
            pc=pc, instr=instr, pipe=pipe, is_write=write,
            address=address, length=length, epoch=self.state.epoch,
        ))
        if address is not None and length is not None:
            if address < 0 or address + length > self.ctx.memory_words:
                self._emit("rpu.capacity", error(
                    "rpu.capacity", _loc(pc, instr),
                    f"access window [{address}, {address + length}) is "
                    f"outside data memory of {self.ctx.memory_words} "
                    f"words",
                    hint="shrink the layout or raise "
                         "AnalysisContext.memory_words to match the VM",
                ))

    # -- per-instruction semantics -----------------------------------------------

    def _step(self, pc: int, instr: AsmInstr) -> None:
        m = instr.mnemonic
        ops = instr.operands
        st = self.state

        if m in MODULAR_OPS and not st.mod_active:
            self._emit("rpu.modulus", error(
                "rpu.modulus", _loc(pc, instr),
                f"modular instruction {m} before any setmod "
                f"(the VM raises 'no active modulus')",
                hint="execute setmod <mreg> before modular arithmetic",
            ))
            st.mod_active = True  # report the first offender only

        if m in ("halt", "label"):
            return
        if m == "fence":
            st.epoch += 1
            return
        if m == "setvl":
            vl = self._sread(ops[0], pc, instr)
            if vl is not None and not 1 <= vl <= st.vl_max:
                self._emit("rpu.vl", error(
                    "rpu.vl", _loc(pc, instr),
                    f"setvl {vl} out of range 1..{st.vl_max}",
                ))
                return  # VM halts here; keep the previous vl
            st.vl = vl
            return
        if m == "setmod":
            if not is_mreg(ops[0]):
                self._emit("rpu.modulus", error(
                    "rpu.modulus", _loc(pc, instr),
                    f"setmod expects a modulus register, got {ops[0]!r}",
                ))
                return
            st.mod_active = True
            return
        if m == "li":
            val = ops[1] if isinstance(ops[1], int) else \
                self._sread(ops[1], pc, instr)
            self._swrite(ops[0], val)
            return
        if m in ("sadd", "smul"):
            a = self._sread(ops[1], pc, instr)
            b = self._sread(ops[2], pc, instr)
            folded = None
            if a is not None and b is not None:
                folded = a + b if m == "sadd" else a * b
            self._swrite(ops[0], folded)
            return
        if m == "sld":
            addr = self._sread(ops[1], pc, instr)
            self._mem(pc, instr, write=False, address=addr, length=1)
            self._swrite(ops[0], None)
            return
        if m == "sst":
            self._sread(ops[0], pc, instr)
            addr = self._sread(ops[1], pc, instr)
            self._mem(pc, instr, write=True, address=addr, length=1)
            return
        if m == "bnez":
            self._sread(ops[0], pc, instr)
            return
        if m == "jal":
            self._swrite(ops[0], None)
            return

        if m in ("vld", "vldk", "ldtw"):
            addr = self._sread(ops[1], pc, instr)
            self._mem(pc, instr, write=False, address=addr, length=st.vl)
            self._vwrite(ops[0], pc, instr)
            return
        if m == "vst":
            self._vread(ops[0], pc, instr)
            addr = self._sread(ops[1], pc, instr)
            self._mem(pc, instr, write=True, address=addr, length=st.vl)
            return
        if m == "vbcast":
            const = self._sread(ops[1], pc, instr)
            self._vwrite(ops[0], pc, instr, const=const)
            return

        if m in ("vmadd", "vmsub", "vmmul"):
            self._vread(ops[1], pc, instr)
            self._vread(ops[2], pc, instr)
            self._vwrite(ops[0], pc, instr)
            return
        if m == "vmmac":
            self._vread(ops[0], pc, instr)  # accumulator is read-modify-write
            self._vread(ops[1], pc, instr)
            self._vread(ops[2], pc, instr)
            self._vwrite(ops[0], pc, instr)
            return
        if m == "vmneg":
            self._vread(ops[1], pc, instr)
            self._vwrite(ops[0], pc, instr)
            return
        if m == "vmscale":
            self._vread(ops[1], pc, instr)
            self._sread(ops[2], pc, instr)
            self._vwrite(ops[0], pc, instr)
            return
        if m == "vmsel":
            for src in ops[1:4]:
                self._vread(src, pc, instr)
            self._vwrite(ops[0], pc, instr)
            return
        if m == "vbfly":
            self._check_even_vl(pc, instr)
            self._vread(ops[1], pc, instr)
            self._vread(ops[2], pc, instr)
            if len(ops) > 3:
                self._sread(ops[3], pc, instr)
            self._vwrite(ops[0], pc, instr)
            return

        if m == "vshuf":
            idx_const = self._vread(ops[2], pc, instr)
            if idx_const is not None and st.vl is not None and \
                    not 0 <= idx_const < st.vl:
                self._emit("rpu.shuffle-bounds", error(
                    "rpu.shuffle-bounds", _loc(pc, instr),
                    f"vshuf index {idx_const} out of range [0, {st.vl}) "
                    f"(the VM raises 'vshuf index out of range')",
                ))
            self._vread(ops[1], pc, instr)
            self._vwrite(ops[0], pc, instr)
            return
        if m == "vswap":
            t = self._sread(ops[2], pc, instr)
            if t is not None and st.vl is not None and \
                    (t <= 0 or st.vl % (2 * t) != 0):
                self._emit("rpu.vl", error(
                    "rpu.vl", _loc(pc, instr),
                    f"vswap width {t} incompatible with vl {st.vl}",
                ))
            self._vread(ops[1], pc, instr)
            self._vwrite(ops[0], pc, instr)
            return
        if m in ("vrev", "vrotl"):
            if m == "vrotl":
                self._sread(ops[2], pc, instr)
            self._vread(ops[1], pc, instr)
            self._vwrite(ops[0], pc, instr)
            return
        if m == "vsplit":
            self._check_even_vl(pc, instr)
            self._vread(ops[2], pc, instr)
            self._vwrite(ops[0], pc, instr)
            self._vwrite(ops[1], pc, instr)
            return
        if m == "vmerge":
            self._check_even_vl(pc, instr)
            self._vread(ops[1], pc, instr)
            self._vread(ops[2], pc, instr)
            self._vwrite(ops[0], pc, instr)
            return

    def _check_even_vl(self, pc: int, instr: AsmInstr) -> None:
        vl = self.state.vl
        if vl is not None and vl % 2 != 0:
            self._emit("rpu.vl", error(
                "rpu.vl", _loc(pc, instr),
                f"{instr.mnemonic} needs an even vector length, vl={vl}",
            ))

    # -- whole-program checks ----------------------------------------------------

    def _check_aliasing(self) -> None:
        """Cross-pipe memory accesses overlapping without a fence."""
        accesses = self.state.accesses
        for i, a in enumerate(accesses):
            for b in accesses[i + 1:]:
                if a.pipe is b.pipe or a.epoch != b.epoch:
                    continue
                if not (a.is_write or b.is_write):
                    continue
                if a.overlaps(b):
                    kind = ("write-write" if a.is_write and b.is_write
                            else "read-write")
                    self._emit("rpu.hazards", warning(
                        "rpu.hazards", _loc(b.pc, b.instr),
                        f"{kind} memory aliasing with pc={a.pc} "
                        f"(`{a.instr.render()}`) across {a.pipe.value}/"
                        f"{b.pipe.value} pipes with no fence between",
                        hint="insert a fence to order the queues",
                    ))

    def _footprint(self) -> None:
        known = [a for a in self.state.accesses
                 if a.address is not None and a.length is not None]
        high = max((a.address + a.length for a in known), default=0)
        self._emit("rpu.capacity", info(
            "rpu.capacity", "program",
            f"uses {len(self.state.vregs_used)}/{NUM_VREGS} vregs, "
            f"{len(self.state.sregs_used)}/{NUM_SREGS} sregs; static "
            f"memory high-water mark {high} of {self.ctx.memory_words} "
            f"words",
        ))

    def run(self) -> List[Tuple[str, Diagnostic]]:
        for pc, instr in enumerate(self.program.instructions):
            self._step(pc, instr)
        self._check_aliasing()
        self._footprint()
        return self.findings


def _interpret(program: Program,
               ctx: AnalysisContext) -> List[Tuple[str, Diagnostic]]:
    return _Interpreter(program, ctx).run()


def _category_pass(category: str, title: str) -> PassFn:
    @analysis_pass(category, "rpu", title)
    def run(program: Program, ctx: AnalysisContext,
            _category: str = category) -> Iterator[Diagnostic]:
        for found_category, diag in _interpret(program, ctx):
            if found_category == _category:
                yield diag

    return run


_category_pass("rpu.def-before-use",
               "registers are written before they are read")
_category_pass("rpu.modulus",
               "modular arithmetic only runs under an active setmod")
_category_pass("rpu.vl",
               "setvl ranges and width-sensitive shuffles are legal")
_category_pass("rpu.shuffle-bounds",
               "constant vshuf index vectors stay inside the vector")
_category_pass("rpu.capacity",
               "constant-address accesses fit the data memory")
_category_pass("rpu.hazards",
               "no unfenced cross-pipe aliasing or dead vector writes")
