"""Dataflow analytics: DRAM traffic, arithmetic intensity, working sets.

These are the quantities behind paper Table II (DRAM transfers and AI with
a 32 MB on-chip memory and streamed evks) and the Section IV working-set
discussion.  Everything is derived from the generated schedules, so the
numbers respond to the same knobs the paper sweeps (budget, evk placement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.dataflow import Dataflow, DataflowConfig
from repro.core.stages import HKSShape
from repro.core.taskgraph import DATA_TAG, EVK_TAG, TaskGraph
from repro.params import MB, BenchmarkSpec


@dataclass(frozen=True)
class DataflowReport:
    """Traffic/AI summary of one (benchmark, dataflow, config) schedule."""

    benchmark: str
    dataflow: str
    total_bytes: int
    data_bytes: int
    evk_bytes: int
    mod_ops: int
    mod_muls: int
    peak_on_chip_bytes: int
    spill_stores: int
    reloads: int
    num_tasks: int

    @property
    def total_mb(self) -> float:
        return self.total_bytes / MB

    @property
    def arithmetic_intensity(self) -> float:
        """Modular operations per DRAM byte (paper Table II's "AI")."""
        if self.total_bytes == 0:
            return float("inf")
        return self.mod_ops / self.total_bytes

    def as_row(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "dataflow": self.dataflow,
            "MB": round(self.total_mb, 1),
            "AI": round(self.arithmetic_intensity, 2),
            "peak_MB": round(self.peak_on_chip_bytes / MB, 2),
            "spills": self.spill_stores,
        }


def analyze_dataflow(
    spec: BenchmarkSpec,
    dataflow: Dataflow,
    config: Optional[DataflowConfig] = None,
) -> DataflowReport:
    """Build the schedule for one dataflow and summarize its traffic."""
    if config is None:
        config = DataflowConfig(data_sram_bytes=32 * MB, evk_on_chip=False)
    graph, stats = dataflow.build_with_stats(spec, config)
    report = DataflowReport(
        benchmark=spec.name,
        dataflow=dataflow.name,
        total_bytes=graph.total_bytes(),
        data_bytes=graph.total_bytes(DATA_TAG),
        evk_bytes=graph.total_bytes(EVK_TAG),
        mod_ops=graph.total_mod_ops(),
        mod_muls=graph.total_mod_muls(),
        peak_on_chip_bytes=stats.peak_bytes,
        spill_stores=stats.spill_stores,
        reloads=stats.reloads,
        num_tasks=len(graph),
    )
    _check_invariants(spec, graph, config, report)
    return report


def _check_invariants(
    spec: BenchmarkSpec,
    graph: TaskGraph,
    config: DataflowConfig,
    report: DataflowReport,
) -> None:
    """Internal consistency checks every schedule must satisfy.

    * compute work equals the dataflow-independent stage totals,
    * streamed evk traffic equals the key size exactly (keys have no reuse),
    * traffic includes at least the compulsory input + output movement.
    """
    shape = HKSShape(spec)
    expected = shape.total_ops()
    compressed = config.key_compression and not config.evk_on_chip
    # Seed-compressed keys add one regeneration pass per evk tower pair.
    regen_muls = spec.dnum * spec.extended_towers * spec.n if compressed else 0
    if (report.mod_muls, report.mod_ops - report.mod_muls) != (
        expected.muls + regen_muls,
        expected.adds,
    ):
        raise AssertionError(
            f"{report.benchmark}/{report.dataflow}: op count drifted from the "
            f"stage algebra: {report.mod_muls} muls vs {expected.muls}"
        )
    expected_evk = spec.evk_bytes // 2 if compressed else spec.evk_bytes
    if not config.evk_on_chip and report.evk_bytes != expected_evk:
        raise AssertionError(
            f"streamed evk traffic {report.evk_bytes} != key size {expected_evk}"
        )
    compulsory = spec.input_bytes + spec.output_bytes
    if report.data_bytes < compulsory:
        raise AssertionError(
            f"data traffic {report.data_bytes} below compulsory {compulsory}"
        )


def minimum_mp_working_set_bytes(spec: BenchmarkSpec) -> int:
    """SRAM needed for MP to run spill-free (the paper's 675 MB-class figure).

    This is the full ModUp intermediate state plus the accumulators.
    """
    shape = HKSShape(spec)
    towers = shape.modup_intermediate_towers() + 2 * spec.extended_towers
    return towers * spec.tower_bytes
