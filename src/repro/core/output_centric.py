"""Output-Centric (OC) dataflow — paper Section IV-C, the contribution.

One *output tower* at a time.  The INTT results of as many digits as fit
(``dnum - 1`` under the paper's 32 MB budget) are pinned on-chip and reused
for every output tower, so ModUp P2 only ever materializes a single
converted tower; the per-tower partial sum is accumulated immediately and
only the accumulator is ever written back.  Digits that do not fit are
handled in tail passes ("the final digit is loaded to compute the last
partial sum", Section IV-C) after the pinned INTT outputs are released —
this keeps the pinned footprint at ``(dnum-1) * alpha`` towers for BTS3,
the paper's "INTT is applied to 30 towers [of 45]" on-chip reuse claim,
and degrades gracefully to digit-major passes under smaller budgets.

ModDown is equally output-centric: the ``K`` auxiliary INTTs are kept
on-chip and each chain tower runs BConv -> NTT -> finish back-to-back, so
the ModDown P2 expansion never exists in memory (the paper: "Calculating
one output tower at a time eliminates the expansion of ModDown P2").
"""

from __future__ import annotations

from repro.core.dataflow import Dataflow
from repro.core.hks_ops import PRI_ICOEF, PRI_ICOEF_LAST


class OutputCentric(Dataflow):
    """Per-output-tower schedule with pinned INTT reuse and tail passes."""

    name = "OC"
    title = "Output-Centric"

    def schedule(self, em) -> None:
        # Pin up to dnum - 1 digits (the paper's BTS3 configuration: the
        # last digit is always streamed through a tail pass, which also
        # keeps memory traffic overlapping with compute); degrade the pin
        # count when the budget cannot hold that many INTT outputs.
        capacity = (
            em.max_pinned_digits()
            if hasattr(em, "max_pinned_digits")
            else max(em.dnum - 1, 1)
        )
        limit = em.dnum - 1 if em.dnum > 1 else 1
        pinned_count = min(limit, capacity)
        pinned = list(range(pinned_count))
        tail = list(range(pinned_count, em.dnum))

        # ModUp P1 for the pinned digits; these stay resident for all of pass A.
        for d in pinned:
            for t in em.digit_towers(d):
                em.intt_input(t, priority=PRI_ICOEF)

        # Pass A: per output tower, accumulate every pinned-digit
        # contribution (Section 1 = chain towers, Section 2 = auxiliary).
        if pinned:
            for j in em.all_ext():
                owner = em.digit_of[j]
                if owner in pinned:
                    em.mulkey(owner, j)  # bypass: original tower, no BConv
                for d in pinned:
                    if d == owner:
                        continue
                    em.bconv(d, j)
                    em.ntt_ext(d, j)
                    em.mulkey(d, j)
            for d in pinned:
                em.free_digit_icoef(d)

        # Tail passes: one per remaining digit — load + INTT it, then
        # finish its contribution to every accumulator.
        for d in tail:
            for t in em.digit_towers(d):
                em.intt_input(t, priority=PRI_ICOEF_LAST)
            for j in em.all_ext():
                if em.digit_of[j] == d:
                    em.mulkey(d, j)  # bypass
                else:
                    em.bconv(d, j)
                    em.ntt_ext(d, j)
                    em.mulkey(d, j)
            em.free_digit_icoef(d)

        # Output-centric ModDown: per half, pin the K INTT results and fuse
        # P2 -> P3 -> P4 per output tower.
        em.moddown_output_centric()
