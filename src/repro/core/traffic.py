"""Traffic attribution: which HKS buffers cause the DRAM movement?

Splits a schedule's LOAD/STORE bytes by buffer class (input towers,
INTT outputs, BConv expansion, extended towers, accumulators, keys,
ModDown intermediates, outputs).  This is the quantified version of the
paper's Section IV prose — e.g. MP's traffic is dominated by the
``bc``/``ext`` expansion spills, OC's by the compulsory accumulator and
output movement.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.core.taskgraph import Queue, TaskGraph

#: buffer-name prefix -> reported class.
_CLASSES = (
    ("in[", "input"),
    ("icoef[", "intt_out"),
    ("bc[", "bconv_out"),
    ("ext[", "extended"),
    ("acc", "accumulator"),
    ("evk[", "keys"),
    ("mdc", "moddown_intt"),
    ("mdb", "moddown_bconv"),
    ("mde", "moddown_ntt"),
    ("out", "output"),
)

_NAME_RE = re.compile(r"^(?:load|store|spill)\s+(.*)$")


def classify_buffer(name: str) -> str:
    """Map a buffer name (from task labels) to its traffic class."""
    for prefix, cls in _CLASSES:
        if name.startswith(prefix):
            return cls
    return "other"


def traffic_by_class(graph: TaskGraph) -> Dict[str, int]:
    """Bytes moved per buffer class (loads + stores combined)."""
    totals: Dict[str, int] = {}
    for task in graph.queue_tasks(Queue.MEMORY):
        match = _NAME_RE.match(task.label)
        cls = classify_buffer(match.group(1)) if match else "other"
        totals[cls] = totals.get(cls, 0) + task.bytes_moved
    return dict(sorted(totals.items(), key=lambda kv: -kv[1]))


def traffic_rows(graph: TaskGraph) -> List[Dict[str, object]]:
    """Report rows (class, MB, share) for one schedule."""
    totals = traffic_by_class(graph)
    grand = sum(totals.values()) or 1
    return [
        {
            "class": cls,
            "MB": round(byte_count / (1 << 20), 1),
            "share_%": round(100 * byte_count / grand, 1),
        }
        for cls, byte_count in totals.items()
    ]
