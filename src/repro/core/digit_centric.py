"""Digit-Centric (DC) dataflow — paper Section IV-B.

"One digit at a time": each digit is loaded, INTT'd, fully expanded
(P2 over all its target towers), NTT'd and multiplied with its evk slice
before the next digit is touched.  Within a digit the schedule is still
stage-ordered, so the digit's full ``beta``-tower expansion is live at
once — smaller than MP's all-digit expansion, larger than OC's single
output tower.  The per-digit partial products accumulate into ``acc``,
which spills under small budgets (the paper: partial products "can either
be stored on-chip for later reduction ... or sent off-chip").  This mirrors
the dataflow of MAD (MICRO'23).
"""

from __future__ import annotations

from repro.core.dataflow import Dataflow


class DigitCentric(Dataflow):
    """Per-digit schedule: all of P1-P5 for digit d, then digit d+1."""

    name = "DC"
    title = "Digit-Centric"

    def schedule(self, em) -> None:
        for d in range(em.dnum):
            # P1: INTT this digit's towers.
            for t in em.digit_towers(d):
                em.intt_input(t)
            # P2: expand the digit to its beta complement towers.
            for j in em.all_ext():
                if em.digit_of[j] != d:
                    em.bconv(d, j)
            em.free_digit_icoef(d)
            # P3: NTT the expansion.
            for j in em.all_ext():
                if em.digit_of[j] != d:
                    em.ntt_ext(d, j)
            # P4 + P5: apply this digit's evk slice, accumulate partials.
            for j in em.all_ext():
                em.mulkey(d, j)

        # ModDown (stage-ordered; digits play no role after the reduction).
        em.moddown_staged()
