"""Max-Parallel (MP) dataflow — paper Section IV-A.

Stage-by-stage over *all* towers: every input tower is INTT'd, then every
digit is fully base-converted, then everything is NTT'd, and so on.  This
maximizes kernel-level parallelism (any two tasks within a stage are
independent) but materializes the entire intermediate state of each stage
at once, so under a finite on-chip budget the BConv expansion and the
extended digits thrash through SRAM.  MP is the baseline used by prior
accelerators (Cheetah, HEAX).
"""

from __future__ import annotations

from repro.core.dataflow import Dataflow


class MaxParallel(Dataflow):
    """Stage-ordered schedule: P1 for all, P2 for all, ..."""

    name = "MP"
    title = "Max-Parallel"

    def schedule(self, em) -> None:
        # ModUp P1: INTT every input tower.
        for t in range(em.kl):
            em.intt_input(t)

        # ModUp P2: full BConv expansion of every digit.
        for d in range(em.dnum):
            for j in em.all_ext():
                if em.digit_of[j] != d:
                    em.bconv(d, j)

        # ModUp P3: NTT every converted tower.
        for d in range(em.dnum):
            for j in em.all_ext():
                if em.digit_of[j] != d:
                    em.ntt_ext(d, j)
        for d in range(em.dnum):
            em.free_digit_icoef(d)

        # ModUp P4 + P5: apply the key digit by digit, accumulating.
        for d in range(em.dnum):
            for j in em.all_ext():
                em.mulkey(d, j)

        # ModDown, stage-ordered as well (one result polynomial at a time).
        em.moddown_staged()
