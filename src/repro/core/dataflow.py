"""Dataflow scheduler base: on-chip residency tracking + schedule builder.

A dataflow (MP / DC / OC) is a *generation order* for HKS work.  The
builder below turns that order into the paper's two in-order task queues
while enforcing a hard on-chip data-memory budget:

* every operand of a compute task must be resident on-chip — touching an
  off-chip value emits a ``LOAD``;
* producing a value reserves SRAM — when the budget would overflow, the
  lowest-priority resident value is evicted, emitting a ``STORE`` if it has
  no up-to-date DRAM copy (a *spill*);
* spilled values are transparently reloaded at next use.

The traffic difference between the three dataflows is therefore an
*emergent* property of their operation orders under one shared memory
model, which is the paper's central methodological point.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.stages import OpCount
from repro.core.taskgraph import DATA_TAG, Kind, TaskGraph
from repro.errors import MemoryModelError
from repro.params import MB, BenchmarkSpec


@dataclass(frozen=True)
class DataflowConfig:
    """Memory configuration a schedule is generated for.

    ``data_sram_bytes`` is the on-chip memory available for inputs and
    intermediates (the paper's 32 MB).  When ``evk_on_chip`` is true, keys
    sit in a separate pre-loaded key region and cost no DRAM traffic;
    otherwise every evk tower is streamed from DRAM exactly once.

    ``key_compression`` models the seed-compressed keys of MAD (paper
    Section IV-D): only the ``b`` half of each evk pair is stored, the
    uniform ``a`` half is regenerated on-chip from a PRNG seed — halving
    streamed key traffic at the cost of one generation pass per tower.
    """

    data_sram_bytes: int = 32 * MB
    evk_on_chip: bool = True
    key_compression: bool = False


@dataclass
class _Value:
    """Residency bookkeeping for one named on-chip/DRAM buffer."""

    name: str
    nbytes: int
    priority: int = 0
    on_chip: bool = False
    dirty: bool = False
    in_dram: bool = False
    producer: int = -1  # task index that made the current on-chip copy valid
    store_task: int = -1  # last STORE, for reload ordering
    last_use: int = 0
    locked: bool = False
    freed: bool = False
    traffic_tag: str = DATA_TAG


@dataclass
class ScheduleStats:
    """Aggregates the builder tracks while emitting a schedule."""

    peak_bytes: int = 0
    spill_stores: int = 0
    reloads: int = 0


class ScheduleBuilder:
    """Emits a :class:`TaskGraph` under an on-chip memory budget."""

    def __init__(self, name: str, budget_bytes: int):
        if budget_bytes <= 0:
            raise MemoryModelError("on-chip budget must be positive")
        self.graph = TaskGraph(name)
        self.budget = budget_bytes
        self.used = 0
        self.values: Dict[str, _Value] = {}
        self.stats = ScheduleStats()
        self._clock = 0

    # -- value lifecycle ----------------------------------------------------------

    def define_dram(self, name: str, nbytes: int, traffic_tag: str = DATA_TAG) -> None:
        """Declare a value that initially resides only in DRAM (inputs, evks)."""
        if name in self.values:
            raise MemoryModelError(f"value {name!r} already defined")
        self.values[name] = _Value(
            name=name, nbytes=nbytes, in_dram=True, traffic_tag=traffic_tag
        )

    def free(self, name: str) -> None:
        """Mark a value dead; its SRAM is released without a writeback."""
        v = self._get(name)
        if v.locked:
            raise MemoryModelError(f"cannot free locked value {name!r}")
        if v.on_chip:
            self.used -= v.nbytes
            v.on_chip = False
        v.freed = True

    def set_priority(self, name: str, priority: int) -> None:
        self._get(name).priority = priority

    def is_resident(self, name: str) -> bool:
        v = self.values.get(name)
        return bool(v and v.on_chip and not v.freed)

    # -- task emission ------------------------------------------------------------

    def touch(self, name: str) -> List[int]:
        """Ensure a value is on-chip; returns dependency task indices."""
        v = self._get(name)
        self._clock += 1
        v.last_use = self._clock
        if v.on_chip:
            return [v.producer] if v.producer >= 0 else []
        if not v.in_dram:
            raise MemoryModelError(
                f"value {name!r} is neither on-chip nor in DRAM (lost)"
            )
        deps = self._make_room(v.nbytes)
        if v.store_task >= 0:
            deps.append(v.store_task)
            self.stats.reloads += 1
        load = self.graph.add(
            Kind.LOAD,
            bytes_moved=v.nbytes,
            deps=deps,
            label=f"load {name}",
            traffic_tag=v.traffic_tag,
        )
        v.on_chip = True
        v.dirty = False
        v.producer = load
        self.used += v.nbytes
        self.stats.peak_bytes = max(self.stats.peak_bytes, self.used)
        return [load]

    def compute(
        self,
        kind: Kind,
        inputs: Iterable[str],
        outputs: Iterable[Tuple[str, int]],
        ops: OpCount,
        label: str = "",
        output_priority: int = 0,
        extra_deps: Iterable[int] = (),
    ) -> int:
        """Emit a compute task reading ``inputs`` and producing ``outputs``.

        ``outputs`` pairs names with byte sizes; an output that already
        exists on-chip (an accumulator) is updated in place.
        """
        inputs = list(inputs)
        deps: List[int] = list(extra_deps)
        locked: List[_Value] = []
        try:
            for name in inputs:
                deps.extend(self.touch(name))
                v = self._get(name)
                v.locked = True
                locked.append(v)
            out_values: List[_Value] = []
            for name, nbytes in outputs:
                v = self.values.get(name)
                if v is None or v.freed:
                    if v is not None:
                        del self.values[name]
                    v = _Value(name=name, nbytes=nbytes, priority=output_priority)
                    self.values[name] = v
                if not v.on_chip:
                    deps.extend(self._make_room(v.nbytes))
                    v.on_chip = True
                    self.used += v.nbytes
                    self.stats.peak_bytes = max(self.stats.peak_bytes, self.used)
                elif v.producer >= 0:
                    deps.append(v.producer)  # read-modify-write ordering
                v.locked = True
                locked.append(v)
                out_values.append(v)
            task = self.graph.add(
                kind,
                mod_muls=ops.muls,
                mod_adds=ops.adds,
                deps=deps,
                label=label,
            )
            self._clock += 1
            for v in out_values:
                v.dirty = True
                v.in_dram = False
                v.producer = task
                v.store_task = -1
                v.last_use = self._clock
            return task
        finally:
            for v in locked:
                v.locked = False

    def writeback(self, name: str) -> int:
        """Explicitly store a value to DRAM (kept on-chip, now clean)."""
        v = self._get(name)
        if not v.on_chip:
            raise MemoryModelError(f"cannot write back off-chip value {name!r}")
        deps = [v.producer] if v.producer >= 0 else []
        store = self.graph.add(
            Kind.STORE,
            bytes_moved=v.nbytes,
            deps=deps,
            label=f"store {name}",
            traffic_tag=v.traffic_tag,
        )
        v.dirty = False
        v.in_dram = True
        v.store_task = store
        return store

    # -- eviction -----------------------------------------------------------------

    def _make_room(self, nbytes: int) -> List[int]:
        """Evict until ``nbytes`` fit; returns store-task dependencies."""
        if nbytes > self.budget:
            raise MemoryModelError(
                f"single value of {nbytes} bytes exceeds the "
                f"{self.budget}-byte on-chip budget"
            )
        deps: List[int] = []
        while self.used + nbytes > self.budget:
            victim = self._pick_victim()
            if victim is None:
                raise MemoryModelError(
                    "working set exceeds on-chip budget: all resident values "
                    "are locked by the current operation"
                )
            if victim.dirty:
                store = self.graph.add(
                    Kind.STORE,
                    bytes_moved=victim.nbytes,
                    deps=[victim.producer] if victim.producer >= 0 else [],
                    label=f"spill {victim.name}",
                    traffic_tag=victim.traffic_tag,
                )
                victim.dirty = False
                victim.in_dram = True
                victim.store_task = store
                self.stats.spill_stores += 1
                deps.append(store)
            victim.on_chip = False
            self.used -= victim.nbytes
        return deps

    def _pick_victim(self) -> Optional[_Value]:
        candidates = [
            v
            for v in self.values.values()
            if v.on_chip and not v.locked and not v.freed
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda v: (v.priority, v.last_use))

    def _get(self, name: str) -> _Value:
        v = self.values.get(name)
        if v is None:
            raise MemoryModelError(f"unknown value {name!r}")
        if v.freed:
            raise MemoryModelError(f"use after free of value {name!r}")
        return v


class Dataflow(abc.ABC):
    """Base class for the three CiFlow dataflows."""

    #: Short id used in reports ("MP", "DC", "OC").
    name: str = "?"
    #: Long name as used in the paper.
    title: str = ""

    def build(self, spec: BenchmarkSpec, config: DataflowConfig) -> TaskGraph:
        """Emit the full HKS schedule for ``spec`` under ``config``."""
        graph, _ = self.build_with_stats(spec, config)
        return graph

    def build_with_stats(
        self, spec: BenchmarkSpec, config: DataflowConfig
    ) -> Tuple[TaskGraph, ScheduleStats]:
        """Like :meth:`build` but also returns the builder statistics."""
        from repro.core.hks_ops import HKSEmitter  # local: avoids module cycle

        builder = ScheduleBuilder(f"{spec.name}/{self.name}", config.data_sram_bytes)
        self.schedule(HKSEmitter(builder, spec, config))
        builder.graph.validate()
        return builder.graph, builder.stats

    @abc.abstractmethod
    def schedule(self, em) -> None:
        """Drive an emitter through this dataflow's operation order.

        ``em`` is either an :class:`~repro.core.hks_ops.HKSEmitter`
        (producing a performance schedule) or a
        :class:`~repro.core.functional.FunctionalEmitter` (executing the
        same order on real RNS data) — the ordering logic is shared, which
        is what makes the functional equivalence tests meaningful.
        """

    def __repr__(self) -> str:
        return f"<Dataflow {self.name}>"
