"""HKS stage algebra: operation and byte counts for every pipeline stage.

This module is the quantitative form of paper Figure 1 / Section III: given
a :class:`~repro.params.BenchmarkSpec` it answers "how many modular
multiplies does ModUp P2 of digit ``d`` cost?", "how many towers does each
stage produce?", and provides the op-count conventions used consistently by
the analytical model, the dataflow schedulers and the RPU cost model.

Conventions (documented here once, used everywhere):

* an N-point negacyclic (i)NTT costs ``N/2 * log2(N)`` modular multiplies
  and ``N * log2(N)`` modular additions (one mul + two adds per butterfly);
* a BConv from ``a`` towers to one target tower costs ``N * a`` multiplies
  and ``N * a`` additions (multiply-accumulate), matching the paper's
  ``N * alpha * beta`` count for a full digit extension;
* point-wise tower operations cost ``N`` multiplies (and ``N`` adds when
  they accumulate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.params import BenchmarkSpec


@dataclass(frozen=True)
class OpCount:
    """Modular multiply / add pair."""

    muls: int
    adds: int

    @property
    def total(self) -> int:
        return self.muls + self.adds

    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(self.muls + other.muls, self.adds + other.adds)

    def __mul__(self, k: int) -> "OpCount":
        return OpCount(self.muls * k, self.adds * k)

    __rmul__ = __mul__


def ntt_tower_ops(n: int) -> OpCount:
    """One forward or inverse NTT of a single tower."""
    log_n = n.bit_length() - 1
    return OpCount(muls=(n // 2) * log_n, adds=n * log_n)


def bconv_tower_ops(n: int, source_towers: int) -> OpCount:
    """BConv of one *output* tower from ``source_towers`` inputs (MACs)."""
    return OpCount(muls=n * source_towers, adds=n * source_towers)


def pointwise_mul_ops(n: int) -> OpCount:
    """Point-wise multiply of one tower (ApplyKey halves, ModDown scaling)."""
    return OpCount(muls=n, adds=0)


def pointwise_mac_ops(n: int) -> OpCount:
    """Point-wise multiply-accumulate of one tower."""
    return OpCount(muls=n, adds=n)


def accumulate_ops(n: int) -> OpCount:
    """Point-wise addition of one tower into an accumulator."""
    return OpCount(muls=0, adds=n)


class HKSShape:
    """All per-stage counts for one benchmark's HKS invocation."""

    def __init__(self, spec: BenchmarkSpec):
        self.spec = spec

    # -- ModUp ---------------------------------------------------------------

    def modup_p1_ops(self) -> OpCount:
        """P1: INTT of every input tower (all digits)."""
        return self.spec.kl * ntt_tower_ops(self.spec.n)

    def modup_p2_ops(self) -> OpCount:
        """P2: BConv of each digit to its beta complement towers."""
        total = OpCount(0, 0)
        for d, a_d in enumerate(self.spec.digit_sizes):
            total = total + self.spec.beta(d) * bconv_tower_ops(self.spec.n, a_d)
        return total

    def modup_p3_ops(self) -> OpCount:
        """P3: NTT of every converted tower (beta per digit)."""
        towers = sum(self.spec.beta(d) for d in range(self.spec.dnum))
        return towers * ntt_tower_ops(self.spec.n)

    def modup_p4_ops(self) -> OpCount:
        """P4: point-wise evk multiply, both key halves, all digits."""
        towers = 2 * self.spec.dnum * self.spec.extended_towers
        return towers * pointwise_mul_ops(self.spec.n)

    def modup_p5_ops(self) -> OpCount:
        """P5: digit reduction — ``dnum - 1`` accumulations per output tower."""
        if self.spec.dnum == 1:
            return OpCount(0, 0)
        towers = 2 * self.spec.extended_towers * (self.spec.dnum - 1)
        return towers * accumulate_ops(self.spec.n)

    # -- ModDown ---------------------------------------------------------------

    def moddown_p1_ops(self) -> OpCount:
        """P1: INTT of the K auxiliary towers of both polynomials."""
        return 2 * self.spec.kp * ntt_tower_ops(self.spec.n)

    def moddown_p2_ops(self) -> OpCount:
        """P2: BConv ``P -> Q_l`` for both polynomials."""
        return 2 * self.spec.kl * bconv_tower_ops(self.spec.n, self.spec.kp)

    def moddown_p3_ops(self) -> OpCount:
        """P3: NTT of the converted ``kl`` towers, both polynomials."""
        return 2 * self.spec.kl * ntt_tower_ops(self.spec.n)

    def moddown_p4_ops(self) -> OpCount:
        """P4: subtract + scale by ``P^-1`` per output tower (MAC-like)."""
        return 2 * self.spec.kl * pointwise_mac_ops(self.spec.n)

    # -- totals -------------------------------------------------------------------

    def stage_table(self) -> Dict[str, OpCount]:
        """All stages by name (the per-experiment reports print this)."""
        return {
            "ModUp.P1(INTT)": self.modup_p1_ops(),
            "ModUp.P2(BConv)": self.modup_p2_ops(),
            "ModUp.P3(NTT)": self.modup_p3_ops(),
            "ModUp.P4(ApplyKey)": self.modup_p4_ops(),
            "ModUp.P5(Reduce)": self.modup_p5_ops(),
            "ModDown.P1(INTT)": self.moddown_p1_ops(),
            "ModDown.P2(BConv)": self.moddown_p2_ops(),
            "ModDown.P3(NTT)": self.moddown_p3_ops(),
            "ModDown.P4(Scale)": self.moddown_p4_ops(),
        }

    def total_ops(self) -> OpCount:
        """Dataflow-independent total (the paper: "The number of operations
        per HKS benchmark is independent of dataflow")."""
        total = OpCount(0, 0)
        for ops in self.stage_table().values():
            total = total + ops
        return total

    # -- tower geometry (used by schedulers) -----------------------------------------

    def modup_intermediate_towers(self) -> int:
        """Live towers if all ModUp intermediates coexist (the MP working set)."""
        spec = self.spec
        extended = spec.dnum * spec.extended_towers
        applied = 2 * spec.dnum * spec.extended_towers
        return spec.kl + extended + applied

    def describe(self) -> Dict[str, object]:
        ops = self.total_ops()
        return {
            "benchmark": self.spec.name,
            "mod_muls": ops.muls,
            "mod_adds": ops.adds,
            "mod_ops": ops.total,
        }
