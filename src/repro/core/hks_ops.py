"""Shared HKS emission helpers used by all three dataflow schedulers.

The emitter names every tower-granular buffer of the HKS pipeline
(paper Figure 1) and provides one method per stage kernel; the dataflows
differ *only* in the order they invoke these methods — which is exactly the
paper's definition of a dataflow ("differ in their sequence of
instructions, reuse of loaded and computed data, ...").

Buffer naming (extended tower index ``j`` runs ``0..kl+kp-1``; the first
``kl`` are chain towers, the rest are ``P`` towers; ``h`` is the ciphertext
half, 0 or 1):

==============  =============================================================
``in[t]``       input polynomial tower ``t`` (EVAL domain, lives in DRAM)
``icoef[t]``    INTT of input tower ``t`` (ModUp P1 output)
``bc[d][j]``    BConv output of digit ``d`` for target tower ``j`` (P2)
``ext[d][j]``   NTT'd extended tower (P3); bypass towers reuse ``in[t]``
``acc{h}[j]``   running ApplyKey/Reduce accumulators (one per half)
``evk[d][j]``   streamed key pair for (digit, tower), when keys are off-chip
``mdc{h}[j]``   ModDown P1 outputs (INTT of auxiliary accumulator towers)
``mdb{h}[i]``   ModDown P2 outputs (BConv ``P -> q_i``)
``mde{h}[i]``   ModDown P3 outputs (NTT of ``mdb``)
``out{h}[i]``   final output towers (stored to DRAM)
==============  =============================================================
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.dataflow import DataflowConfig, ScheduleBuilder
from repro.core.stages import (
    OpCount,
    bconv_tower_ops,
    ntt_tower_ops,
    pointwise_mac_ops,
)
from repro.core.taskgraph import EVK_TAG, Kind
from repro.errors import ScheduleError
from repro.params import BenchmarkSpec

# Eviction priorities: higher survives longer under memory pressure.
PRI_TRANSIENT = 10  # bc / mdb / mde: consumed immediately
PRI_EXT = 15        # extended towers awaiting ApplyKey
PRI_INPUT = 20      # input towers (clean in DRAM; cheap to re-fetch)
PRI_ACC = 40        # output accumulators
PRI_ICOEF_STAGE = 60  # INTT outputs while their digit's BConv is running
PRI_MDC = 80        # ModDown INTT results, reused by every output tower
PRI_ICOEF_LAST = 90  # tail digits' INTT outputs during the OC tail passes
PRI_ICOEF = 100     # pinned INTT outputs (OC's key reuse asset)

HALVES = (0, 1)


class HKSEmitter:
    """Stage-kernel emission bound to one (benchmark, config, builder)."""

    def __init__(
        self, builder: ScheduleBuilder, spec: BenchmarkSpec, config: DataflowConfig
    ):
        self.b = builder
        self.spec = spec
        self.config = config
        self.tb = spec.tower_bytes
        self.n = spec.n
        #: BConv chunk-length override (0 = derive from the budget); the
        #: schedule solver sets this to explore accumulation granularity.
        self.bconv_chunk = 0
        #: extended index -> owning digit (or -1 for P towers).
        self.digit_of: List[int] = []
        for d, size in enumerate(spec.digit_sizes):
            self.digit_of.extend([d] * size)
        self.digit_of.extend([-1] * spec.kp)
        #: per extended tower: has the accumulator been started yet?
        self.acc_started: Dict[int, bool] = {}
        for t in range(spec.kl):
            builder.define_dram(f"in[{t}]", self.tb)
        if not config.evk_on_chip:
            # Seed-compressed keys stream only the b half (1 tower/pair).
            evk_bytes = self.tb if config.key_compression else 2 * self.tb
            for d in range(spec.dnum):
                for j in range(spec.extended_towers):
                    builder.define_dram(f"evk[{d}][{j}]", evk_bytes, EVK_TAG)

    # -- geometry helpers (the generic emitter interface) --------------------------

    @property
    def dnum(self) -> int:
        return self.spec.dnum

    @property
    def kl(self) -> int:
        return self.spec.kl

    @property
    def kp(self) -> int:
        return self.spec.kp

    def digit_towers(self, d: int) -> List[int]:
        """Global tower indices of digit ``d``."""
        start = sum(self.spec.digit_sizes[:d])
        return list(range(start, start + self.spec.digit_sizes[d]))

    def q_region(self) -> range:
        return range(self.spec.kl)

    def p_region(self) -> range:
        return range(self.spec.kl, self.spec.extended_towers)

    def all_ext(self) -> range:
        return range(self.spec.extended_towers)

    # -- ModUp kernels --------------------------------------------------------------

    def max_pinned_digits(self) -> int:
        """How many digits' INTT outputs fit on-chip alongside the working
        set (OC's adaptive pinning).  Counted over digit-size prefixes with
        an 8-tower margin for accumulators, keys and transients.
        """
        margin_towers = 2
        avail = self.b.budget // self.tb - margin_towers
        pinned = 0
        used = 0
        for size in self.spec.digit_sizes:
            if used + size > avail:
                break
            used += size
            pinned += 1
        return pinned

    def intt_input(self, t: int, priority: int = PRI_ICOEF_STAGE) -> None:
        """ModUp P1 for input tower ``t`` -> ``icoef[t]``."""
        self.b.compute(
            Kind.INTT,
            inputs=[f"in[{t}]"],
            outputs=[(f"icoef[{t}]", self.tb)],
            ops=ntt_tower_ops(self.n),
            label=f"ModUp.P1 intt t{t}",
            output_priority=priority,
        )

    def _bconv_chunk_len(self, num_sources: int) -> int:
        """Largest source count whose towers fit on-chip alongside the
        output and some working margin.

        BConv is a sum of per-source scaled terms, so it can accumulate in
        chunks when the full source set exceeds the budget (small-SRAM
        configurations); each chunk is one partial-accumulation task.
        """
        if self.bconv_chunk:
            return min(num_sources, max(1, self.bconv_chunk))
        budget_towers = self.b.budget // self.tb
        return min(num_sources, max(1, budget_towers - 4))

    def _emit_bconv(self, sources: List[str], out: str, label: str) -> None:
        chunk = self._bconv_chunk_len(len(sources))
        for lo in range(0, len(sources), chunk):
            part = sources[lo : lo + chunk]
            suffix = f" [{lo}:{lo + len(part)}]" if chunk < len(sources) else ""
            self.b.compute(
                Kind.BCONV,
                inputs=part,
                outputs=[(out, self.tb)],
                ops=bconv_tower_ops(self.n, len(part)),
                label=label + suffix,
                output_priority=PRI_TRANSIENT,
            )

    def bconv(self, d: int, j: int) -> None:
        """ModUp P2: digit ``d`` -> coefficient-domain tower ``j``."""
        if self.digit_of[j] == d:
            raise ScheduleError(f"tower {j} belongs to digit {d}: bypass, not BConv")
        sources = [f"icoef[{t}]" for t in self.digit_towers(d)]
        self._emit_bconv(sources, f"bc[{d}][{j}]", f"ModUp.P2 bconv d{d}->t{j}")

    def ntt_ext(self, d: int, j: int) -> None:
        """ModUp P3: NTT ``bc[d][j]`` -> ``ext[d][j]`` (frees the BConv buffer)."""
        self.b.compute(
            Kind.NTT,
            inputs=[f"bc[{d}][{j}]"],
            outputs=[(f"ext[{d}][{j}]", self.tb)],
            ops=ntt_tower_ops(self.n),
            label=f"ModUp.P3 ntt d{d}->t{j}",
            output_priority=PRI_EXT,
        )
        self.b.free(f"bc[{d}][{j}]")

    def mulkey(self, d: int, j: int) -> None:
        """ModUp P4 (+ P5 accumulation) for digit ``d`` and tower ``j``.

        Multiplies the extended tower by both evk halves; the first digit to
        reach tower ``j`` initialises the accumulators, later digits
        accumulate.  Bypass towers (``j`` inside digit ``d``) read the
        original input tower instead of an extended one.
        """
        bypass = self.digit_of[j] == d
        src = f"in[{j}]" if bypass else f"ext[{d}][{j}]"
        inputs = [src]
        if not self.config.evk_on_chip:
            inputs.append(f"evk[{d}][{j}]")
        first = not self.acc_started.get(j, False)
        # Regenerating the compressed a-half costs one PRNG pass per tower.
        compressed = self.config.key_compression and not self.config.evk_on_chip
        regen = self.n if compressed else 0
        ops = OpCount(muls=2 * self.n + regen, adds=0 if first else 2 * self.n)
        self.b.compute(
            Kind.MULKEY,
            inputs=inputs,
            outputs=[(f"acc0[{j}]", self.tb), (f"acc1[{j}]", self.tb)],
            ops=ops,
            label=f"ModUp.P4 mulkey d{d} t{j}{' (bypass)' if bypass else ''}",
            output_priority=PRI_ACC,
        )
        self.acc_started[j] = True
        if not bypass:
            self.b.free(src)
        if not self.config.evk_on_chip:
            self.b.free(f"evk[{d}][{j}]")

    def free_digit_icoef(self, d: int) -> None:
        """Release a digit's INTT outputs once no stage will read them again."""
        for t in self.digit_towers(d):
            self.b.free(f"icoef[{t}]")

    # -- ModDown kernels ----------------------------------------------------------------

    def md_intt(self, j: int, h: int) -> None:
        """ModDown P1: INTT auxiliary accumulator tower ``j`` of half ``h``.

        ModDown processes the two result polynomials one after the other so
        that only one half's ``K`` INTT outputs need to stay resident.
        """
        if j not in self.p_region():
            raise ScheduleError(f"ModDown P1 applies to P towers, got {j}")
        self.b.compute(
            Kind.INTT,
            inputs=[f"acc{h}[{j}]"],
            outputs=[(f"mdc{h}[{j}]", self.tb)],
            ops=ntt_tower_ops(self.n),
            label=f"ModDown.P1 intt h{h} t{j}",
            output_priority=PRI_MDC,
        )
        self.b.free(f"acc{h}[{j}]")

    def md_bconv(self, i: int, h: int) -> None:
        """ModDown P2: BConv all auxiliary towers -> chain tower ``i``."""
        sources = [f"mdc{h}[{j}]" for j in self.p_region()]
        self._emit_bconv(sources, f"mdb{h}[{i}]", f"ModDown.P2 bconv h{h} t{i}")

    def md_ntt(self, i: int, h: int) -> None:
        """ModDown P3: NTT of the converted tower."""
        self.b.compute(
            Kind.NTT,
            inputs=[f"mdb{h}[{i}]"],
            outputs=[(f"mde{h}[{i}]", self.tb)],
            ops=ntt_tower_ops(self.n),
            label=f"ModDown.P3 ntt h{h} t{i}",
            output_priority=PRI_TRANSIENT,
        )
        self.b.free(f"mdb{h}[{i}]")

    def md_finish(self, i: int, h: int) -> None:
        """ModDown P4: subtract, scale by ``P^-1``, store output tower ``i``."""
        self.b.compute(
            Kind.PWISE,
            inputs=[f"acc{h}[{i}]", f"mde{h}[{i}]"],
            outputs=[(f"out{h}[{i}]", self.tb)],
            ops=pointwise_mac_ops(self.n),
            label=f"ModDown.P4 finish h{h} t{i}",
            output_priority=PRI_TRANSIENT,
        )
        self.b.free(f"acc{h}[{i}]")
        self.b.free(f"mde{h}[{i}]")
        self.b.writeback(f"out{h}[{i}]")
        self.b.free(f"out{h}[{i}]")

    def free_mdc(self, h: int) -> None:
        for j in self.p_region():
            self.b.free(f"mdc{h}[{j}]")

    def moddown_staged(self) -> None:
        """Stage-ordered ModDown (MP/DC): per half, P1 all, P2 all, P3 all, P4 all."""
        for h in HALVES:
            for j in self.p_region():
                self.md_intt(j, h)
            for i in self.q_region():
                self.md_bconv(i, h)
            for i in self.q_region():
                self.md_ntt(i, h)
            self.free_mdc(h)
            for i in self.q_region():
                self.md_finish(i, h)

    def moddown_output_centric(self) -> None:
        """OC ModDown: per half, fuse P2 -> P3 -> P4 per output tower."""
        for h in HALVES:
            for j in self.p_region():
                self.md_intt(j, h)
            for i in self.q_region():
                self.md_bconv(i, h)
                self.md_ntt(i, h)
                self.md_finish(i, h)
            self.free_mdc(h)
