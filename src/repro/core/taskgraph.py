"""Task-graph intermediate representation for HKS schedules.

A schedule is two in-order queues — memory tasks and compute tasks — plus
cross-queue dependencies, exactly the structure of the paper's software
framework (Section V-C): *"The framework has two distinct queues, one for
memory tasks and one for compute tasks.  The tasks at the front of each
queue are fetched and executed in parallel once all the task's dependencies
are resolved."*

Compute tasks carry modular-operation counts; memory tasks carry byte
counts.  The RPU simulator in :mod:`repro.rpu` turns these into time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ScheduleError


class Queue(enum.Enum):
    """Which in-order queue a task is dispatched from."""

    MEMORY = "memory"
    COMPUTE = "compute"


class Kind(enum.Enum):
    """Task kinds; memory kinds move towers, compute kinds are HKS kernels."""

    LOAD = "load"
    STORE = "store"
    INTT = "intt"
    NTT = "ntt"
    BCONV = "bconv"
    MULKEY = "mulkey"
    ACCUM = "accum"
    PWISE = "pwise"

    @property
    def queue(self) -> Queue:
        if self in (Kind.LOAD, Kind.STORE):
            return Queue.MEMORY
        return Queue.COMPUTE


#: Kinds that stream evaluation-key towers (charged to the evk traffic bucket).
EVK_TAG = "evk"
DATA_TAG = "data"


@dataclass
class Task:
    """One unit of scheduled work.

    Attributes
    ----------
    index:
        Position in the overall emission order (unique id).
    kind / queue:
        What the task does and which queue dispatches it.
    bytes_moved:
        DRAM bytes for LOAD/STORE tasks (0 for compute tasks).
    mod_muls / mod_adds:
        Modular multiply / add counts for compute tasks.
    deps:
        Indices of tasks that must complete before this task may start.
    label:
        Human-readable description ("ModUp.P2 d1 -> t7"), used in traces.
    traffic_tag:
        ``"evk"`` for key streaming, ``"data"`` otherwise; Table II splits
        traffic by this tag.
    """

    index: int
    kind: Kind
    bytes_moved: int = 0
    mod_muls: int = 0
    mod_adds: int = 0
    deps: Tuple[int, ...] = ()
    label: str = ""
    traffic_tag: str = DATA_TAG

    @property
    def queue(self) -> Queue:
        return self.kind.queue

    @property
    def mod_ops(self) -> int:
        return self.mod_muls + self.mod_adds


class TaskGraph:
    """An append-only schedule: two in-order queues plus a dependency DAG."""

    def __init__(self, name: str = ""):
        self.name = name
        self.tasks: List[Task] = []

    # -- construction -------------------------------------------------------------

    def add(
        self,
        kind: Kind,
        *,
        bytes_moved: int = 0,
        mod_muls: int = 0,
        mod_adds: int = 0,
        deps: Iterable[int] = (),
        label: str = "",
        traffic_tag: str = DATA_TAG,
    ) -> int:
        """Append a task; returns its index."""
        deps = tuple(sorted(set(int(d) for d in deps)))
        index = len(self.tasks)
        for d in deps:
            if not 0 <= d < index:
                raise ScheduleError(
                    f"task {index} ({label!r}) depends on invalid task {d}"
                )
        if kind.queue is Queue.MEMORY and bytes_moved <= 0:
            raise ScheduleError(f"memory task {label!r} must move bytes")
        if kind.queue is Queue.COMPUTE and mod_muls + mod_adds <= 0:
            raise ScheduleError(f"compute task {label!r} must perform work")
        self.tasks.append(
            Task(
                index=index,
                kind=kind,
                bytes_moved=bytes_moved,
                mod_muls=mod_muls,
                mod_adds=mod_adds,
                deps=deps,
                label=label,
                traffic_tag=traffic_tag,
            )
        )
        return index

    # -- views ---------------------------------------------------------------------

    def queue_tasks(self, queue: Queue) -> List[Task]:
        """Tasks of one queue, in dispatch order."""
        return [t for t in self.tasks if t.queue is queue]

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    # -- aggregate accounting ---------------------------------------------------------

    def total_bytes(self, traffic_tag: Optional[str] = None) -> int:
        """Total DRAM traffic, optionally restricted to one tag."""
        return sum(
            t.bytes_moved
            for t in self.tasks
            if t.queue is Queue.MEMORY
            and (traffic_tag is None or t.traffic_tag == traffic_tag)
        )

    def total_mod_ops(self) -> int:
        return sum(t.mod_ops for t in self.tasks)

    def total_mod_muls(self) -> int:
        return sum(t.mod_muls for t in self.tasks)

    def arithmetic_intensity(self) -> float:
        """Modular ops per DRAM byte — the paper's AI metric (Table II)."""
        total = self.total_bytes()
        if total == 0:
            return float("inf")
        return self.total_mod_ops() / total

    def kind_histogram(self) -> Dict[str, int]:
        hist: Dict[str, int] = {}
        for t in self.tasks:
            hist[t.kind.value] = hist.get(t.kind.value, 0) + 1
        return hist

    # -- serialization -----------------------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        """Plain-dict form for external tooling (schedule viewers, diffing)."""
        return {
            "name": self.name,
            "tasks": [
                {
                    "index": t.index,
                    "kind": t.kind.value,
                    "bytes": t.bytes_moved,
                    "muls": t.mod_muls,
                    "adds": t.mod_adds,
                    "deps": list(t.deps),
                    "label": t.label,
                    "tag": t.traffic_tag,
                }
                for t in self.tasks
            ],
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "TaskGraph":
        """Inverse of :meth:`to_json`; validates as it rebuilds."""
        graph = cls(str(payload.get("name", "")))
        for entry in payload["tasks"]:
            graph.add(
                Kind(entry["kind"]),
                bytes_moved=int(entry["bytes"]),
                mod_muls=int(entry["muls"]),
                mod_adds=int(entry["adds"]),
                deps=entry["deps"],
                label=str(entry["label"]),
                traffic_tag=str(entry["tag"]),
            )
        graph.validate()
        return graph

    # -- validation ---------------------------------------------------------------------

    def validate(self) -> None:
        """Check the DAG is dependency-consistent (deps precede dependents)."""
        for t in self.tasks:
            for d in t.deps:
                if d >= t.index:
                    raise ScheduleError(
                        f"task {t.index} depends on later task {d}"
                    )

    def __repr__(self) -> str:
        mem = len(self.queue_tasks(Queue.MEMORY))
        comp = len(self.queue_tasks(Queue.COMPUTE))
        return (
            f"TaskGraph({self.name!r}, {comp} compute + {mem} memory tasks, "
            f"{self.total_bytes() / (1 << 20):.1f} MB traffic)"
        )
