"""Functional execution of dataflow schedules on real RNS data.

The :class:`FunctionalEmitter` implements the same emitter interface as
:class:`~repro.core.hks_ops.HKSEmitter`, but each method performs the
actual modular arithmetic on tower rows instead of emitting tasks.  Because
the three dataflows drive the emitter through *their own* operation orders,
running them here proves the orders are valid HKS computations: modular
addition is exact and commutative, so all three must produce results
bit-identical to the reference :func:`repro.ckks.keyswitch.key_switch` —
and the tests assert exactly that.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.ckks.context import CKKSContext
from repro.ckks.keys import KeySwitchKey
from repro.core.dataflow import Dataflow
from repro.errors import ScheduleError
from repro.ntt.modmath import add_mod, mul_mod, sub_mod
from repro.rns.basis import RNSBasis
from repro.rns.bconv import get_converter
from repro.rns.poly import Domain, PolyBatch, RNSPoly, get_ntt_context

HALVES = (0, 1)


class FunctionalEmitter:
    """Executes emitter calls on concrete tower data.

    Parameters
    ----------
    context / level:
        CKKS context and the level of the input polynomial.  The digit
        partition follows :meth:`CKKSContext.digit_indices`.
    poly:
        The EVAL-domain polynomial being key-switched (e.g. the ``d2``
        part after a tensor product).
    key:
        The hybrid switching key whose digit pairs are applied.
    """

    def __init__(
        self,
        context: CKKSContext,
        poly: RNSPoly,
        key: KeySwitchKey,
        level: int,
    ):
        if poly.domain is not Domain.EVAL:
            raise ScheduleError("functional HKS expects an EVAL-domain input")
        self.context = context
        self.level = level
        self.n = poly.n
        self._digits = context.digit_indices(level)
        self._extended = context.extended_basis(level)
        self._pairs = key.restricted(context, level)
        if len(self._pairs) < len(self._digits):
            raise ScheduleError("key has fewer digits than the level needs")
        self.digit_of: List[int] = []
        for d, group in enumerate(self._digits):
            self.digit_of.extend([d] * len(group))
        self.digit_of.extend([-1] * len(context.p_basis))
        # Tower-row storage, keyed like the schedule emitter's buffers.
        self._in = poly.data
        self._icoef: Dict[int, np.ndarray] = {}
        self._bc: Dict[Tuple[int, int], np.ndarray] = {}
        self._ext: Dict[Tuple[int, int], np.ndarray] = {}
        self._acc: Dict[Tuple[int, int], np.ndarray] = {}
        self._mdc: Dict[Tuple[int, int], np.ndarray] = {}
        self._mdb: Dict[Tuple[int, int], np.ndarray] = {}
        self._mde: Dict[Tuple[int, int], np.ndarray] = {}
        self._out: Dict[Tuple[int, int], np.ndarray] = {}

    # -- geometry (emitter interface) ------------------------------------------

    @property
    def dnum(self) -> int:
        return len(self._digits)

    @property
    def kl(self) -> int:
        return self.level + 1

    @property
    def kp(self) -> int:
        return len(self.context.p_basis)

    def digit_towers(self, d: int) -> List[int]:
        return list(self._digits[d])

    def q_region(self) -> range:
        return range(self.kl)

    def p_region(self) -> range:
        return range(self.kl, self.kl + self.kp)

    def all_ext(self) -> range:
        return range(self.kl + self.kp)

    def _modulus(self, j: int) -> int:
        return self._extended.moduli[j]

    # -- ModUp ------------------------------------------------------------------

    def intt_input(self, t: int, priority: int = 0) -> None:
        q = self._modulus(t)
        self._icoef[t] = get_ntt_context(self.n, q).inverse(self._in[t])

    def bconv(self, d: int, j: int) -> None:
        towers = self.digit_towers(d)
        source = self.context.q_basis.subbasis(towers)
        target = RNSBasis([self._modulus(j)])
        conv = get_converter(source, target)
        rows = np.stack([self._icoef[t] for t in towers])
        self._bc[(d, j)] = conv.convert(rows)[0]

    def ntt_ext(self, d: int, j: int) -> None:
        q = self._modulus(j)
        self._ext[(d, j)] = get_ntt_context(self.n, q).forward(self._bc.pop((d, j)))

    def mulkey(self, d: int, j: int) -> None:
        q = self._modulus(j)
        src = self._in[j] if self.digit_of[j] == d else self._ext.pop((d, j))
        b_d, a_d = self._pairs[d]
        for h, half in zip(HALVES, (b_d, a_d)):
            prod = mul_mod(src, half.data[j], q)
            if (h, j) in self._acc:
                self._acc[(h, j)] = add_mod(self._acc[(h, j)], prod, q)
            else:
                self._acc[(h, j)] = prod

    def free_digit_icoef(self, d: int) -> None:
        for t in self.digit_towers(d):
            self._icoef.pop(t, None)

    # -- ModDown ------------------------------------------------------------------

    def md_intt(self, j: int, h: int) -> None:
        q = self._modulus(j)
        self._mdc[(h, j)] = get_ntt_context(self.n, q).inverse(self._acc.pop((h, j)))

    def md_bconv(self, i: int, h: int) -> None:
        target = RNSBasis([self._modulus(i)])
        conv = get_converter(self.context.p_basis, target)
        rows = np.stack([self._mdc[(h, j)] for j in self.p_region()])
        self._mdb[(h, i)] = conv.convert(rows)[0]

    def md_ntt(self, i: int, h: int) -> None:
        q = self._modulus(i)
        self._mde[(h, i)] = get_ntt_context(self.n, q).forward(self._mdb.pop((h, i)))

    def md_finish(self, i: int, h: int) -> None:
        q = self._modulus(i)
        diff = sub_mod(self._acc.pop((h, i)), self._mde.pop((h, i)), q)
        self._out[(h, i)] = mul_mod(diff, self.context.p_inv_mod_q[i], q)

    def free_mdc(self, h: int) -> None:
        self._mdc = {k: v for k, v in self._mdc.items() if k[0] != h}

    def moddown_staged(self) -> None:
        for h in HALVES:
            for j in self.p_region():
                self.md_intt(j, h)
            for i in self.q_region():
                self.md_bconv(i, h)
            for i in self.q_region():
                self.md_ntt(i, h)
            for i in self.q_region():
                self.md_finish(i, h)
            self.free_mdc(h)

    def moddown_output_centric(self) -> None:
        for h in HALVES:
            for j in self.p_region():
                self.md_intt(j, h)
            for i in self.q_region():
                self.md_bconv(i, h)
                self.md_ntt(i, h)
                self.md_finish(i, h)
            self.free_mdc(h)

    # -- result -----------------------------------------------------------------------

    def result(self) -> Tuple[RNSPoly, RNSPoly]:
        """Assemble the two output polynomials over the level basis."""
        basis = self.context.level_basis(self.level)
        halves = []
        for h in HALVES:
            rows = [self._out[(h, i)] for i in self.q_region()]
            halves.append(RNSPoly(basis, np.stack(rows), Domain.EVAL))
        return halves[0], halves[1]


def execute_dataflow(
    dataflow: Dataflow,
    context: CKKSContext,
    poly: RNSPoly,
    key: KeySwitchKey,
    level: int,
) -> Tuple[RNSPoly, RNSPoly]:
    """Run one dataflow's operation order on real data; returns (c0', c1')."""
    em = FunctionalEmitter(context, poly, key, level)
    dataflow.schedule(em)
    return em.result()


# -- cross-ciphertext batch axis -------------------------------------------------


class BatchFunctionalEmitter(FunctionalEmitter):
    """Functional HKS over a ``(B, L, N)`` batch of input polynomials.

    Same operation order as :class:`FunctionalEmitter` — the dataflow
    drives the emitter identically — but every tower-row buffer carries a
    leading batch axis, so each schedule step is one ``(B, N)`` kernel
    pass instead of B.  The per-tower NTTs transform row stacks
    (:meth:`NTTContext.forward` handles ``(rows, N)``), BConv broadcasts
    its hat-table matmul over the batch, and the modular helpers
    broadcast elementwise, so each member's output is bit-identical to
    running :func:`execute_dataflow` on it alone.
    """

    def __init__(
        self,
        context: CKKSContext,
        batch: PolyBatch,
        key: KeySwitchKey,
        level: int,
    ):
        super().__init__(context, batch.member(0), key, level)
        # Replace the member-0 input with the full (B, K, N) stack; the
        # tower index moves to axis 1.
        self._in = batch.data

    def intt_input(self, t: int, priority: int = 0) -> None:
        q = self._modulus(t)
        self._icoef[t] = get_ntt_context(self.n, q).inverse(self._in[:, t])

    def bconv(self, d: int, j: int) -> None:
        towers = self.digit_towers(d)
        source = self.context.q_basis.subbasis(towers)
        target = RNSBasis([self._modulus(j)])
        conv = get_converter(source, target)
        rows = np.stack([self._icoef[t] for t in towers], axis=1)
        self._bc[(d, j)] = conv.convert(rows)[..., 0, :]

    def mulkey(self, d: int, j: int) -> None:
        q = self._modulus(j)
        src = self._in[:, j] if self.digit_of[j] == d else self._ext.pop((d, j))
        b_d, a_d = self._pairs[d]
        for h, half in zip(HALVES, (b_d, a_d)):
            prod = mul_mod(src, half.data[j], q)
            if (h, j) in self._acc:
                self._acc[(h, j)] = add_mod(self._acc[(h, j)], prod, q)
            else:
                self._acc[(h, j)] = prod

    def md_bconv(self, i: int, h: int) -> None:
        target = RNSBasis([self._modulus(i)])
        conv = get_converter(self.context.p_basis, target)
        rows = np.stack([self._mdc[(h, j)] for j in self.p_region()], axis=1)
        self._mdb[(h, i)] = conv.convert(rows)[..., 0, :]

    def result(self) -> Tuple[PolyBatch, PolyBatch]:
        basis = self.context.level_basis(self.level)
        halves = []
        for h in HALVES:
            rows = [self._out[(h, i)] for i in self.q_region()]
            halves.append(PolyBatch(basis, np.stack(rows, axis=1), Domain.EVAL))
        return halves[0], halves[1]


def execute_dataflow_batch(
    dataflow: Dataflow,
    context: CKKSContext,
    batch: PolyBatch,
    key: KeySwitchKey,
    level: int,
) -> Tuple[PolyBatch, PolyBatch]:
    """Run one dataflow's operation order over a batch of inputs at once.

    Per-member results are bit-identical to :func:`execute_dataflow`
    (and hence to the reference ``key_switch``) — the batch axis only
    widens each kernel pass.
    """
    em = BatchFunctionalEmitter(context, batch, key, level)
    dataflow.schedule(em)
    return em.result()
