"""CiFlow core: HKS stage algebra, task graphs, and the three dataflows."""

from repro.core.analysis import (
    DataflowReport,
    analyze_dataflow,
    minimum_mp_working_set_bytes,
)
from repro.core.dataflow import Dataflow, DataflowConfig, ScheduleBuilder
from repro.core.digit_centric import DigitCentric
from repro.core.max_parallel import MaxParallel
from repro.core.output_centric import OutputCentric
from repro.core.stages import HKSShape, OpCount, ntt_tower_ops
from repro.core.taskgraph import DATA_TAG, EVK_TAG, Kind, Queue, Task, TaskGraph
from repro.core.traffic import classify_buffer, traffic_by_class, traffic_rows

#: Registry of the three paper dataflows, in presentation order.
DATAFLOWS = {
    "MP": MaxParallel(),
    "DC": DigitCentric(),
    "OC": OutputCentric(),
}


def get_dataflow(name: str) -> Dataflow:
    """Look up a dataflow by its short id (case-insensitive)."""
    key = name.upper()
    if key not in DATAFLOWS:
        raise KeyError(f"unknown dataflow {name!r}; choose from {list(DATAFLOWS)}")
    return DATAFLOWS[key]


__all__ = [
    "DATAFLOWS",
    "DATA_TAG",
    "Dataflow",
    "DataflowConfig",
    "DataflowReport",
    "DigitCentric",
    "EVK_TAG",
    "HKSShape",
    "Kind",
    "MaxParallel",
    "OpCount",
    "OutputCentric",
    "Queue",
    "ScheduleBuilder",
    "Task",
    "TaskGraph",
    "analyze_dataflow",
    "classify_buffer",
    "get_dataflow",
    "minimum_mp_working_set_bytes",
    "ntt_tower_ops",
    "traffic_by_class",
    "traffic_rows",
]
