"""``asyncio`` front-end for the estimate service.

An async serving endpoint (a web handler, a notebook, a gateway fanning
out to many tenants) awaits ``AsyncEstimateService.estimate(plan)``;
concurrent awaiters land in the same micro-batch, so identical plans
dedup exactly as in the synchronous service and distinct plans shard
together.  The blocking ``gather()`` runs in the event loop's default
executor — the loop itself never blocks on a backend run.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, List, Optional, Sequence, Union

if TYPE_CHECKING:
    from repro.api.backends import RunReport
    from repro.api.plan import Plan

from repro.faults import Deadline, DeadlineExceeded
from repro.serve.service import EstimateService


class AsyncEstimateService:
    """Awaitable facade over :class:`~repro.serve.service.EstimateService`.

    Wrap an existing service (sharing its caches and stats) or let the
    constructor build one from the same keyword arguments
    ``EstimateService`` takes.
    """

    def __init__(self, service: Optional[EstimateService] = None, **kwargs):
        self.service = service if service is not None else EstimateService(**kwargs)
        self._flush: Optional[asyncio.Task] = None

    async def estimate(
        self, plan: "Plan", *,
        deadline: "Union[None, float, Deadline]" = None,
    ) -> "RunReport":
        """Submit one plan and await its report.

        Awaiters that arrive while a flush is in flight are queued for
        the next one — every handle resolves after at most two flushes.
        With a ``deadline`` the wait is bounded: the handle carries it
        into the service (which skips or short-circuits expired work)
        and the await itself stops at expiry with
        :class:`~repro.faults.DeadlineExceeded` — a stuck flush cannot
        hold the caller past its budget.
        """
        loop = asyncio.get_running_loop()
        deadline = Deadline.coerce(deadline)
        handle = self.service.submit(plan, deadline=deadline)
        while not handle.done:
            if self._flush is None or self._flush.done():
                self._flush = loop.create_task(self._drain(loop))
            if deadline is None:
                await asyncio.shield(self._flush)
                continue
            try:
                await asyncio.wait_for(
                    asyncio.shield(self._flush),
                    max(deadline.remaining(), 0.001),
                )
            except asyncio.TimeoutError:
                raise DeadlineExceeded(
                    f"deadline expired awaiting plan {plan.name}"
                ) from None
        return handle.result()

    async def estimate_many(self, plans: Sequence["Plan"]) -> List["RunReport"]:
        """Estimate a batch concurrently (identical plans compute once)."""
        return list(await asyncio.gather(
            *(self.estimate(plan) for plan in plans)
        ))

    async def _drain(self, loop: asyncio.AbstractEventLoop) -> None:
        # Yield once so every coroutine already scheduled this tick can
        # submit into the batch before it is gathered.
        await asyncio.sleep(0)
        await loop.run_in_executor(None, self.service.gather)

    @property
    def stats(self):
        return self.service.stats

    async def aclose(self) -> None:
        """Drain outstanding gathers, then shut the service down.

        A server tearing down must not abandon awaiters that already
        submitted: every in-flight flush is awaited and any submissions
        still parked in the batch get one final gather, so each pending
        handle resolves before the underlying service (and its shard
        pool) closes.  Idempotent.
        """
        loop = asyncio.get_running_loop()
        while True:
            flush = self._flush
            if flush is not None and not flush.done():
                await asyncio.shield(flush)
                continue
            if self.service.pending:
                self._flush = loop.create_task(self._drain(loop))
                continue
            break
        self.close()

    def close(self) -> None:
        """Close immediately (pending handles stay unresolved).

        Prefer :meth:`aclose` from async code — it drains first.
        """
        self.service.close()

    async def __aenter__(self) -> "AsyncEstimateService":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()
