"""Multi-process plan execution: shard non-identical plans across workers.

One estimate request is single-threaded (the schedulers and the RPU
simulator are pure Python), so a busy service's only road to more
throughput on cold plans is more processes.  :class:`ShardPool` keeps a
small pool of supervised worker processes and round-robins distinct
plans across them; plans travel as canonical JSON (:meth:`Plan.to_json`)
and reports come back as JSON payloads, so the transport is the same
wire format the disk cache uses — no pickling of library internals.

Workers share the machine-wide kernel disk cache (``repro.cache``): the
first process to need an NTT twiddle or BConv hat table persists it, and
every other worker — and every *future* worker — starts warm.  Cold-start
cost is paid once per machine, not once per worker.

The pool supervises its own processes.  A worker that dies mid-request
(OOM-killed, segfaulted, ``SIGKILL``-ed) is detected by liveness
polling, reaped, and replaced; its in-flight plans are either requeued
onto the surviving workers (``run_plans(..., requeue=True)`` — what the
serving layer uses, so a kill loses no requests) or surfaced to the
caller as :class:`WorkerDied` (the default — never a silent hang).
A worker that is alive but *hung* (stuck in a syscall, spinning, paused
by the fault injector) is caught by the same sweep when a
``stall_timeout`` is set: a worker showing no progress for that long is
killed, counted in ``stalls``, and handled exactly like a death —
requeue or :class:`StalledWorker`.  Requeues per job are capped
(:data:`ShardPool.MAX_REQUEUES`) so a payload that reliably wedges its
worker fails loudly instead of cycling forever.  Either way the pool
stays usable afterwards.  The network front-end's
:class:`~repro.net.supervisor.WorkerSupervisor` builds on the same
primitives: :meth:`reap` for idle-time health checks and
:meth:`rolling_restart` for graceful ``SIGHUP`` recycling.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import threading
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import ParameterError, ReproError
from repro.faults import Deadline, DeadlineExceeded, fault_point

if TYPE_CHECKING:
    from repro.api.backends import RunReport
    from repro.api.plan import Plan


class WorkerDied(ReproError):
    """A shard worker process died with plans still in flight.

    Raised by :meth:`ShardPool.run_plans` when requeueing is not enabled.
    ``lost`` names the workloads whose results were lost; the pool itself
    has already reaped the dead worker and remains usable — resubmitting
    is always safe because plans are pure.
    """

    def __init__(self, message: str, lost: Sequence[str] = ()):
        super().__init__(message)
        self.lost = tuple(lost)


class StalledWorker(WorkerDied):
    """A live-but-hung shard worker was retired mid-batch.

    Subclasses :class:`WorkerDied` so existing requeue/error handling
    applies unchanged; the distinct type (and the ``stalled_worker``
    error kind on the wire) tells operators the worker was killed by the
    pool's stall reaper, not by the OS.
    """


class RemotePlanError(ReproError):
    """A plan raised inside a worker process.

    Carries the original exception type name and message (the traceback
    object itself cannot cross the process boundary as JSON).
    """

    def __init__(self, exc_type: str, message: str):
        super().__init__(f"{exc_type}: {message}")
        self.exc_type = exc_type


def _run_payload(payload: str) -> dict:
    """Worker entry: JSON job in, JSON result out (module-level for mp).

    Dispatches on the payload envelope: a ``"payload_kind"`` of
    ``"functional_batch"`` routes to the stacked functional executor
    (:mod:`repro.serve.functional`); anything else is a plan (plan JSON
    has only ``schedule``/``workload`` top-level keys).
    """
    import json

    from repro.api.plan import Plan, report_to_dict

    head = json.loads(payload)
    if isinstance(head, dict) and head.get("payload_kind") == "functional_batch":
        from repro.serve.functional import FunctionalBatch

        return FunctionalBatch.from_json(payload).run_to_dict()
    return report_to_dict(Plan.from_json(payload).run())


def _worker_main(task_q, result_q) -> None:
    """Worker loop: execute queued plan payloads until the stop sentinel.

    Per-plan failures are reported as structured error results — a bad
    plan must never take the worker (let alone the batch) down with it.
    """
    while True:
        item = task_q.get()
        if item is None:
            break
        job, payload = item
        try:
            # "worker.run" fires before the computation: a crash here
            # models an OOM kill mid-request, a delay models a hung
            # worker (what stall_timeout reaps), an error is isolated
            # like any plan failure.  The full payload is the context so
            # fault plans can match on any workload field.
            fault_point("worker.run", context=payload)
            result = {"ok": True, "report": _run_payload(payload)}
        except BaseException as exc:  # noqa: BLE001 - isolate any failure
            result = {
                "ok": False,
                "error": {"type": type(exc).__name__, "message": str(exc)},
            }
        # "worker.result" fires after the computation but before the
        # result is published — a crash here loses finished work and
        # exercises the parent's requeue path end to end.
        fault_point("worker.result", context=payload)
        result_q.put((job, result))


def _default_workers() -> int:
    cpus = os.cpu_count() or 2
    return max(2, min(4, cpus))


class _Worker:
    """One supervised worker process and its private task queue."""

    __slots__ = ("process", "task_q", "outstanding", "busy_since")

    def __init__(self, process, task_q):
        self.process = process
        self.task_q = task_q
        #: Job ids dispatched to this worker and not yet answered.
        self.outstanding: Set[Tuple[int, int]] = set()
        #: Monotonic time of the last observed progress while busy
        #: (a dispatch onto an idle worker, or any result it returned);
        #: ``None`` when idle.  The stall reaper measures against this.
        self.busy_since: Optional[float] = None

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def retire(self) -> None:
        """Ask the worker to exit after finishing its queued work."""
        try:
            self.task_q.put(None)
        except (ValueError, OSError):
            pass  # queue already closed alongside a dead worker


class ShardPool:
    """A supervised pool of worker processes that execute plans in parallel.

    Workers are created lazily on first use (forking before they are
    needed would copy nothing useful) and prefer the ``fork`` start
    method where available so they inherit the parent's warm in-process
    caches on top of the shared disk cache.

    Liveness is the pool's contract: a dead worker is always detected
    (no silent hangs), reaped, and replaced, and its in-flight plans are
    requeued or reported via :class:`WorkerDied`.  With a
    ``stall_timeout``, a live worker showing no progress for that long
    is killed and handled the same way (:class:`StalledWorker`).
    ``deaths`` counts workers observed dead (stall kills included);
    ``stalls`` counts the subset the pool killed for hanging;
    ``restarts`` counts replacement and recycle spawns.
    """

    #: Liveness poll interval while waiting on batch results (seconds).
    POLL_S = 0.05
    #: Grace period for a retiring worker to drain its queue (seconds).
    RETIRE_GRACE_S = 10.0
    #: Times one job may be requeued after worker deaths/stalls before
    #: it fails with :class:`WorkerDied` — a payload that reliably
    #: wedges its worker must not cycle through the pool forever.
    MAX_REQUEUES = 3

    def __init__(self, workers: Optional[int] = None, *,
                 start_method: Optional[str] = None,
                 stall_timeout: Optional[float] = None):
        self.workers = _default_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise ParameterError("a shard pool needs at least one worker")
        if stall_timeout is not None and stall_timeout <= 0:
            stall_timeout = None
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._workers: List[_Worker] = []
        self._result_q = None
        self._batch_seq = 0
        self._rr = 0  # round-robin dispatch cursor
        self._lock = threading.RLock()
        #: Kill a live worker that makes no progress for this many
        #: seconds mid-batch; ``None`` disables stall reaping.
        self.stall_timeout = stall_timeout
        self.deaths = 0
        self.restarts = 0
        self.stalls = 0

    # -- worker lifecycle -------------------------------------------------------

    @property
    def start_method(self) -> str:
        return self._ctx.get_start_method()

    @property
    def started(self) -> bool:
        with self._lock:
            return bool(self._workers)

    def worker_pids(self) -> List[int]:
        """Pids of the current workers (spawning them if needed)."""
        with self._lock:
            self._ensure_workers()
            return [w.process.pid for w in self._workers]

    def alive_workers(self) -> int:
        with self._lock:
            return sum(1 for w in self._workers if w.alive)

    def _spawn_worker(self) -> _Worker:
        task_q = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main, args=(task_q, self._result_q), daemon=True
        )
        process.start()
        worker = _Worker(process, task_q)
        self._workers.append(worker)
        return worker

    def _ensure_workers(self) -> None:
        if self._result_q is None:
            self._result_q = self._ctx.Queue()
        while len(self._workers) < self.workers:
            self._spawn_worker()

    def reap(self, *, restart: bool = True) -> int:
        """Remove dead workers; optionally spawn replacements.

        The idle-time half of supervision (the in-batch half lives in
        :meth:`run_plans`).  Returns the number of dead workers found.
        Safe to call from a supervisor thread at any time — batch
        execution holds the same lock.
        """
        with self._lock:
            dead = [w for w in self._workers if not w.alive]
            for worker in dead:
                self._workers.remove(worker)
                self.deaths += 1
            if dead and restart and self._result_q is not None:
                while len(self._workers) < self.workers:
                    self._spawn_worker()
                    self.restarts += 1
            return len(dead)

    def rolling_restart(self) -> int:
        """Recycle every worker gracefully, one at a time.

        Each replacement is spawned *before* its predecessor is retired,
        so capacity never drops below ``workers - 0`` live processes and
        queued work drains normally.  This is what the network server
        runs on ``SIGHUP``.  Returns the number of workers recycled.
        """
        with self._lock:
            if not self._workers:
                return 0  # nothing running: next use starts fresh workers
            old = list(self._workers)
            for worker in old:
                self._workers.remove(worker)
                self._spawn_worker()
                self.restarts += 1
                worker.retire()
            deadline = time.monotonic() + self.RETIRE_GRACE_S
            for worker in old:
                worker.process.join(max(0.0, deadline - time.monotonic()))
                if worker.alive:
                    worker.process.terminate()
                    worker.process.join(1.0)
            return len(old)

    # -- batch execution --------------------------------------------------------

    def run_plans(
        self, plans: Sequence["Plan"], *, requeue: bool = False,
        return_exceptions: bool = False,
        deadline: Optional[Deadline] = None,
    ) -> List[Union["RunReport", ReproError]]:
        """Execute ``plans`` across the workers, preserving order.

        Plans should already be deduplicated (the
        :class:`~repro.serve.service.EstimateService` does this) — the
        pool itself runs exactly what it is given.

        A worker that dies mid-batch is detected within :data:`POLL_S`
        seconds and replaced.  With ``requeue=True`` its in-flight plans
        are redistributed and the batch completes normally (plans are
        pure, so re-execution is safe); otherwise :class:`WorkerDied` is
        raised naming the lost workloads.  A live worker that hangs is
        reaped the same way once ``stall_timeout`` elapses
        (:class:`StalledWorker`).  With ``return_exceptions=True`` a
        plan that *raises* inside a worker yields a
        :class:`RemotePlanError` in its slot instead of raising here.
        With a ``deadline``, the wait for results is bounded: on expiry
        unfinished slots become :class:`DeadlineExceeded`
        (``return_exceptions=True``) or the batch raises it.
        """
        from repro.api.plan import report_from_dict

        plans = list(plans)
        return self._run_batch(
            [plan.to_json() for plan in plans],
            [plan.name for plan in plans],
            [plan.run for plan in plans],
            report_from_dict,
            requeue=requeue, return_exceptions=return_exceptions,
            deadline=deadline,
        )

    def run_functional(
        self, batches: Sequence, *, requeue: bool = False,
        return_exceptions: bool = False,
        deadline: Optional[Deadline] = None,
    ) -> List[Union[list, ReproError]]:
        """Execute stacked functional batches across the workers.

        Each item is a :class:`~repro.serve.functional.FunctionalBatch`
        (one group of same-level requests); each slot of the returned
        list holds that batch's ``List[FunctionalResult]``.  Sharding
        semantics are identical to :meth:`run_plans` — batches travel as
        canonical JSON, are pure (safe to requeue after a worker death),
        and distinct groups run concurrently across processes while each
        group's B ciphertexts run as one stacked kernel pass inside its
        worker.
        """
        from repro.serve.functional import results_from_dict

        batches = list(batches)
        return self._run_batch(
            [b.to_json() for b in batches],
            [b.name for b in batches],
            [b.run for b in batches],
            results_from_dict,
            requeue=requeue, return_exceptions=return_exceptions,
            deadline=deadline,
        )

    def _run_batch(
        self, job_payloads: List[str], job_names: List[str],
        job_inline: List, decode, *, requeue: bool, return_exceptions: bool,
        deadline: Optional[Deadline] = None,
    ) -> List:
        """Shared dispatch/supervise/collect loop behind :meth:`run_plans`
        and :meth:`run_functional`.

        ``job_payloads`` are the wire payloads, ``job_inline[i]`` runs job
        ``i`` in-process (the single-job shortcut), and ``decode`` turns a
        worker's result payload back into the caller's value type.
        """
        if not job_payloads:
            return []
        if len(job_payloads) == 1:
            # Not worth a round-trip through the pool.
            return [self._run_inline(job_inline[0], return_exceptions,
                                     deadline)]
        with self._lock:
            self._ensure_workers()
            batch = self._batch_seq
            self._batch_seq += 1
            payloads = {
                (batch, i): payload
                for i, payload in enumerate(job_payloads)
            }
            names = {(batch, i): name for i, name in enumerate(job_names)}
            for job in payloads:
                self._dispatch(job, payloads[job])
            results: Dict[int, Union[object, ReproError]] = {}
            remaining = set(payloads)
            requeues: Dict[Tuple[int, int], int] = {}
            while remaining:
                if deadline is not None and deadline.expired:
                    expired = DeadlineExceeded(
                        f"batch deadline expired with {len(remaining)} "
                        f"job(s) unfinished"
                    )
                    if not return_exceptions:
                        self._abandon(remaining)
                        raise expired
                    for job in list(remaining):
                        results[job[1]] = expired
                    self._abandon(remaining)
                    break
                self._check_liveness(remaining, payloads, names, requeue,
                                     requeues, results, return_exceptions)
                try:
                    job, result = self._result_q.get(timeout=self.POLL_S)
                except queue_mod.Empty:
                    continue
                now = time.monotonic()
                if job not in remaining:
                    continue  # stale (aborted batch) or already requeued+done
                remaining.discard(job)
                for worker in self._workers:
                    if job in worker.outstanding:
                        worker.outstanding.discard(job)
                        # Any returned result is progress: restart that
                        # worker's stall clock (or park it when idle).
                        worker.busy_since = now if worker.outstanding else None
                if result["ok"]:
                    results[job[1]] = decode(result["report"])
                else:
                    error = RemotePlanError(result["error"]["type"],
                                            result["error"]["message"])
                    if not return_exceptions:
                        self._abandon(remaining)
                        raise error
                    results[job[1]] = error
            return [results[i] for i in range(len(job_payloads))]

    def _run_inline(self, run, return_exceptions: bool,
                    deadline: Optional[Deadline] = None,
                    ) -> Union[object, ReproError]:
        try:
            if deadline is not None:
                deadline.check("inline batch")
            return run()
        except DeadlineExceeded as exc:
            if return_exceptions:
                return exc
            raise
        except Exception as exc:
            if return_exceptions:
                return RemotePlanError(type(exc).__name__, str(exc))
            raise

    def _dispatch(self, job: Tuple[int, int], payload: str) -> None:
        """Hand one job to the next live worker (round-robin)."""
        fault_point("pool.dispatch", context=payload)
        live = [w for w in self._workers if w.alive] or self._workers
        worker = live[self._rr % len(live)]
        self._rr += 1
        if not worker.outstanding:
            worker.busy_since = time.monotonic()
        worker.outstanding.add(job)
        worker.task_q.put((job, payload))

    def _check_liveness(self, remaining, payloads, names, requeue,
                        requeues, results, return_exceptions) -> None:
        """Reap dead *and hung* workers; requeue or surface their jobs.

        A worker is hung when it is alive but has shown no progress (no
        result returned) for longer than ``stall_timeout``; it is
        killed, counted in both ``stalls`` and ``deaths``, and its
        in-flight jobs take the same path as a genuine death.  Each
        job's requeue count is capped at :data:`MAX_REQUEUES`, after
        which the job fails with the appropriate error instead of
        cycling through (and wedging) every replacement worker.
        """
        stalled: Set[Tuple[int, int]] = set()
        if self.stall_timeout is not None:
            now = time.monotonic()
            for worker in self._workers:
                if (worker.alive and worker.busy_since is not None
                        and worker.outstanding & remaining
                        and now - worker.busy_since > self.stall_timeout):
                    stalled |= worker.outstanding & remaining
                    self.stalls += 1
                    worker.process.kill()
                    worker.process.join(1.0)
        dead = [w for w in self._workers if not w.alive]
        if not dead:
            return
        lost: Set[Tuple[int, int]] = set()
        for worker in dead:
            self._workers.remove(worker)
            self.deaths += 1
            lost |= worker.outstanding & remaining
        while len(self._workers) < self.workers:
            self._spawn_worker()
            self.restarts += 1
        if not lost:
            return
        if requeue:
            over_cap: Set[Tuple[int, int]] = set()
            for job in sorted(lost):
                requeues[job] = requeues.get(job, 0) + 1
                if requeues[job] > self.MAX_REQUEUES:
                    over_cap.add(job)
                else:
                    self._dispatch(job, payloads[job])
            if not over_cap:
                return
            lost = over_cap
            if return_exceptions:
                for job in over_cap:
                    remaining.discard(job)
                    results[job[1]] = self._lost_error({job}, names, stalled)
                return
        else:
            self._abandon(remaining)
        error = self._lost_error(lost, names, stalled)
        if not requeue:
            raise error
        # requeue=True but some jobs exhausted their cap without
        # return_exceptions: fail the batch loudly.
        self._abandon(remaining)
        raise error

    @staticmethod
    def _lost_error(jobs, names, stalled) -> WorkerDied:
        """Build the WorkerDied/StalledWorker naming the lost workloads."""
        workloads = sorted({names[job] for job in jobs})
        if jobs & stalled:
            return StalledWorker(
                f"shard worker hung past stall_timeout with {len(jobs)} "
                f"plan(s) in flight ({', '.join(workloads)}); the pool "
                f"killed and replaced it — resubmit, or use "
                f"run_plans(..., requeue=True)",
                lost=workloads,
            )
        return WorkerDied(
            f"shard worker died with {len(jobs)} plan(s) in flight "
            f"({', '.join(workloads)}); the pool has respawned the worker — "
            f"resubmit, or use run_plans(..., requeue=True)",
            lost=workloads,
        )

    def _abandon(self, remaining) -> None:
        """Forget a failed batch's outstanding jobs before raising.

        Results that still arrive for them are discarded by the batch-id
        check in the next ``run_plans`` wait loop.
        """
        for worker in self._workers:
            worker.outstanding -= remaining
        remaining.clear()

    # -- shutdown ---------------------------------------------------------------

    def close(self) -> None:
        """Shut the workers down (a later ``run_plans`` starts fresh ones)."""
        with self._lock:
            for worker in self._workers:
                worker.retire()
            deadline = time.monotonic() + 2.0
            for worker in self._workers:
                worker.process.join(max(0.0, deadline - time.monotonic()))
                if worker.alive:
                    worker.process.terminate()
                    worker.process.join(1.0)
            self._workers = []

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._lock:
            state = f"live={self.alive_workers()}" if self._workers else "lazy"
        return (
            f"ShardPool(workers={self.workers}, "
            f"start_method={self.start_method!r}, {state}, "
            f"deaths={self.deaths}, stalls={self.stalls}, "
            f"restarts={self.restarts})"
        )
