"""Multi-process plan execution: shard non-identical plans across workers.

One estimate request is single-threaded (the schedulers and the RPU
simulator are pure Python), so a busy service's only road to more
throughput on cold plans is more processes.  :class:`ShardPool` keeps a
small pool of worker processes and round-robins distinct plans across
them; plans travel as canonical JSON (:meth:`Plan.to_json`) and reports
come back as JSON payloads, so the transport is the same wire format the
disk cache uses — no pickling of library internals.

Workers share the machine-wide kernel disk cache (``repro.cache``): the
first process to need an NTT twiddle or BConv hat table persists it, and
every other worker — and every *future* worker — starts warm.  Cold-start
cost is paid once per machine, not once per worker.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.errors import ParameterError

if TYPE_CHECKING:
    from repro.api.backends import RunReport
    from repro.api.plan import Plan


def _run_payload(payload: str) -> dict:
    """Worker entry: JSON plan in, JSON report out (module-level for mp)."""
    from repro.api.plan import Plan, report_to_dict

    return report_to_dict(Plan.from_json(payload).run())


def _default_workers() -> int:
    cpus = os.cpu_count() or 2
    return max(2, min(4, cpus))


class ShardPool:
    """A pool of worker processes that execute plans in parallel.

    The pool is created lazily on first use (forking before it is needed
    would copy nothing useful) and prefers the ``fork`` start method
    where available so workers inherit the parent's warm in-process
    caches on top of the shared disk cache.
    """

    def __init__(self, workers: Optional[int] = None, *,
                 start_method: Optional[str] = None):
        self.workers = _default_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise ParameterError("a shard pool needs at least one worker")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._pool = None

    @property
    def start_method(self) -> str:
        return self._ctx.get_start_method()

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._ctx.Pool(processes=self.workers)
        return self._pool

    def run_plans(self, plans: Sequence["Plan"]) -> List["RunReport"]:
        """Execute ``plans`` across the workers, preserving order.

        Plans should already be deduplicated (the
        :class:`~repro.serve.service.EstimateService` does this) — the
        pool itself runs exactly what it is given.
        """
        from repro.api.plan import report_from_dict

        plans = list(plans)
        if not plans:
            return []
        if len(plans) == 1 or self.workers == 1:
            # Not worth a round-trip through the pool.
            return [plan.run() for plan in plans]
        pool = self._ensure_pool()
        payloads = [plan.to_json() for plan in plans]
        chunksize = max(1, len(payloads) // self.workers)
        results = pool.map(_run_payload, payloads, chunksize=chunksize)
        return [report_from_dict(data) for data in results]

    def close(self) -> None:
        """Shut the workers down (the pool can not be reused afterwards)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "live" if self._pool is not None else "lazy"
        return (
            f"ShardPool(workers={self.workers}, "
            f"start_method={self.start_method!r}, {state})"
        )
