"""The batching estimate service: many sessions, one computation.

``estimate()`` is a pure function of its :class:`~repro.api.plan.Plan`,
which makes serving it a caching problem.  :class:`EstimateService`
exploits that in three layers:

1. **micro-batching + dedup** — ``submit()`` parks requests; ``gather()``
   drains the batch, groups submissions by plan digest and computes each
   distinct plan exactly once, fanning the one report out to every
   waiting handle (N sessions asking for the same HELR estimate cost one
   backend run);
2. **report LRU + disk cache** — finished reports are kept in an
   in-memory LRU keyed by plan digest and, by default, persisted through
   :mod:`repro.cache` under the ``report`` namespace, so a *second
   process* answering the same plan never recomputes it (the serving
   analogue of PR 4's cross-process kernel-table cache);
3. **sharding** — distinct cold plans fan out across a
   :class:`~repro.serve.pool.ShardPool` of worker processes when one is
   attached.

The service is thread-safe (one lock around the batch and cache state);
:mod:`repro.serve.aio` puts an ``asyncio`` front-end on top of it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Union

from repro import __version__, cache
from repro.api.plan import Plan, report_from_dict, report_to_dict
from repro.errors import ParameterError
from repro.faults import Deadline, DeadlineExceeded, fault_point

if TYPE_CHECKING:
    from repro.api.backends import RunReport

    from repro.serve.pool import ShardPool

#: Disk-cache namespace for serialized :class:`RunReport` payloads.
REPORT_CACHE_KIND = "report"

#: Stamped into every disk-cached report.  A plan digest covers the
#: *request* content only — the answer additionally depends on the
#: pricing-model code, so reports written by a different library version
#: are treated as misses rather than served stale after an upgrade.
#: (The kernel-table cache needs no such stamp: tables are mathematically
#: determined by their key.)
REPORT_MODEL_VERSION = __version__


class ServeError(ParameterError):
    """Misuse of the serving API (e.g. reading an ungathered handle)."""


class AdmissionError(ServeError):
    """A plan failed static verification at ``submit()`` time.

    Carries the full :class:`~repro.analysis.AnalysisReport` as
    ``.report`` so callers can inspect every diagnostic, not just the
    first."""

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


#: Accepted values for ``EstimateService(admission=...)``.
ADMISSION_MODES = ("strict", "warn", "off")


@dataclass
class ServiceStats:
    """Where the service's answers came from (monotonic counters).

    ``submitted``/``batch_hits`` count submissions; ``computed``,
    ``memory_hits``, ``disk_hits`` and ``failed`` count the *batch-
    distinct digests* each gather had to look up (same-batch duplicates
    appear in ``batch_hits``, later-batch repeats in the hit buckets).
    """

    submitted: int = 0
    #: Truly distinct digests seen over the service's lifetime.
    unique: int = 0
    #: Full backend executions (the only expensive bucket).
    computed: int = 0
    #: Computations that raised instead of producing a report.
    failed: int = 0
    #: Submissions that joined an already-pending identical plan.
    batch_hits: int = 0
    #: Batch-distinct digests answered from the in-memory report LRU.
    memory_hits: int = 0
    #: Batch-distinct digests answered from the cross-process disk cache.
    disk_hits: int = 0
    #: Functional HKS requests submitted (separate stream from plans).
    functional_submitted: int = 0
    #: Stacked kernel passes executed for functional requests: each pass
    #: serves one group of same-level submissions in one batched circuit.
    functional_passes: int = 0
    #: Distinct functional requests those passes carried.
    functional_ciphertexts: int = 0
    #: Handles answered with DeadlineExceeded instead of a result.
    deadline_exceeded: int = 0
    #: Batch-distinct digests whose computation was skipped outright
    #: because every waiter's deadline had already expired.
    deadline_skipped: int = 0

    @property
    def dedup_hit_rate(self) -> float:
        """Fraction of submissions that did not trigger a computation."""
        if not self.submitted:
            return 0.0
        return 1.0 - (self.computed + self.failed) / self.submitted

    @property
    def batch_occupancy(self) -> float:
        """Mean ciphertexts per stacked functional pass (B=1 means no
        cross-ciphertext batching benefit; higher is better)."""
        if not self.functional_passes:
            return 0.0
        return self.functional_ciphertexts / self.functional_passes

    def as_row(self) -> Dict[str, object]:
        return {
            "submitted": self.submitted,
            "unique": self.unique,
            "computed": self.computed,
            "failed": self.failed,
            "batch_hits": self.batch_hits,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "dedup_hit_rate": round(self.dedup_hit_rate, 4),
            "functional_submitted": self.functional_submitted,
            "functional_passes": self.functional_passes,
            "functional_ciphertexts": self.functional_ciphertexts,
            "batch_occupancy": round(self.batch_occupancy, 4),
            "deadline_exceeded": self.deadline_exceeded,
            "deadline_skipped": self.deadline_skipped,
        }


class EstimateHandle:
    """A pending result: resolved by the service's next ``gather()``.

    A handle always resolves — with the report, or with the exception the
    computation raised (``result()`` re-raises it); a failed neighbour in
    the same batch never strands cache-served waiters.
    """

    __slots__ = ("digest", "deadline", "_report", "_error", "_done")

    def __init__(self, digest: str, deadline: Optional[Deadline] = None):
        self.digest = digest
        #: Optional expiry: a gather past it answers the handle with
        #: :class:`~repro.faults.DeadlineExceeded` instead of a report.
        self.deadline = deadline
        self._report: Optional["RunReport"] = None
        self._error: Optional[BaseException] = None
        self._done = False

    @property
    def done(self) -> bool:
        return self._done

    @property
    def failed(self) -> bool:
        return self._error is not None

    def _resolve(self, report: "RunReport") -> None:
        self._report = report
        self._done = True

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done = True

    def result(self) -> "RunReport":
        if not self._done:
            raise ServeError(
                "handle is still pending; call service.gather() first"
            )
        if self._error is not None:
            raise self._error
        return self._report

    def __repr__(self) -> str:
        state = ("failed" if self._error is not None else "done") \
            if self._done else "pending"
        return f"EstimateHandle({self.digest[:12]}..., {state})"


class EstimateService:
    """Batch, dedup, cache and shard estimate plans across sessions.

    Parameters
    ----------
    cache_size:
        Capacity of the in-memory report LRU (distinct plan digests).
    disk_cache:
        Persist reports through :mod:`repro.cache` so other processes
        start warm.  Honors ``REPRO_CACHE_DIR`` (empty string disables,
        like the kernel-table cache).
    pool:
        Optional :class:`~repro.serve.pool.ShardPool`; distinct cold
        plans in one batch then execute across its worker processes.
    workers:
        Convenience: ``workers=K`` (K > 1) builds a lazy pool for you.
    admission:
        Static verification of each submitted plan through
        :func:`repro.analysis.analyze`: ``"strict"`` (default) rejects
        plans whose report carries errors with :class:`AdmissionError`
        before they enter the batch, ``"warn"`` admits them but emits a
        :class:`UserWarning`, ``"off"`` skips analysis entirely.  A
        digest is analyzed at most once per service lifetime — repeat
        submissions of an admitted plan pay only a set lookup.
    stall_timeout:
        Forwarded to the shard pool (built or passed): a live worker
        showing no progress for this many seconds mid-batch is killed
        and its jobs requeued.  ``None``/``0`` disables stall reaping.
    """

    def __init__(self, *, cache_size: int = 256, disk_cache: bool = True,
                 pool: Optional["ShardPool"] = None,
                 workers: int = 0, admission: str = "strict",
                 stall_timeout: Optional[float] = None):
        if cache_size < 1:
            raise ParameterError("cache_size must be positive")
        if pool is not None and workers:
            raise ParameterError("pass pool= or workers=, not both")
        if admission not in ADMISSION_MODES:
            raise ParameterError(
                f"admission must be one of {ADMISSION_MODES}, "
                f"got {admission!r}"
            )
        if workers > 1:
            from repro.serve.pool import ShardPool

            pool = ShardPool(workers, stall_timeout=stall_timeout)
        elif pool is not None and stall_timeout is not None:
            pool.stall_timeout = None if stall_timeout <= 0 else stall_timeout
        self._pool = pool
        self._closed = False
        self._cache_size = cache_size
        self._disk_cache = disk_cache
        self._admission = admission
        self._admitted: Set[str] = set()
        self._lru: "OrderedDict[str, RunReport]" = OrderedDict()
        #: digest -> (plan, handles waiting on it), insertion-ordered.
        self._pending: "OrderedDict[str, List[EstimateHandle]]" = OrderedDict()
        self._pending_plans: Dict[str, Plan] = {}
        #: Functional HKS stream: digest -> waiting handles / request.
        self._pending_fn: "OrderedDict[str, List[EstimateHandle]]" = OrderedDict()
        self._pending_fn_requests: Dict[str, object] = {}
        self._seen_digests: Set[str] = set()
        self._lock = threading.Lock()
        self.stats = ServiceStats()

    # -- submit / gather --------------------------------------------------------

    def submit(self, plan: Plan, *,
               deadline: Union[None, float, Deadline] = None,
               ) -> EstimateHandle:
        """Queue one plan; the handle resolves on the next :meth:`gather`.

        ``deadline`` (seconds from now, or a :class:`~repro.faults.Deadline`)
        bounds how stale an answer may be: a gather that completes after
        it fails the handle with
        :class:`~repro.faults.DeadlineExceeded`, and a digest whose
        waiters have *all* expired is skipped without computing.
        """
        self._check_open()
        if not isinstance(plan, Plan):
            raise ParameterError(
                f"submit() takes a Plan (see FHESession.plan), "
                f"got {type(plan).__name__}"
            )
        digest = plan.digest
        self._admit(plan, digest)
        handle = EstimateHandle(digest, Deadline.coerce(deadline))
        with self._lock:
            self.stats.submitted += 1
            waiters = self._pending.get(digest)
            if waiters is None:
                self._pending[digest] = [handle]
                self._pending_plans[digest] = plan
            else:
                self.stats.batch_hits += 1
                waiters.append(handle)
        return handle

    def submit_functional(self, request, *,
                          deadline: Union[None, float, Deadline] = None,
                          ) -> EstimateHandle:
        """Queue one functional HKS request; resolved by the next
        :meth:`gather`.

        Requests are deduplicated by digest like plans (identical
        submissions share one computation), and same-``group_key``
        requests in a batch are coalesced into a single stacked
        ``(B, L, N)`` kernel pass — see
        :mod:`repro.serve.functional`.  The handle resolves with a
        :class:`~repro.serve.functional.FunctionalResult`.
        ``deadline`` behaves exactly as in :meth:`submit`.
        """
        from repro.serve.functional import FunctionalRequest

        self._check_open()
        if not isinstance(request, FunctionalRequest):
            raise ParameterError(
                f"submit_functional() takes a FunctionalRequest, "
                f"got {type(request).__name__}"
            )
        digest = request.digest
        handle = EstimateHandle(digest, Deadline.coerce(deadline))
        with self._lock:
            self.stats.functional_submitted += 1
            waiters = self._pending_fn.get(digest)
            if waiters is None:
                self._pending_fn[digest] = [handle]
                self._pending_fn_requests[digest] = request
            else:
                self.stats.batch_hits += 1
                waiters.append(handle)
        return handle

    def admit(self, plan: Plan) -> None:
        """Run the admission check for ``plan`` without queueing it.

        The network front-end calls this at the protocol boundary so a
        rejected plan is answered with an error frame *before* it
        occupies a queue slot; the later ``submit()`` of an admitted
        digest is then a memoized set lookup.  Raises
        :class:`AdmissionError` exactly like ``submit()`` would.
        """
        self._admit(plan, plan.digest)

    def _admit(self, plan: Plan, digest: str) -> None:
        """Statically verify ``plan`` once per digest, per the admission
        mode.  Analysis runs outside the service lock (it is read-only
        and pure); at worst two racing submitters analyze the same
        digest twice."""
        if self._admission == "off":
            return
        with self._lock:
            if digest in self._admitted:
                return
        from repro.analysis import analyze

        report = analyze(plan)
        if report.errors:
            lines = "; ".join(d.render() for d in report.errors[:3])
            message = (
                f"plan {digest[:12]}... rejected by static analysis "
                f"({len(report.errors)} error(s)): {lines}"
            )
            if self._admission == "strict":
                raise AdmissionError(message, report=report)
            import warnings

            warnings.warn(message, stacklevel=3)
        with self._lock:
            self._admitted.add(digest)

    def gather(self) -> int:
        """Drain the batch: answer every pending handle, computing each
        distinct plan at most once.  Returns the number of submissions
        resolved.  A plan whose computation raises resolves its own
        waiters with that exception (re-raised by ``result()``) — it
        never strands the rest of the batch.  Deadlines are honored
        twice: a digest whose waiters have all expired is never
        computed, and a handle whose deadline passed mid-gather is
        answered with :class:`~repro.faults.DeadlineExceeded` even when
        a result exists — a handle always resolves, never in silence."""
        self._check_open()
        with self._lock:
            batch = self._pending
            plans = self._pending_plans
            self._pending = OrderedDict()
            self._pending_plans = {}
            fn_batch = self._pending_fn
            fn_requests = self._pending_fn_requests
            self._pending_fn = OrderedDict()
            self._pending_fn_requests = {}
            self.stats.unique += sum(
                1 for d in plans if d not in self._seen_digests
            )
            self._seen_digests.update(plans)
        if not batch and not fn_batch:
            return 0

        to_compute: List[Plan] = []
        outcome: Dict[str, Union["RunReport", BaseException]] = {}
        skipped = 0
        for digest, plan in plans.items():
            report = self._lookup(digest)
            if report is not None:
                outcome[digest] = report
            elif _all_expired(batch[digest]):
                outcome[digest] = DeadlineExceeded(
                    f"deadline expired before plan {plan.name} was computed"
                )
                skipped += 1
            else:
                to_compute.append(plan)

        if to_compute:
            computed = failed = 0
            deadline = _latest_deadline(batch, to_compute)
            for plan, result in zip(
                to_compute, self._compute(to_compute, deadline)
            ):
                outcome[plan.digest] = result
                if isinstance(result, BaseException):
                    failed += 1
                else:
                    computed += 1
                    self._remember(plan.digest, result)
            with self._lock:
                self.stats.computed += computed
                self.stats.failed += failed

        answered, expired = _resolve_all(batch, outcome)
        with self._lock:
            self.stats.deadline_exceeded += expired
            self.stats.deadline_skipped += skipped
        return answered + self._gather_functional(fn_batch, fn_requests)

    def _gather_functional(self, fn_batch, fn_requests) -> int:
        """Drain the functional stream: coalesce same-group requests into
        stacked passes, shard distinct groups, resolve every handle."""
        if not fn_batch:
            return 0
        from repro.serve.functional import group_requests

        outcome: Dict[str, object] = {}
        live: Dict[str, object] = {}
        skipped = 0
        for digest, request in fn_requests.items():
            if _all_expired(fn_batch[digest]):
                outcome[digest] = DeadlineExceeded(
                    "deadline expired before the functional request "
                    f"{digest[:12]}... was computed"
                )
                skipped += 1
            else:
                live[digest] = request
        groups = group_requests(live.values())
        live_requests = [r for group in groups for r in group.requests]
        deadline = _latest_deadline(fn_batch, live_requests)
        results = self._compute_functional(groups, deadline)
        passes = ciphertexts = 0
        for group, result in zip(groups, results):
            if isinstance(result, BaseException):
                for request in group.requests:
                    outcome[request.digest] = result
            else:
                passes += 1
                ciphertexts += len(group.requests)
                for request, res in zip(group.requests, result):
                    outcome[request.digest] = res
        answered, expired = _resolve_all(fn_batch, outcome)
        with self._lock:
            self.stats.functional_passes += passes
            self.stats.functional_ciphertexts += ciphertexts
            self.stats.deadline_exceeded += expired
            self.stats.deadline_skipped += skipped
        return answered

    def _compute_functional(self, groups, deadline=None):
        """Run the stacked passes: across the shard pool when several
        groups are ready (each group is one pure, requeue-safe payload),
        in-process otherwise — mirroring :meth:`_compute`."""
        if self._pool is not None and len(groups) > 1:
            try:
                return list(self._pool.run_functional(
                    groups, requeue=True, return_exceptions=True,
                    deadline=deadline,
                ))
            except Exception:
                pass  # fall through to the isolated in-process path
        results = []
        for group in groups:
            try:
                if deadline is not None:
                    deadline.check(group.name)
                results.append(group.run())
            except Exception as exc:
                results.append(exc)
        return results

    # -- synchronous facade -----------------------------------------------------

    def estimate(self, plan: Plan, *,
                 deadline: Union[None, float, Deadline] = None,
                 ) -> "RunReport":
        """Submit one plan and resolve it immediately (one-call facade)."""
        handle = self.submit(plan, deadline=deadline)
        self.gather()
        return handle.result()

    def estimate_many(self, plans: Sequence[Plan]) -> List["RunReport"]:
        """Submit a batch of plans and resolve them all in one gather."""
        handles = [self.submit(plan) for plan in plans]
        self.gather()
        return [handle.result() for handle in handles]

    # -- cache layers -----------------------------------------------------------

    def _lookup(self, digest: str) -> Optional["RunReport"]:
        with self._lock:
            report = self._lru.get(digest)
            if report is not None:
                self._lru.move_to_end(digest)
                self.stats.memory_hits += 1
                return report
        if self._disk_cache:
            payload = cache.load_json(REPORT_CACHE_KIND, digest)
            if payload is not None:
                if not isinstance(payload, dict) or \
                        payload.get("model_version") != REPORT_MODEL_VERSION:
                    return None  # priced by other model code: recompute
                try:
                    report = report_from_dict(payload["report"])
                except (ParameterError, KeyError, TypeError, ValueError):
                    return None  # foreign/corrupt payload: recompute
                with self._lock:
                    self.stats.disk_hits += 1
                    self._lru_put(digest, report)
                return report
        return None

    def _remember(self, digest: str, report: "RunReport") -> None:
        with self._lock:
            self._lru_put(digest, report)
        if self._disk_cache:
            cache.store_json(REPORT_CACHE_KIND, digest, {
                "model_version": REPORT_MODEL_VERSION,
                "report": report_to_dict(report),
            })

    def _lru_put(self, digest: str, report: "RunReport") -> None:
        """Insert under ``self._lock`` and evict the oldest past capacity."""
        self._lru[digest] = report
        self._lru.move_to_end(digest)
        while len(self._lru) > self._cache_size:
            self._lru.popitem(last=False)

    def _compute(
        self, plans: List[Plan], deadline: Optional[Deadline] = None,
    ) -> List[Union["RunReport", BaseException]]:
        """Run the cold plans, isolating failures per plan.

        A raising plan yields its exception in place of a report.  The
        shard pool requeues the in-flight plans of a dead worker onto
        the survivors (plans are pure, so re-execution is safe) — a
        worker kill never loses a submitted request.  If the pool fails
        wholesale anyway, fall back to in-process execution so one sick
        pool cannot take the batch down with it.  ``deadline`` (the
        latest waiter expiry, when every waiter has one) bounds the
        pool wait and the in-process loop."""
        if self._pool is not None and len(plans) > 1:
            try:
                return list(self._pool.run_plans(
                    plans, requeue=True, return_exceptions=True,
                    deadline=deadline,
                ))
            except Exception:
                pass  # fall through to the isolated in-process path
        results: List[Union["RunReport", BaseException]] = []
        for plan in plans:
            try:
                if deadline is not None:
                    deadline.check(plan.name)
                fault_point("service.compute", context=plan.name)
                results.append(plan.run())
            except Exception as exc:
                results.append(exc)
        return results

    # -- lifecycle --------------------------------------------------------------

    @property
    def pending(self) -> int:
        with self._lock:
            return (sum(len(h) for h in self._pending.values())
                    + sum(len(h) for h in self._pending_fn.values()))

    @property
    def pool(self) -> Optional["ShardPool"]:
        """The attached shard pool, if any (for supervisors and stats)."""
        return self._pool

    def _check_open(self) -> None:
        if self._closed:
            raise ServeError(
                "service is closed; create a new EstimateService"
            )

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut down permanently: later submit/gather raise
        :class:`ServeError` (a clean error, never an attribute error)."""
        self._closed = True
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "EstimateService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"EstimateService(lru={len(self._lru)}/{self._cache_size}, "
            f"pending={self.pending}, pool={self._pool!r}, "
            f"stats={self.stats.as_row()})"
        )


# -- deadline helpers ------------------------------------------------------------

def _all_expired(handles: List[EstimateHandle]) -> bool:
    """True when every waiter carries a deadline and all have expired —
    the only case where skipping the computation loses nothing."""
    return bool(handles) and all(
        h.deadline is not None and h.deadline.expired for h in handles
    )


def _latest_deadline(batch, items) -> Optional[Deadline]:
    """The loosest waiter deadline across ``items`` (anything with a
    ``digest``), or ``None`` as soon as one waiter has no deadline (the
    computation must then run to completion regardless)."""
    latest: Optional[Deadline] = None
    for item in items:
        for handle in batch.get(item.digest, ()):
            if handle.deadline is None:
                return None
            if latest is None or \
                    handle.deadline.expires_at > latest.expires_at:
                latest = handle.deadline
    return latest


def _resolve_all(batch, outcome) -> "tuple[int, int]":
    """Answer every handle from ``outcome``; returns (answered, expired).

    A handle whose own deadline has passed is failed with
    :class:`~repro.faults.DeadlineExceeded` even when a result is
    available — its caller has already given up, and the contract is a
    structured error, not a stale success."""
    answered = expired = 0
    for digest, handles in batch.items():
        result = outcome[digest]
        for handle in handles:
            if isinstance(result, BaseException):
                handle._fail(result)
                if isinstance(result, DeadlineExceeded):
                    expired += 1
            elif handle.deadline is not None and handle.deadline.expired:
                handle._fail(DeadlineExceeded(
                    f"deadline expired while gathering {digest[:12]}..."
                ))
                expired += 1
            else:
                handle._resolve(result)
            answered += 1
    return answered, expired
