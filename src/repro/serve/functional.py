"""Functional HKS requests as a servable, batchable workload.

The estimate path serves *pricing* questions; this module serves the
*functional* ones — actually running a hybrid-key-switch dataflow on real
RNS data (:mod:`repro.core.functional`).  A :class:`FunctionalRequest`
names everything needed to reproduce the computation from scratch in any
process: a parameter preset, a dataflow schedule, a level, a key seed and
a per-request input seed.  Requests are pure and deterministic, so — like
plans — they can travel as canonical JSON, be deduplicated by digest, be
re-executed after a worker death, and be verified bit-for-bit against an
in-process serial run.

The serving win is the cross-ciphertext batch axis: requests that share a
:attr:`~FunctionalRequest.group_key` (same preset/dataflow/level/key)
stack into one :class:`FunctionalBatch`, which executes all B inputs
through a single :func:`~repro.core.functional.execute_dataflow_batch`
pass — one kernel dispatch per schedule step for the whole group — while
distinct groups shard across :class:`~repro.serve.pool.ShardPool`
workers.  Results carry an output digest computed from the two output
polynomials, so batched, sharded and serial executions can be compared
exactly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ParameterError

if TYPE_CHECKING:
    from repro.ckks.context import CKKSContext
    from repro.ckks.keys import KeySwitchKey
    from repro.rns.poly import RNSPoly

#: Top-level JSON marker that routes a pool payload to this module
#: (plan payloads have only ``schedule``/``workload`` keys).
PAYLOAD_KIND = "functional_batch"


@dataclass(frozen=True)
class FunctionalRequest:
    """One user's functional HKS computation, reproducible anywhere.

    ``seed`` generates the request's input polynomial with its own
    ``default_rng``, so the data is independent of submission order and
    of which process executes it; ``key_seed`` generates the switching
    key, shared by everyone in the same :attr:`group_key` (a stacked
    pass applies one evk to the whole batch — mirroring a fleet of
    same-tenant ciphertexts).
    """

    preset: str
    dataflow: str = "OC"
    level: int = 0
    seed: int = 0
    key_seed: int = 0

    def __post_init__(self) -> None:
        from repro.core import DATAFLOWS

        if self.dataflow not in DATAFLOWS:
            raise ParameterError(
                f"unknown dataflow {self.dataflow!r}; "
                f"expected one of {sorted(DATAFLOWS)}"
            )
        if self.level < 0:
            raise ParameterError(f"level must be >= 0, got {self.level}")

    @property
    def group_key(self) -> Tuple[str, str, int, int]:
        """Requests with equal group keys stack into one batched pass."""
        return (self.preset, self.dataflow, self.level, self.key_seed)

    @property
    def digest(self) -> str:
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        return {
            "preset": self.preset,
            "dataflow": self.dataflow,
            "level": self.level,
            "seed": self.seed,
            "key_seed": self.key_seed,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FunctionalRequest":
        try:
            return cls(
                preset=str(data["preset"]),
                dataflow=str(data["dataflow"]),
                level=int(data["level"]),
                seed=int(data["seed"]),
                key_seed=int(data["key_seed"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ParameterError(
                f"malformed functional request payload: {exc}"
            ) from exc


@dataclass(frozen=True)
class FunctionalResult:
    """The exact outcome of one request, compact enough for the wire.

    ``output_digest`` hashes the two output polynomials' residues, so a
    result computed in a stacked pass on a shard worker can be compared
    bit-for-bit against an in-process serial run.  ``batch_size``
    records how many requests shared the stacked pass that produced it
    (the occupancy the service's stats aggregate).
    """

    request_digest: str
    output_digest: str
    level: int
    batch_size: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "request_digest": self.request_digest,
            "output_digest": self.output_digest,
            "level": self.level,
            "batch_size": self.batch_size,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FunctionalResult":
        try:
            return cls(
                request_digest=str(data["request_digest"]),
                output_digest=str(data["output_digest"]),
                level=int(data["level"]),
                batch_size=int(data["batch_size"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ParameterError(
                f"malformed functional result payload: {exc}"
            ) from exc


@lru_cache(maxsize=8)
def _world(
    preset: str, key_seed: int
) -> "Tuple[CKKSContext, KeySwitchKey]":
    """(context, switching key) for a preset — cached per process."""
    from repro.api.presets import get_preset
    from repro.ckks.context import CKKSContext
    from repro.ckks.keys import KeyGenerator

    context = CKKSContext(get_preset(preset))
    key = KeyGenerator(context, seed=key_seed).relinearization_key()
    return context, key


def _input_poly(
    context: "CKKSContext", request: FunctionalRequest
) -> "RNSPoly":
    """The request's input polynomial, from its own rng (order-free)."""
    from repro.rns.poly import RNSPoly

    return RNSPoly.random_uniform(
        context.level_basis(request.level), context.params.n,
        np.random.default_rng(request.seed),
    )


def _digest_pair(c0: "RNSPoly", c1: "RNSPoly") -> str:
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(c0.data).tobytes())
    h.update(np.ascontiguousarray(c1.data).tobytes())
    return h.hexdigest()


class FunctionalBatch:
    """A group of same-``group_key`` requests run as one stacked pass."""

    def __init__(self, requests: Sequence[FunctionalRequest]) -> None:
        requests = list(requests)
        if not requests:
            raise ParameterError("a functional batch needs >= 1 request")
        head = requests[0].group_key
        for i, request in enumerate(requests[1:], start=1):
            if request.group_key != head:
                raise ParameterError(
                    f"batch[{i}]: group key {request.group_key} != "
                    f"batch[0] group key {head} — requests must share "
                    f"preset/dataflow/level/key to stack"
                )
        self.requests = requests

    @property
    def name(self) -> str:
        preset, dataflow, level, _ = self.requests[0].group_key
        return (
            f"functional:{preset}:{dataflow}:L{level}"
            f"[B={len(self.requests)}]"
        )

    def to_json(self) -> str:
        return json.dumps({
            "payload_kind": PAYLOAD_KIND,
            "requests": [r.to_dict() for r in self.requests],
        }, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, payload: str) -> "FunctionalBatch":
        try:
            data = json.loads(payload)
            requests = [
                FunctionalRequest.from_dict(r) for r in data["requests"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise ParameterError(
                f"malformed functional batch payload: {exc}"
            ) from exc
        return cls(requests)

    def run(self) -> List[FunctionalResult]:
        """Execute all requests through one stacked kernel pass."""
        from repro.core import get_dataflow
        from repro.core.functional import execute_dataflow_batch
        from repro.faults import fault_point
        from repro.rns.poly import PolyBatch

        fault_point("functional.run", context=self.name)

        head = self.requests[0]
        context, key = _world(head.preset, head.key_seed)
        batch = PolyBatch.stack([
            _input_poly(context, request) for request in self.requests
        ])
        out0, out1 = execute_dataflow_batch(
            get_dataflow(head.dataflow), context, batch, key, head.level
        )
        bsz = len(self.requests)
        return [
            FunctionalResult(
                request_digest=request.digest,
                output_digest=_digest_pair(out0.member(i), out1.member(i)),
                level=head.level,
                batch_size=bsz,
            )
            for i, request in enumerate(self.requests)
        ]

    def run_serial(self) -> List[FunctionalResult]:
        """Per-request reference: one looped pass each (for verification)."""
        from repro.core import get_dataflow
        from repro.core.functional import execute_dataflow

        results = []
        for request in self.requests:
            context, key = _world(request.preset, request.key_seed)
            out0, out1 = execute_dataflow(
                get_dataflow(request.dataflow), context,
                _input_poly(context, request), key, request.level,
            )
            results.append(FunctionalResult(
                request_digest=request.digest,
                output_digest=_digest_pair(out0, out1),
                level=request.level,
                batch_size=1,
            ))
        return results

    def run_to_dict(self) -> Dict[str, object]:
        """Worker-side entry: execute and wrap for the result queue."""
        return {"results": [r.to_dict() for r in self.run()]}

    def __repr__(self) -> str:
        return f"FunctionalBatch({self.name})"


def results_from_dict(payload: Dict[str, object]) -> List[FunctionalResult]:
    """Decode a :meth:`FunctionalBatch.run_to_dict` payload."""
    try:
        rows = payload["results"]
    except (KeyError, TypeError) as exc:
        raise ParameterError(
            f"malformed functional results payload: {exc}"
        ) from exc
    return [FunctionalResult.from_dict(row) for row in rows]


def group_requests(
    requests: Sequence[FunctionalRequest],
) -> List[FunctionalBatch]:
    """Coalesce requests into one :class:`FunctionalBatch` per group key,
    preserving first-seen group order (and request order within each)."""
    groups: "Dict[Tuple[str, str, int, int], List[FunctionalRequest]]" = {}
    for request in requests:
        groups.setdefault(request.group_key, []).append(request)
    return [FunctionalBatch(reqs) for reqs in groups.values()]
