"""repro.serve — multi-session throughput on top of the plan/execute API.

The ROADMAP's "millions of users" direction: many sessions ask the same
accelerator-scale questions, so the serving layer turns repeated
:class:`~repro.api.plan.Plan` executions into cache hits and spreads the
remaining distinct work across processes.

* :class:`EstimateService` — ``submit(plan) -> handle`` / ``gather()``
  micro-batching with digest-level dedup, static admission verification
  through :mod:`repro.analysis` (``admission="strict"|"warn"|"off"``),
  an in-memory report LRU and a cross-process disk cache
  (``repro.cache``, namespace ``report``);
* :class:`ShardPool` — worker processes for distinct cold plans, all
  sharing the machine-wide kernel-table disk cache;
* :class:`AsyncEstimateService` — the same service behind ``await``.

Try it: ``python -m repro serve-bench`` or ``examples/serving.py``.
"""

from repro.serve.aio import AsyncEstimateService
from repro.serve.functional import (
    FunctionalBatch,
    FunctionalRequest,
    FunctionalResult,
    group_requests,
)
from repro.serve.pool import (
    RemotePlanError,
    ShardPool,
    StalledWorker,
    WorkerDied,
)
from repro.serve.service import (
    ADMISSION_MODES,
    AdmissionError,
    EstimateHandle,
    EstimateService,
    REPORT_CACHE_KIND,
    ServeError,
    ServiceStats,
)

__all__ = [
    "ADMISSION_MODES",
    "AdmissionError",
    "AsyncEstimateService",
    "EstimateHandle",
    "EstimateService",
    "FunctionalBatch",
    "FunctionalRequest",
    "FunctionalResult",
    "REPORT_CACHE_KIND",
    "group_requests",
    "RemotePlanError",
    "ServeError",
    "ServiceStats",
    "ShardPool",
    "StalledWorker",
    "WorkerDied",
]
