"""Named workload programs estimable via ``repro.api.estimate``."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ParameterError
from repro.workloads.builders import (
    boot_program,
    helr_program,
    resnet_boot_program,
)
from repro.workloads.ir import WorkloadProgram

#: Workload name -> zero-argument program builder.
WORKLOADS: Dict[str, Callable[[], WorkloadProgram]] = {
    "BOOT": boot_program,
    "RESNET_BOOT": resnet_boot_program,
    "HELR": helr_program,
}


def get_workload(name: str) -> WorkloadProgram:
    """Look up a workload program by (case-insensitive) name."""
    key = name.upper()
    if key not in WORKLOADS:
        raise ParameterError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        )
    return WORKLOADS[key]()


def list_workloads() -> List[str]:
    return sorted(WORKLOADS)
