"""Phase-structured workload IR: circuits as ordered, level-aware phases.

The flat representation this package grew out of priced a whole circuit
at one top-of-chain :class:`~repro.params.BenchmarkSpec`, even though a
real CKKS circuit descends the modulus chain and every level strictly
shrinks the tower count — and with it the cost of every hybrid key
switch.  The IR here keeps that structure:

* a :class:`Phase` is a run of homomorphic ops (:class:`HEOpMix`) priced
  at one point of the chain (its own ``BenchmarkSpec``, typically derived
  via :func:`level_spec`);
* a :class:`WorkloadProgram` is an ordered list of phases — the unit both
  estimation backends fold over, preserving a per-phase breakdown on the
  resulting report;
* the legacy flat :class:`CompositeWorkload` survives as the one-phase
  degenerate case (:func:`as_program` converts, with a deprecation
  warning when a backend receives one).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.errors import ParameterError
from repro.params import BenchmarkSpec
from repro.workloads.mix import HEOpMix

#: Structural phase kinds: ``"app"`` for application slices, the rest for
#: the three bootstrap stages.  Consumers classify phases by this tag —
#: never by parsing the (free-form, prefix-decorated) label string.
PHASE_KINDS = ("app", "cts", "evalmod", "stc")

#: The subset of :data:`PHASE_KINDS` that belongs to a bootstrap circuit.
BOOTSTRAP_KINDS = ("cts", "evalmod", "stc")


def level_spec(base: BenchmarkSpec, towers: int,
               name: Optional[str] = None) -> BenchmarkSpec:
    """Re-parameterize ``base`` at a lower point of its modulus chain.

    ``towers`` is the active chain tower count (the paper's ``l``) at the
    phase being priced.  The auxiliary basis ``P`` never shrinks, and the
    digit width ``alpha`` is fixed at key-generation time, so the digit
    count drops to ``ceil(towers / alpha)`` as the circuit descends — the
    same digit *count* the functional layer's
    :meth:`CKKSContext.digit_indices` uses at lower levels.  One
    approximation: :class:`BenchmarkSpec` re-derives its digit partition
    from ``(towers, dnum)``, so where ``ceil(towers / dnum)`` falls below
    the base ``alpha`` the split differs slightly from the functional
    layer's fixed-width one (e.g. towers=10 prices digits (5,5) where the
    real partition is (6,4)) — tower totals and digit counts, the
    first-order cost drivers, match exactly.
    """
    if not 1 <= towers <= base.kl:
        raise ParameterError(
            f"towers={towers} out of range [1, {base.kl}] for {base.name}"
        )
    if towers == base.kl and name is None:
        return base
    dnum = max(1, min(base.dnum, -(-towers // base.alpha)))
    return BenchmarkSpec(
        name or f"{base.name}@L{towers}",
        log_n=base.log_n,
        kl=towers,
        kp=base.kp,
        dnum=dnum,
    )


@dataclass(frozen=True)
class Phase:
    """One contiguous run of a circuit priced at a single chain point.

    ``kind`` is the phase's structural role (one of :data:`PHASE_KINDS`):
    an application slice or one of the three bootstrap stages.  Labels
    stay free-form display strings (deep programs prefix them with
    ``bootN/`` etc.); any consumer that needs to know *what* a phase is
    reads ``kind``, which also feeds every plan digest.
    """

    label: str
    spec: BenchmarkSpec
    mix: HEOpMix
    kind: str = "app"

    def __post_init__(self) -> None:
        if not self.label:
            raise ParameterError("a phase needs a non-empty label")
        if self.kind not in PHASE_KINDS:
            raise ParameterError(
                f"unknown phase kind {self.kind!r}; choose from {PHASE_KINDS}"
            )

    @property
    def hks_calls(self) -> int:
        return self.mix.hks_calls

    @property
    def is_bootstrap(self) -> bool:
        """Whether this phase is a bootstrap stage (vs application work)."""
        return self.kind in BOOTSTRAP_KINDS

    def relabeled(self, label: str) -> "Phase":
        return Phase(label, self.spec, self.mix, self.kind)


@dataclass(frozen=True)
class WorkloadProgram:
    """An ordered sequence of phases — the estimable circuit IR.

    Back-compat accessors (``spec``, ``mix``, ``hks_calls``) present the
    aggregate view the flat representation used to offer, so callers that
    only need totals keep working unchanged.
    """

    name: str
    phases: Tuple[Phase, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ParameterError("a workload program needs a name")
        if not self.phases:
            raise ParameterError(f"program {self.name!r} has no phases")
        object.__setattr__(self, "phases", tuple(self.phases))
        labels = [p.label for p in self.phases]
        if len(set(labels)) != len(labels):
            raise ParameterError(
                f"program {self.name!r} has duplicate phase labels"
            )

    # -- construction ----------------------------------------------------------

    @classmethod
    def single(cls, name: str, spec: BenchmarkSpec, mix: HEOpMix,
               description: str = "") -> "WorkloadProgram":
        """The degenerate one-phase program (== the legacy flat pricing)."""
        return cls(name, (Phase(name, spec, mix),), description)

    # -- aggregate (flat-compatible) views -------------------------------------

    @property
    def spec(self) -> BenchmarkSpec:
        """The top-of-chain parameterization: the widest phase's spec.

        Programs need not *start* at the top (deep scenarios open with an
        app segment inside the post-bootstrap window), so the flat view
        picks the phase with the most active towers — flattening a
        program onto this spec is always an upper bound on its cost.
        """
        return max((p.spec for p in self.phases), key=lambda s: s.kl)

    @property
    def mix(self) -> HEOpMix:
        """All phase op counts summed — the flat view of the circuit."""
        total = HEOpMix(0, 0, 0, 0)
        for phase in self.phases:
            total = total + phase.mix
        return total

    @property
    def hks_calls(self) -> int:
        return sum(p.hks_calls for p in self.phases)

    def phase_hks_calls(self) -> Dict[str, int]:
        """HKS calls by phase label (insertion-ordered)."""
        return {p.label: p.hks_calls for p in self.phases}

    @property
    def num_bootstrap_phases(self) -> int:
        """How many phases are bootstrap stages (by structural kind)."""
        return sum(1 for p in self.phases if p.is_bootstrap)

    def __iter__(self) -> Iterator[Phase]:
        return iter(self.phases)

    def __len__(self) -> int:
        return len(self.phases)

    def __repr__(self) -> str:
        return (
            f"WorkloadProgram({self.name!r}, {len(self.phases)} phases, "
            f"{self.hks_calls} HKS)"
        )


@dataclass(frozen=True)
class CompositeWorkload:
    """Deprecated flat circuit: one spec x one mix (pre-IR representation).

    Kept as a shim so research code written against the flat API keeps
    running; estimation paths convert it to a one-phase
    :class:`WorkloadProgram` via :func:`as_program`, which reproduces the
    old report exactly.
    """

    name: str
    spec: BenchmarkSpec
    mix: HEOpMix
    description: str = ""

    @property
    def hks_calls(self) -> int:
        """Every rotation and ciphertext multiply is one hybrid key switch."""
        return self.mix.hks_calls

    def as_program(self) -> WorkloadProgram:
        """Lift to the one-phase degenerate program."""
        return WorkloadProgram.single(
            self.name, self.spec, self.mix, self.description
        )


def as_program(workload: Union[WorkloadProgram, CompositeWorkload],
               *, warn: bool = True) -> WorkloadProgram:
    """Coerce either workload representation to the phase IR.

    Passing a flat :class:`CompositeWorkload` warns: it prices every HKS
    at the top of the chain, which the phase IR exists to avoid.
    """
    if isinstance(workload, WorkloadProgram):
        return workload
    if isinstance(workload, CompositeWorkload):
        if warn:
            warnings.warn(
                "flat CompositeWorkload pricing is deprecated; build a "
                "phase-structured WorkloadProgram (see repro.workloads) "
                "for level-aware estimates",
                DeprecationWarning,
                stacklevel=2,
            )
        return workload.as_program()
    raise ParameterError(
        f"expected WorkloadProgram or CompositeWorkload, "
        f"got {type(workload).__name__}"
    )
