"""Structural workload builders: circuits lowered to level-aware phases.

``BOOT`` lowers the same :class:`~repro.ckks.bootstrap.plan.BootstrapPlan`
arithmetic the functional pipeline is instrumentation-tested against into
per-stage phases — CoeffToSlot's grouped DFT factors, EvalMod and
SlotToCoeff each priced at their true (descending) point of the modulus
chain.  The deep scenarios compose it: ``RESNET_BOOT`` interleaves
ResNet-20-class inference segments with mid-network refreshes, ``HELR``
runs k encrypted logistic-regression training iterations with one
bootstrap each.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.errors import ParameterError
from repro.params import BenchmarkSpec
from repro.sched.space import HELR_DECISION, RESNET_DECISION
from repro.workloads.ir import CompositeWorkload, Phase, WorkloadProgram, level_spec
from repro.workloads.mix import HEOpMix

if TYPE_CHECKING:
    from repro.ckks.bootstrap.plan import BootstrapPlan, OpCounts

#: The BOOT workload's top-of-chain parameterization: ARK's Table III point.
_BOOT_SPEC = BenchmarkSpec("BOOT", log_n=16, kl=24, kp=6, dnum=4)

#: Modelled secret Hamming weight of the accelerator-scale bootstrap.
_BOOT_SECRET_WEIGHT = 24


@lru_cache(maxsize=None)
def bootstrap_plan() -> "BootstrapPlan":
    """The accelerator-scale bootstrap circuit shape (32k slots).

    The same :class:`~repro.ckks.bootstrap.plan.BootstrapPlan` arithmetic
    the functional pipeline is instrumentation-tested against, evaluated
    at ``N = 2^16`` with the DFT split into 3 + 3 grouped factors and the
    EvalMod degree chosen by the same sine-fit rule the pipeline uses.
    """
    from repro.ckks.bootstrap.evalmod import choose_sine_degree
    from repro.ckks.bootstrap.plan import BootstrapPlan

    periods = -(-(_BOOT_SECRET_WEIGHT + 1) // 2) + 1  # ceil(bound) + 1
    return BootstrapPlan.from_shape(
        num_slots=_BOOT_SPEC.n // 2,
        cts_stages=3,
        stc_stages=3,
        sine_periods=periods,
        sine_degree=choose_sine_degree(periods, tol=1e-5),
    )


def _phase_mix(counts: "OpCounts") -> HEOpMix:
    """OpCounts -> HEOpMix (conjugations fold into rotations: one HKS each)."""
    return HEOpMix(
        rotations=counts.rotations + counts.conjugations,
        ct_multiplies=counts.ct_multiplies,
        pt_multiplies=counts.pt_multiplies,
        additions=counts.additions,
    )


def bootstrap_phases(spec: BenchmarkSpec, plan: "BootstrapPlan",
                     top_towers: Optional[int] = None) -> Tuple[List[Phase], int]:
    """Lower a bootstrap plan to phases at their true descending levels.

    The pipeline enters at ``top_towers`` (default: the top of ``spec``'s
    chain, where ModRaise deposits the ciphertext) and burns one level per
    DFT factor plus EvalMod's normalize/ladder/combine levels.  Returns
    ``(phases, remaining_towers)`` — the second element is the level
    budget a caller's post-bootstrap application phases start from.
    """
    from repro.ckks.bootstrap.plan import transform_counts

    towers = spec.kl if top_towers is None else top_towers
    evalmod_levels = (
        plan.levels_consumed() - len(plan.cts_diagonals) - len(plan.stc_diagonals)
    )
    if towers - plan.levels_consumed() < 1:
        raise ParameterError(
            f"bootstrap consumes {plan.levels_consumed()} levels but only "
            f"{towers} towers are available"
        )
    phases: List[Phase] = []
    for i, diagonals in enumerate(plan.cts_diagonals):
        counts = transform_counts(plan.num_slots, diagonals)
        phases.append(Phase(f"cts{i}", level_spec(spec, towers),
                            _phase_mix(counts), kind="cts"))
        towers -= 1
    phases.append(Phase("evalmod", level_spec(spec, towers),
                        _phase_mix(plan.evalmod_counts()), kind="evalmod"))
    towers -= evalmod_levels
    for i, diagonals in enumerate(plan.stc_diagonals):
        counts = transform_counts(plan.num_slots, diagonals)
        phases.append(Phase(f"stc{i}", level_spec(spec, towers),
                            _phase_mix(counts), kind="stc"))
        towers -= 1
    return phases, towers


def _descending_app_phases(spec: BenchmarkSpec, prefix: str, mix: HEOpMix,
                           top_towers: int, depth: int) -> List[Phase]:
    """Split ``mix`` evenly across ``depth`` one-level slices, descending."""
    return [
        Phase(f"{prefix}/L{top_towers - d}",
              level_spec(spec, top_towers - d), piece)
        for d, piece in enumerate(mix.split(depth))
    ]


@lru_cache(maxsize=None)
def boot_program() -> WorkloadProgram:
    """The ``BOOT`` workload: one full CKKS bootstrap at accelerator scale.

    Operation counts are *derived from the real circuit* via
    :func:`bootstrap_plan`; every rotation, conjugation and
    relinearization is one hybrid key switch, priced at the level its
    pipeline stage actually runs at.
    """
    plan = bootstrap_plan()
    phases, remaining = bootstrap_phases(_BOOT_SPEC, plan)
    ops = plan.op_counts()
    return WorkloadProgram(
        name="BOOT",
        phases=tuple(phases),
        description=(
            f"one CKKS bootstrap at N=2^16: {ops.hks_calls} HKS calls "
            f"({ops.rotations} rotations, {ops.conjugations} conjugation, "
            f"{ops.ct_multiplies} relinearizations), sine degree "
            f"{plan.sine_degree}, priced per stage at descending levels "
            f"{_BOOT_SPEC.kl}->{remaining + 1}"
        ),
    )


def bootstrap_workload() -> WorkloadProgram:
    """Historic name for :func:`boot_program` (kept, not deprecated).

    Pre-IR code imported the flat BOOT workload under this name.  It now
    returns the phase-structured :class:`WorkloadProgram`; every accessor
    the flat object exposed (``name``/``spec``/``mix``/``hks_calls``/
    ``description``) reads identically through the program's aggregate
    views, so only ``isinstance(..., CompositeWorkload)`` checks notice —
    those callers want :func:`boot_flat_workload`.
    """
    return boot_program()


@lru_cache(maxsize=None)
def boot_flat_workload() -> CompositeWorkload:
    """The deprecated flat BOOT pricing (every HKS at top-of-chain).

    Kept for A/B comparisons against the level-aware program — the phase
    IR's totals must come in strictly below this upper bound.
    """
    plan = bootstrap_plan()
    return CompositeWorkload(
        name="BOOT",
        spec=_BOOT_SPEC,
        mix=_phase_mix(plan.op_counts()),
        description="flat top-of-chain BOOT pricing (deprecated upper bound)",
    )


#: ResNet-20-class inference op counts (the paper's 3,306 rotations).
#: Spelled out rather than relying on HEOpMix's defaults (which happen to
#: encode the same mix) — RESNET_BOOT must not change shape if those
#: defaults ever do.
_RESNET_MIX = HEOpMix(rotations=3306, ct_multiplies=500,
                      pt_multiplies=2500, additions=6000)

@lru_cache(maxsize=None)
def resnet_boot_program() -> WorkloadProgram:
    """``RESNET_BOOT``: deep private inference with mid-network refreshes.

    The paper's ResNet-20 op mix (3,306 rotations) split across
    ``RESNET_DECISION.num_bootstraps + 1`` network segments with a full
    bootstrap between consecutive segments.  Every segment runs inside
    the post-bootstrap level window, descending one level per slice; the
    bootstraps themselves reuse the level-aware ``BOOT`` phases.  The
    segment structure (bootstrap placement, segment depth) comes from the
    shared :data:`~repro.sched.space.RESNET_DECISION` record — the same
    one ``python -m repro schedule`` explains.
    """
    plan = bootstrap_plan()
    boot_phases, post_boot = bootstrap_phases(_BOOT_SPEC, plan)
    assert RESNET_DECISION.num_bootstraps is not None
    segments = RESNET_DECISION.num_bootstraps + 1
    depth = RESNET_DECISION.segment_depth(post_boot)
    phases: List[Phase] = []
    for s, segment_mix in enumerate(_RESNET_MIX.split(segments)):
        phases.extend(
            _descending_app_phases(_BOOT_SPEC, f"seg{s}", segment_mix,
                                   post_boot, depth)
        )
        if s < segments - 1:
            phases.extend(
                p.relabeled(f"boot{s}/{p.label}") for p in boot_phases
            )
    boot_hks = plan.op_counts().hks_calls
    return WorkloadProgram(
        name="RESNET_BOOT",
        phases=tuple(phases),
        description=(
            f"ResNet-20-class private inference ({_RESNET_MIX.hks_calls} "
            f"app HKS) in {segments} segments with "
            f"{RESNET_DECISION.num_bootstraps} mid-network bootstraps "
            f"({boot_hks} HKS each), all priced level-aware"
        ),
    )


#: Modelled per-iteration op mix of HELR-style encrypted LR training:
#: inner-product rotation folds over the packed minibatch, a low-degree
#: sigmoid polynomial, and the weight update.
_HELR_ITERATION_MIX = HEOpMix(rotations=256, ct_multiplies=64,
                              pt_multiplies=128, additions=512)

_HELR_ITERATIONS = 5


@lru_cache(maxsize=None)
def helr_program(iterations: int = _HELR_ITERATIONS) -> WorkloadProgram:
    """``HELR``: encrypted logistic-regression training, bootstrap per iter.

    Each of the ``iterations`` gradient steps burns the post-bootstrap
    level window (one slice per level) and ends with a full level-aware
    bootstrap — including the last step, which hands the refreshed model
    back at full budget (ready for the next epoch, or for inference) —
    the unlimited-depth training loop bootstrapping exists to enable.
    """
    if iterations < 1:
        raise ParameterError("HELR needs at least one training iteration")
    plan = bootstrap_plan()
    boot_phases, post_boot = bootstrap_phases(_BOOT_SPEC, plan)
    depth = HELR_DECISION.segment_depth(post_boot)
    phases: List[Phase] = []
    for it in range(iterations):
        phases.extend(
            _descending_app_phases(_BOOT_SPEC, f"iter{it}",
                                   _HELR_ITERATION_MIX, post_boot, depth)
        )
        phases.extend(
            p.relabeled(f"boot{it}/{p.label}") for p in boot_phases
        )
    boot_hks = plan.op_counts().hks_calls
    return WorkloadProgram(
        name="HELR",
        phases=tuple(phases),
        description=(
            f"HELR-style encrypted LR training: {iterations} iterations x "
            f"({_HELR_ITERATION_MIX.hks_calls} app HKS + one "
            f"{boot_hks}-HKS bootstrap), all priced level-aware"
        ),
    )
