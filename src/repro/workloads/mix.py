"""Operation mixes and per-op task models shared by every workload.

A full HE application is, from the accelerator's point of view, a bag of
hybrid key switches plus the element-wise work between them.  This module
holds the two pieces every pricing path needs: :class:`HEOpMix` (how often
each homomorphic op runs) and :func:`build_pointwise_graph` (the task
model of one non-HKS op), plus the paper's motivation query
:func:`hks_time_share`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core import DataflowConfig, get_dataflow
from repro.core.stages import ntt_tower_ops
from repro.core.taskgraph import Kind, TaskGraph
from repro.errors import ParameterError
from repro.params import MB, BenchmarkSpec
from repro.rpu import RPUConfig, RPUSimulator


@dataclass(frozen=True)
class HEOpMix:
    """Operation counts of one application run (or one workload phase).

    The default is a ResNet-20-class private inference: the rotation count
    is the paper's 3,306; the other counts follow the multiplexed-
    convolution structure (every conv/fc multiply is ciphertext-plaintext,
    with one ciphertext-ciphertext multiply per bootstrapping-free ReLU
    polynomial segment).
    """

    rotations: int = 3306
    ct_multiplies: int = 500
    pt_multiplies: int = 2500
    additions: int = 6000

    def __post_init__(self) -> None:
        if min(self.rotations, self.ct_multiplies, self.pt_multiplies,
               self.additions) < 0:
            raise ParameterError("operation counts must be non-negative")

    @property
    def hks_calls(self) -> int:
        """Every rotation and ciphertext multiply is one hybrid key switch."""
        return self.rotations + self.ct_multiplies

    def __add__(self, other: "HEOpMix") -> "HEOpMix":
        return HEOpMix(
            self.rotations + other.rotations,
            self.ct_multiplies + other.ct_multiplies,
            self.pt_multiplies + other.pt_multiplies,
            self.additions + other.additions,
        )

    def split(self, parts: int) -> List["HEOpMix"]:
        """Divide every count as evenly as possible across ``parts`` mixes.

        The pieces sum back to ``self`` exactly (remainders go to the
        earliest parts) — the invariant phase lowering relies on.
        """
        if parts < 1:
            raise ParameterError("parts must be positive")

        def share(count: int) -> List[int]:
            return [count // parts + (1 if i < count % parts else 0)
                    for i in range(parts)]

        return [
            HEOpMix(r, c, p, a)
            for r, c, p, a in zip(share(self.rotations),
                                  share(self.ct_multiplies),
                                  share(self.pt_multiplies),
                                  share(self.additions))
        ]


def build_pointwise_graph(spec: BenchmarkSpec, kind: str) -> TaskGraph:
    """Task graph for the non-HKS part of one homomorphic operation.

    ``kind`` is one of:

    * ``"tensor"`` — the ciphertext-ciphertext product's element-wise part
      (4 tower products + 1 addition across both halves) plus rescale
      ((i)NTT pair per output tower);
    * ``"plain"``  — ciphertext-plaintext multiply + rescale;
    * ``"add"``    — ciphertext addition;
    * ``"automorphism"`` — the rotation's permutation of both halves.

    Operand ciphertexts stream from DRAM and results stream back — the
    working state of a deep workload does not fit on-chip.
    """
    g = TaskGraph(f"{spec.name}/{kind}")
    n = spec.n
    towers = spec.kl
    tb = spec.tower_bytes

    def stream_op(in_towers: int, out_towers: int, muls: int, adds: int,
                  label: str) -> None:
        load = g.add(Kind.LOAD, bytes_moved=in_towers * tb, label=f"load {label}")
        comp = g.add(
            Kind.PWISE, mod_muls=muls, mod_adds=adds, deps=[load], label=label
        )
        g.add(Kind.STORE, bytes_moved=out_towers * tb, deps=[comp],
              label=f"store {label}")

    if kind == "tensor":
        # d0 = a0*b0; d1 = a0*b1 + a1*b0; plus rescale of both halves.
        stream_op(4 * towers, 2 * towers, 4 * n * towers, n * towers, "tensor")
        rescale_ops = 2 * towers * ntt_tower_ops(n)
        comp = g.add(
            Kind.NTT,
            mod_muls=rescale_ops.muls,
            mod_adds=rescale_ops.adds,
            label="rescale ntts",
        )
        g.add(Kind.STORE, bytes_moved=2 * towers * tb, deps=[comp],
              label="store rescaled")
    elif kind == "plain":
        stream_op(2 * towers + towers, 2 * towers, 2 * n * towers, 0, "plain mul")
    elif kind == "add":
        stream_op(4 * towers, 2 * towers, 0, 2 * n * towers, "add")
    elif kind == "automorphism":
        # Permutations run on the shuffle pipe; charge one pass of adds.
        stream_op(2 * towers, 2 * towers, 0, 2 * n * towers, "automorphism")
    else:
        raise ParameterError(f"unknown op kind {kind!r}")
    g.validate()
    return g


def hks_time_share(
    spec: BenchmarkSpec,
    mix: HEOpMix,
    dataflow: str = "MP",
    bandwidth_gbs: float = 64.0,
    evk_on_chip: bool = True,
    sram_mb: int = 32,
) -> Dict[str, float]:
    """Fraction of application time spent inside hybrid key switching.

    Every rotation and every ciphertext-ciphertext multiply triggers one
    HKS; the remaining work is modelled by :func:`build_pointwise_graph`.
    """
    rpu = RPUConfig(
        bandwidth_bytes_per_s=bandwidth_gbs * 1e9,
        data_sram_bytes=sram_mb * MB,
        key_sram_bytes=360 * MB if evk_on_chip else 0,
    )
    sim = RPUSimulator(rpu)
    config = DataflowConfig(data_sram_bytes=sram_mb * MB, evk_on_chip=evk_on_chip)
    hks_graph = get_dataflow(dataflow).build(spec, config)
    hks_each = sim.simulate(hks_graph).runtime_s

    op_times = {
        kind: sim.simulate(build_pointwise_graph(spec, kind)).runtime_s
        for kind in ("tensor", "plain", "add", "automorphism")
    }
    hks_calls = mix.rotations + mix.ct_multiplies
    hks_total = hks_calls * hks_each
    other_total = (
        mix.ct_multiplies * op_times["tensor"]
        + mix.pt_multiplies * op_times["plain"]
        + mix.additions * op_times["add"]
        + mix.rotations * op_times["automorphism"]
    )
    total = hks_total + other_total
    return {
        "benchmark": spec.name,
        "dataflow": dataflow,
        "bandwidth_GBs": bandwidth_gbs,
        "hks_calls": hks_calls,
        "hks_ms_per_call": hks_each * 1e3,
        "hks_s": hks_total,
        "other_s": other_total,
        "total_s": total,
        "hks_share": hks_total / total if total else 0.0,
    }
