"""Workload-level modelling: where does time go in a full HE application?

The paper's motivation is that hybrid key switching consumes ~70% of
private-inference runtime (ResNet-20: 3,306 rotations).  This package
represents whole applications as phase-structured
:class:`~repro.workloads.ir.WorkloadProgram`\\ s — ordered lists of
:class:`~repro.workloads.ir.Phase` entries, each priced at its own point
of the modulus chain — so the claim can be reproduced quantitatively,
*level-aware*, on the same simulator.

Layout:

* :mod:`repro.workloads.mix` — op mixes and per-op task models;
* :mod:`repro.workloads.ir` — the phase IR plus the deprecated flat
  :class:`CompositeWorkload` shim;
* :mod:`repro.workloads.builders` — structural lowering of the bootstrap
  plan and the deep scenarios (``BOOT``, ``RESNET_BOOT``, ``HELR``);
* :mod:`repro.workloads.registry` — name -> program lookup used by
  ``estimate()``.
"""

from repro.workloads.builders import (
    boot_flat_workload,
    boot_program,
    bootstrap_phases,
    bootstrap_plan,
    bootstrap_workload,
    helr_program,
    resnet_boot_program,
)
from repro.workloads.ir import (
    BOOTSTRAP_KINDS,
    CompositeWorkload,
    PHASE_KINDS,
    Phase,
    WorkloadProgram,
    as_program,
    level_spec,
)
from repro.workloads.mix import HEOpMix, build_pointwise_graph, hks_time_share
from repro.workloads.registry import WORKLOADS, get_workload, list_workloads

__all__ = [
    "BOOTSTRAP_KINDS",
    "CompositeWorkload",
    "HEOpMix",
    "PHASE_KINDS",
    "Phase",
    "WORKLOADS",
    "WorkloadProgram",
    "as_program",
    "boot_flat_workload",
    "boot_program",
    "bootstrap_phases",
    "bootstrap_plan",
    "bootstrap_workload",
    "build_pointwise_graph",
    "get_workload",
    "helr_program",
    "hks_time_share",
    "level_spec",
    "list_workloads",
    "resnet_boot_program",
]
