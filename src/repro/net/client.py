"""Asyncio client for the network estimate service.

:class:`EstimateClient` speaks the frame protocol end-to-end: it
pipelines requests (a background reader matches responses to requests by
id, so many submits/gathers are in flight on one connection), rebuilds
typed results (``RunReport`` via the wire codec, ``AnalysisReport`` on
admission rejections), and turns the server's structured error frames
into typed exceptions — the retryable ones (:class:`RateLimited`,
:class:`QuotaExceeded`, :class:`Backpressure`) carry the server's
``retry_after`` hint, which :meth:`EstimateClient.estimate` honors when
asked to retry.

Typical use::

    async with EstimateClient("127.0.0.1", 7420, token="s3cret") as cli:
        report = await cli.estimate(plan)           # submit + gather
        reports = await cli.estimate_many(plans)    # pipelined batch
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.api.plan import Plan, report_from_dict
from repro.errors import ReproError
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    FrameError,
    analysis_report_from_dict,
    read_frame,
    write_frame,
)
from repro.net.warming import build_mix_payload

if TYPE_CHECKING:
    from repro.api.backends import RunReport


class RemoteError(ReproError):
    """An error frame from the server, rebuilt as a typed exception."""

    def __init__(self, kind: str, message: str, *,
                 retry_after: Optional[float] = None, report=None):
        super().__init__(message)
        self.kind = kind
        self.retry_after = retry_after
        #: The server-side :class:`~repro.analysis.AnalysisReport` for
        #: admission rejections; ``None`` otherwise.
        self.report = report


class RemoteAdmissionError(RemoteError):
    """The server's static analysis rejected the plan (see ``.report``)."""


class RateLimited(RemoteError):
    """Tenant token bucket empty; retry after ``.retry_after`` seconds."""


class QuotaExceeded(RemoteError):
    """Tenant in-flight quota exhausted; gather results or back off."""


class Backpressure(RemoteError):
    """Server queue full; retry after ``.retry_after`` seconds."""


_ERROR_CLASSES = {
    "admission": RemoteAdmissionError,
    "rate": RateLimited,
    "quota": QuotaExceeded,
    "backpressure": Backpressure,
}

#: Error kinds :meth:`EstimateClient.estimate` may transparently retry.
RETRYABLE_KINDS = ("rate", "quota", "backpressure")


def _raise_error(error: Dict[str, object]) -> None:
    kind = str(error.get("kind", "internal"))
    report = error.get("report")
    if report is not None:
        report = analysis_report_from_dict(report)
    cls = _ERROR_CLASSES.get(kind, RemoteError)
    raise cls(kind, str(error.get("message", "remote error")),
              retry_after=error.get("retry_after"), report=report)


class EstimateClient:
    """One authenticated, pipelined connection to an estimate server."""

    def __init__(self, host: str, port: int, *,
                 token: Optional[str] = None,
                 max_frame: int = DEFAULT_MAX_FRAME,
                 timeout: float = 60.0):
        self.host = host
        self.port = port
        self.token = token
        self.max_frame = max_frame
        #: Client-side ceiling on one request/response round trip.
        self.timeout = timeout
        #: Set by ``hello``: tenant name, limits, server admission mode.
        self.session: Dict[str, object] = {}
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._waiting: Dict[int, asyncio.Future] = {}
        self._seq = 0
        self._write_lock = asyncio.Lock()

    # -- lifecycle --------------------------------------------------------------

    async def connect(self) -> "EstimateClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )
        self.session = await self._request("hello", token=self.token)
        return self

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        self._fail_waiters(ConnectionError("client closed"))

    async def __aenter__(self) -> "EstimateClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- plumbing ---------------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader,
                                         max_frame=self.max_frame)
                if frame is None:
                    self._fail_waiters(
                        ConnectionError("server closed the connection")
                    )
                    return
                future = self._waiting.pop(frame.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except asyncio.CancelledError:
            raise
        except (FrameError, ConnectionError, OSError) as exc:
            self._fail_waiters(exc)

    def _fail_waiters(self, exc: BaseException) -> None:
        waiting, self._waiting = self._waiting, {}
        for future in waiting.values():
            if not future.done():
                future.set_exception(exc)

    async def _request(self, op: str, **fields: object) -> Dict[str, object]:
        """Send one frame and await its (id-matched) response payload."""
        if self._writer is None:
            raise ConnectionError("client is not connected")
        self._seq += 1
        req_id = self._seq
        frame: Dict[str, object] = {"v": PROTOCOL_VERSION, "id": req_id,
                                    "op": op}
        frame.update({k: v for k, v in fields.items() if v is not None})
        future = asyncio.get_running_loop().create_future()
        self._waiting[req_id] = future
        try:
            async with self._write_lock:
                await write_frame(self._writer, frame,
                                  max_frame=self.max_frame)
            response = await asyncio.wait_for(future, self.timeout)
        finally:
            self._waiting.pop(req_id, None)
        if not response.get("ok"):
            _raise_error(response.get("error") or {})
        return response

    # -- operations -------------------------------------------------------------

    async def submit(self, plan: Plan) -> str:
        """Submit one plan; returns its ticket id (gather it later)."""
        response = await self._request("submit", plan=plan.to_dict())
        return str(response["ticket"])

    async def gather(self, tickets: Sequence[str], *,
                     timeout: Optional[float] = None
                     ) -> List["RunReport"]:
        """Resolve tickets into reports (order preserved); raises on the
        first failed ticket."""
        response = await self._request("gather", tickets=list(tickets),
                                       timeout=timeout)
        reports = []
        for entry in response["results"]:
            if not entry.get("ok"):
                _raise_error(entry.get("error") or {})
            reports.append(report_from_dict(entry["report"]))
        return reports

    async def estimate(self, plan: Plan, *, retries: int = 0
                       ) -> "RunReport":
        """Submit one plan and await its report.

        ``retries`` > 0 transparently re-submits after retryable
        refusals (rate, quota, backpressure), sleeping the server's
        ``retry_after`` hint between attempts — load shed by the server
        becomes deferral, not failure, up to the retry budget.
        """
        attempt = 0
        while True:
            try:
                ticket = await self.submit(plan)
                return (await self.gather([ticket]))[0]
            except RemoteError as exc:
                if exc.kind not in RETRYABLE_KINDS or attempt >= retries:
                    raise
                attempt += 1
                await asyncio.sleep(exc.retry_after or 0.05)

    async def estimate_many(self, plans: Sequence[Plan], *,
                            retries: int = 0) -> List["RunReport"]:
        """Pipelined batch estimate over this one connection."""
        return list(await asyncio.gather(
            *(self.estimate(plan, retries=retries) for plan in plans)
        ))

    async def status(self, *, mix: bool = False) -> Dict[str, object]:
        response = await self._request("status", mix=mix or None)
        return {k: v for k, v in response.items()
                if k not in ("v", "id", "ok")}

    async def warm(self, entries: Sequence[Tuple[Plan, int]]) -> int:
        """Pre-submit a request mix server-side; returns plans warmed."""
        response = await self._request(
            "warm", mix=build_mix_payload(list(entries))
        )
        return int(response["warmed"])

    async def shutdown(self) -> Dict[str, object]:
        """Ask the server to drain and stop (admin tenants only)."""
        return await self._request("shutdown")
