"""Asyncio client for the network estimate service.

:class:`EstimateClient` speaks the frame protocol end-to-end: it
pipelines requests (a background reader matches responses to requests by
id, so many submits/gathers are in flight on one connection), rebuilds
typed results (``RunReport`` via the wire codec, ``AnalysisReport`` on
admission rejections), and turns the server's structured error frames
into typed exceptions — the retryable ones (:class:`RateLimited`,
:class:`QuotaExceeded`, :class:`Backpressure`) carry the server's
``retry_after`` hint, which :meth:`EstimateClient.estimate` honors when
asked to retry.

Typical use::

    async with EstimateClient("127.0.0.1", 7420, token="s3cret") as cli:
        report = await cli.estimate(plan)           # submit + gather
        reports = await cli.estimate_many(plans)    # pipelined batch
"""

from __future__ import annotations

import asyncio
import random
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.plan import Plan, report_from_dict
from repro.errors import ReproError
from repro.faults import Deadline, DeadlineExceeded
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    FrameError,
    analysis_report_from_dict,
    read_frame,
    write_frame,
)
from repro.net.warming import build_mix_payload

if TYPE_CHECKING:
    from repro.api.backends import RunReport


class RemoteError(ReproError):
    """An error frame from the server, rebuilt as a typed exception."""

    def __init__(self, kind: str, message: str, *,
                 retry_after: Optional[float] = None, report=None):
        super().__init__(message)
        self.kind = kind
        self.retry_after = retry_after
        #: The server-side :class:`~repro.analysis.AnalysisReport` for
        #: admission rejections; ``None`` otherwise.
        self.report = report


class RemoteAdmissionError(RemoteError):
    """The server's static analysis rejected the plan (see ``.report``)."""


class RateLimited(RemoteError):
    """Tenant token bucket empty; retry after ``.retry_after`` seconds."""


class QuotaExceeded(RemoteError):
    """Tenant in-flight quota exhausted; gather results or back off."""


class Backpressure(RemoteError):
    """Server queue full; retry after ``.retry_after`` seconds."""


class RemoteDeadlineExceeded(RemoteError):
    """The server answered ``deadline_exceeded``: the request's budget
    ran out before (or while) it was computed.  Terminal, not retryable
    — the same budget would expire again."""


_ERROR_CLASSES = {
    "admission": RemoteAdmissionError,
    "rate": RateLimited,
    "quota": QuotaExceeded,
    "backpressure": Backpressure,
    "deadline_exceeded": RemoteDeadlineExceeded,
}

#: Error kinds :meth:`EstimateClient.estimate` may transparently retry.
RETRYABLE_KINDS = ("rate", "quota", "backpressure")


def backoff_delay(attempt: int, hint: Optional[float] = None,
                  rng: Optional[random.Random] = None, *,
                  base: float = 0.05, cap: float = 2.0) -> float:
    """Capped exponential backoff with full-range jitter.

    ``(hint or base) * 2**attempt`` capped at ``cap``, then scaled by a
    uniform factor in ``[0.5, 1.5)`` so a fleet of clients refused at
    the same instant does not re-arrive in lockstep (a retry storm
    re-synchronizing against a recovering server).  Deterministic when
    given a seeded ``rng`` — chaos tests replay exact retry schedules.
    """
    delay = min(cap, (hint if hint else base) * (2.0 ** attempt))
    jitter = (rng or random).random()
    return delay * (0.5 + jitter)


def _raise_error(error: Dict[str, object]) -> None:
    kind = str(error.get("kind", "internal"))
    report = error.get("report")
    if report is not None:
        report = analysis_report_from_dict(report)
    cls = _ERROR_CLASSES.get(kind, RemoteError)
    raise cls(kind, str(error.get("message", "remote error")),
              retry_after=error.get("retry_after"), report=report)


class EstimateClient:
    """One authenticated, pipelined connection to an estimate server."""

    def __init__(self, host: str, port: int, *,
                 token: Optional[str] = None,
                 max_frame: int = DEFAULT_MAX_FRAME,
                 timeout: float = 60.0,
                 backoff_seed: Optional[int] = None):
        self.host = host
        self.port = port
        self.token = token
        self.max_frame = max_frame
        #: Client-side ceiling on one request/response round trip.
        self.timeout = timeout
        #: Jitter stream for retry backoff; seed it for reproducible
        #: retry schedules (chaos tests), leave None for real traffic.
        self._rng = random.Random(backoff_seed)
        #: Set by ``hello``: tenant name, limits, server admission mode.
        self.session: Dict[str, object] = {}
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._waiting: Dict[int, asyncio.Future] = {}
        self._seq = 0
        self._write_lock = asyncio.Lock()

    # -- lifecycle --------------------------------------------------------------

    async def connect(self) -> "EstimateClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )
        self.session = await self._request("hello", token=self.token)
        return self

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        self._fail_waiters(ConnectionError("client closed"))

    async def __aenter__(self) -> "EstimateClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- plumbing ---------------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader,
                                         max_frame=self.max_frame)
                if frame is None:
                    self._fail_waiters(
                        ConnectionError("server closed the connection")
                    )
                    return
                future = self._waiting.pop(frame.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except asyncio.CancelledError:
            raise
        except (FrameError, ConnectionError, OSError) as exc:
            self._fail_waiters(exc)

    def _fail_waiters(self, exc: BaseException) -> None:
        waiting, self._waiting = self._waiting, {}
        for future in waiting.values():
            if not future.done():
                future.set_exception(exc)

    async def _request(self, op: str,
                       rpc_timeout: Optional[float] = None,
                       **fields: object) -> Dict[str, object]:
        """Send one frame and await its (id-matched) response payload."""
        if self._writer is None:
            raise ConnectionError("client is not connected")
        self._seq += 1
        req_id = self._seq
        frame: Dict[str, object] = {"v": PROTOCOL_VERSION, "id": req_id,
                                    "op": op}
        frame.update({k: v for k, v in fields.items() if v is not None})
        future = asyncio.get_running_loop().create_future()
        self._waiting[req_id] = future
        try:
            async with self._write_lock:
                # Re-check under the lock: close() may have nulled the
                # writer while we awaited it.  A clean ConnectionError
                # here, never an AttributeError.
                writer = self._writer
                if writer is None:
                    raise ConnectionError("client closed")
                await write_frame(writer, frame, max_frame=self.max_frame)
            response = await asyncio.wait_for(
                future,
                self.timeout if rpc_timeout is None else rpc_timeout,
            )
        finally:
            self._waiting.pop(req_id, None)
        if not response.get("ok"):
            _raise_error(response.get("error") or {})
        return response

    # -- operations -------------------------------------------------------------

    async def submit(self, plan: Plan, *,
                     deadline: Optional[Deadline] = None) -> str:
        """Submit one plan; returns its ticket id (gather it later).

        ``deadline`` travels in the frame as a remaining-seconds budget
        (``deadline_s``) — the server rejects expired arrivals and
        answers ``deadline_exceeded`` if the budget runs out later.
        """
        response = await self._request(
            "submit", plan=plan.to_dict(),
            deadline_s=deadline.to_wire() if deadline else None,
        )
        return str(response["ticket"])

    async def gather(self, tickets: Sequence[str], *,
                     timeout: Optional[float] = None,
                     deadline: Optional[Deadline] = None,
                     ) -> List["RunReport"]:
        """Resolve tickets into reports (order preserved); raises on the
        first failed ticket.  With a ``deadline``, both the server-side
        wait and the client-side RPC timeout are clipped to it."""
        if deadline is not None:
            remaining = deadline.remaining()
            timeout = remaining if timeout is None \
                else min(timeout, remaining)
        response = await self._request(
            "gather", tickets=list(tickets), timeout=timeout,
            # Give the server a moment to answer `timeout` cleanly
            # before the client-side watchdog gives up on the RPC.
            rpc_timeout=None if deadline is None
            else min(self.timeout, deadline.remaining() + 1.0),
        )
        reports = []
        for entry in response["results"]:
            if not entry.get("ok"):
                _raise_error(entry.get("error") or {})
            reports.append(report_from_dict(entry["report"]))
        return reports

    async def estimate(self, plan: Plan, *, retries: int = 0,
                       deadline: "Union[None, float, Deadline]" = None,
                       ) -> "RunReport":
        """Submit one plan and await its report.

        ``retries`` > 0 transparently re-submits after retryable
        refusals (rate, quota, backpressure), sleeping a capped
        exponential backoff seeded from the server's ``retry_after``
        hint (with jitter, so refused fleets desynchronize) — load shed
        by the server becomes deferral, not failure, up to the retry
        budget.  ``deadline`` (seconds, or a
        :class:`~repro.faults.Deadline`) bounds the *whole* call,
        retries included: when the next backoff would overrun it, the
        last refusal is re-raised as
        :class:`~repro.faults.DeadlineExceeded` — a refusing server can
        never pin a client forever.
        """
        deadline = Deadline.coerce(deadline)
        attempt = 0
        while True:
            if deadline is not None and deadline.expired:
                raise DeadlineExceeded(
                    f"deadline expired before plan {plan.name} was "
                    f"submitted"
                )
            try:
                ticket = await self.submit(plan, deadline=deadline)
                return (await self.gather([ticket], deadline=deadline))[0]
            except RemoteError as exc:
                if exc.kind not in RETRYABLE_KINDS or attempt >= retries:
                    raise
                delay = backoff_delay(attempt, exc.retry_after, self._rng)
                attempt += 1
                if deadline is not None:
                    remaining = deadline.remaining()
                    if remaining <= delay:
                        raise DeadlineExceeded(
                            f"deadline expired after {attempt} attempt(s) "
                            f"for plan {plan.name}; last refusal: "
                            f"{exc.kind}"
                        ) from exc
                await asyncio.sleep(delay)

    async def estimate_many(self, plans: Sequence[Plan], *,
                            retries: int = 0,
                            deadline: "Union[None, float, Deadline]" = None,
                            ) -> List["RunReport"]:
        """Pipelined batch estimate over this one connection."""
        deadline = Deadline.coerce(deadline)
        return list(await asyncio.gather(
            *(self.estimate(plan, retries=retries, deadline=deadline)
              for plan in plans)
        ))

    async def status(self, *, mix: bool = False) -> Dict[str, object]:
        response = await self._request("status", mix=mix or None)
        return {k: v for k, v in response.items()
                if k not in ("v", "id", "ok")}

    async def warm(self, entries: Sequence[Tuple[Plan, int]]) -> int:
        """Pre-submit a request mix server-side; returns plans warmed."""
        response = await self._request(
            "warm", mix=build_mix_payload(list(entries))
        )
        return int(response["warmed"])

    async def shutdown(self) -> Dict[str, object]:
        """Ask the server to drain and stop (admin tenants only)."""
        return await self._request("shutdown")
