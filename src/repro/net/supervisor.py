"""Worker supervision for the network server's shard pool.

The :class:`~repro.serve.pool.ShardPool` already detects deaths *inside*
a batch (requeueing in-flight plans); the supervisor adds the
between-batches half: a periodic liveness sweep that reaps and respawns
workers that died while idle, and a graceful ``SIGHUP`` rolling restart
(spawn replacement, retire predecessor, one worker at a time) for
operators who want to recycle processes without dropping requests.

The supervisor is deliberately dumb about *why* a worker died — it only
promises that the pool converges back to its configured size and that
the server's status endpoint can report deaths/restarts truthfully.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional

from repro.serve.pool import ShardPool


class WorkerSupervisor:
    """Periodically heal a :class:`ShardPool`; restart it on demand.

    Run :meth:`run` as an asyncio task next to the server.  Pool calls
    (liveness checks, joins) are thread-safe but potentially blocking,
    so anything slower than an ``is_alive()`` sweep runs in the event
    loop's executor.
    """

    def __init__(self, pool: Optional[ShardPool], *, interval: float = 1.0):
        self.pool = pool
        self.interval = interval
        self.sweeps = 0
        self.rolling_restarts = 0
        self._task: Optional[asyncio.Task] = None

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        if self.pool is not None and self._task is None:
            self._task = asyncio.get_running_loop().create_task(self.run())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def run(self) -> None:
        while True:
            await asyncio.sleep(self.interval)
            self.sweep()

    # -- supervision ------------------------------------------------------------

    def sweep(self) -> int:
        """One liveness pass: reap dead idle workers, spawn replacements."""
        self.sweeps += 1
        if self.pool is None or not self.pool.started:
            return 0
        return self.pool.reap(restart=True)

    async def rolling_restart(self) -> int:
        """Gracefully recycle every worker (the ``SIGHUP`` handler).

        Runs in the executor: the rolling restart joins retiring
        processes, which must not block the event loop mid-request.
        """
        if self.pool is None:
            return 0
        loop = asyncio.get_running_loop()
        recycled = await loop.run_in_executor(None, self.pool.rolling_restart)
        self.rolling_restarts += 1
        return recycled

    # -- reporting --------------------------------------------------------------

    def status(self) -> Dict[str, object]:
        if self.pool is None:
            return {"workers": 0, "alive": 0, "pids": [], "deaths": 0,
                    "restarts": 0, "stalls": 0, "sweeps": self.sweeps,
                    "rolling_restarts": self.rolling_restarts}
        return {
            "workers": self.pool.workers,
            "alive": self.pool.alive_workers(),
            "pids": self.pool.worker_pids() if self.pool.started else [],
            "deaths": self.pool.deaths,
            "restarts": self.pool.restarts,
            "stalls": self.pool.stalls,
            "sweeps": self.sweeps,
            "rolling_restarts": self.rolling_restarts,
        }
