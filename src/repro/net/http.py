"""Thin HTTP/1.1 adapter over the TCP estimate server.

Curl-ability, not a web framework: the adapter parses just enough
HTTP/1.1 (request line, headers, ``Content-Length`` body) to map three
endpoints onto the same admission/queueing/dispatch path the native
frame protocol uses — no second implementation of any policy.

* ``GET /healthz`` — liveness (no auth), 200 once the server accepts;
* ``GET /v1/status`` — the ``status`` op's payload as JSON;
* ``POST /v1/estimate`` — body is one ``Plan.to_dict()`` JSON object;
  blocks until the report is ready and returns it.

Authentication is ``Authorization: Bearer <token>`` against the same
tenant registry (open registries accept anything, including no header).
Error kinds map onto status codes (429 + ``Retry-After`` for rate/quota,
503 + ``Retry-After`` for backpressure, 422 for admission rejections
with the diagnostics in the body), so generic HTTP clients back off
correctly without speaking the frame protocol.

Each connection serves one request (``Connection: close``): the adapter
is for probes, dashboards and ad-hoc estimates; sustained load belongs
on the frame protocol, whose clients pipeline and batch.
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.api.plan import Plan, report_to_dict
from repro.errors import ParameterError
from repro.net import protocol
from repro.net.server import Rejection
from repro.net.tenants import AuthError
from repro.serve import AdmissionError

if TYPE_CHECKING:
    from repro.net.server import EstimateServer

#: Protocol error kind -> HTTP status.
STATUS_BY_KIND = {
    "protocol": 400,
    "plan": 400,
    "auth": 401,
    "admission": 422,
    "rate": 429,
    "quota": 429,
    "backpressure": 503,
    "shutdown": 503,
    "timeout": 504,
    "deadline_exceeded": 504,
    "worker": 500,
    "stalled_worker": 500,
    "internal": 500,
}

_REASONS = {
    200: "OK", 400: "Bad Request", 401: "Unauthorized", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    422: "Unprocessable Entity", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Bound on request head + body (reuses the frame limit's rationale).
_MAX_BODY = protocol.DEFAULT_MAX_FRAME


class HTTPFrontend:
    """Serve the HTTP endpoints of one :class:`EstimateServer`."""

    def __init__(self, server: "EstimateServer"):
        self.server = server
        self._listener: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        if self._listener is None:
            raise ParameterError("HTTP frontend is not started")
        return self._listener.sockets[0].getsockname()[1]

    async def start(self, host: str, port: int) -> None:
        self._listener = await asyncio.start_server(self._handle, host, port)

    async def stop(self) -> None:
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()

    # -- request handling -------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, payload, retry_after = await self._respond(reader)
        except asyncio.CancelledError:
            writer.close()
            raise
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            status, retry_after = 500, None
            payload = _error_body("internal",
                                  f"{type(exc).__name__}: {exc}")
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
        )
        if retry_after is not None:
            head += f"Retry-After: {max(1, math.ceil(retry_after))}\r\n"
        try:
            writer.write(head.encode("ascii") + b"\r\n" + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, reader: asyncio.StreamReader
                       ) -> Tuple[int, Dict[str, object], Optional[float]]:
        try:
            method, path, headers, body = await _read_request(reader)
        except _BadRequest as exc:
            return exc.status, _error_body("protocol", str(exc)), None

        if path == "/healthz":
            if method != "GET":
                return 405, _error_body("protocol", "healthz is GET"), None
            return 200, {"ok": True, "draining": self.server._draining}, None

        try:
            tenant = self.server.registry.authenticate(_token(headers))
            if path == "/v1/status":
                if method != "GET":
                    return 405, _error_body("protocol", "status is GET"), None
                return 200, {"ok": True, **self.server.status_payload()}, None
            if path == "/v1/estimate":
                if method != "POST":
                    return 405, _error_body("protocol",
                                            "estimate is POST"), None
                return await self._estimate(tenant, body)
        except AuthError as exc:
            return 401, _error_body("auth", str(exc)), None
        except Rejection as rej:
            body_payload = _error_body(rej.kind, str(rej))
            if rej.report is not None:
                body_payload["error"]["report"] = \
                    protocol.analysis_report_to_dict(rej.report)
            return (STATUS_BY_KIND.get(rej.kind, 500), body_payload,
                    rej.retry_after)
        return 404, _error_body("protocol", f"no such endpoint {path}"), None

    async def _estimate(self, tenant, body: bytes
                        ) -> Tuple[int, Dict[str, object], Optional[float]]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise Rejection("plan", f"body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise Rejection("plan", "body must be a Plan JSON object")
        # Accept both the bare Plan object and the framed-protocol shape
        # ``{"plan": {...}}`` — clients coming from the TCP API wrap it.
        if isinstance(payload.get("plan"), dict):
            payload = payload["plan"]
        try:
            plan = Plan.from_dict(payload)
        except (ParameterError, KeyError, TypeError, ValueError) as exc:
            raise Rejection("plan", f"plan payload rejected: {exc}") from exc
        ticket = await self.server.admit_and_submit(tenant, plan)
        try:
            await asyncio.wait_for(ticket.event.wait(),
                                   self.server.config.gather_timeout)
        except asyncio.TimeoutError:
            # The ticket stays live server-side; the client retries.
            return (504, _error_body("timeout", "estimate did not resolve "
                                     "in time"), None)
        self.server._tickets.pop(ticket.id, None)
        self.server.stats.gathered += 1
        if ticket.error is None:
            return 200, {"ok": True, "digest": plan.digest,
                         "report": report_to_dict(ticket.report)}, None
        error = ticket.error
        if isinstance(error, AdmissionError):
            raise Rejection("admission", str(error), report=error.report)
        raise Rejection("worker", f"{type(error).__name__}: {error}")


def _error_body(kind: str, message: str) -> Dict[str, object]:
    return {"ok": False, "error": {"kind": kind, "message": message}}


class _BadRequest(Exception):
    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


def _token(headers: Dict[str, str]) -> Optional[str]:
    auth = headers.get("authorization")
    if auth is None:
        return None
    scheme, _, credential = auth.partition(" ")
    if scheme.lower() != "bearer" or not credential.strip():
        raise AuthError("Authorization header must be 'Bearer <token>'")
    return credential.strip()


async def _read_request(reader: asyncio.StreamReader
                        ) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse one HTTP/1.1 request: (method, path, headers, body)."""
    try:
        request_line = await reader.readline()
    except (ValueError, ConnectionError) as exc:
        raise _BadRequest(f"unreadable request line: {exc}") from exc
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise _BadRequest("malformed HTTP request line")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise _BadRequest(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > _MAX_BODY:
        raise _BadRequest(
            f"body of {length} bytes exceeds the {_MAX_BODY}-byte limit",
            status=413,
        )
    body = await reader.readexactly(length) if length else b""
    return method, path.split("?", 1)[0], headers, body
