"""Versioned wire protocol for the network estimate service.

One frame = a 4-byte big-endian length prefix + a UTF-8 JSON object.
Length-prefixing keeps the codec trivial and misframing detectable: a
frame that claims more than ``max_frame`` bytes is rejected before a
single body byte is read, and a connection that ends mid-frame raises
:class:`FrameError` instead of silently truncating a request.

Every payload carries the protocol version (``"v"``) and a client-chosen
request id (``"id"``); responses echo the id, so a client may pipeline
requests and match responses out of order.

Request frames (client -> server)::

    {"v": 1, "id": 7, "op": "hello",  "token": "..."}
    {"v": 1, "id": 8, "op": "submit", "plan": {...Plan.to_dict()...},
                      "deadline_s": 2.5}
    {"v": 1, "id": 9, "op": "gather", "tickets": ["t3"], "timeout": 30.0}
    {"v": 1, "id": 10, "op": "status", "mix": false}
    {"v": 1, "id": 11, "op": "warm",   "mix": {...mix payload...}}
    {"v": 1, "id": 12, "op": "shutdown"}

``deadline_s`` (optional, ``submit`` only) is the request's *remaining*
time budget in seconds — a relative duration, not a timestamp, so the
two ends never need synchronized clocks (the gRPC convention).  The
server rebuilds a local monotonic deadline from it: a submit that
arrives already expired is rejected with kind ``deadline_exceeded``,
and a ticket whose budget runs out mid-computation resolves to the same
structured error instead of silence.  Missing or malformed values mean
"no deadline" — old clients keep working unchanged.

Response frames (server -> client)::

    {"v": 1, "id": 8, "ok": true, ...op-specific fields...}
    {"v": 1, "id": 8, "ok": false, "error": {
        "kind": "backpressure",        # see ERROR_KINDS
        "message": "...",
        "retry_after": 0.25,           # seconds; optional
        "report": {...},               # AnalysisReport; admission only
    }}

The ``report`` field serializes the static-analysis diagnostics of a
plan rejected at admission (PR 6's :class:`AdmissionError`), so a remote
client sees exactly what an in-process caller would.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Dict, List, Optional, Tuple

from repro.analysis import AnalysisReport, Diagnostic, Severity
from repro.errors import ReproError
from repro.faults import InjectedFault, fault_point

#: Bump on incompatible frame-layout changes; both ends check it.
PROTOCOL_VERSION = 1

#: Default ceiling on one frame's JSON body (requests and responses).
#: A HELR-class plan payload is ~11 KB; a warm-mix frame carries dozens
#: of plans — 4 MiB leaves two orders of magnitude of headroom while
#: still bounding what one client can make the server buffer.
DEFAULT_MAX_FRAME = 4 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: Machine-readable failure classes an error frame may carry.
ERROR_KINDS = (
    "protocol",      # malformed frame / unknown op / bad version
    "auth",          # missing, unknown or unauthorized token
    "plan",          # plan payload failed to parse/validate
    "admission",     # static verification rejected the plan (has report)
    "rate",          # tenant token-bucket empty (has retry_after)
    "quota",         # tenant in-flight quota exhausted (has retry_after)
    "backpressure",  # server queue full (has retry_after)
    "worker",        # execution failed in a worker process
    "timeout",       # gather wait expired (the ticket stays valid)
    "shutdown",      # server is draining and not accepting work
    #: The request's ``deadline_s`` budget expired — on arrival, in the
    #: queue, or mid-computation.  Terminal: the ticket is consumed and
    #: the work was skipped or abandoned; resubmit with a fresh budget.
    "deadline_exceeded",
    #: A live-but-hung shard worker was killed by the pool's stall
    #: reaper with this request in flight and the requeue budget ran
    #: out (see ShardPool.MAX_REQUEUES) — the payload itself likely
    #: wedges workers.
    "stalled_worker",
    "internal",      # anything else
)


class FrameError(ReproError):
    """A frame violated the wire protocol (length, encoding, or JSON)."""


# -- codec ----------------------------------------------------------------------

def encode_frame(payload: Dict[str, object], *,
                 max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Serialize one payload to its length-prefixed wire form."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > max_frame:
        raise FrameError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{max_frame}-byte limit"
        )
    try:
        if fault_point("net.encode", context=str(payload.get("op", ""))) \
                == "corrupt":
            # Flip the last body byte: a correctly framed but damaged
            # payload, so the receiver's JSON-level recovery runs.
            body = body[:-1] + bytes([body[-1] ^ 0x01])
    except InjectedFault as exc:
        raise FrameError(str(exc)) from exc
    return _HEADER.pack(len(body)) + body


def decode_frames(buffer: bytes, *, max_frame: int = DEFAULT_MAX_FRAME
                  ) -> Tuple[List[Dict[str, object]], bytes]:
    """Split a byte buffer into complete payloads plus the unconsumed tail.

    The synchronous mirror of :func:`read_frame` (tests and non-asyncio
    callers).  Raises :class:`FrameError` on an oversized declared length
    or a body that is not a JSON object.
    """
    frames: List[Dict[str, object]] = []
    offset = 0
    while len(buffer) - offset >= _HEADER.size:
        (length,) = _HEADER.unpack_from(buffer, offset)
        if length > max_frame:
            raise FrameError(
                f"declared frame length {length} exceeds the "
                f"{max_frame}-byte limit"
            )
        if len(buffer) - offset - _HEADER.size < length:
            break
        start = offset + _HEADER.size
        frames.append(_parse_body(buffer[start:start + length]))
        offset = start + length
    return frames, buffer[offset:]


def _parse_body(body: bytes) -> Dict[str, object]:
    # An injected decode fault must surface as FrameError — it is the
    # one exception type every reader loop already handles gracefully.
    try:
        if fault_point("net.decode") == "corrupt" and body:
            body = body[:-1] + bytes([body[-1] ^ 0x01])
    except InjectedFault as exc:
        raise FrameError(str(exc)) from exc
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


async def read_frame(reader: asyncio.StreamReader, *,
                     max_frame: int = DEFAULT_MAX_FRAME
                     ) -> Optional[Dict[str, object]]:
    """Read one frame; ``None`` on clean EOF (peer closed between frames).

    EOF *inside* a frame — header or body — is a protocol violation and
    raises :class:`FrameError`, as does an oversized declared length
    (detected before the body is buffered).
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError(
            f"connection closed mid-header ({len(exc.partial)}/"
            f"{_HEADER.size} bytes)"
        ) from exc
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise FrameError(
            f"declared frame length {length} exceeds the "
            f"{max_frame}-byte limit"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} "
            f"body bytes)"
        ) from exc
    return _parse_body(body)


async def write_frame(writer: asyncio.StreamWriter,
                      payload: Dict[str, object], *,
                      max_frame: int = DEFAULT_MAX_FRAME) -> None:
    writer.write(encode_frame(payload, max_frame=max_frame))
    await writer.drain()


# -- payload builders -----------------------------------------------------------

def ok_payload(req_id: object, **fields: object) -> Dict[str, object]:
    payload: Dict[str, object] = {"v": PROTOCOL_VERSION, "id": req_id,
                                  "ok": True}
    payload.update(fields)
    return payload


def error_payload(req_id: object, kind: str, message: str, *,
                  retry_after: Optional[float] = None,
                  report: Optional[AnalysisReport] = None
                  ) -> Dict[str, object]:
    if kind not in ERROR_KINDS:
        raise ValueError(f"unknown error kind {kind!r}")
    error: Dict[str, object] = {"kind": kind, "message": message}
    if retry_after is not None:
        error["retry_after"] = round(max(0.0, float(retry_after)), 4)
    if report is not None:
        error["report"] = analysis_report_to_dict(report)
    return {"v": PROTOCOL_VERSION, "id": req_id, "ok": False, "error": error}


# -- AnalysisReport wire codec ---------------------------------------------------

def analysis_report_to_dict(report: AnalysisReport) -> Dict[str, object]:
    """Serialize PR 6's admission diagnostics for the error frame."""
    return {
        "subject": report.subject,
        "diagnostics": [
            {
                "severity": str(diag.severity),
                "pass_id": diag.pass_id,
                "location": diag.location,
                "message": diag.message,
                "hint": diag.hint,
            }
            for diag in report.diagnostics
        ],
    }


def analysis_report_from_dict(data: Dict[str, object]) -> AnalysisReport:
    """Rebuild a typed :class:`AnalysisReport` client-side."""
    diagnostics = tuple(
        Diagnostic(
            severity=Severity[str(entry["severity"]).upper()],
            pass_id=str(entry["pass_id"]),
            location=str(entry["location"]),
            message=str(entry["message"]),
            hint=str(entry.get("hint", "")),
        )
        for entry in data.get("diagnostics", ())
    )
    return AnalysisReport(str(data.get("subject", "?")), diagnostics)
