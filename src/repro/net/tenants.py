"""Multi-tenant session state: tokens, quotas, rate limits, fair dequeue.

The network server is shared infrastructure: one chatty tenant must not
starve the others, and per-tenant limits must be enforced *before* a
request occupies queue capacity.  Three pieces:

* :class:`TenantSpec` / :class:`TenantRegistry` — static configuration
  (token-authenticated named tenants) and authentication.  A registry
  with no configured tenants runs *open*: every connection maps onto one
  shared ``public`` tenant, which keeps single-user deployments and
  tests zero-config while exercising the same code paths.
* :class:`TokenBucket` / :class:`TenantState` — per-tenant runtime
  state: a token bucket for sustained request rate (with a computed
  retry-after when empty) and an in-flight counter for the concurrency
  quota.
* :class:`FairQueue` — per-tenant FIFOs drained round-robin, so a batch
  formed under backlog interleaves tenants instead of serving whoever
  submitted fastest.  The queue also carries the *global* depth bound
  that drives load-based admission (backpressure) in the server.
"""

from __future__ import annotations

import json
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional, Sequence

from repro.errors import ParameterError, ReproError


class AuthError(ReproError):
    """Unknown token, or an operation the tenant is not allowed to run."""


@dataclass(frozen=True)
class TenantSpec:
    """Static configuration of one tenant.

    ``rate`` is the sustained request rate in requests/second (0 =
    unlimited) with ``burst`` extra headroom (defaults to ``2 * rate``,
    minimum 1, when a rate is set); ``max_inflight`` bounds concurrent
    unfinished submissions; ``admin`` gates ``shutdown``.
    """

    name: str
    token: str
    max_inflight: int = 64
    rate: float = 0.0
    burst: int = 0
    admin: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ParameterError("tenant name must be non-empty")
        if not self.token:
            raise ParameterError(f"tenant {self.name!r} needs a token")
        if self.max_inflight < 1:
            raise ParameterError(
                f"tenant {self.name!r}: max_inflight must be positive"
            )
        if self.rate < 0 or self.burst < 0:
            raise ParameterError(
                f"tenant {self.name!r}: rate and burst must be non-negative"
            )

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TenantSpec":
        valid = set(cls.__dataclass_fields__)
        unknown = sorted(set(data) - valid)
        if unknown:
            raise ParameterError(f"unknown tenant field(s) {unknown}")
        return cls(**data)  # type: ignore[arg-type]


#: The implicit tenant of an open (no-tenants-configured) registry.  It
#: is admin — a single-user deployment should be able to shut itself
#: down — and effectively unthrottled.
PUBLIC_TENANT = TenantSpec(name="public", token="-", max_inflight=1 << 16,
                           admin=True)


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s refill, ``burst`` capacity.

    ``try_take()`` returns 0.0 when a token was consumed, otherwise the
    seconds until one becomes available (the retry-after the server
    reports).  A zero rate means unlimited.  The clock is injectable for
    deterministic tests.
    """

    def __init__(self, rate: float, burst: int,
                 clock: Callable[[], float] = time.monotonic):
        self.rate = float(rate)
        self.burst = max(1, int(burst)) if rate else 0
        self._clock = clock
        self._tokens = float(self.burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            float(self.burst), self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now

    def try_take(self) -> float:
        if not self.rate:
            return 0.0
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate


@dataclass
class TenantState:
    """Runtime state and counters of one authenticated tenant."""

    spec: TenantSpec
    bucket: TokenBucket = field(init=False)
    inflight: int = 0
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected_rate: int = 0
    rejected_quota: int = 0
    rejected_admission: int = 0
    rejected_backpressure: int = 0

    def __post_init__(self) -> None:
        burst = self.spec.burst or max(1, int(2 * self.spec.rate))
        self.bucket = TokenBucket(self.spec.rate, burst)

    @property
    def name(self) -> str:
        return self.spec.name

    def as_row(self) -> Dict[str, object]:
        return {
            "tenant": self.name,
            "inflight": self.inflight,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected_rate": self.rejected_rate,
            "rejected_quota": self.rejected_quota,
            "rejected_admission": self.rejected_admission,
            "rejected_backpressure": self.rejected_backpressure,
        }


def load_tenant_specs(path: str) -> List[TenantSpec]:
    """Parse a JSON tenant file: ``[{"name": ..., "token": ...}, ...]``."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, list):
        raise ParameterError(
            f"tenant file {path} must hold a JSON list of tenant objects"
        )
    return [TenantSpec.from_dict(entry) for entry in data]


class TenantRegistry:
    """Token -> tenant authentication plus per-tenant runtime state.

    Connections from the same tenant (same token) share one
    :class:`TenantState` — quotas and rate limits are per *tenant*, not
    per connection.
    """

    def __init__(self, specs: Sequence[TenantSpec] = ()):
        self._by_token: Dict[str, TenantState] = {}
        self._states: "OrderedDict[str, TenantState]" = OrderedDict()
        names = set()
        for spec in specs:
            if spec.name in names:
                raise ParameterError(f"duplicate tenant name {spec.name!r}")
            if spec.token in self._by_token:
                raise ParameterError(
                    f"tenant {spec.name!r} reuses another tenant's token"
                )
            names.add(spec.name)
            state = TenantState(spec)
            self._by_token[spec.token] = state
            self._states[spec.name] = state
        self.open = not specs
        if self.open:
            state = TenantState(PUBLIC_TENANT)
            self._states[state.name] = state
            self._public = state

    @classmethod
    def from_file(cls, path: str) -> "TenantRegistry":
        """Load a JSON tenant list: ``[{"name": ..., "token": ...}, ...]``."""
        return cls(load_tenant_specs(path))

    def authenticate(self, token: Optional[str]) -> TenantState:
        """Resolve a token to its tenant (open registries accept anything)."""
        if self.open:
            return self._public
        state = self._by_token.get(token or "")
        if state is None:
            raise AuthError("unknown tenant token")
        return state

    def states(self) -> List[TenantState]:
        return list(self._states.values())

    def __len__(self) -> int:
        return len(self._states)


class FairQueue:
    """Bounded per-tenant FIFOs with round-robin draining.

    ``push`` refuses items past the *global* ``max_depth`` (the caller
    turns that into a backpressure response); ``pop_round`` takes at
    most one item per tenant per cycle, so a backlog drains fairly
    across tenants regardless of per-tenant arrival rates.
    """

    def __init__(self, max_depth: int):
        if max_depth < 1:
            raise ParameterError("queue max_depth must be positive")
        self.max_depth = max_depth
        self._queues: "OrderedDict[str, Deque[object]]" = OrderedDict()
        self._depth = 0

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def full(self) -> bool:
        return self._depth >= self.max_depth

    def push(self, tenant: str, item: object) -> bool:
        """Append one item; ``False`` when the global bound is hit."""
        if self.full:
            return False
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
        queue.append(item)
        self._depth += 1
        return True

    def pop_round(self, max_items: int) -> List[object]:
        """Drain up to ``max_items``, one per tenant per round-robin cycle.

        Tenants are visited in insertion order and the cursor wraps, so
        successive calls continue the rotation rather than restarting at
        the first tenant.
        """
        items: List[object] = []
        while len(items) < max_items and self._depth:
            for tenant in list(self._queues):
                if len(items) >= max_items:
                    break
                queue = self._queues[tenant]
                if queue:
                    items.append(queue.popleft())
                    self._depth -= 1
                if queue:
                    self._queues.move_to_end(tenant)
                else:
                    del self._queues[tenant]
        return items

    def drain_all(self) -> List[object]:
        return self.pop_round(self._depth)

    def tenants_waiting(self) -> Iterable[str]:
        return tuple(self._queues)
