"""Closed-loop load harness for the network estimate service.

``run_load`` drives a server the way the acceptance test does: a pool of
concurrent workers, spread over several pipelined connections, each
submit→gather one plan at a time from a weighted request mix until the
deadline.  Retryable refusals (rate, quota, backpressure) are retried
with the server's ``retry_after`` hint — so under deliberate overload
the harness measures *deferral*, and anything that still fails is
counted as dropped.  The same harness backs ``repro serve-load`` and
``benchmarks/bench_serve_net.py``; the bench's guards (qps floor, p99
ceiling, zero drops) read its result verbatim.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.plan import Plan
from repro.faults import DeadlineExceeded
from repro.net.client import EstimateClient, RemoteDeadlineExceeded, RemoteError


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 on no samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class LoadResult:
    """What one ``run_load`` measured."""

    duration_s: float = 0.0
    completed: int = 0
    #: Requests that failed even after the retry budget (the "dropped"
    #: count the zero-loss guard checks).
    dropped: int = 0
    #: Retryable refusals honored (each retried, not dropped).
    deferred: int = 0
    #: Requests answered ``deadline_exceeded`` (client- or server-side).
    #: Structured shedding, not loss: counted separately from ``dropped``
    #: so the zero-loss guard still holds under chaos with deadlines.
    deadline_exceeded: int = 0
    errors: Dict[str, int] = field(default_factory=dict)
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def qps(self) -> float:
        return self.completed / self.duration_s if self.duration_s else 0.0

    @property
    def p50_ms(self) -> float:
        return percentile(self.latencies_ms, 50.0)

    @property
    def p99_ms(self) -> float:
        return percentile(self.latencies_ms, 99.0)

    def as_dict(self) -> Dict[str, object]:
        lat = self.latencies_ms
        return {
            "duration_s": round(self.duration_s, 3),
            "completed": self.completed,
            "dropped": self.dropped,
            "deferred": self.deferred,
            "deadline_exceeded": self.deadline_exceeded,
            "qps": round(self.qps, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "mean_ms": round(sum(lat) / len(lat), 3) if lat else 0.0,
            "max_ms": round(max(lat), 3) if lat else 0.0,
            "errors": dict(self.errors),
        }


async def run_load(host: str, port: int, *, plans: Sequence[Plan],
                   duration_s: float = 5.0, concurrency: int = 16,
                   connections: int = 4, token: Optional[str] = None,
                   retries: int = 32,
                   deadline_s: Optional[float] = None) -> LoadResult:
    """Drive the server with ``concurrency`` closed-loop workers.

    Workers walk the (weighted) plan list round-robin over
    ``connections`` pipelined client connections.  Returns the merged
    :class:`LoadResult`.  With ``deadline_s``, every request carries a
    per-call deadline budget (propagated to the server via
    ``deadline_s`` on the wire); expiries land in
    :attr:`LoadResult.deadline_exceeded`, not ``dropped``.
    """
    if not plans:
        raise ValueError("run_load needs at least one plan")
    connections = max(1, min(connections, concurrency))
    clients = [EstimateClient(host, port, token=token)
               for _ in range(connections)]
    await asyncio.gather(*(c.connect() for c in clients))
    result = LoadResult()
    deadline = time.perf_counter() + duration_s
    started = time.perf_counter()

    async def worker(index: int) -> None:
        client = clients[index % len(clients)]
        cursor = index  # spread workers across the mix
        while time.perf_counter() < deadline:
            plan = plans[cursor % len(plans)]
            cursor += concurrency
            t0 = time.perf_counter()
            try:
                await _estimate_counting_defers(client, plan, retries,
                                                result, deadline_s)
            except (DeadlineExceeded, RemoteDeadlineExceeded):
                result.deadline_exceeded += 1
                result.errors["deadline_exceeded"] = \
                    result.errors.get("deadline_exceeded", 0) + 1
            except RemoteError as exc:
                result.dropped += 1
                result.errors[exc.kind] = result.errors.get(exc.kind, 0) + 1
            except (ConnectionError, asyncio.TimeoutError) as exc:
                result.dropped += 1
                key = type(exc).__name__
                result.errors[key] = result.errors.get(key, 0) + 1
            else:
                result.completed += 1
                result.latencies_ms.append(
                    (time.perf_counter() - t0) * 1e3
                )

    try:
        await asyncio.gather(*(worker(i) for i in range(concurrency)))
    finally:
        result.duration_s = time.perf_counter() - started
        await asyncio.gather(*(c.close() for c in clients),
                             return_exceptions=True)
    return result


async def _estimate_counting_defers(client: EstimateClient, plan: Plan,
                                    retries: int, result: LoadResult,
                                    deadline_s: Optional[float] = None,
                                    ) -> None:
    """client.estimate with per-retry accounting (deferrals measured)."""
    attempt = 0
    while True:
        try:
            await client.estimate(plan, deadline=deadline_s)
            return
        except RemoteError as exc:
            retryable = exc.kind in ("rate", "quota", "backpressure")
            if not retryable or attempt >= retries:
                raise
            attempt += 1
            result.deferred += 1
            await asyncio.sleep(min(exc.retry_after or 0.05, 1.0))


def weighted_plans(entries: Sequence[Tuple[Plan, int]],
                   cap: int = 256) -> List[Plan]:
    """Expand (plan, count) mix entries into a round-robin plan list."""
    out: List[Plan] = []
    for plan, count in entries:
        out.extend([plan] * max(1, count))
        if len(out) >= cap:
            break
    return out[:cap] or [entry[0] for entry in entries[:1]]
