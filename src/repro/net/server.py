"""The asyncio network front-end: multi-tenant estimate serving over TCP.

:class:`EstimateServer` puts a wire protocol (:mod:`repro.net.protocol`)
in front of :class:`~repro.serve.aio.AsyncEstimateService` and adds the
pieces an in-process service never needed:

* **sessions** — connections authenticate with a tenant token
  (``hello``); all of a tenant's connections share one quota/rate state;
* **load-based admission** — PR 6 gated ``submit()`` on *validity*
  (static verification); the server adds the *load* half: a per-tenant
  token bucket and in-flight quota, plus a bounded global queue.  A
  request over any bound is answered immediately with a structured
  error frame carrying ``retry_after`` — deferred, not dropped;
* **fair dequeue** — under backlog, queued submissions enter the
  micro-batch round-robin across tenants, so one chatty tenant cannot
  starve the rest;
* **worker supervision** — a :class:`WorkerSupervisor` heals the shard
  pool between batches (the pool requeues in-flight plans of a worker
  that dies mid-batch, so a kill loses no submitted request) and
  ``SIGHUP`` triggers a graceful rolling restart;
* **speculative warming** — the observed digest stream predicts the
  next requests; on idle the server pre-submits the top-K mix so caches
  stay hot across evictions and restarts.

The request path stays the serving stack's: submissions land in the
async service's micro-batch, dedup by digest, hit the report LRU / disk
cache, and shard across worker processes — the server only decides
*whether* and *in which order* they get there.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.api.plan import Plan, report_to_dict
from repro.errors import ParameterError, ReproError
from repro.faults import Deadline, DeadlineExceeded, fault_point
from repro.net import protocol
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    FrameError,
    error_payload,
    ok_payload,
    read_frame,
    write_frame,
)
from repro.net.supervisor import WorkerSupervisor
from repro.net.tenants import (
    AuthError,
    FairQueue,
    TenantRegistry,
    TenantSpec,
    TenantState,
)
from repro.net.warming import DigestStream, parse_mix_payload
from repro.serve import (
    AdmissionError,
    AsyncEstimateService,
    EstimateService,
    StalledWorker,
)

if TYPE_CHECKING:
    from repro.api.backends import RunReport

#: Frame ops the server understands.
OPS = ("hello", "submit", "gather", "status", "warm", "shutdown")


class Rejection(ReproError):
    """A request refused at the protocol boundary (before any queueing).

    ``kind`` is one of :data:`repro.net.protocol.ERROR_KINDS`;
    ``retry_after`` (seconds) is set for load-based refusals so clients
    defer instead of hammering; ``report`` carries the static-analysis
    diagnostics for admission refusals.
    """

    def __init__(self, kind: str, message: str, *,
                 retry_after: Optional[float] = None, report=None):
        super().__init__(message)
        self.kind = kind
        self.retry_after = retry_after
        self.report = report


@dataclass
class ServerConfig:
    """Tuning knobs of one :class:`EstimateServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port (read it back from .port)
    http_port: Optional[int] = None  # enable the HTTP/1.1 adapter
    workers: int = 2  # shard-pool size (0/1 = in-process execution)
    admission: str = "strict"  # validity half (PR 6): strict | warn | off
    disk_cache: bool = True
    cache_size: int = 256
    #: Load half of admission: global bound on accepted-but-undispatched
    #: submissions; past it, submits get backpressure frames.
    max_queue_depth: int = 256
    #: Most submissions dispatched into the micro-batch per queue drain.
    batch_max: int = 64
    max_frame: int = DEFAULT_MAX_FRAME
    #: Seconds of quiet before the observed top-K mix is pre-submitted.
    idle_warm_after: float = 2.0
    warm_top_k: int = 4
    warming: bool = True
    supervisor_interval: float = 1.0
    #: Default/ceiling for a gather's server-side wait.
    gather_timeout: float = 120.0
    #: Grace given to in-flight requests during a draining stop.
    drain_timeout: float = 30.0
    #: Kill a live-but-hung shard worker after this many seconds of no
    #: progress mid-batch (its jobs requeue).  ``None``/``0`` disables.
    stall_timeout: Optional[float] = 30.0
    tenants: Sequence[TenantSpec] = ()
    #: (plan, count) entries pre-warmed at startup (a saved request mix).
    warm_mix: Sequence[Tuple[Plan, int]] = ()

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1 or self.batch_max < 1:
            raise ParameterError(
                "max_queue_depth and batch_max must be positive"
            )


@dataclass
class ServerStats:
    """Monotonic counters of one server lifetime."""

    connections: int = 0
    accepted: int = 0
    completed: int = 0
    failed: int = 0
    rejected_rate: int = 0
    rejected_quota: int = 0
    rejected_backpressure: int = 0
    rejected_admission: int = 0
    rejected_shutdown: int = 0
    #: Submits that arrived with their ``deadline_s`` already expired.
    rejected_deadline: int = 0
    #: Accepted tickets answered ``deadline_exceeded`` (not in ``failed``).
    deadline_exceeded: int = 0
    protocol_errors: int = 0
    warmed: int = 0
    idle_warms: int = 0
    gathered: int = 0

    def as_row(self) -> Dict[str, int]:
        return dict(self.__dict__)

    @property
    def rejected(self) -> int:
        return (self.rejected_rate + self.rejected_quota
                + self.rejected_backpressure + self.rejected_admission
                + self.rejected_shutdown + self.rejected_deadline)


class Ticket:
    """One accepted submission: resolves exactly once, gathered at most once."""

    __slots__ = ("id", "tenant", "plan", "event", "report", "error",
                 "created_at", "resolved_at", "deadline")

    def __init__(self, ticket_id: str, tenant: TenantState, plan: Plan,
                 now: float, deadline: Optional[Deadline] = None):
        self.id = ticket_id
        self.tenant = tenant
        self.plan = plan
        self.event = asyncio.Event()
        self.report: Optional["RunReport"] = None
        self.error: Optional[BaseException] = None
        self.created_at = now
        self.resolved_at: Optional[float] = None
        #: Local monotonic deadline rebuilt from the frame's
        #: ``deadline_s`` budget; ``None`` = unbounded.
        self.deadline = deadline

    @property
    def resolved(self) -> bool:
        return self.event.is_set()

    def resolve(self, report: "RunReport", now: float) -> None:
        self.report = report
        self.resolved_at = now
        self.event.set()

    def fail(self, error: BaseException, now: float) -> None:
        self.error = error
        self.resolved_at = now
        self.event.set()


class EstimateServer:
    """Serve estimate plans to remote tenants over length-prefixed TCP."""

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        self.stats = ServerStats()
        self.registry = TenantRegistry(self.config.tenants)
        self._queue = FairQueue(self.config.max_queue_depth)
        self._queue_event = asyncio.Event()
        self._stream = DigestStream()
        self._tickets: Dict[str, Ticket] = {}
        self._ticket_seq = 0
        self._latency_ewma = 0.05  # seconds; seeds the retry-after hints
        self._idle_warmed = True  # nothing observed yet: nothing to warm
        self._draining = False
        self._last_activity = 0.0
        self._tasks: Set[asyncio.Task] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._http = None
        self._stopping = False
        self._stopped = asyncio.Event()
        self._sighup_installed = False
        service = EstimateService(
            workers=self.config.workers,
            admission=self.config.admission,
            disk_cache=self.config.disk_cache,
            cache_size=self.config.cache_size,
            stall_timeout=self.config.stall_timeout,
        )
        self.service = AsyncEstimateService(service)
        self.supervisor = WorkerSupervisor(
            service.pool, interval=self.config.supervisor_interval
        )

    # -- lifecycle --------------------------------------------------------------

    @property
    def port(self) -> int:
        """The actually bound TCP port (useful with ``port=0``)."""
        if self._server is None:
            raise ParameterError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def http_port(self) -> Optional[int]:
        return None if self._http is None else self._http.port

    async def start(self) -> "EstimateServer":
        loop = asyncio.get_running_loop()
        self._last_activity = loop.time()
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        self._spawn(self._dispatch_loop(), name="dispatch")
        if self.config.warming:
            self._spawn(self._warm_loop(), name="warmer")
        pool = self.service.service.pool
        if pool is not None:
            # Pre-fork the workers: the first cold burst should shard,
            # not pay worker spawn latency, and status/kill tooling can
            # see pids immediately.
            await loop.run_in_executor(None, pool.worker_pids)
        self.supervisor.start()
        self._install_sighup(loop)
        if self.config.http_port is not None:
            from repro.net.http import HTTPFrontend

            self._http = HTTPFrontend(self)
            await self._http.start(self.config.host, self.config.http_port)
        if self.config.warm_mix:
            plans = [plan for plan, _count in self.config.warm_mix]
            self._spawn(self._warm_plans(plans), name="startup-warm")
        return self

    def _install_sighup(self, loop: asyncio.AbstractEventLoop) -> None:
        """Graceful worker recycling on ``SIGHUP`` (unix, main thread only)."""
        if threading.current_thread() is not threading.main_thread():
            return
        if not hasattr(signal, "SIGHUP"):
            return  # pragma: no cover - non-unix
        try:
            loop.add_signal_handler(
                signal.SIGHUP,
                lambda: self._spawn(self.supervisor.rolling_restart(),
                                    name="sighup-restart"),
            )
            self._sighup_installed = True
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass

    def _spawn(self, coro, name: str) -> asyncio.Task:
        task = asyncio.get_running_loop().create_task(coro, name=name)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    async def stop(self, *, drain: bool = True) -> None:
        """Stop serving; with ``drain``, finish accepted work first."""
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        self._draining = True
        if self._server is not None:
            self._server.close()
        if self._http is not None:
            await self._http.stop()
        if drain:
            await self._drain_tickets()
        # stop() may itself run as one of the spawned tasks (the
        # ``shutdown`` op) — never cancel or await ourselves.
        current = asyncio.current_task()
        for task in list(self._tasks):
            if task is not current:
                task.cancel()
        for task in list(self._tasks):
            if task is current:
                continue
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        await self.supervisor.stop()
        await self.service.aclose()
        if self._server is not None:
            await self._server.wait_closed()
        if self._sighup_installed:  # pragma: no branch
            try:
                asyncio.get_running_loop().remove_signal_handler(signal.SIGHUP)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        self._stopped.set()

    async def _drain_tickets(self) -> None:
        """Let queued + in-flight submissions resolve (bounded grace)."""
        # Anything still queued gets dispatched one last time.
        self._queue_event.set()
        pending = [t.event.wait() for t in self._tickets.values()
                   if not t.resolved]
        deadline = self.config.drain_timeout
        if pending:
            try:
                await asyncio.wait_for(asyncio.gather(*pending), deadline)
            except asyncio.TimeoutError:  # pragma: no cover - pathological
                pass

    async def wait_closed(self) -> None:
        await self._stopped.wait()

    async def __aenter__(self) -> "EstimateServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- connection handling ----------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        self.stats.connections += 1
        conn = _Connection(writer)
        frame_tasks: Set[asyncio.Task] = set()
        try:
            while True:
                try:
                    frame = await read_frame(
                        reader, max_frame=self.config.max_frame
                    )
                except FrameError as exc:
                    # Framing is broken: report once and hang up (there
                    # is no way to resynchronize a length-prefixed
                    # stream after a bad header).
                    self.stats.protocol_errors += 1
                    await conn.send(error_payload(None, "protocol", str(exc)))
                    break
                if frame is None:
                    break
                task = asyncio.get_running_loop().create_task(
                    self._handle_frame(conn, frame)
                )
                frame_tasks.add(task)
                task.add_done_callback(frame_tasks.discard)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            for task in list(frame_tasks):
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # The coroutine ends right after this cleanup, so
                # swallowing a late cancellation here is harmless.
                pass

    async def _handle_frame(self, conn: "_Connection",
                            frame: Dict[str, object]) -> None:
        req_id = frame.get("id")
        try:
            fault_point("server.handle", context=str(frame.get("op", "")))
            if frame.get("v") != PROTOCOL_VERSION:
                raise Rejection(
                    "protocol",
                    f"unsupported protocol version {frame.get('v')!r} "
                    f"(server speaks {PROTOCOL_VERSION})",
                )
            op = frame.get("op")
            if op not in OPS:
                raise Rejection("protocol", f"unknown op {op!r}")
            handler = getattr(self, f"_op_{op}")
            response = await handler(conn, req_id, frame)
        except Rejection as rej:
            if rej.kind == "protocol":
                self.stats.protocol_errors += 1
            response = error_payload(req_id, rej.kind, str(rej),
                                     retry_after=rej.retry_after,
                                     report=rej.report)
        except AuthError as exc:
            response = error_payload(req_id, "auth", str(exc))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            response = error_payload(
                req_id, "internal", f"{type(exc).__name__}: {exc}"
            )
        try:
            await conn.send(response)
        except (ConnectionError, OSError):
            pass  # peer went away; its tickets still resolve server-side

    def _session(self, conn: "_Connection") -> TenantState:
        if conn.session is None:
            raise Rejection("auth", "say hello first (no session token)")
        return conn.session

    # -- ops --------------------------------------------------------------------

    async def _op_hello(self, conn, req_id, frame):
        token = frame.get("token")
        conn.session = self.registry.authenticate(
            None if token is None else str(token)
        )
        spec = conn.session.spec
        return ok_payload(
            req_id, tenant=spec.name, admin=spec.admin,
            limits={
                "max_inflight": spec.max_inflight,
                "rate": spec.rate,
                "burst": conn.session.bucket.burst,
            },
            admission=self.config.admission,
            protocol=PROTOCOL_VERSION,
        )

    async def _op_submit(self, conn, req_id, frame):
        tenant = self._session(conn)
        plan_payload = frame.get("plan")
        if not isinstance(plan_payload, dict):
            raise Rejection("plan", "submit needs a 'plan' object payload")
        try:
            plan = Plan.from_dict(plan_payload)
        except (ParameterError, KeyError, TypeError, ValueError) as exc:
            raise Rejection("plan", f"plan payload rejected: {exc}") from exc
        deadline = Deadline.from_wire(frame.get("deadline_s"))
        ticket = await self.admit_and_submit(tenant, plan,
                                             deadline=deadline)
        return ok_payload(req_id, ticket=ticket.id, digest=plan.digest,
                          queue_depth=self._queue.depth)

    async def _op_gather(self, conn, req_id, frame):
        tenant = self._session(conn)
        ids = frame.get("tickets")
        if not isinstance(ids, list) or not ids:
            raise Rejection("protocol", "gather needs a 'tickets' list")
        timeout = frame.get("timeout")
        timeout = (self.config.gather_timeout if timeout is None
                   else min(float(timeout), self.config.gather_timeout))
        results = [
            await self._gather_one(tenant, str(ticket_id), timeout)
            for ticket_id in ids
        ]
        return ok_payload(req_id, results=results)

    async def _gather_one(self, tenant: TenantState, ticket_id: str,
                          timeout: float) -> Dict[str, object]:
        ticket = self._tickets.get(ticket_id)
        if ticket is None:
            return self._ticket_error(
                ticket_id, "protocol",
                "unknown ticket (already gathered, or never issued)",
            )
        if ticket.tenant is not tenant:
            return self._ticket_error(
                ticket_id, "auth", "ticket belongs to another tenant"
            )
        try:
            await asyncio.wait_for(ticket.event.wait(), timeout)
        except asyncio.TimeoutError:
            return self._ticket_error(
                ticket_id, "timeout",
                f"not resolved within {timeout:.1f}s (ticket stays valid)",
            )
        # Single delivery: the ticket table must not grow with history.
        del self._tickets[ticket_id]
        self.stats.gathered += 1
        if ticket.error is None:
            return {"ticket": ticket_id, "ok": True,
                    "report": report_to_dict(ticket.report)}
        error = ticket.error
        if isinstance(error, AdmissionError):
            payload = self._ticket_error(ticket_id, "admission", str(error))
            if error.report is not None:
                payload["error"]["report"] = \
                    protocol.analysis_report_to_dict(error.report)
            return payload
        if isinstance(error, DeadlineExceeded):
            kind = "deadline_exceeded"
        elif isinstance(error, StalledWorker):
            kind = "stalled_worker"
        elif isinstance(error, ReproError):
            kind = "worker"
        else:
            kind = "internal"
        return self._ticket_error(
            ticket_id, kind, f"{type(error).__name__}: {error}"
        )

    @staticmethod
    def _ticket_error(ticket_id: str, kind: str, message: str
                      ) -> Dict[str, object]:
        return {"ticket": ticket_id, "ok": False,
                "error": {"kind": kind, "message": message}}

    async def _op_status(self, conn, req_id, frame):
        self._session(conn)
        payload = ok_payload(req_id, **self.status_payload())
        if frame.get("mix"):
            payload["mix"] = self._stream.mix_payload()
        return payload

    async def _op_warm(self, conn, req_id, frame):
        self._session(conn)
        try:
            entries = parse_mix_payload(frame.get("mix"))
        except ParameterError as exc:
            raise Rejection("plan", f"warm mix rejected: {exc}") from exc
        warmed = await self._warm_plans([plan for plan, _count in entries])
        return ok_payload(req_id, warmed=warmed)

    async def _op_shutdown(self, conn, req_id, frame):
        tenant = self._session(conn)
        if not tenant.spec.admin:
            raise AuthError(
                f"tenant {tenant.name!r} is not allowed to shut the "
                f"server down"
            )
        self._draining = True  # refuse new submissions immediately
        self._spawn(self.stop(drain=True), name="shutdown")
        return ok_payload(req_id, draining=True,
                          pending=self._pending_tickets())

    # -- admission (load half) --------------------------------------------------

    async def admit_and_submit(self, tenant: TenantState, plan: Plan, *,
                               deadline: Optional[Deadline] = None,
                               ) -> Ticket:
        """Apply every admission gate, then queue the plan for dispatch.

        Gate order is cheapest-first: deadline, drain state, token
        bucket, quota, queue depth, and only then static verification
        (PR 6's validity half, memoized per digest in the service).
        Raises :class:`Rejection`; returns the queued :class:`Ticket`.
        """
        loop = asyncio.get_running_loop()
        if deadline is not None and deadline.expired:
            self.stats.rejected_deadline += 1
            raise Rejection(
                "deadline_exceeded",
                "the request's deadline budget expired before admission",
            )
        if self._draining:
            self.stats.rejected_shutdown += 1
            raise Rejection("shutdown", "server is draining",
                            retry_after=self.config.drain_timeout)
        wait = tenant.bucket.try_take()
        if wait > 0:
            tenant.rejected_rate += 1
            self.stats.rejected_rate += 1
            raise Rejection(
                "rate",
                f"tenant {tenant.name!r} exceeded {tenant.spec.rate:g} "
                f"req/s",
                retry_after=wait,
            )
        if tenant.inflight >= tenant.spec.max_inflight:
            tenant.rejected_quota += 1
            self.stats.rejected_quota += 1
            raise Rejection(
                "quota",
                f"tenant {tenant.name!r} has {tenant.inflight} requests in "
                f"flight (max {tenant.spec.max_inflight}); gather or wait",
                retry_after=self._retry_after(),
            )
        if self._queue.full:
            tenant.rejected_backpressure += 1
            self.stats.rejected_backpressure += 1
            raise Rejection(
                "backpressure",
                f"server queue is full ({self._queue.depth} queued); "
                f"batches are backed up",
                retry_after=self._retry_after(),
            )
        try:
            # The validity half (PR 6): static verification, memoized by
            # digest.  Runs in the executor — analysis is pure CPU and
            # must not stall the event loop under load.
            await loop.run_in_executor(
                None, self.service.service.admit, plan
            )
        except AdmissionError as exc:
            tenant.rejected_admission += 1
            self.stats.rejected_admission += 1
            raise Rejection(
                "admission",
                str(exc),
                report=exc.report,
            ) from exc
        self._ticket_seq += 1
        ticket = Ticket(f"t{self._ticket_seq}", tenant, plan, loop.time(),
                        deadline)
        self._tickets[ticket.id] = ticket
        tenant.inflight += 1
        tenant.submitted += 1
        self.stats.accepted += 1
        self._stream.observe(plan)
        self._idle_warmed = False
        self._last_activity = loop.time()
        self._queue.push(tenant.name, ticket)
        self._queue_event.set()
        return ticket

    def _retry_after(self) -> float:
        """Backpressure hint: how long until a queue slot likely frees.

        A full queue drains in batches of ``batch_max`` that each take
        about one (EWMA-smoothed) request latency, so the head of the
        next batch is roughly one latency away.
        """
        backlog_batches = max(1.0, self._queue.depth / self.config.batch_max)
        return max(0.01, self._latency_ewma * backlog_batches)

    # -- dispatch ---------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            await self._queue_event.wait()
            self._queue_event.clear()
            while True:
                batch = self._queue.pop_round(self.config.batch_max)
                if not batch:
                    break
                for ticket in batch:
                    self._spawn(self._run_ticket(ticket),
                                name=f"run-{ticket.id}")
                # Yield once so the whole fair-ordered batch lands in
                # the same service micro-batch before it is gathered.
                await asyncio.sleep(0)

    async def _run_ticket(self, ticket: Ticket) -> None:
        loop = asyncio.get_running_loop()
        try:
            report = await self.service.estimate(
                ticket.plan, deadline=ticket.deadline
            )
            ticket.resolve(report, loop.time())
            ticket.tenant.completed += 1
            self.stats.completed += 1
        except asyncio.CancelledError:
            ticket.fail(Rejection("shutdown", "server stopped"), loop.time())
            raise
        except DeadlineExceeded as exc:
            # The tenant's budget ran out — an answered contract, not a
            # server failure; tracked apart from ``failed``.
            ticket.fail(exc, loop.time())
            self.stats.deadline_exceeded += 1
        except Exception as exc:  # noqa: BLE001 - resolves the ticket
            ticket.fail(exc, loop.time())
            ticket.tenant.failed += 1
            self.stats.failed += 1
        finally:
            ticket.tenant.inflight -= 1
            if ticket.resolved_at is not None:
                latency = ticket.resolved_at - ticket.created_at
                self._latency_ewma += 0.2 * (latency - self._latency_ewma)
            self._last_activity = loop.time()

    # -- warming ----------------------------------------------------------------

    async def _warm_loop(self) -> None:
        interval = max(0.05, self.config.idle_warm_after / 4)
        while True:
            await asyncio.sleep(interval)
            if self._draining or self._idle_warmed:
                continue
            loop = asyncio.get_running_loop()
            idle_for = loop.time() - self._last_activity
            if idle_for < self.config.idle_warm_after:
                continue
            if not self._stream.distinct:
                continue
            # One warm pass per idle period: re-warming an unchanged mix
            # is pure cache hits, but there is no reason to spin on it.
            self._idle_warmed = True
            await self._warm_plans(
                self._stream.top(self.config.warm_top_k)
            )
            self.stats.idle_warms += 1

    async def _warm_plans(self, plans: List[Plan]) -> int:
        """Pre-submit plans so their reports are cached; count successes.

        Warming is speculative — a plan that fails (admission or
        execution) is skipped, never fatal.
        """
        warmed = 0
        for plan in plans:
            try:
                await self.service.estimate(plan)
                warmed += 1
            except Exception:  # noqa: BLE001 - speculative by design
                continue
        self.stats.warmed += warmed
        return warmed

    # -- reporting --------------------------------------------------------------

    def _pending_tickets(self) -> int:
        return sum(1 for t in self._tickets.values() if not t.resolved)

    def status_payload(self) -> Dict[str, object]:
        """The ``status`` op's body (shared with the HTTP adapter)."""
        return {
            "server": {
                **self.stats.as_row(),
                "queue_depth": self._queue.depth,
                "pending": self._pending_tickets(),
                "draining": self._draining,
                "latency_ewma_ms": round(self._latency_ewma * 1e3, 3),
                "max_queue_depth": self.config.max_queue_depth,
            },
            "service": self.service.stats.as_row(),
            "tenants": [state.as_row() for state in self.registry.states()],
            "workers": self.supervisor.status(),
            "warming": {
                "observed": self._stream.observed,
                "distinct": self._stream.distinct,
                "warmed": self.stats.warmed,
                "idle_warms": self.stats.idle_warms,
            },
        }


class _Connection:
    """Per-connection write lock + session slot (reads stay in the loop)."""

    __slots__ = ("writer", "session", "_lock")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.session: Optional[TenantState] = None
        self._lock = asyncio.Lock()

    async def send(self, payload: Dict[str, object]) -> None:
        async with self._lock:
            await write_frame(self.writer, payload)


async def serve(config: Optional[ServerConfig] = None) -> EstimateServer:
    """Start an :class:`EstimateServer` and return it (caller stops it)."""
    return await EstimateServer(config).start()
