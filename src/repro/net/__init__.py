"""Network front-end for the serving stack (PR 7).

``repro.net`` puts the :mod:`repro.serve` estimate service on the wire:
a versioned length-prefixed frame protocol (:mod:`repro.net.protocol`)
served by an asyncio TCP server (:mod:`repro.net.server`) with
token-authenticated multi-tenant sessions (:mod:`repro.net.tenants`),
load-based admission control, shard-pool worker supervision
(:mod:`repro.net.supervisor`) and speculative cache warming
(:mod:`repro.net.warming`); plus a pipelined client
(:mod:`repro.net.client`), a thin HTTP/1.1 adapter
(:mod:`repro.net.http`) and a load harness (:mod:`repro.net.loadgen`).

Entry points: ``python -m repro serve`` starts a server,
``python -m repro serve-load`` drives one, and
:class:`EstimateClient` talks to one from code.
"""

from repro.net.client import (
    Backpressure,
    EstimateClient,
    QuotaExceeded,
    RateLimited,
    RemoteAdmissionError,
    RemoteDeadlineExceeded,
    RemoteError,
)
from repro.net.loadgen import LoadResult, run_load
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    ERROR_KINDS,
    PROTOCOL_VERSION,
    FrameError,
    decode_frames,
    encode_frame,
)
from repro.net.server import (
    EstimateServer,
    Rejection,
    ServerConfig,
    ServerStats,
    serve,
)
from repro.net.supervisor import WorkerSupervisor
from repro.net.tenants import (
    AuthError,
    FairQueue,
    TenantRegistry,
    TenantSpec,
    TokenBucket,
    load_tenant_specs,
)
from repro.net.warming import (
    MIX_FORMAT_VERSION,
    DigestStream,
    build_mix_payload,
    load_mix,
    parse_mix_payload,
    save_mix,
)

__all__ = [
    "Backpressure",
    "EstimateClient",
    "QuotaExceeded",
    "RateLimited",
    "RemoteAdmissionError",
    "RemoteDeadlineExceeded",
    "RemoteError",
    "LoadResult",
    "run_load",
    "DEFAULT_MAX_FRAME",
    "ERROR_KINDS",
    "PROTOCOL_VERSION",
    "FrameError",
    "decode_frames",
    "encode_frame",
    "EstimateServer",
    "Rejection",
    "ServerConfig",
    "ServerStats",
    "serve",
    "WorkerSupervisor",
    "AuthError",
    "FairQueue",
    "TenantRegistry",
    "TenantSpec",
    "TokenBucket",
    "load_tenant_specs",
    "MIX_FORMAT_VERSION",
    "DigestStream",
    "build_mix_payload",
    "load_mix",
    "parse_mix_payload",
    "save_mix",
]
