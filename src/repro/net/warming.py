"""Speculative cache warming driven by the observed digest stream.

Every accepted submission contributes its plan digest to a sliding
window; the top-K digests of that window are the server's prediction of
what the next requests will ask.  When the server goes idle it
pre-submits that mix, so the report LRU and the cross-process disk cache
stay hot across evictions and worker restarts — the request that would
have been the first cold one after a lull is answered warm instead.

The same ``{"version": 1, "mix": [{"count": N, "plan": {...}}, ...]}``
payload doubles as the *request-mix file* format: operators snapshot a
live server's observed mix (``repro serve-load --save-mix``), vet it
offline (``repro verify --serve mix.json``), and pre-warm the next
deployment with it (``repro serve --warm-mix mix.json``).
"""

from __future__ import annotations

import json
from collections import Counter, OrderedDict, deque
from typing import Deque, Dict, List, Tuple

from repro.api.plan import Plan
from repro.errors import ParameterError

#: Version stamp of the request-mix payload/file format.
MIX_FORMAT_VERSION = 1


class DigestStream:
    """Sliding window over observed plan digests, with top-K extraction.

    The window (default 4096 observations) keeps the mix *current*: a
    digest that dominated yesterday's traffic but vanished from today's
    ages out instead of being warmed forever.  One representative
    :class:`Plan` per digest is retained (bounded, LRU) so the top-K can
    be resubmitted without keeping every request alive.
    """

    def __init__(self, window: int = 4096, max_plans: int = 512):
        if window < 1 or max_plans < 1:
            raise ParameterError("window and max_plans must be positive")
        self.window = window
        self.max_plans = max_plans
        self._recent: Deque[str] = deque()
        self._counts: Counter = Counter()
        self._plans: "OrderedDict[str, Plan]" = OrderedDict()
        #: Lifetime observation count (monotonic, unlike the window).
        self.observed = 0

    def observe(self, plan: Plan) -> None:
        digest = plan.digest
        self.observed += 1
        self._recent.append(digest)
        self._counts[digest] += 1
        if len(self._recent) > self.window:
            old = self._recent.popleft()
            self._counts[old] -= 1
            if not self._counts[old]:
                del self._counts[old]
                self._plans.pop(old, None)
        self._plans[digest] = plan
        self._plans.move_to_end(digest)
        while len(self._plans) > self.max_plans:
            self._plans.popitem(last=False)

    @property
    def distinct(self) -> int:
        return len(self._counts)

    def top(self, k: int) -> List[Plan]:
        """The K most-frequent windowed digests' plans, hottest first."""
        plans = []
        for digest, _count in self._counts.most_common():
            plan = self._plans.get(digest)
            if plan is not None:
                plans.append(plan)
            if len(plans) >= k:
                break
        return plans

    def entries(self) -> List[Tuple[Plan, int]]:
        """Every windowed (plan, count), hottest first (the full mix)."""
        out = []
        for digest, count in self._counts.most_common():
            plan = self._plans.get(digest)
            if plan is not None:
                out.append((plan, count))
        return out

    def mix_payload(self) -> Dict[str, object]:
        return build_mix_payload(self.entries())


# -- request-mix payload / file format -------------------------------------------

def build_mix_payload(entries: List[Tuple[Plan, int]]) -> Dict[str, object]:
    return {
        "version": MIX_FORMAT_VERSION,
        "mix": [
            {"count": int(count), "plan": plan.to_dict()}
            for plan, count in entries
        ],
    }


def parse_mix_payload(data: Dict[str, object]) -> List[Tuple[Plan, int]]:
    """Validate and resolve a mix payload into ``(Plan, count)`` entries."""
    if not isinstance(data, dict):
        raise ParameterError(
            f"request mix must be a JSON object, got {type(data).__name__}"
        )
    version = data.get("version", MIX_FORMAT_VERSION)
    if version != MIX_FORMAT_VERSION:
        raise ParameterError(
            f"request-mix version {version} != {MIX_FORMAT_VERSION}"
        )
    raw = data.get("mix")
    if not isinstance(raw, list):
        raise ParameterError("request mix needs a 'mix' list")
    entries: List[Tuple[Plan, int]] = []
    for i, entry in enumerate(raw):
        if not isinstance(entry, dict) or "plan" not in entry:
            raise ParameterError(f"mix entry [{i}] needs a 'plan' payload")
        count = int(entry.get("count", 1))
        if count < 1:
            raise ParameterError(f"mix entry [{i}]: count must be positive")
        entries.append((Plan.from_dict(entry["plan"]), count))
    return entries


def save_mix(path: str, entries: List[Tuple[Plan, int]]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(build_mix_payload(entries), handle, indent=2)
        handle.write("\n")


def load_mix(path: str) -> List[Tuple[Plan, int]]:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_mix_payload(json.load(handle))
