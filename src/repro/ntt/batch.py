"""Whole-matrix negacyclic NTT over an RNS tower stack.

:class:`NTTContext` transforms one tower at a time, so converting an
``(L, N)`` RNS polynomial between domains costs ``L * log2(N)`` numpy
passes — at the functional layer's small rings the interpreter overhead
of those ``L`` separate calls dominates the arithmetic.  This engine
stacks the per-tower twiddle tables into ``(L, N)`` matrices and keeps
the moduli as a column vector ``q[:, None]``, so one butterfly stage
updates *every* tower at once and a full transform is ``log2(N)``
vectorized passes total.

Two further tricks shave numpy passes off each stage:

- **lazy reduction** — butterfly outputs are allowed to grow a few
  multiples of ``q`` beyond canonical before a single whole-array ``% q``
  pass reclaims them; the growth cap is chosen per moduli stack so every
  twiddle product provably stays below ``2**62``.  All intermediates stay
  congruent mod ``q``, and the final canonicalization makes outputs
  bit-identical to the eagerly-reduced scalar network.
- **preallocated scratch** — each stage writes the difference leg through
  a reused ``(L, N/2)`` buffer instead of allocating per call, and the
  input is canonical by the :class:`repro.rns.poly.RNSPoly` invariant so
  no ``% q`` validation pass is spent on entry.

The twiddle stacks are assembled from the per-``(N, q)``
:class:`NTTContext` tables, which persist across processes via
:mod:`repro.cache`; a warm cache makes both layers free to construct.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from repro.errors import ParameterError
from repro.ntt.transform import get_ntt_context

_INT64 = np.int64


class BatchNTT:
    """Batched negacyclic NTT for a fixed ordered tuple of moduli.

    All inputs/outputs are ``(L, N)`` int64 matrices of canonical
    residues, row ``i`` modulo ``moduli[i]``.  Outputs are bit-identical
    to looping :meth:`NTTContext.forward` / :meth:`NTTContext.inverse`
    over the rows — ``tests/test_kernel_equivalence.py`` holds this as a
    hypothesis property.
    """

    def __init__(self, n: int, moduli: Tuple[int, ...]):
        contexts = [get_ntt_context(n, q) for q in moduli]
        self.n = n
        self.moduli = tuple(moduli)
        #: (L, 1) column vector of moduli — broadcasts against (L, m, t)
        #: butterfly legs as (L, 1, 1).
        self._q = np.array(self.moduli, dtype=_INT64)[:, None]
        self._q3 = self._q[:, :, None]
        self._psi_rev = np.stack([c._psi_rev for c in contexts])
        self._psi_inv_rev = np.stack([c._psi_inv_rev for c in contexts])
        self._n_inv = np.array([c._n_inv for c in contexts], dtype=_INT64)[:, None]
        #: How many multiples of q an operand may carry while its twiddle
        #: product still fits comfortably in int64.
        max_q = max(self.moduli)
        self._lazy_cap = max(1, (1 << 62) // (max_q * max_q))
        self._scratch = np.empty((len(self.moduli), max(1, n // 2)), dtype=_INT64)
        self._work = np.empty((len(self.moduli), n), dtype=_INT64)
        # Per-stage twiddle slices, contiguous and pre-shaped for the
        # (L, m, t) butterfly blocks, so the hot loop does no slicing.
        self._fwd_tw = []
        m = 1
        while m < n:
            self._fwd_tw.append(
                np.ascontiguousarray(self._psi_rev[:, m : 2 * m])[:, :, None]
            )
            m *= 2
        self._inv_tw = []
        m = n
        while m > 1:
            h = m // 2
            self._inv_tw.append(
                np.ascontiguousarray(self._psi_inv_rev[:, h : 2 * h])[:, :, None]
            )
            m = h
        # The stacked tables are only needed to build the per-stage slices;
        # engines live forever in the lru cache, so drop the duplicates.
        del self._psi_rev
        del self._psi_inv_rev

    # -- public API ---------------------------------------------------------

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """COEFF -> EVAL for a whole ``(L, N)`` tower matrix at once.

        Residues must already be canonical (``[0, q_i)`` per row) — the
        callers inside :class:`repro.rns.poly.RNSPoly` maintain that
        invariant, so no ``% q`` canonicalization pass is spent on entry.
        Each butterfly stage reads one ping-pong buffer and writes the
        other (4 numpy passes: twiddle multiply, reduce, sum leg,
        difference leg); intermediates run signed and lazily reduced, and
        the final canonicalization restores exact agreement with the
        eagerly-reduced scalar network.
        """
        src, dst, spare = self._buffers(coeffs)
        original = src
        towers = len(self.moduli)
        q3 = self._q3
        tmp = self._scratch
        bound = 1  # operand magnitudes are < bound * q
        stage = 0
        m, t = 1, self.n
        while m < self.n:
            t //= 2
            if bound > self._lazy_cap:
                src %= self._q
                bound = 1
            blk = src.reshape(towers, m, 2 * t)
            out_blk = dst.reshape(towers, m, 2 * t)
            lo = blk[:, :, :t]
            whi = tmp.reshape(towers, m, t)
            np.multiply(blk[:, :, t:], self._fwd_tw[stage], out=whi)
            whi %= q3
            np.add(lo, whi, out=out_blk[:, :, :t])
            np.subtract(lo, whi, out=out_blk[:, :, t:])
            bound += 1
            stage += 1
            src, dst = dst, (spare if src is original else src)
            m *= 2
        src %= self._q
        return src

    def inverse(self, evals: np.ndarray) -> np.ndarray:
        """EVAL (bit-reversed) -> COEFF for a whole ``(L, N)`` matrix."""
        src, dst, spare = self._buffers(evals)
        original = src
        towers = len(self.moduli)
        q3 = self._q3
        tmp = self._scratch
        bound = 1
        stage = 0
        t, m = 1, self.n
        while m > 1:
            h = m // 2
            if bound > self._lazy_cap:
                src %= self._q
                bound = 1
            blk = src.reshape(towers, h, 2 * t)
            out_blk = dst.reshape(towers, h, 2 * t)
            lo = blk[:, :, :t]
            hi = blk[:, :, t:]
            # GS butterfly: (lo', hi') = (lo + hi, (lo - hi) * w mod q).
            # The signed difference stays within +/- bound * q, so its
            # twiddle product fits int64 and numpy's % returns canonical.
            diff = tmp.reshape(towers, h, t)
            np.subtract(lo, hi, out=diff)
            np.add(lo, hi, out=out_blk[:, :, :t])
            np.multiply(diff, self._inv_tw[stage], out=out_blk[:, :, t:])
            out_blk[:, :, t:] %= q3
            bound *= 2
            stage += 1
            src, dst = dst, (spare if src is original else src)
            t *= 2
            m = h
        if bound > self._lazy_cap:
            src %= self._q
        src *= self._n_inv
        src %= self._q
        return src

    # -- helpers ------------------------------------------------------------

    def _buffers(self, arr: np.ndarray):
        """Validate input and set up the ping-pong buffer pair.

        The input array is only ever *read* (stage 1 writes into a
        buffer), and the buffer parity is arranged so the final stage
        lands in a freshly allocated caller-owned array, never in the
        engine's reusable scratch.
        """
        arr = np.asarray(arr, dtype=_INT64)
        expected = (len(self.moduli), self.n)
        if arr.shape != expected:
            raise ParameterError(
                f"batched NTT expects shape {expected}, got {arr.shape}"
            )
        stages = self.n.bit_length() - 1
        if stages == 0:
            return arr.copy(), None, None
        result = np.empty(expected, dtype=_INT64)
        if stages % 2 == 1:
            return arr, result, self._work
        return arr, self._work, result

    def __repr__(self) -> str:
        return f"BatchNTT(n={self.n}, towers={len(self.moduli)})"


@lru_cache(maxsize=None)
def get_batch_ntt(n: int, moduli: Tuple[int, ...]) -> BatchNTT:
    """Shared per-``(N, moduli)`` engine, assembled from cached contexts.

    Key switching walks a fixed set of level/digit bases, so the number of
    distinct stacks is small; each holds two ``(L, N)`` int64 tables plus
    an ``(L, N/2)`` scratch buffer.
    """
    return BatchNTT(n, tuple(int(q) for q in moduli))
