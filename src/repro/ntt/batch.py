"""Whole-matrix negacyclic NTT over an RNS tower stack.

:class:`NTTContext` transforms one tower at a time, so converting an
``(L, N)`` RNS polynomial between domains costs ``L * log2(N)`` numpy
passes — at the functional layer's small rings the interpreter overhead
of those ``L`` separate calls dominates the arithmetic.  This engine
stacks the per-tower twiddle tables into ``(L, N)`` matrices and keeps
the moduli as a column vector ``q[:, None]``, so one butterfly stage
updates *every* tower at once and a full transform is ``log2(N)``
vectorized passes total.

Three further tricks shave numpy passes off each stage:

- **lazy reduction, scheduled per tower run** — butterfly outputs are
  allowed to grow a few multiples of ``q`` beyond canonical before a
  ``% q`` pass reclaims them.  The growth cap is ``2**(62 - 2*bits)``
  per tower, so narrow scale primes (26-bit) ride out a whole transform
  without any mid-loop reduction while only the wide ``q0``/special
  rows (29-30 bit, cap 4) pay periodic row-sliced ``%`` passes.  All
  intermediates stay congruent mod ``q`` (signed values included), and
  the final canonicalization makes outputs bit-identical to the
  eagerly-reduced scalar network.
- **lazy signed Barrett** — on cross-ciphertext ``(B, L, N)`` stacks the
  per-stage twiddle-product reduction replaces int64 division (which
  never vectorizes) with a float64 multiply-by-inverse, ``rint`` and an
  exact int64 fixup, leaving a signed remainder in ``(-q, q)``.  The
  remainder magnitude matches the canonical one, so the lazy growth
  schedule is unchanged; below :data:`_BARRETT_MIN_ELEMS` elements the
  extra passes cost more than the division and the engine keeps ``%``.
- **preallocated scratch** — each stage writes the difference leg through
  reused buffers instead of allocating per call, and the input is
  canonical by the :class:`repro.rns.poly.RNSPoly` invariant so no
  ``% q`` validation pass is spent on entry.

The twiddle stacks are assembled from the per-``(N, q)``
:class:`NTTContext` tables, which persist across processes via
:mod:`repro.cache`; a warm cache makes both layers free to construct.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.ntt.transform import get_ntt_context

_INT64 = np.int64

#: Distinct batch sizes whose ping-pong buffers an engine keeps alive.
#: Serving batches cluster around a handful of B values; anything rarer
#: allocates per call instead of pinning memory forever.
_MAX_CACHED_BATCH_SHAPES = 8

#: Smallest twiddle-product block (elements) for which the 5-pass float
#: Barrett reduction beats one int64 ``%`` pass.  Measured on the
#: functional ring sizes: division costs ~4.5ns/element while the float
#: passes cost ~0.7ns each, so the crossover sits near 8k elements —
#: cross-ciphertext stacks clear it, single-matrix transforms do not.
_BARRETT_MIN_ELEMS = 8192


class BatchNTT:
    """Batched negacyclic NTT for a fixed ordered tuple of moduli.

    Inputs/outputs are ``(L, N)`` int64 matrices of canonical residues,
    row ``i`` modulo ``moduli[i]`` — or ``(B, L, N)`` stacks of ``B``
    such matrices, transformed in one pass (the cross-ciphertext batch
    axis).  The twiddle tables stay ``(L, ...)`` and broadcast over the
    batch axis, so no per-``B`` table is ever built or cached.  Outputs
    are bit-identical to looping :meth:`NTTContext.forward` /
    :meth:`NTTContext.inverse` over the rows (and over the batch) —
    ``tests/test_kernel_equivalence.py`` holds this as a hypothesis
    property.
    """

    def __init__(self, n: int, moduli: Tuple[int, ...]) -> None:
        contexts = [get_ntt_context(n, q) for q in moduli]
        self.n = n
        self.moduli = tuple(moduli)
        #: (L, 1) column vector of moduli — broadcasts against (L, m, t)
        #: butterfly legs as (L, 1, 1).
        self._q = np.array(self.moduli, dtype=_INT64)[:, None]
        self._q3 = self._q[:, :, None]
        self._qinv3 = 1.0 / self._q3
        self._psi_rev = np.stack([c._psi_rev for c in contexts])
        self._psi_inv_rev = np.stack([c._psi_inv_rev for c in contexts])
        self._n_inv = np.array([c._n_inv for c in contexts], dtype=_INT64)[:, None]
        #: Maximal runs of adjacent towers sharing a lazy growth cap
        #: (``2**(62 - 2*bits)`` multiples of q before a twiddle product
        #: could overflow int64).  Mid-loop reductions touch one run at
        #: a time, so 26-bit scale towers (cap 1024) never reduce while
        #: the wide q0/special rows (cap 4) reduce on their own beat.
        self._runs = self._build_runs()
        self._scratch = np.empty((len(self.moduli), max(1, n // 2)), dtype=_INT64)
        self._work = np.empty((len(self.moduli), n), dtype=_INT64)
        #: Per-batch-size buffer bundles for (B, L, N) input: ping-pong
        #: work, twiddle-product scratch, and the Barrett int/float pair.
        self._batch_bufs: Dict[
            int, Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = {}
        # Per-stage twiddle slices, contiguous and pre-shaped for the
        # (L, m, t) butterfly blocks, so the hot loop does no slicing.
        self._fwd_tw = []
        m = 1
        while m < n:
            self._fwd_tw.append(
                np.ascontiguousarray(self._psi_rev[:, m : 2 * m])[:, :, None]
            )
            m *= 2
        self._inv_tw = []
        m = n
        while m > 1:
            h = m // 2
            self._inv_tw.append(
                np.ascontiguousarray(self._psi_inv_rev[:, h : 2 * h])[:, :, None]
            )
            m = h
        # The stacked tables are only needed to build the per-stage slices;
        # engines live forever in the lru cache, so drop the duplicates.
        del self._psi_rev
        del self._psi_inv_rev

    # -- public API ---------------------------------------------------------

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """COEFF -> EVAL for an ``(L, N)`` or ``(B, L, N)`` matrix at once.

        Residues must already be canonical (``[0, q_i)`` per row) — the
        callers inside :class:`repro.rns.poly.RNSPoly` maintain that
        invariant, so no ``% q`` canonicalization pass is spent on entry.
        Each butterfly stage reads one ping-pong buffer and writes the
        other (twiddle multiply, reduce, sum leg, difference leg);
        intermediates run signed and lazily reduced, and the final
        canonicalization restores exact agreement with the
        eagerly-reduced scalar network.
        """
        src, dst, spare, tmp, ired, fred = self._buffers(coeffs)
        if dst is None or spare is None or tmp is None:
            return src
        original = src
        towers = len(self.moduli)
        lead = src.shape[:-2]
        q3 = self._q3
        runs = self._runs
        bounds = [1] * len(runs)
        stage = 0
        m, t = 1, self.n
        while m < self.n:
            t //= 2
            for i, (sl, q_run, cap) in enumerate(runs):
                if bounds[i] > cap:
                    src[..., sl, :] %= q_run
                    bounds[i] = 1
            blk = src.reshape(*lead, towers, m, 2 * t)
            out_blk = dst.reshape(*lead, towers, m, 2 * t)
            lo = blk[..., :t]
            whi = tmp.reshape(*lead, towers, m, t)
            np.multiply(blk[..., t:], self._fwd_tw[stage], out=whi)
            if ired is not None and fred is not None:
                self._barrett(whi, ired, fred, lead + (towers, m, t))
            else:
                whi %= q3
            np.add(lo, whi, out=out_blk[..., :t])
            np.subtract(lo, whi, out=out_blk[..., t:])
            bounds = [b + 1 for b in bounds]
            stage += 1
            src, dst = dst, (spare if src is original else src)
            m *= 2
        src %= self._q
        return src

    def inverse(self, evals: np.ndarray) -> np.ndarray:
        """EVAL (bit-reversed) -> COEFF for an ``(L, N)`` or ``(B, L, N)``
        matrix."""
        src, dst, spare, tmp, ired, fred = self._buffers(evals)
        if dst is None or spare is None or tmp is None:
            return src
        original = src
        towers = len(self.moduli)
        lead = src.shape[:-2]
        q3 = self._q3
        runs = self._runs
        bounds = [1] * len(runs)
        stage = 0
        t, m = 1, self.n
        while m > 1:
            h = m // 2
            for i, (sl, q_run, cap) in enumerate(runs):
                if bounds[i] > cap:
                    src[..., sl, :] %= q_run
                    bounds[i] = 1
            blk = src.reshape(*lead, towers, h, 2 * t)
            out_blk = dst.reshape(*lead, towers, h, 2 * t)
            lo = blk[..., :t]
            hi = blk[..., t:]
            # GS butterfly: (lo', hi') = (lo + hi, (lo - hi) * w mod q).
            # The signed difference stays within +/- bound * q, so its
            # twiddle product fits int64 and the reduction (either % or
            # signed Barrett) leaves a congruent value smaller than q.
            diff = tmp.reshape(*lead, towers, h, t)
            np.subtract(lo, hi, out=diff)
            np.add(lo, hi, out=out_blk[..., :t])
            prod = out_blk[..., t:]
            np.multiply(diff, self._inv_tw[stage], out=prod)
            if ired is not None and fred is not None:
                self._barrett(prod, ired, fred, lead + (towers, h, t))
            else:
                prod %= q3
            bounds = [b * 2 for b in bounds]
            stage += 1
            src, dst = dst, (spare if src is original else src)
            t *= 2
            m = h
        for (sl, q_run, cap), bound in zip(runs, bounds):
            if bound > cap:
                src[..., sl, :] %= q_run
        src *= self._n_inv
        src %= self._q
        return src

    # -- helpers ------------------------------------------------------------

    def _barrett(
        self,
        prod: np.ndarray,
        ired: np.ndarray,
        fred: np.ndarray,
        shape: Tuple[int, ...],
    ) -> None:
        """Reduce ``prod`` in place to a signed remainder in ``(-q, q)``.

        ``round(prod / q) * q`` is subtracted exactly in int64; the
        quotient comes from a float64 multiply-by-inverse whose error is
        far below 1/2 for 62-bit products and 25+-bit moduli, so the
        remainder magnitude never exceeds the canonical one and the
        caller's lazy growth schedule is unchanged.  Values stay
        congruent mod q — the transform's final ``%`` canonicalizes.
        """
        q3 = self._q3
        fblk = fred.reshape(shape)
        iblk = ired.reshape(shape)
        np.multiply(prod, self._qinv3, out=fblk)
        np.rint(fblk, out=fblk)
        np.copyto(iblk, fblk, casting="unsafe")
        np.multiply(iblk, q3, out=iblk)
        np.subtract(prod, iblk, out=prod)

    def _build_runs(self) -> List[Tuple[slice, np.ndarray, int]]:
        """Adjacent towers bucketed by bit width into (slice, q, cap)."""
        caps = [
            max(1, 1 << max(0, 62 - 2 * q.bit_length())) for q in self.moduli
        ]
        runs: List[Tuple[slice, np.ndarray, int]] = []
        start = 0
        for i in range(1, len(caps) + 1):
            if i == len(caps) or caps[i] != caps[start]:
                runs.append((slice(start, i), self._q[start:i], caps[start]))
                start = i
        if len(runs) > 4:
            # Pathological interleaving: fall back to one global run so
            # the hot loop never pays per-run bookkeeping.
            return [(slice(0, len(caps)), self._q, min(caps))]
        return runs

    def _batch_buffers(
        self, b: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(work, scratch, barrett-int, barrett-float) for ``(B, L, N)``."""
        bufs = self._batch_bufs.get(b)
        if bufs is None:
            towers = len(self.moduli)
            half = max(1, self.n // 2)
            bufs = (
                np.empty((b, towers, self.n), dtype=_INT64),
                np.empty((b, towers, half), dtype=_INT64),
                np.empty((b, towers, half), dtype=_INT64),
                np.empty((b, towers, half), dtype=np.float64),
            )
            if len(self._batch_bufs) < _MAX_CACHED_BATCH_SHAPES:
                self._batch_bufs[b] = bufs
        return bufs

    def _buffers(
        self, arr: np.ndarray
    ) -> Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray],
               Optional[np.ndarray], Optional[np.ndarray],
               Optional[np.ndarray]]:
        """Validate input and set up the ping-pong buffer pair.

        The input array is only ever *read* (stage 1 writes into a
        buffer), and the buffer parity is arranged so the final stage
        lands in a freshly allocated caller-owned array, never in the
        engine's reusable scratch.  The Barrett pair comes back ``None``
        when the twiddle-product blocks are too small for the float
        reduction to win (single-matrix input, tiny batches).
        """
        arr = np.asarray(arr, dtype=_INT64)
        expected = (len(self.moduli), self.n)
        ired: Optional[np.ndarray] = None
        fred: Optional[np.ndarray] = None
        if arr.ndim == 2:
            if arr.shape != expected:
                raise ParameterError(
                    f"batched NTT expects shape {expected}, got {arr.shape}"
                )
            work, scratch = self._work, self._scratch
        elif arr.ndim == 3:
            if arr.shape[1:] != expected:
                raise ParameterError(
                    f"batched NTT expects shape (B,) + {expected}, "
                    f"got {arr.shape}"
                )
            work, scratch, ired, fred = self._batch_buffers(arr.shape[0])
            if scratch.size < _BARRETT_MIN_ELEMS:
                ired = fred = None
        else:
            raise ParameterError(
                f"batched NTT expects an (L, N) or (B, L, N) array, "
                f"got shape {arr.shape}"
            )
        stages = self.n.bit_length() - 1
        if stages == 0:
            return arr.copy(), None, None, None, None, None
        result = np.empty(arr.shape, dtype=_INT64)
        if stages % 2 == 1:
            return arr, result, work, scratch, ired, fred
        return arr, work, result, scratch, ired, fred

    def __repr__(self) -> str:
        return f"BatchNTT(n={self.n}, towers={len(self.moduli)})"


@lru_cache(maxsize=None)
def get_batch_ntt(n: int, moduli: Tuple[int, ...]) -> BatchNTT:
    """Shared per-``(N, moduli)`` engine, assembled from cached contexts.

    Key switching walks a fixed set of level/digit bases, so the number of
    distinct stacks is small; each holds two ``(L, N)`` int64 tables plus
    an ``(L, N/2)`` scratch buffer.
    """
    return BatchNTT(n, tuple(int(q) for q in moduli))
