"""Modular arithmetic, NTT-friendly prime generation, and negacyclic NTT."""

from repro.ntt.modmath import (
    MAX_MODULUS_BITS,
    add_mod,
    centered,
    check_modulus,
    inv_mod,
    is_probable_prime,
    mul_mod,
    neg_mod,
    pow_mod,
    sub_mod,
    to_residues,
)
from repro.ntt.batch import BatchNTT, get_batch_ntt
from repro.ntt.primes import generate_primes, primitive_root, root_of_unity
from repro.ntt.transform import (
    NTTContext,
    bit_reverse_indices,
    get_ntt_context,
    is_power_of_two,
)

__all__ = [
    "BatchNTT",
    "MAX_MODULUS_BITS",
    "NTTContext",
    "add_mod",
    "bit_reverse_indices",
    "centered",
    "check_modulus",
    "generate_primes",
    "get_batch_ntt",
    "get_ntt_context",
    "inv_mod",
    "is_power_of_two",
    "is_probable_prime",
    "mul_mod",
    "neg_mod",
    "pow_mod",
    "primitive_root",
    "root_of_unity",
    "sub_mod",
    "to_residues",
]
