"""Vectorized modular arithmetic over word-sized primes.

All functions operate on ``numpy.int64`` arrays holding canonical residues
in ``[0, q)``.  The library restricts moduli to at most
:data:`MAX_MODULUS_BITS` bits so that the product of two residues fits in a
signed 64-bit integer (``2 * MAX_MODULUS_BITS <= 62``), which lets every
kernel stay in fast native numpy arithmetic with an explicit ``%`` reduction
instead of emulated 128-bit math.

The *performance* model elsewhere in the library always accounts for
8-byte machine words per coefficient (as the paper does); the narrower
functional moduli here only affect numerical tests, not size accounting.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

#: Largest supported modulus width, in bits.  Chosen so that products of two
#: residues fit in int64 (30 + 30 < 63) with headroom for one addition.
MAX_MODULUS_BITS = 30

_INT64 = np.int64


def check_modulus(q: int) -> None:
    """Validate that ``q`` is usable as a functional RNS modulus.

    Raises :class:`ParameterError` if ``q`` is too small, too large or even.
    """
    if q < 3:
        raise ParameterError(f"modulus must be >= 3, got {q}")
    if q.bit_length() > MAX_MODULUS_BITS:
        raise ParameterError(
            f"modulus {q} has {q.bit_length()} bits; functional kernels "
            f"support at most {MAX_MODULUS_BITS}-bit moduli"
        )
    if q % 2 == 0:
        raise ParameterError(f"modulus must be odd, got {q}")


def to_residues(values, q: int) -> np.ndarray:
    """Reduce an integer array (any dtype / python ints) into ``[0, q)``."""
    arr = np.asarray(values)
    if arr.dtype == object:
        return np.array([int(v) % q for v in arr.ravel()], dtype=_INT64).reshape(arr.shape)
    return np.mod(arr.astype(_INT64, copy=False), q)


def add_mod(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Element-wise ``(a + b) mod q`` without overflow for q < 2**30."""
    s = a + b
    return np.where(s >= q, s - q, s)


def sub_mod(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Element-wise ``(a - b) mod q``."""
    d = a - b
    return np.where(d < 0, d + q, d)


def neg_mod(a: np.ndarray, q: int) -> np.ndarray:
    """Element-wise ``(-a) mod q``."""
    return np.where(a == 0, a, q - a)


def mul_mod(a: np.ndarray, b, q: int) -> np.ndarray:
    """Element-wise ``(a * b) mod q``; ``b`` may be a scalar or array."""
    return (a * b) % q


def pow_mod(base: int, exp: int, q: int) -> int:
    """Scalar modular exponentiation (delegates to python's pow)."""
    return pow(int(base), int(exp), int(q))


def inv_mod(a: int, q: int) -> int:
    """Scalar modular inverse of ``a`` modulo ``q`` (``q`` need not be prime,
    e.g. digit products ``Q_d`` in the key-switching gadget)."""
    a = int(a) % int(q)
    if a == 0:
        raise ZeroDivisionError(f"0 has no inverse modulo {q}")
    return pow(a, -1, int(q))


def centered(a: np.ndarray, q: int) -> np.ndarray:
    """Map residues in ``[0, q)`` to the centered interval ``(-q/2, q/2]``."""
    half = q // 2
    return np.where(a > half, a - q, a)


def is_probable_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for 64-bit integers.

    Uses the well-known witness set that is exact for ``n < 3.3 * 10**24``.
    """
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True
