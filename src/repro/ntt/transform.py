"""Negacyclic Number Theoretic Transform over ``Z_q[X]/(X^N + 1)``.

The forward transform is a Cooley-Tukey decimation-in-time network with the
``psi`` (2N-th root of unity) powers merged into the twiddles, following
Longa-Naehrig; the inverse is the matching Gentleman-Sande network.  The
forward output is in bit-reversed order and the inverse consumes that order,
so the pair composes to the identity and point-wise operations in the
evaluation domain are order-agnostic — exactly how HE libraries use it.

Every stage is a single vectorized numpy expression, so a transform of an
``(L, N)`` tower matrix costs ``log2(N)`` numpy passes per tower.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.ntt.modmath import check_modulus, inv_mod, mul_mod, pow_mod
from repro.ntt.primes import root_of_unity

_INT64 = np.int64


def is_power_of_two(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def bit_reverse_indices(n: int) -> np.ndarray:
    """Permutation array mapping index ``i`` to its bit-reversal over log2(n) bits."""
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    return rev


class NTTContext:
    """Precomputed twiddle tables for one (N, q) pair.

    Parameters
    ----------
    n:
        Power-of-two ring degree.
    q:
        Prime modulus with ``q = 1 (mod 2n)``.
    """

    def __init__(self, n: int, q: int):
        if not is_power_of_two(n):
            raise ParameterError(f"ring degree must be a power of two, got {n}")
        check_modulus(q)
        if (q - 1) % (2 * n) != 0:
            raise ParameterError(f"q={q} is not NTT-friendly for N={n}")
        self.n = n
        self.q = q
        psi = root_of_unity(2 * n, q)
        psi_inv = inv_mod(psi, q)
        rev = bit_reverse_indices(n)
        powers = self._power_table(psi)
        powers_inv = self._power_table(psi_inv)
        #: psi^bitrev(i): per-stage twiddles for the forward CT network.
        self._psi_rev = powers[rev]
        #: psi^-bitrev(i): per-stage twiddles for the inverse GS network.
        self._psi_inv_rev = powers_inv[rev]
        self._n_inv = inv_mod(n, q)

    def _power_table(self, base: int) -> np.ndarray:
        table = np.empty(self.n, dtype=_INT64)
        acc = 1
        for i in range(self.n):
            table[i] = acc
            acc = acc * base % self.q
        return table

    # -- public API ---------------------------------------------------------

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Coefficient domain -> evaluation domain (bit-reversed order).

        Accepts a 1-D ``(N,)`` array or a 2-D ``(rows, N)`` stack and
        transforms along the last axis, returning a new array.
        """
        a = self._validated_copy(coeffs)
        q = self.q
        m, t = 1, self.n
        while m < self.n:
            t //= 2
            block = a.reshape(-1, m, 2 * t)
            twiddle = self._psi_rev[m : 2 * m].reshape(1, m, 1)
            upper = block[:, :, :t].copy()
            lower = mul_mod(block[:, :, t:], twiddle, q)
            block[:, :, :t] = (upper + lower) % q
            block[:, :, t:] = (upper - lower) % q
            m *= 2
        return a.reshape(coeffs.shape)

    def inverse(self, evals: np.ndarray) -> np.ndarray:
        """Evaluation domain (bit-reversed order) -> coefficient domain."""
        a = self._validated_copy(evals)
        q = self.q
        t, m = 1, self.n
        while m > 1:
            h = m // 2
            block = a.reshape(-1, h, 2 * t)
            twiddle = self._psi_inv_rev[h : 2 * h].reshape(1, h, 1)
            upper = block[:, :, :t].copy()
            lower = block[:, :, t:]
            block[:, :, :t] = (upper + lower) % q
            block[:, :, t:] = mul_mod((upper - lower) % q, twiddle, q)
            t *= 2
            m = h
        a = mul_mod(a, self._n_inv, q)
        return a.reshape(evals.shape)

    def negacyclic_multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Polynomial product in ``Z_q[X]/(X^N+1)`` via NTT round trip."""
        fa = self.forward(a)
        fb = self.forward(b)
        return self.inverse(mul_mod(fa, fb, self.q))

    # -- helpers ------------------------------------------------------------

    def _validated_copy(self, arr: np.ndarray) -> np.ndarray:
        a = np.array(arr, dtype=_INT64, copy=True)
        if a.shape[-1] != self.n:
            raise ParameterError(
                f"last axis must have length N={self.n}, got shape {a.shape}"
            )
        return a % self.q

    def __repr__(self) -> str:
        return f"NTTContext(n={self.n}, q={self.q})"
