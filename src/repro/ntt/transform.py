"""Negacyclic Number Theoretic Transform over ``Z_q[X]/(X^N + 1)``.

The forward transform is a Cooley-Tukey decimation-in-time network with the
``psi`` (2N-th root of unity) powers merged into the twiddles, following
Longa-Naehrig; the inverse is the matching Gentleman-Sande network.  The
forward output is in bit-reversed order and the inverse consumes that order,
so the pair composes to the identity and point-wise operations in the
evaluation domain are order-agnostic — exactly how HE libraries use it.

Every stage is a single vectorized numpy expression, so a transform of an
``(L, N)`` tower matrix costs ``log2(N)`` numpy passes per tower (see
:mod:`repro.ntt.batch` for the engine that makes it ``log2(N)`` passes
*total*).  Twiddle tables persist across processes through
:mod:`repro.cache`, so only the first interpreter to see an ``(N, q)``
pair ever builds them.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro import cache
from repro.errors import ParameterError
from repro.ntt.modmath import check_modulus, inv_mod, mul_mod, pow_mod
from repro.ntt.primes import root_of_unity

_INT64 = np.int64

#: Process-wide count of twiddle-table builds (cache misses).  Tests use it
#: to prove that a warm ``REPRO_CACHE_DIR`` start regenerates nothing.
POWER_TABLE_BUILDS = 0


def is_power_of_two(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def bit_reverse_indices(n: int) -> np.ndarray:
    """Permutation array mapping index ``i`` to its bit-reversal over log2(n) bits."""
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    return rev


class NTTContext:
    """Precomputed twiddle tables for one (N, q) pair.

    Parameters
    ----------
    n:
        Power-of-two ring degree.
    q:
        Prime modulus with ``q = 1 (mod 2n)``.
    """

    def __init__(self, n: int, q: int):
        if not is_power_of_two(n):
            raise ParameterError(f"ring degree must be a power of two, got {n}")
        check_modulus(q)
        if (q - 1) % (2 * n) != 0:
            raise ParameterError(f"q={q} is not NTT-friendly for N={n}")
        self.n = n
        self.q = q
        cached = cache.load("ntt", f"n{n}-q{q}")
        if cached is not None and {"psi_rev", "psi_inv_rev"} <= set(cached):
            self._psi_rev = cached["psi_rev"].astype(_INT64, copy=False)
            self._psi_inv_rev = cached["psi_inv_rev"].astype(_INT64, copy=False)
        else:
            psi = root_of_unity(2 * n, q)
            psi_inv = inv_mod(psi, q)
            rev = bit_reverse_indices(n)
            powers = self._power_table(psi)
            powers_inv = self._power_table(psi_inv)
            #: psi^bitrev(i): per-stage twiddles for the forward CT network.
            self._psi_rev = powers[rev]
            #: psi^-bitrev(i): per-stage twiddles for the inverse GS network.
            self._psi_inv_rev = powers_inv[rev]
            cache.store(
                "ntt",
                f"n{n}-q{q}",
                {"psi_rev": self._psi_rev, "psi_inv_rev": self._psi_inv_rev},
            )
        self._n_inv = inv_mod(n, q)
        self._scratch: dict = {}

    def _power_table(self, base: int) -> np.ndarray:
        """``[base^0, ..., base^(n-1)] mod q`` by vectorized log-doubling.

        Each pass appends ``table * base^len(table)`` to the table, so the
        whole thing is ``log2(n)`` numpy multiplies instead of an
        ``n``-iteration python loop.
        """
        global POWER_TABLE_BUILDS
        POWER_TABLE_BUILDS += 1
        q = self.q
        table = np.array([1], dtype=_INT64)
        while table.size < self.n:
            stride = pow_mod(base, table.size, q)
            table = np.concatenate([table, table * stride % q])
        return table[: self.n]

    # -- public API ---------------------------------------------------------

    def forward(self, coeffs: np.ndarray, assume_canonical: bool = False) -> np.ndarray:
        """Coefficient domain -> evaluation domain (bit-reversed order).

        Accepts a 1-D ``(N,)`` array or a 2-D ``(rows, N)`` stack and
        transforms along the last axis, returning a new array.  Pass
        ``assume_canonical=True`` to skip the ``% q`` canonicalization of
        the input copy when residues are already in ``[0, q)``.
        """
        a = self._validated_copy(coeffs, assume_canonical)
        self._ct_network(a)
        return a.reshape(coeffs.shape)

    def inverse(self, evals: np.ndarray, assume_canonical: bool = False) -> np.ndarray:
        """Evaluation domain (bit-reversed order) -> coefficient domain."""
        a = self._validated_copy(evals, assume_canonical)
        q = self.q
        t, m = 1, self.n
        while m > 1:
            h = m // 2
            block = a.reshape(-1, h, 2 * t)
            twiddle = self._psi_inv_rev[h : 2 * h].reshape(1, h, 1)
            upper = block[:, :, :t].copy()
            lower = block[:, :, t:]
            block[:, :, :t] = (upper + lower) % q
            block[:, :, t:] = mul_mod((upper - lower) % q, twiddle, q)
            t *= 2
            m = h
        a = mul_mod(a, self._n_inv, q)
        return a.reshape(evals.shape)

    def negacyclic_multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Polynomial product in ``Z_q[X]/(X^N+1)`` via NTT round trip.

        The two forward transforms run in preallocated per-context scratch
        buffers (keyed by operand shape) so repeated products at the same
        shape allocate nothing on the hot path.
        """
        fa = self._forward_into(a, slot=0)
        fb = self._forward_into(b, slot=1)
        np.multiply(fa, fb, out=fa)
        fa %= self.q
        return self.inverse(fa, assume_canonical=True)

    # -- helpers ------------------------------------------------------------

    def _ct_network(self, a: np.ndarray) -> None:
        """Run the forward CT butterfly stages in place on ``a``.

        Shared by :meth:`forward` (fresh copy) and :meth:`_forward_into`
        (reused scratch buffer) so the network exists exactly once.
        """
        q = self.q
        m, t = 1, self.n
        while m < self.n:
            t //= 2
            block = a.reshape(-1, m, 2 * t)
            twiddle = self._psi_rev[m : 2 * m].reshape(1, m, 1)
            upper = block[:, :, :t].copy()
            lower = mul_mod(block[:, :, t:], twiddle, q)
            block[:, :, :t] = (upper + lower) % q
            block[:, :, t:] = (upper - lower) % q
            m *= 2

    def _forward_into(self, arr: np.ndarray, slot: int) -> np.ndarray:
        """Forward transform through a reused top-level buffer (contents
        are overwritten by the next call with the same shape and slot)."""
        arr = np.asarray(arr)
        if arr.shape[-1] != self.n:
            raise ParameterError(
                f"last axis must have length N={self.n}, got shape {arr.shape}"
            )
        key = (slot, arr.shape)
        buf = self._scratch.get(key)
        if buf is None:
            buf = self._scratch[key] = np.empty(arr.shape, dtype=_INT64)
        np.copyto(buf, arr, casting="unsafe")
        buf %= self.q
        self._ct_network(buf)
        return buf

    def _validated_copy(self, arr: np.ndarray, assume_canonical: bool = False) -> np.ndarray:
        a = np.array(arr, dtype=_INT64, copy=True)
        if a.shape[-1] != self.n:
            raise ParameterError(
                f"last axis must have length N={self.n}, got shape {a.shape}"
            )
        if assume_canonical:
            return a
        return a % self.q

    def __repr__(self) -> str:
        return f"NTTContext(n={self.n}, q={self.q})"


@lru_cache(maxsize=None)
def galois_eval_permutation(n: int, galois_element: int) -> np.ndarray:
    """Evaluation-domain gather realizing the automorphism ``X -> X^g``.

    The CT forward network emits evaluations in bit-reversed order:
    output slot ``i`` holds ``p(psi**(2*brv(i)+1))``.  Applying
    ``X -> X^g`` in the coefficient domain re-evaluates ``p`` at the
    ``g``-th powers of the same points — still odd exponents of ``psi``,
    so in EVAL domain the automorphism is the pure permutation
    ``out[..., i] = in[..., perm[i]]``: no transforms, no negations, and
    bit-identical to the INTT -> permute -> NTT round trip.  The slot
    ordering never depends on the modulus (only on the bit-reversal
    layout), so one table serves every tower of a stack.
    """
    if galois_element % 2 == 0:
        raise ParameterError(
            f"Galois element must be odd, got {galois_element}"
        )
    rev = bit_reverse_indices(n)
    exponents = 2 * rev + 1
    perm = rev[((exponents * galois_element) % (2 * n) - 1) // 2]
    perm.flags.writeable = False
    return perm


@lru_cache(maxsize=None)
def get_ntt_context(n: int, q: int) -> NTTContext:
    """Shared per-(N, q) twiddle tables; building them is the expensive part.

    Within a process this is an ``lru_cache``; across processes the tables
    themselves come back from :mod:`repro.cache`, so only the very first
    interpreter ever runs :meth:`NTTContext._power_table`.
    """
    return NTTContext(n, q)
