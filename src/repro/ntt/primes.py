"""Generation of NTT-friendly primes and primitive roots of unity.

A modulus ``q`` supports the negacyclic NTT of length ``N`` when
``q = 1 (mod 2N)``, which guarantees a primitive ``2N``-th root of unity in
``Z_q``.  :func:`generate_primes` walks candidates of that shape downward
from a requested bit size; :func:`primitive_root` and
:func:`root_of_unity` produce generators used to build twiddle tables.
"""

from __future__ import annotations

from typing import List

from repro.errors import PrimeGenerationError
from repro.ntt.modmath import MAX_MODULUS_BITS, is_probable_prime, pow_mod


def generate_primes(count: int, n: int, bits: int, distinct_from=()) -> List[int]:
    """Return ``count`` distinct primes ``q = 1 (mod 2n)`` of ``bits`` bits.

    Candidates are scanned downward from ``2**bits`` so the first prime has
    exactly ``bits`` bits.  ``distinct_from`` lists moduli that must be
    avoided (e.g. when generating the auxiliary basis P after Q).
    """
    if bits > MAX_MODULUS_BITS:
        raise PrimeGenerationError(
            f"{bits}-bit primes exceed the {MAX_MODULUS_BITS}-bit functional limit"
        )
    step = 2 * n
    if bits <= (step).bit_length():
        raise PrimeGenerationError(
            f"cannot fit primes = 1 mod {step} in {bits} bits (N too large)"
        )
    avoid = set(int(q) for q in distinct_from)
    # Largest candidate of the form k*2n + 1 strictly below 2**bits.
    candidate = ((1 << bits) - 2) // step * step + 1
    found: List[int] = []
    floor = 1 << (bits - 1)
    while len(found) < count:
        if candidate <= floor:
            raise PrimeGenerationError(
                f"exhausted {bits}-bit candidates = 1 mod {step}: "
                f"found {len(found)}/{count}"
            )
        if candidate not in avoid and is_probable_prime(candidate):
            found.append(candidate)
        candidate -= step
    return found


def primitive_root(q: int) -> int:
    """Smallest generator of the multiplicative group of ``Z_q`` (q prime)."""
    order = q - 1
    factors = _factorize(order)
    for g in range(2, q):
        if all(pow_mod(g, order // p, q) != 1 for p in factors):
            return g
    raise PrimeGenerationError(f"no primitive root found for {q}")


def root_of_unity(order: int, q: int) -> int:
    """A primitive ``order``-th root of unity modulo prime ``q``.

    Requires ``order | q - 1``.
    """
    if (q - 1) % order != 0:
        raise PrimeGenerationError(f"{order} does not divide {q} - 1")
    g = primitive_root(q)
    root = pow_mod(g, (q - 1) // order, q)
    # Sanity: root^order == 1 and root^(order/2) == -1 for even orders.
    if pow_mod(root, order, q) != 1:
        raise PrimeGenerationError(f"bad root of unity for q={q}")
    if order % 2 == 0 and pow_mod(root, order // 2, q) != q - 1:
        raise PrimeGenerationError(f"root of unity not primitive for q={q}")
    return root


def _factorize(n: int) -> List[int]:
    """Distinct prime factors of ``n`` by trial division (n < 2**31 here)."""
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors.append(n)
    return factors
