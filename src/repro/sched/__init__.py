"""repro.sched: resource-constrained schedule search over HKS dataflows.

The three hand-written dataflows (MP / DC / OC) are points in a larger
space of legal schedules.  This package names that space
(:mod:`~repro.sched.space`), emits any point in it through the shared
stage kernels (:mod:`~repro.sched.generic`), re-lists compute queues
against the dual-queue timing model (:mod:`~repro.sched.list_scheduler`),
prices steady-state pipelining (:mod:`~repro.sched.pipeline`) and
searches per (spec, memory config, objective) with content-addressed
caching (:mod:`~repro.sched.solver`).  The legacy dataflows are always
evaluated exactly, so the solved schedule matches or beats the best
hand-written one by construction.

This package sits *below* :mod:`repro.api` (the workload builders import
:data:`~repro.sched.space.RESNET_DECISION` and friends); the solver's
API-layer hooks are imported lazily.
"""

from repro.sched.generic import DecisionDataflow
from repro.sched.list_scheduler import reorder_for_latency
from repro.sched.pipeline import build_pipeline
from repro.sched.solver import (
    COUNTERS,
    SCHED_VERSION,
    Objective,
    ScheduleArtifact,
    ScheduleDecision,
    SolvedSchedule,
    artifact,
    pipeline_marginal_ms,
    reset_counters,
    schedule_digest,
    solve,
    solve_key,
    solve_workload,
    solved_graph,
)
from repro.sched.space import (
    HELR_DECISION,
    LEGACY_DECISIONS,
    RESNET_DECISION,
    HKSDecision,
    ProgramDecision,
    enumerate_decisions,
    pin_capacity,
    predict_cost,
)
from repro.sched.stats import ScheduleStats

__all__ = [
    "COUNTERS",
    "SCHED_VERSION",
    "DecisionDataflow",
    "HELR_DECISION",
    "HKSDecision",
    "LEGACY_DECISIONS",
    "Objective",
    "ProgramDecision",
    "RESNET_DECISION",
    "ScheduleArtifact",
    "ScheduleDecision",
    "ScheduleStats",
    "SolvedSchedule",
    "artifact",
    "build_pipeline",
    "enumerate_decisions",
    "pin_capacity",
    "pipeline_marginal_ms",
    "predict_cost",
    "reorder_for_latency",
    "reset_counters",
    "schedule_digest",
    "solve",
    "solve_key",
    "solve_workload",
    "solved_graph",
]
