"""Pipeline scheduler: steady-state cost of back-to-back HKS calls.

Phase estimates multiply a single-HKS simulation by the call count, which
charges every call the full dependency-stall cost of a cold start.  In
steady state the decoupled queues overlap the *next* call's key and input
streaming with the *current* call's compute tail, so the marginal call is
cheaper than the first.  This module measures that directly: it emits
``calls`` complete HKS instances into **one** schedule builder — buffer
names prefixed per call so the emitters compose without collisions — and
lets the dual-queue simulator price the overlap.

``marginal cost = sim(2 calls) - sim(1 call)``, clamped below by the
busier queue's per-call busy time (no schedule can beat its resource
bound) and above by the single-call runtime (pipelining never hurts an
in-order queue pair).  The solver caches the value per (schedule digest,
machine), so steady-state pricing costs two extra builds once, ever.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, List, Tuple

from repro.core.dataflow import DataflowConfig, ScheduleBuilder, ScheduleStats
from repro.core.stages import OpCount
from repro.core.taskgraph import DATA_TAG, Kind, TaskGraph
from repro.errors import ParameterError
from repro.params import BenchmarkSpec
from repro.sched.generic import DecisionDataflow
from repro.sched.space import HKSDecision


class _PrefixedBuilder:
    """Duck-typed :class:`ScheduleBuilder` view that namespaces buffers.

    Every value name (and label) gets a per-call prefix, so several
    :class:`~repro.core.hks_ops.HKSEmitter` instances can emit into one
    underlying builder — sharing its budget, residency state and task
    queues — without their ``in[t]``/``acc{h}[j]``/... names colliding.
    """

    def __init__(self, inner: ScheduleBuilder, prefix: str):
        self._inner = inner
        self._prefix = prefix

    @property
    def budget(self) -> int:
        return self._inner.budget

    @property
    def graph(self) -> TaskGraph:
        return self._inner.graph

    @property
    def stats(self) -> ScheduleStats:
        return self._inner.stats

    def _p(self, name: str) -> str:
        return self._prefix + name

    def define_dram(self, name: str, nbytes: int,
                    traffic_tag: str = DATA_TAG) -> None:
        self._inner.define_dram(self._p(name), nbytes, traffic_tag)

    def free(self, name: str) -> None:
        self._inner.free(self._p(name))

    def set_priority(self, name: str, priority: int) -> None:
        self._inner.set_priority(self._p(name), priority)

    def is_resident(self, name: str) -> bool:
        return self._inner.is_resident(self._p(name))

    def touch(self, name: str) -> List[int]:
        return self._inner.touch(self._p(name))

    def writeback(self, name: str) -> int:
        return self._inner.writeback(self._p(name))

    def compute(self, kind: Kind, inputs: Iterable[str],
                outputs: Iterable[Tuple[str, int]], ops: OpCount,
                label: str = "", output_priority: int = 0,
                extra_deps: Iterable[int] = ()) -> int:
        return self._inner.compute(
            kind,
            [self._p(n) for n in inputs],
            [(self._p(n), b) for n, b in outputs],
            ops,
            label=self._prefix + label if label else label,
            output_priority=output_priority,
            extra_deps=extra_deps,
        )


def build_pipeline(spec: BenchmarkSpec, config: DataflowConfig,
                   decision: HKSDecision,
                   calls: int = 2) -> Tuple[TaskGraph, ScheduleStats]:
    """Emit ``calls`` back-to-back HKS instances into one schedule.

    All calls share one builder (one budget, one pair of task queues), so
    simulating the result prices the real steady-state overlap between
    consecutive key switches.  The reorder flag is ignored — pipelining
    measures the emitter's natural order.
    """
    from repro.core.hks_ops import HKSEmitter

    if calls < 1:
        raise ParameterError("a pipeline needs at least one call")
    if decision.reordered:
        decision = replace(decision, reordered=False)
    flow = DecisionDataflow(decision)
    builder = ScheduleBuilder(f"{spec.name}/SOLVER-x{calls}",
                              config.data_sram_bytes)
    for c in range(calls):
        view = _PrefixedBuilder(builder, f"c{c}.")
        flow.schedule(HKSEmitter(view, spec, config))  # type: ignore[arg-type]
    builder.graph.validate()
    return builder.graph, builder.stats
