"""The schedule search space: every legal per-phase decision, enumerated.

The three hand-written dataflows (MP / DC / OC) are three *points* in a
much larger space of legal HKS schedules.  This module names the axes of
that space:

* :class:`HKSDecision` — one candidate schedule for a single hybrid key
  switch: how many digits' INTT outputs to pin on-chip, the loop order of
  the ModUp sweep (output-tower-major vs digit-major), the stage-major
  tile width, whether ModDown fuses P2->P3->P4 per output tower, the
  BConv chunk override, and (when keys stream from DRAM) whether evk
  tower pairs are prefetched ahead of the compute that consumes them.
  The three legacy dataflows are the ``base="MP"/"DC"/"OC"`` points;
  ``base="GEN"`` decisions drive the generic emitter of
  :mod:`repro.sched.generic`.
* :class:`ProgramDecision` — the deep-program structure choices that used
  to be hard-coded constants in :mod:`repro.workloads.builders`: how many
  mid-network bootstraps to place and how deep each application segment
  descends before a refresh.  Both the hand-written workload builders and
  the solver read the *same* record, so there is exactly one code path.
* :func:`enumerate_decisions` — the deterministic candidate list the
  solver searches, legacy points first (they anchor the match-or-beat
  guarantee), then the generic family pruned to capacity-feasible pins.
* :func:`predict_cost` — a closed-form (no schedule built, no simulation)
  cost guess used to rank generic candidates before paying for exact
  evaluation.  Guesses only *order* candidates; correctness never depends
  on them because the legacy anchors are always evaluated exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.core.dataflow import DataflowConfig
from repro.core.stages import HKSShape
from repro.errors import ParameterError
from repro.params import BenchmarkSpec


@lru_cache(maxsize=None)
def _shape_numbers(spec: BenchmarkSpec) -> Tuple[int, int]:
    """(ModUp live-set towers, total modular ops) — reused per candidate."""
    shape = HKSShape(spec)
    return shape.modup_intermediate_towers(), shape.total_ops().total

#: Loop orders the generic emitter understands.
LOOP_ORDERS = ("tower", "digit")

#: Decision bases: the three legacy dataflows plus the generic family.
DECISION_BASES = ("MP", "DC", "OC", "GEN")


@dataclass(frozen=True)
class HKSDecision:
    """One candidate schedule for a single HKS under one memory config.

    ``base`` selects the emitter: a legacy dataflow name replays that
    hand-written order exactly; ``"GEN"`` drives the generic pinned-digit
    emitter with the remaining knobs.  ``pinned_digits`` may exceed the
    legacy OC cap of ``dnum - 1`` — full pinning is a real candidate the
    hand-written schedules never try.  ``tile_towers == 0`` means pure
    output-tower order (one tower at a time); a positive tile runs the
    ModUp stages stage-major inside tiles of that many extended towers,
    interpolating between OC (tile 1) and MP (tile = all).
    ``reordered`` marks a schedule post-processed by the list scheduler.
    """

    base: str = "GEN"
    pinned_digits: int = 0
    loop: str = "tower"
    tile_towers: int = 0
    moddown_fused: bool = True
    bconv_chunk: int = 0
    evk_prefetch: bool = False
    reordered: bool = False

    def __post_init__(self) -> None:
        if self.base not in DECISION_BASES:
            raise ParameterError(
                f"unknown decision base {self.base!r}; "
                f"choose from {DECISION_BASES}"
            )
        if self.loop not in LOOP_ORDERS:
            raise ParameterError(
                f"unknown loop order {self.loop!r}; choose from {LOOP_ORDERS}"
            )
        if self.pinned_digits < 0 or self.tile_towers < 0 or self.bconv_chunk < 0:
            raise ParameterError("decision counts must be non-negative")

    @property
    def is_legacy(self) -> bool:
        return self.base != "GEN"

    def summary(self) -> str:
        """Short human-readable form for tables and ``--explain``."""
        if self.is_legacy:
            tag = self.base
        else:
            tag = (f"GEN(pin={self.pinned_digits},{self.loop}"
                   f"{',tile=' + str(self.tile_towers) if self.tile_towers else ''}"
                   f"{',md-fused' if self.moddown_fused else ',md-staged'}"
                   f"{',prefetch' if self.evk_prefetch else ''})")
        return tag + ("+reorder" if self.reordered else "")

    def to_dict(self) -> Dict[str, object]:
        return {
            "base": self.base,
            "pinned_digits": self.pinned_digits,
            "loop": self.loop,
            "tile_towers": self.tile_towers,
            "moddown_fused": self.moddown_fused,
            "bconv_chunk": self.bconv_chunk,
            "evk_prefetch": self.evk_prefetch,
            "reordered": self.reordered,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HKSDecision":
        return cls(
            base=str(data.get("base", "GEN")),
            pinned_digits=int(data.get("pinned_digits", 0)),
            loop=str(data.get("loop", "tower")),
            tile_towers=int(data.get("tile_towers", 0)),
            moddown_fused=bool(data.get("moddown_fused", True)),
            bconv_chunk=int(data.get("bconv_chunk", 0)),
            evk_prefetch=bool(data.get("evk_prefetch", False)),
            reordered=bool(data.get("reordered", False)),
        )


#: The legacy dataflows as decision-space points, in presentation order.
LEGACY_DECISIONS: Tuple[HKSDecision, ...] = (
    HKSDecision(base="MP"),
    HKSDecision(base="DC"),
    HKSDecision(base="OC"),
)


@dataclass(frozen=True)
class ProgramDecision:
    """Deep-program structure choices shared by builders and solver.

    ``level_margin`` is the noise headroom (in levels) a segment must
    leave before the next refresh; ``segment_depth`` derives the deepest
    legal slice count from the post-bootstrap budget, optionally capped
    (HELR's per-iteration circuit only has 5 levels of real work).
    ``num_bootstraps`` is the bootstrap-placement count for segmented
    inference programs (``None`` = determined by the workload, e.g. one
    per training iteration).
    """

    level_margin: int = 3
    max_segment_depth: Optional[int] = None
    num_bootstraps: Optional[int] = None

    def __post_init__(self) -> None:
        if self.level_margin < 0:
            raise ParameterError("level margin must be non-negative")
        if self.max_segment_depth is not None and self.max_segment_depth < 1:
            raise ParameterError("segment depth cap must be at least 1")
        if self.num_bootstraps is not None and self.num_bootstraps < 0:
            raise ParameterError("bootstrap count must be non-negative")

    def segment_depth(self, post_boot_towers: int) -> int:
        """Levels one application segment descends before the next refresh.

        Deeper is cheaper under the level-aware cost model (later slices
        run at lower tower counts), so the chosen depth is the argmin:
        the deepest depth that still leaves ``level_margin`` levels of
        noise headroom, capped by the circuit's real depth when known.
        """
        depth = post_boot_towers - self.level_margin
        if self.max_segment_depth is not None:
            depth = min(depth, self.max_segment_depth)
        return max(1, depth)

    def explain(self, post_boot_towers: int) -> List[str]:
        depth = self.segment_depth(post_boot_towers)
        lines = [
            f"segment depth {depth}: deepest slice count leaving "
            f"{self.level_margin} levels of noise margin below the "
            f"{post_boot_towers}-tower post-bootstrap budget"
            + (f" (capped at the circuit's {self.max_segment_depth}-level "
               f"real depth)"
               if self.max_segment_depth is not None
               and post_boot_towers - self.level_margin > self.max_segment_depth
               else ""),
        ]
        if self.num_bootstraps is not None:
            lines.append(
                f"{self.num_bootstraps} mid-network bootstrap(s): one "
                f"refresh per segment boundary"
            )
        return lines


#: RESNET_BOOT's structure: two mid-network refreshes -> three segments.
RESNET_DECISION = ProgramDecision(num_bootstraps=2)

#: HELR's structure: per-iteration circuit is 5 levels deep, one
#: bootstrap per training iteration (placement fixed by the algorithm).
HELR_DECISION = ProgramDecision(max_segment_depth=5)


def pin_capacity(spec: BenchmarkSpec, config: DataflowConfig) -> int:
    """How many digit-size prefixes of INTT outputs fit on-chip.

    Mirrors :meth:`repro.core.hks_ops.HKSEmitter.max_pinned_digits` (same
    2-tower working margin) without building a schedule, so the
    enumerator can prune infeasible pin counts for free.
    """
    margin_towers = 2
    avail = config.data_sram_bytes // spec.tower_bytes - margin_towers
    pinned = 0
    used = 0
    for size in spec.digit_sizes:
        if used + size > avail:
            break
        used += size
        pinned += 1
    return pinned


def enumerate_decisions(spec: BenchmarkSpec,
                        config: DataflowConfig) -> List[HKSDecision]:
    """The deterministic candidate list for one (spec, memory config).

    Legacy points come first — the solver always evaluates them exactly,
    which is what makes match-or-beat hold by construction.  The generic
    family then varies pin count (including *full* pinning, which OC's
    hand-written ``dnum - 1`` cap never tries), loop order, stage-major
    tile width, ModDown fusion and (streaming only) evk prefetch, pruned
    to capacity-feasible pins and deduplicated in first-seen order.
    """
    out: List[HKSDecision] = list(LEGACY_DECISIONS)
    seen = set(out)
    capacity = pin_capacity(spec, config)
    pin_options: List[int] = []
    for pins in (spec.dnum, spec.dnum - 1, max(spec.dnum - 2, 0), 0):
        pins = max(0, min(pins, spec.dnum, capacity))
        if pins not in pin_options:
            pin_options.append(pins)
    tile_options = [0]
    if spec.extended_towers >= 8:
        tile_options.append(8)
    prefetch_options = [False] if config.evk_on_chip else [False, True]
    for pins in pin_options:
        for loop in LOOP_ORDERS:
            for tile in tile_options:
                if loop == "digit" and tile:
                    continue  # tiling only applies to the tower-major sweep
                for fused in (True, False):
                    for prefetch in prefetch_options:
                        cand = HKSDecision(
                            base="GEN", pinned_digits=pins, loop=loop,
                            tile_towers=tile, moddown_fused=fused,
                            evk_prefetch=prefetch,
                        )
                        if cand not in seen:
                            seen.add(cand)
                            out.append(cand)
    return out


def compute_seconds(spec: BenchmarkSpec, modops_scale: float = 1.0) -> float:
    """The schedule-invariant compute-roofline time the guesses assume.

    Every candidate emits the same modular-op multiset (the
    ``sched.ops-invariant`` pass enforces it), so no latency guess can
    fall below this floor; a legacy guess already sitting on it proves
    the generic ranking cannot pass the evaluation-margin gate.
    """
    return _shape_numbers(spec)[1] / (128 * 1.7e9 * 0.31 * modops_scale)


def predict_cost(spec: BenchmarkSpec, config: DataflowConfig,
                 decision: HKSDecision, *, bandwidth_gbs: float = 64.0,
                 modops_scale: float = 1.0,
                 metric: str = "latency") -> float:
    """Closed-form cost guess for ranking candidates (no schedule built).

    Compute work is dataflow-independent (:meth:`HKSShape.total_ops`), so
    candidates are separated by predicted DRAM traffic: compulsory input
    + output movement, the streamed key size, and a spill estimate from
    how far the candidate's pinned working set overshoots the budget.
    ``metric="traffic"`` returns predicted bytes; ``"latency"`` returns
    the max of the memory and compute times in seconds.  Guesses are only
    used to *order* generic candidates for exact evaluation.
    """
    tb = spec.tower_bytes
    budget_towers = config.data_sram_bytes // tb
    compulsory = spec.input_bytes + spec.output_bytes
    evk = 0
    if not config.evk_on_chip:
        evk = spec.evk_bytes // 2 if config.key_compression else spec.evk_bytes
    if decision.base == "MP":
        live = _shape_numbers(spec)[0]
    elif decision.base == "DC":
        live = spec.kl + 2 * spec.extended_towers + max(spec.digit_sizes)
    else:  # OC and GEN: pinned icoefs + accumulators + transients
        pins = (min(spec.dnum - 1, pin_capacity(spec, config))
                if decision.base == "OC" else
                min(decision.pinned_digits, pin_capacity(spec, config)))
        live = (sum(spec.digit_sizes[:pins]) + 2 * spec.extended_towers
                + max(decision.tile_towers, 4))
    overshoot_towers = max(0, live - budget_towers)
    # Each overshooting tower round-trips (spill + reload) roughly once
    # per ModUp digit sweep; a crude model, but monotone in the overshoot,
    # which is all the ranking needs.
    spill_bytes = overshoot_towers * tb * 2 * max(1, spec.dnum - 1)
    if decision.base == "GEN" and not decision.moddown_fused:
        # Stage-ordered ModDown materializes the P2 expansion.
        spill_bytes += max(0, 2 * spec.kl - budget_towers) * tb
    bytes_guess = float(compulsory + evk + spill_bytes)
    if metric == "traffic":
        return bytes_guess
    compute_s = compute_seconds(spec, modops_scale)
    memory_s = bytes_guess / (bandwidth_gbs * 1e9)
    if decision.evk_prefetch:
        # Prefetched key streams overlap compute slightly better.
        memory_s *= 0.98
    return max(compute_s, memory_s)
