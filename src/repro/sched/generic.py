"""A decision-driven HKS dataflow: one emitter covering the whole space.

:class:`DecisionDataflow` turns an :class:`~repro.sched.space.HKSDecision`
into a concrete schedule through the same :class:`~repro.core.hks_ops.
HKSEmitter` stage kernels the hand-written dataflows use.  Legacy bases
(``MP``/``DC``/``OC``) delegate to the registered dataflow verbatim, so a
legacy decision reproduces the hand-written schedule *exactly* (same task
graph, same digest).  ``GEN`` decisions drive the generic pinned-digit
emitter below, whose family contains OC-like, DC-like and MP-like points
plus configurations the hand-written trio never tries (full pinning,
stage-major tiles, per-tower ModDown fusion under a digit loop, evk
prefetch).

The emitter works against either a schedule-building
:class:`~repro.core.hks_ops.HKSEmitter` or a functional
:class:`~repro.core.functional.FunctionalEmitter`; capacity and prefetch
logic degrade gracefully via ``hasattr`` exactly like the OC dataflow.
"""

from __future__ import annotations

from typing import List

from repro.core.dataflow import Dataflow
from repro.core.hks_ops import PRI_ICOEF, PRI_ICOEF_LAST
from repro.sched.space import HKSDecision


def _capacity(em) -> int:
    if hasattr(em, "max_pinned_digits"):
        return em.max_pinned_digits()
    return em.dnum  # functional emitter: memory is not modelled


class DecisionDataflow(Dataflow):
    """Schedule emitter parameterised by one :class:`HKSDecision`."""

    name = "SOLVER"
    title = "Solver-selected"

    def __init__(self, decision: HKSDecision):
        self.decision = decision
        if decision.is_legacy:
            # Resolved lazily to keep this importable before DATAFLOWS is.
            from repro.core import get_dataflow

            self._delegate = get_dataflow(decision.base)
        else:
            self._delegate = None

    def schedule(self, em) -> None:
        if self._delegate is not None:
            self._delegate.schedule(em)
            return
        decision = self.decision
        if decision.bconv_chunk and hasattr(em, "bconv_chunk"):
            em.bconv_chunk = decision.bconv_chunk
        pinned_count = min(decision.pinned_digits, em.dnum, _capacity(em))
        pinned = list(range(pinned_count))
        tail = list(range(pinned_count, em.dnum))
        prefetch = (
            decision.evk_prefetch
            and hasattr(em, "b")
            and hasattr(em, "config")
            and not em.config.evk_on_chip
        )

        # ModUp P1 for every pinned digit; resident for the whole sweep.
        for d in pinned:
            for t in em.digit_towers(d):
                em.intt_input(t, priority=PRI_ICOEF)

        if pinned:
            self._pinned_sweep(em, pinned, prefetch)
            for d in pinned:
                em.free_digit_icoef(d)

        # Tail passes: digits whose INTT outputs never fit on-chip are
        # loaded, transformed and fully consumed one digit at a time.
        for d in tail:
            for t in em.digit_towers(d):
                em.intt_input(t, priority=PRI_ICOEF_LAST)
            for j in em.all_ext():
                self._contribute(em, d, j, prefetch)
            em.free_digit_icoef(d)

        if decision.moddown_fused:
            em.moddown_output_centric()
        else:
            em.moddown_staged()

    # -- sweep orders ---------------------------------------------------------------

    def _pinned_sweep(self, em, pinned: List[int], prefetch: bool) -> None:
        if self.decision.loop == "digit":
            # Digit-major: each pinned digit finishes all its target
            # towers before the next digit starts (DC-like, but every
            # pinned digit's INTT outputs are already resident).  The
            # bypass contribution runs under its owning digit.
            for d in pinned:
                for j in em.all_ext():
                    self._contribute(em, d, j, prefetch)
            return
        tile = self.decision.tile_towers
        towers = list(em.all_ext())
        if tile <= 1:
            # Pure output-tower order: finish each tower before the next.
            for j in towers:
                self._tower_contributions(em, pinned, j, prefetch)
            return
        # Stage-major inside tiles of `tile` extended towers: all BConvs,
        # then all NTTs, then all key multiplies.  Interpolates between OC
        # (tile 1) and MP (tile = all towers).
        for lo in range(0, len(towers), tile):
            block = towers[lo : lo + tile]
            work = []  # (d, j) pairs needing the full BConv path
            for j in block:
                owner = em.digit_of[j]
                for d in pinned:
                    if d != owner:
                        work.append((d, j))
            if prefetch:
                # Issue the tile's key loads ahead of its compute chain so
                # the memory queue overlaps the BConv/NTT work.
                for d, j in work:
                    em.b.touch(f"evk[{d}][{j}]")
            for d, j in work:
                em.bconv(d, j)
            for d, j in work:
                em.ntt_ext(d, j)
            for j in block:
                owner = em.digit_of[j]
                if owner in pinned:
                    em.mulkey(owner, j)
            for d, j in work:
                em.mulkey(d, j)

    def _tower_contributions(self, em, pinned: List[int], j: int,
                             prefetch: bool) -> None:
        owner = em.digit_of[j]
        if owner in pinned:
            self._contribute(em, owner, j, prefetch)
        for d in pinned:
            if d != owner:
                self._contribute(em, d, j, prefetch)

    def _contribute(self, em, d: int, j: int, prefetch: bool) -> None:
        """Digit ``d``'s full contribution to extended tower ``j``."""
        if em.digit_of[j] != d:
            if prefetch:
                # Start the key load before the compute chain it feeds, so
                # the stream overlaps the BConv + NTT ahead of the mulkey.
                em.b.touch(f"evk[{d}][{j}]")
            em.bconv(d, j)
            em.ntt_ext(d, j)
        em.mulkey(d, j)
