"""Resource-aware list scheduler over finished task graphs.

The builder emits tasks in the dataflow's *generation* order; the RPU
executes each queue in order.  When the compute queue stalls on memory
(idle fraction > 0), a different compute order can hide more of the
stall without changing any data dependence.  This module re-lists the
compute queue with a priority-worklist greedy (the
``BlockBoundedListScheduler`` idiom: rank by longest weighted path to the
sink, dispatch the candidate that can start earliest on its resource),
keeping the memory queue's relative order — and therefore the schedule's
traffic, residency footprint and spill structure — untouched.

Correctness: explicit dependency edges carry all value-flow and
read-modify-write ordering (the builder records producer edges for
in-place accumulator updates), so any topological order of the explicit
DAG is a legal schedule; the rebuilt graph re-validates and the solver
additionally runs the analysis passes before adopting a reordering.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.taskgraph import Queue, TaskGraph
from repro.rpu.config import RPUConfig
from repro.rpu.simulator import RPUSimulator

#: Graphs larger than this are not worth the O(n * ready-set) greedy.
MAX_REORDER_TASKS = 6000


def _sink_priorities(graph: TaskGraph, durations: List[float]) -> List[float]:
    """Duration-weighted longest path from each task to any sink.

    Uses explicit dependency edges plus the original same-queue successor
    edge (the in-order queue makes the next task of a queue an effective
    successor), so the rank reflects how much serialized work hangs off
    each task.
    """
    n = len(graph.tasks)
    succs: List[List[int]] = [[] for _ in range(n)]
    for t in graph.tasks:
        for d in t.deps:
            succs[d].append(t.index)
    prev_in_queue = {Queue.MEMORY: -1, Queue.COMPUTE: -1}
    for t in graph.tasks:
        prev = prev_in_queue[t.queue]
        if prev >= 0:
            succs[prev].append(t.index)
        prev_in_queue[t.queue] = t.index
    rank = [0.0] * n
    for i in range(n - 1, -1, -1):
        tail = max((rank[s] for s in succs[i]), default=0.0)
        rank[i] = durations[i] + tail
    return rank


def reorder_for_latency(graph: TaskGraph,
                        machine: RPUConfig) -> Optional[TaskGraph]:
    """Re-list the compute queue to minimise dual-queue makespan.

    Returns a rebuilt graph in the new emission order, or ``None`` when
    the graph is too large or no reordering is possible.  The memory
    queue keeps its relative order, so byte counts, traffic tags and the
    emitted spill/reload structure are preserved exactly; only compute
    dispatch order (and dependency indices) change.  The caller decides
    adoption by re-simulating.
    """
    n = len(graph.tasks)
    if n == 0 or n > MAX_REORDER_TASKS:
        return None
    sim = RPUSimulator(machine)
    durations = [sim.task_duration(t) for t in graph.tasks]
    rank = _sink_priorities(graph, durations)

    memory_order = [t.index for t in graph.queue_tasks(Queue.MEMORY)]
    tasks = graph.tasks
    pending_deps = [len(t.deps) for t in tasks]
    dependents: List[List[int]] = [[] for _ in range(n)]
    for t in tasks:
        for d in t.deps:
            dependents[d].append(t.index)

    ready_compute: List[int] = [
        t.index
        for t in tasks
        if t.queue is Queue.COMPUTE and pending_deps[t.index] == 0
    ]
    mem_pos = 0
    finish = [0.0] * n
    free = {Queue.MEMORY: 0.0, Queue.COMPUTE: 0.0}
    order: List[int] = []

    def start_time(i: int) -> float:
        deps_ready = max((finish[d] for d in tasks[i].deps), default=0.0)
        return max(free[tasks[i].queue], deps_ready)

    while len(order) < n:
        candidates: List[int] = []
        if mem_pos < len(memory_order):
            head = memory_order[mem_pos]
            if pending_deps[head] == 0:
                candidates.append(head)
        candidates.extend(ready_compute)
        if not candidates:
            return None  # cannot happen on a valid graph; bail safely
        # Earliest achievable start wins; break ties toward the task with
        # the most serialized work behind it, then original order (this
        # keeps the result deterministic and the no-stall case stable).
        best = min(candidates, key=lambda i: (start_time(i), -rank[i], i))
        s = start_time(best)
        finish[best] = s + durations[best]
        free[tasks[best].queue] = finish[best]
        order.append(best)
        if tasks[best].queue is Queue.MEMORY:
            mem_pos += 1
        else:
            ready_compute.remove(best)
        for dep in dependents[best]:
            pending_deps[dep] -= 1
            if pending_deps[dep] == 0 and tasks[dep].queue is Queue.COMPUTE:
                ready_compute.append(dep)

    if order == list(range(n)):
        return None  # nothing changed

    remap = {old: new for new, old in enumerate(order)}
    out = TaskGraph(graph.name)
    for old in order:
        t = tasks[old]
        out.add(
            t.kind,
            bytes_moved=t.bytes_moved,
            mod_muls=t.mod_muls,
            mod_adds=t.mod_adds,
            deps=[remap[d] for d in t.deps],
            label=t.label,
            traffic_tag=t.traffic_tag,
        )
    out.validate()
    return out
