"""Report-level schedule statistics, uniform across backends.

Distinct from the *builder-level* :class:`repro.core.dataflow.
ScheduleStats` (peak bytes / spills / reloads tracked while emitting):
this module derives comparable per-queue occupancy, critical-path length
and SRAM high-water numbers for any finished schedule, so a
:class:`~repro.api.backends.RunReport` can carry the same structural
summary whether it came from the analytic model, the RPU simulator, or
the solver.

Occupancy uses the same first-order timing model as the RPU simulator's
lower bounds: queue busy time over the span of the longer queue.  It is a
*structural* measure (how balanced is the schedule), not a re-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional

from repro.core.taskgraph import Queue, TaskGraph
from repro.rpu.config import RPUConfig


@dataclass(frozen=True)
class ScheduleStats:
    """Structural summary of one schedule under one machine model."""

    compute_tasks: int = 0
    memory_tasks: int = 0
    #: Longest dependency chain, counted in tasks (unit weights).
    critical_path_tasks: int = 0
    #: Peak on-chip data footprint while the schedule was emitted.
    sram_high_water_bytes: int = 0
    #: Queue busy time / schedule span, in [0, 1].
    compute_occupancy: float = 0.0
    memory_occupancy: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "compute_tasks": self.compute_tasks,
            "memory_tasks": self.memory_tasks,
            "critical_path_tasks": self.critical_path_tasks,
            "sram_high_water_bytes": self.sram_high_water_bytes,
            "compute_occupancy": self.compute_occupancy,
            "memory_occupancy": self.memory_occupancy,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScheduleStats":
        return cls(
            compute_tasks=int(data.get("compute_tasks", 0)),
            memory_tasks=int(data.get("memory_tasks", 0)),
            critical_path_tasks=int(data.get("critical_path_tasks", 0)),
            sram_high_water_bytes=int(data.get("sram_high_water_bytes", 0)),
            compute_occupancy=float(data.get("compute_occupancy", 0.0)),
            memory_occupancy=float(data.get("memory_occupancy", 0.0)),
        )

    # -- composition --------------------------------------------------------------

    def scaled(self, calls: int) -> "ScheduleStats":
        """The stats of ``calls`` back-to-back runs of this schedule."""
        if calls <= 1:
            return self
        return ScheduleStats(
            compute_tasks=self.compute_tasks * calls,
            memory_tasks=self.memory_tasks * calls,
            critical_path_tasks=self.critical_path_tasks * calls,
            sram_high_water_bytes=self.sram_high_water_bytes,
            compute_occupancy=self.compute_occupancy,
            memory_occupancy=self.memory_occupancy,
        )

    def plus_tasks(self, memory: int, compute: int,
                   critical: int) -> "ScheduleStats":
        """Add extra work (e.g. pointwise-op graphs) task-count-wise."""
        if not (memory or compute or critical):
            return self
        return ScheduleStats(
            compute_tasks=self.compute_tasks + compute,
            memory_tasks=self.memory_tasks + memory,
            critical_path_tasks=self.critical_path_tasks + critical,
            sram_high_water_bytes=self.sram_high_water_bytes,
            compute_occupancy=self.compute_occupancy,
            memory_occupancy=self.memory_occupancy,
        )


def fold(stats: "list[ScheduleStats]") -> ScheduleStats:
    """Combine per-phase stats into a program-level summary.

    Task counts and critical paths add (phases run back to back); the
    high-water mark is the max; occupancies are task-weighted averages so
    heavy phases dominate, mirroring the latency-weighted idle fold the
    backends apply to per-phase reports.
    """
    stats = [s for s in stats if s is not None]
    if not stats:
        return ScheduleStats()
    total_tasks = sum(s.compute_tasks + s.memory_tasks for s in stats)

    def weighted(field: str) -> float:
        if total_tasks == 0:
            return 0.0
        acc = sum(
            getattr(s, field) * (s.compute_tasks + s.memory_tasks)
            for s in stats
        )
        return acc / total_tasks

    return ScheduleStats(
        compute_tasks=sum(s.compute_tasks for s in stats),
        memory_tasks=sum(s.memory_tasks for s in stats),
        critical_path_tasks=sum(s.critical_path_tasks for s in stats),
        sram_high_water_bytes=max(s.sram_high_water_bytes for s in stats),
        compute_occupancy=weighted("compute_occupancy"),
        memory_occupancy=weighted("memory_occupancy"),
    )


@lru_cache(maxsize=512)
def _graph_profile(graph: TaskGraph) -> "tuple[int, int, int, int, int]":
    """(mem_tasks, comp_tasks, critical_path, bytes, mod_ops) for a graph.

    Cached by graph object identity — backends build graphs through lru
    caches, so repeated reports over the same schedule profile it once.
    The critical path is the longest dependency chain in tasks.
    """
    mem = comp = total_bytes = total_ops = 0
    depth = [0] * len(graph.tasks)
    longest = 0
    for t in graph.tasks:
        if t.queue is Queue.MEMORY:
            mem += 1
            total_bytes += t.bytes_moved
        else:
            comp += 1
            total_ops += t.mod_ops
        d = 1 + max((depth[i] for i in t.deps), default=0)
        depth[t.index] = d
        longest = max(longest, d)
    return mem, comp, longest, total_bytes, total_ops


def graph_task_counts(graph: TaskGraph) -> "tuple[int, int, int]":
    """(memory_tasks, compute_tasks, critical_path_tasks) of a graph."""
    mem, comp, critical, _, _ = _graph_profile(graph)
    return mem, comp, critical


def from_graph(graph: TaskGraph, machine: RPUConfig,
               high_water_bytes: int = 0,
               latency_s: Optional[float] = None) -> ScheduleStats:
    """Profile a finished schedule under one machine model.

    ``high_water_bytes`` comes from the builder stats when the schedule
    was emitted under the memory model (0 for synthetic graphs).  When a
    simulated ``latency_s`` is known it defines the span; otherwise the
    span is the longer queue's busy time (the analytic lower bound).
    """
    mem, comp, critical, total_bytes, total_ops = _graph_profile(graph)
    mem_time = (total_bytes / machine.bandwidth_bytes_per_s
                + mem * machine.memory_latency_s)
    comp_time = total_ops / machine.effective_modops_per_s
    span = max(mem_time, comp_time, 1e-30)
    if latency_s is not None:
        span = max(span, latency_s)
    return ScheduleStats(
        compute_tasks=comp,
        memory_tasks=mem,
        critical_path_tasks=critical,
        sram_high_water_bytes=high_water_bytes,
        compute_occupancy=min(1.0, comp_time / span),
        memory_occupancy=min(1.0, mem_time / span),
    )
