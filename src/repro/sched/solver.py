"""The schedule solver: search the decision space, cache the argmin.

One :func:`solve` call answers "what is the best HKS schedule for this
(spec, memory config, objective)?" by

1. evaluating the three hand-written dataflows **exactly** (they anchor
   the match-or-beat guarantee: the solver's answer can never be worse
   than the best of MP/DC/OC, because those are always in the candidate
   pool and ties keep the legacy point),
2. ranking the generic candidates by closed-form cost guess and exactly
   evaluating only the few that *predict* a real win (each gated through
   the analysis passes before it may displace a legacy anchor), and
3. optionally re-listing the winner's compute queue with the list
   scheduler when the simulated schedule shows meaningful compute idle —
   adopted only if re-simulation strictly improves and the analysis
   passes stay clean.

Results are content-addressed in :mod:`repro.cache` under a key that
covers the spec, the memory configuration, the objective and
``SCHED_VERSION``, and memoized in-process, so a warm serving process
never searches: it loads the :class:`SolvedSchedule`, rebuilds the
schedule deterministically, and verifies the rebuild against the stored
digest.  Plan-level bundles (recorded during a cold ``run_plan``) let a
fresh process pre-seed the memo with one cache read.

All imports of :mod:`repro.api` are lazy: the workload builders import
:mod:`repro.sched.space`, which executes this package's ``__init__``,
and the API layer sits above the workloads.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro import cache as disk_cache
from repro.core.dataflow import DataflowConfig, ScheduleStats
from repro.core.taskgraph import DATA_TAG, EVK_TAG, Kind, Queue, TaskGraph
from repro.errors import ParameterError, ScheduleError
from repro.params import MB, BenchmarkSpec
from repro.rpu.config import RPUConfig
from repro.rpu.simulator import RPUSimulator, SimResult
from repro.sched.generic import DecisionDataflow
from repro.sched.list_scheduler import MAX_REORDER_TASKS, reorder_for_latency
from repro.sched.pipeline import build_pipeline
from repro.sched.space import (
    HKSDecision,
    compute_seconds,
    enumerate_decisions,
    predict_cost,
)

#: Bump when solver output could change for the same inputs (new search
#: knobs, emitter changes, digest format): it invalidates every cached
#: solve, preventing stale-digest rebuild failures.
SCHED_VERSION = 1

#: A generic candidate is evaluated exactly only when its closed-form
#: guess undercuts the best legacy guess by at least this factor.
GUESS_MARGIN = 0.97

#: At most this many generic candidates get exact evaluations per solve.
MAX_GENERIC_EVALS = 2

#: Reorder attempt triggers above this simulated compute-idle fraction.
REORDER_IDLE_THRESHOLD = 0.10

#: Observable search effort, for tests and the benchmark guards.
#: ``search_seconds`` covers :func:`solve` cache misses only; pipeline
#: marginals are schedule *construction* (cached by digest), not search.
COUNTERS: Dict[str, float] = {
    "searches": 0,
    "search_seconds": 0.0,
    "exact_evals": 0,
    "disk_hits": 0,
}


def reset_counters() -> None:
    COUNTERS.update(searches=0, search_seconds=0.0, exact_evals=0,
                    disk_hits=0)


@dataclass(frozen=True)
class Objective:
    """What the solver minimizes, and under which machine axes.

    ``metric="traffic"`` minimizes total DRAM bytes (the analytic
    backend's currency) and normalizes the timing axes away so every
    bandwidth sweep shares one cache entry.  ``metric="latency"``
    minimizes simulated runtime on the RPU timing model at the given
    bandwidth / MODOPS scale.
    """

    metric: str = "latency"
    bandwidth_gbs: float = 64.0
    modops_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.metric not in ("latency", "traffic"):
            raise ParameterError(
                f"unknown objective metric {self.metric!r}; "
                "choose 'latency' or 'traffic'"
            )
        if self.metric == "traffic":
            # Traffic is timing-independent: collapse the axes so cache
            # keys (and memo hits) do not fragment across sweeps.
            object.__setattr__(self, "bandwidth_gbs", 64.0)
            object.__setattr__(self, "modops_scale", 1.0)

    @classmethod
    def traffic(cls) -> "Objective":
        return cls(metric="traffic")

    @classmethod
    def latency(cls, bandwidth_gbs: float = 64.0,
                modops_scale: float = 1.0) -> "Objective":
        return cls(metric="latency", bandwidth_gbs=bandwidth_gbs,
                   modops_scale=modops_scale)

    @property
    def unit(self) -> str:
        return "ms" if self.metric == "latency" else "bytes"

    def key_parts(self) -> Tuple[object, ...]:
        return (self.metric, self.bandwidth_gbs, self.modops_scale)

    def to_dict(self) -> Dict[str, object]:
        return {"metric": self.metric, "bandwidth_gbs": self.bandwidth_gbs,
                "modops_scale": self.modops_scale}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Objective":
        return cls(
            metric=str(data.get("metric", "latency")),
            bandwidth_gbs=float(data.get("bandwidth_gbs", 64.0)),
            modops_scale=float(data.get("modops_scale", 1.0)),
        )


@dataclass(frozen=True)
class ScheduleDecision:
    """Why the solver picked what it picked — the ``--explain`` record."""

    spec_name: str
    decision: HKSDecision
    objective: Objective
    cost: float
    legacy_best: str
    legacy_best_cost: float
    considered: int
    evaluated: int
    reason: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec_name": self.spec_name,
            "decision": self.decision.to_dict(),
            "objective": self.objective.to_dict(),
            "cost": self.cost,
            "legacy_best": self.legacy_best,
            "legacy_best_cost": self.legacy_best_cost,
            "considered": self.considered,
            "evaluated": self.evaluated,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScheduleDecision":
        return cls(
            spec_name=str(data["spec_name"]),
            decision=HKSDecision.from_dict(dict(data["decision"])),  # type: ignore[arg-type]
            objective=Objective.from_dict(dict(data["objective"])),  # type: ignore[arg-type]
            cost=float(data["cost"]),
            legacy_best=str(data["legacy_best"]),
            legacy_best_cost=float(data["legacy_best_cost"]),
            considered=int(data["considered"]),
            evaluated=int(data["evaluated"]),
            reason=str(data["reason"]),
        )


@dataclass(frozen=True)
class SolvedSchedule:
    """The argmin schedule for one (spec, config, objective), plus the
    report numbers a backend needs without re-simulating."""

    record: ScheduleDecision
    #: Content digest of the schedule's canonical task-graph JSON; warm
    #: rebuilds are verified against it.
    digest: str
    total_bytes: int
    data_bytes: int
    evk_bytes: int
    mod_ops: int
    num_tasks: int
    peak_bytes: int
    spill_stores: int
    reloads: int
    latency_ms: Optional[float] = None
    compute_idle_fraction: Optional[float] = None

    @property
    def decision(self) -> HKSDecision:
        return self.record.decision

    @property
    def cost(self) -> float:
        return self.record.cost

    def to_dict(self) -> Dict[str, object]:
        return {
            "record": self.record.to_dict(),
            "digest": self.digest,
            "total_bytes": self.total_bytes,
            "data_bytes": self.data_bytes,
            "evk_bytes": self.evk_bytes,
            "mod_ops": self.mod_ops,
            "num_tasks": self.num_tasks,
            "peak_bytes": self.peak_bytes,
            "spill_stores": self.spill_stores,
            "reloads": self.reloads,
            "latency_ms": self.latency_ms,
            "compute_idle_fraction": self.compute_idle_fraction,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SolvedSchedule":
        latency = data.get("latency_ms")
        idle = data.get("compute_idle_fraction")
        return cls(
            record=ScheduleDecision.from_dict(dict(data["record"])),  # type: ignore[arg-type]
            digest=str(data["digest"]),
            total_bytes=int(data["total_bytes"]),
            data_bytes=int(data["data_bytes"]),
            evk_bytes=int(data["evk_bytes"]),
            mod_ops=int(data["mod_ops"]),
            num_tasks=int(data["num_tasks"]),
            peak_bytes=int(data["peak_bytes"]),
            spill_stores=int(data["spill_stores"]),
            reloads=int(data["reloads"]),
            latency_ms=None if latency is None else float(latency),
            compute_idle_fraction=None if idle is None else float(idle),
        )


@dataclass(frozen=True, eq=False)
class ScheduleArtifact:
    """A solved schedule bundled with its rebuilt graph, for analysis.

    The ``sched`` pass family (:mod:`repro.analysis.sched_passes`)
    validates artifacts: op-count invariance, evk/compulsory traffic
    bounds, SRAM budget and decision legality.  ``eq=False`` keeps the
    dataclass identity-hashed (task graphs and builder stats are not
    value-hashable).
    """

    spec: BenchmarkSpec
    config: DataflowConfig
    solved: SolvedSchedule
    graph: TaskGraph
    stats: ScheduleStats = field(repr=False)


# --------------------------------------------------------------------------
# Keys, memo, machine
# --------------------------------------------------------------------------

_MEMO: Dict[str, SolvedSchedule] = {}
_MARGINAL: Dict[str, float] = {}
_RECORDING: Optional[Dict[str, Dict[str, object]]] = None


def _spec_parts(spec: BenchmarkSpec) -> Tuple[object, ...]:
    return (spec.name, spec.log_n, spec.kl, spec.kp, spec.dnum)


def _config_parts(config: DataflowConfig) -> Tuple[object, ...]:
    return (config.data_sram_bytes, int(config.evk_on_chip),
            int(config.key_compression))


def solve_key(spec: BenchmarkSpec, config: DataflowConfig,
              objective: Objective) -> str:
    """Content address of one solve in :mod:`repro.cache`."""
    return disk_cache.fingerprint(
        ("sched", SCHED_VERSION) + _spec_parts(spec) + _config_parts(config)
        + objective.key_parts()
    )


def machine_for(config: DataflowConfig, objective: Objective) -> RPUConfig:
    """The RPU timing model a latency objective is evaluated under.

    Mirrors the RPU backend's machine mapping so a solve at the default
    axes and a backend estimate price schedules identically.
    """
    return RPUConfig(
        bandwidth_bytes_per_s=objective.bandwidth_gbs * 1e9,
        data_sram_bytes=config.data_sram_bytes,
        key_sram_bytes=360 * MB if config.evk_on_chip else 0,
        modops_scale=objective.modops_scale,
    )


#: Enum lookups hoisted out of the per-task summary loop.
_KIND_CODE = {k: k.value for k in Kind}
_KIND_IS_MEMORY = {k: k.queue is Queue.MEMORY for k in Kind}


class _GraphSummary(NamedTuple):
    digest: str
    total_bytes: int
    data_bytes: int
    evk_bytes: int
    mod_ops: int


@lru_cache(maxsize=1024)
def _graph_summary(graph: TaskGraph) -> _GraphSummary:
    """Digest + traffic/op aggregates of a graph, in one fused pass.

    The digest hashes the same fields :meth:`TaskGraph.to_json`
    serializes: the numeric columns (index, bytes, muls, adds,
    length-prefixed deps) as one little-endian int64 stream, the string
    columns NUL-joined — canonical, and an order of magnitude cheaper
    than hashing the JSON blob.  Memoized by graph identity: the
    builders behind :func:`decision_graph` are themselves lru-cached,
    so summarizing the same object again (solve, then verify, then
    bench) costs nothing.
    """
    import itertools

    import numpy as np

    tasks = graph.tasks
    ints = np.fromiter(
        itertools.chain.from_iterable(
            (t.index, t.bytes_moved, t.mod_muls, t.mod_adds,
             len(t.deps), *t.deps)
            for t in tasks),
        dtype=np.int64,
    )
    h = hashlib.sha256(repr(graph.name).encode("utf-8"))
    h.update(ints.astype("<i8", copy=False).tobytes())
    for column in (
        "\x00".join(_KIND_CODE[t.kind] for t in tasks),
        "\x00".join(t.label for t in tasks),
        "\x00".join(t.traffic_tag for t in tasks),
    ):
        h.update(b"\x01")
        h.update(column.encode("utf-8"))
    total_b = data_b = evk_b = mod_ops = 0
    is_memory = _KIND_IS_MEMORY
    for t in tasks:
        mod_ops += t.mod_muls + t.mod_adds
        if is_memory[t.kind]:
            total_b += t.bytes_moved
            if t.traffic_tag == DATA_TAG:
                data_b += t.bytes_moved
            elif t.traffic_tag == EVK_TAG:
                evk_b += t.bytes_moved
    return _GraphSummary(h.hexdigest()[:24], total_b, data_b, evk_b,
                         mod_ops)


def schedule_digest(graph: TaskGraph) -> str:
    """Deterministic content digest of a schedule."""
    return _graph_summary(graph).digest


# --------------------------------------------------------------------------
# Schedule construction (deterministic; shared with warm rebuilds)
# --------------------------------------------------------------------------

def _aligned_sram_mb(config: DataflowConfig) -> Optional[int]:
    """MB size when the config round-trips through EstimateOptions."""
    if config.data_sram_bytes >= MB and config.data_sram_bytes % MB == 0:
        return config.data_sram_bytes // MB
    return None


@lru_cache(maxsize=256)
def _built(spec: BenchmarkSpec, config: DataflowConfig,
           decision: HKSDecision) -> Tuple[TaskGraph, ScheduleStats]:
    return DecisionDataflow(decision).build_with_stats(spec, config)


def _base_graph(spec: BenchmarkSpec, config: DataflowConfig,
                decision: HKSDecision) -> Tuple[TaskGraph, ScheduleStats]:
    """Build (or fetch) the non-reordered graph for a decision.

    Legacy decisions at MB-aligned budgets go through the API layer's
    schedule cache so solver and backends share one build per config.
    """
    decision = replace(decision, reordered=False)
    if decision.is_legacy:
        mb = _aligned_sram_mb(config)
        if mb is not None:
            from repro.api import backends

            return backends._cached_schedule(
                spec, decision.base, mb, config.evk_on_chip,
                config.key_compression,
            )
    return _built(spec, config, decision)


@lru_cache(maxsize=256)
def _reordered_graph(
    spec: BenchmarkSpec, config: DataflowConfig, decision: HKSDecision,
    objective: Objective,
) -> Tuple[TaskGraph, ScheduleStats]:
    base, stats = _base_graph(spec, config, decision)
    better = reorder_for_latency(base, machine_for(config, objective))
    return (better if better is not None else base), stats


def decision_graph(
    spec: BenchmarkSpec, config: DataflowConfig, decision: HKSDecision,
    objective: Objective,
) -> Tuple[TaskGraph, ScheduleStats]:
    """The deterministic (graph, builder stats) a decision denotes."""
    if decision.reordered:
        return _reordered_graph(spec, config, decision, objective)
    return _base_graph(spec, config, decision)


@lru_cache(maxsize=256)
def _verified_graph(
    spec: BenchmarkSpec, config: DataflowConfig, objective: Objective,
    solved: SolvedSchedule,
) -> Tuple[TaskGraph, ScheduleStats]:
    graph, stats = decision_graph(spec, config, solved.decision, objective)
    digest = schedule_digest(graph)
    if digest != solved.digest:
        raise ScheduleError(
            f"rebuilt {spec.name} schedule digest {digest} does not match "
            f"the solved digest {solved.digest}; the cached solve is stale "
            f"(bump SCHED_VERSION after emitter changes)"
        )
    return graph, stats


def solved_graph(
    spec: BenchmarkSpec, config: DataflowConfig, objective: Objective,
    solved: SolvedSchedule,
) -> Tuple[TaskGraph, ScheduleStats]:
    """Rebuild a solved schedule, digest-verified once per process."""
    return _verified_graph(spec, config, objective, solved)


# --------------------------------------------------------------------------
# Exact evaluation
# --------------------------------------------------------------------------

class _Eval(NamedTuple):
    decision: HKSDecision
    graph: TaskGraph
    stats: ScheduleStats
    sim: Optional[SimResult]
    cost: float


@lru_cache(maxsize=512)
def _simulated(graph: TaskGraph, machine: RPUConfig) -> SimResult:
    return RPUSimulator(machine).simulate(graph)


def _sim_for(spec: BenchmarkSpec, config: DataflowConfig,
             objective: Objective, decision: HKSDecision,
             graph: TaskGraph) -> SimResult:
    if decision.is_legacy and not decision.reordered:
        mb = _aligned_sram_mb(config)
        if mb is not None:
            # Share the API layer's simulation cache: an estimate() that
            # already priced OC warms the solver's legacy anchors free.
            from repro.api import backends

            options = backends.EstimateOptions(
                bandwidth_gbs=objective.bandwidth_gbs,
                sram_mb=mb,
                evk_on_chip=config.evk_on_chip,
                key_compression=config.key_compression,
                modops_scale=objective.modops_scale,
            )
            return backends._cached_rpu_sim(spec, decision.base, options)
    return _simulated(graph, machine_for(config, objective))


def _evaluate(spec: BenchmarkSpec, config: DataflowConfig,
              objective: Objective, decision: HKSDecision) -> _Eval:
    COUNTERS["exact_evals"] += 1
    graph, stats = decision_graph(spec, config, decision, objective)
    if objective.metric == "traffic":
        return _Eval(decision, graph, stats, None,
                     float(graph.total_bytes()))
    sim = _sim_for(spec, config, objective, decision, graph)
    return _Eval(decision, graph, stats, sim, sim.runtime_ms)


def _analysis_clean(graph: TaskGraph) -> bool:
    from repro.analysis import analyze

    return analyze(graph).ok


# --------------------------------------------------------------------------
# Search
# --------------------------------------------------------------------------

def _fmt(cost: float, objective: Objective) -> str:
    if objective.metric == "latency":
        return f"{cost:.3f} ms"
    return f"{cost / MB:.1f} MB"


def _search(spec: BenchmarkSpec, config: DataflowConfig,
            objective: Objective) -> SolvedSchedule:
    candidates = enumerate_decisions(spec, config)
    legacy = [d for d in candidates if d.is_legacy]
    generic = [d for d in candidates if not d.is_legacy]

    evals = [_evaluate(spec, config, objective, d) for d in legacy]
    legacy_best = min(evals, key=lambda e: e.cost)
    best = legacy_best
    evaluated = len(evals)

    def guess(d: HKSDecision) -> float:
        return predict_cost(
            spec, config, d,
            bandwidth_gbs=objective.bandwidth_gbs,
            modops_scale=objective.modops_scale,
            metric=objective.metric,
        )

    # Generic candidates pay for an exact evaluation only when the
    # closed-form guess predicts a real win over the best legacy guess
    # (not the best legacy *actual* — guesses are only comparable to
    # guesses).  On compute-bound configurations every latency guess
    # ties and no generic evaluation happens at all.
    legacy_guess = min(guess(d) for d in legacy)
    if (objective.metric == "latency"
            and legacy_guess <= compute_seconds(
                spec, objective.modops_scale)):
        # The best legacy guess sits on the schedule-invariant compute
        # roofline; every generic guess is >= that floor, so none can
        # clear the GUESS_MARGIN gate.  Skip the ranking outright.
        ranked = []
    else:
        ranked = sorted((guess(d), i, d) for i, d in enumerate(generic))
    budget = MAX_GENERIC_EVALS
    for g, _, d in ranked:
        if budget == 0 or g >= GUESS_MARGIN * legacy_guess:
            break
        cand = _evaluate(spec, config, objective, d)
        evaluated += 1
        budget -= 1
        if cand.cost < best.cost and _analysis_clean(cand.graph):
            best = cand

    # Latency objective only: when the winner leaves the compute queue
    # idle, try re-listing its compute order.  Adopt only on a strict,
    # analysis-clean improvement.
    if (
        objective.metric == "latency"
        and best.sim is not None
        and best.sim.compute_idle_fraction > REORDER_IDLE_THRESHOLD
        and len(best.graph) <= MAX_REORDER_TASKS
    ):
        rdec = replace(best.decision, reordered=True)
        graph2, stats2 = decision_graph(spec, config, rdec, objective)
        if graph2 is not best.graph:
            sim2 = _simulated(graph2, machine_for(config, objective))
            COUNTERS["exact_evals"] += 1
            evaluated += 1
            if sim2.runtime_ms < best.cost and _analysis_clean(graph2):
                best = _Eval(rdec, graph2, stats2, sim2, sim2.runtime_ms)

    if best.decision == legacy_best.decision:
        reason = (
            f"hand-written {best.decision.base} stays optimal: none of the "
            f"{len(candidates)} candidates predicted or delivered a win at "
            f"{_fmt(best.cost, objective)}"
        )
    else:
        gain = (1.0 - best.cost / legacy_best.cost) * 100.0
        reason = (
            f"{best.decision.summary()} beats the best hand-written "
            f"dataflow ({legacy_best.decision.base}, "
            f"{_fmt(legacy_best.cost, objective)}) by {gain:.1f}% at "
            f"{_fmt(best.cost, objective)}"
        )

    record = ScheduleDecision(
        spec_name=spec.name,
        decision=best.decision,
        objective=objective,
        cost=best.cost,
        legacy_best=legacy_best.decision.base,
        legacy_best_cost=legacy_best.cost,
        considered=len(candidates),
        evaluated=evaluated,
        reason=reason,
    )
    graph = best.graph
    summary = _graph_summary(graph)
    return SolvedSchedule(
        record=record,
        digest=summary.digest,
        total_bytes=summary.total_bytes,
        data_bytes=summary.data_bytes,
        evk_bytes=summary.evk_bytes,
        mod_ops=summary.mod_ops,
        num_tasks=len(graph),
        peak_bytes=best.stats.peak_bytes,
        spill_stores=best.stats.spill_stores,
        reloads=best.stats.reloads,
        latency_ms=None if best.sim is None else best.sim.runtime_ms,
        compute_idle_fraction=(
            None if best.sim is None else best.sim.compute_idle_fraction
        ),
    )


def solve(spec: BenchmarkSpec, config: Optional[DataflowConfig] = None,
          objective: Optional[Objective] = None) -> SolvedSchedule:
    """Best schedule for one (spec, config, objective); cached everywhere.

    Lookup order: in-process memo, then the content-addressed disk cache,
    then a timed search.  Either way the result lands in the memo and —
    when a plan-level recording is active — in the current bundle.
    """
    config = config if config is not None else DataflowConfig()
    objective = objective if objective is not None else Objective()
    key = solve_key(spec, config, objective)
    hit = _MEMO.get(key)
    if hit is None:
        payload = disk_cache.load_json("sched", key)
        if payload is not None:
            try:
                hit = SolvedSchedule.from_dict(payload)
            except (KeyError, TypeError, ValueError):
                hit = None
            if hit is not None:
                COUNTERS["disk_hits"] += 1
                _MEMO[key] = hit
    if hit is None:
        COUNTERS["searches"] += 1
        started = time.perf_counter()
        hit = _search(spec, config, objective)
        COUNTERS["search_seconds"] += time.perf_counter() - started
        _MEMO[key] = hit
        disk_cache.store_json("sched", key, hit.to_dict())
    if _RECORDING is not None:
        _RECORDING[key] = hit.to_dict()
    return hit


def artifact(spec: BenchmarkSpec, config: DataflowConfig,
             objective: Objective,
             solved: SolvedSchedule) -> ScheduleArtifact:
    """Bundle a solve with its rebuilt graph for the ``sched`` passes."""
    graph, stats = solved_graph(spec, config, objective, solved)
    return ScheduleArtifact(spec=spec, config=config, solved=solved,
                            graph=graph, stats=stats)


# --------------------------------------------------------------------------
# Steady-state (pipeline) pricing
# --------------------------------------------------------------------------

def pipeline_marginal_ms(spec: BenchmarkSpec, config: DataflowConfig,
                         objective: Objective,
                         solved: SolvedSchedule) -> float:
    """Marginal latency of one more back-to-back HKS call, in ms.

    ``sim(2 calls) - sim(1 call)`` on the pipeline schedule, clamped to
    ``[max(compute busy, memory busy), single-call runtime]``: no
    schedule beats its busier queue, and pipelining an in-order queue
    pair never costs more than a cold call.  The lower clamp keeps
    folded busy/idle fractions consistent; the upper one preserves
    match-or-beat for multi-call phases.  Cached by schedule digest.
    """
    key = disk_cache.fingerprint(
        ("sched-marginal", SCHED_VERSION, solved.digest)
        + _spec_parts(spec) + _config_parts(config) + objective.key_parts()
    )
    hit = _MARGINAL.get(key)
    if hit is not None:
        return hit
    payload = disk_cache.load_json("sched-marginal", key)
    if isinstance(payload, dict) and "marginal_ms" in payload:
        value = float(payload["marginal_ms"])  # type: ignore[arg-type]
    else:
        machine = machine_for(config, objective)
        base = replace(solved.decision, reordered=False)
        graph1, _ = build_pipeline(spec, config, base, calls=1)
        graph2, _ = build_pipeline(spec, config, base, calls=2)
        sim1 = RPUSimulator(machine).simulate(graph1)
        sim2 = RPUSimulator(machine).simulate(graph2)
        marginal_s = min(
            max(sim2.runtime_s - sim1.runtime_s,
                sim1.compute_busy_s, sim1.memory_busy_s),
            sim1.runtime_s,
        )
        value = marginal_s * 1e3
        disk_cache.store_json("sched-marginal", key,
                              {"marginal_ms": value})
    _MARGINAL[key] = value
    return value


# --------------------------------------------------------------------------
# Plan-level bundles
# --------------------------------------------------------------------------

def bundle_key(plan_digest: str, objective: Objective) -> str:
    return disk_cache.fingerprint(
        ("sched-bundle", SCHED_VERSION, plan_digest) + objective.key_parts()
    )


def begin_recording() -> None:
    """Start collecting every subsequent solve into a bundle."""
    global _RECORDING
    _RECORDING = {}


def end_recording() -> Dict[str, Dict[str, object]]:
    global _RECORDING
    out = _RECORDING if _RECORDING is not None else {}
    _RECORDING = None
    return out


def store_bundle(key: str, entries: Dict[str, Dict[str, object]]) -> None:
    if entries:
        disk_cache.store_json("sched-bundle", key, {"entries": entries})


def preload_bundle(key: str) -> bool:
    """Seed the memo from a recorded bundle; one disk read per plan."""
    payload = disk_cache.load_json("sched-bundle", key)
    if not isinstance(payload, dict):
        return False
    entries = payload.get("entries")
    if not isinstance(entries, dict):
        return False
    try:
        for solve_k, data in entries.items():
            if solve_k not in _MEMO:
                _MEMO[solve_k] = SolvedSchedule.from_dict(data)
    except (KeyError, TypeError, ValueError):
        return False
    return True


# --------------------------------------------------------------------------
# Workload-level convenience (the `repro schedule` CLI)
# --------------------------------------------------------------------------

def solve_workload(workload: str,
                   config: Optional[DataflowConfig] = None,
                   objective: Optional[Objective] = None,
                   ) -> "List[Tuple[BenchmarkSpec, int, SolvedSchedule]]":
    """Solve every distinct HKS spec a workload touches.

    Returns ``(spec, hks_calls, solved)`` rows in first-appearance order,
    aggregating call counts across phases that share a spec.  Imports the
    API layer lazily (this module sits below it).
    """
    from repro.api.backends import _resolve_workload

    resolved = _resolve_workload(workload)
    config = config if config is not None else DataflowConfig()
    objective = objective if objective is not None else Objective()
    order: List[BenchmarkSpec] = []
    calls: Dict[BenchmarkSpec, int] = {}
    if isinstance(resolved, BenchmarkSpec):
        pairs = [(resolved, 1)]
    else:
        pairs = [(phase.spec, phase.hks_calls) for phase in resolved.phases]
    for spec, hks_calls in pairs:
        if spec not in calls:
            order.append(spec)
            calls[spec] = 0
        calls[spec] += hks_calls
    return [
        (spec, calls[spec], solve(spec, config, objective))
        for spec in order
    ]
