"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish parameter problems from scheduling or
simulation problems.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError):
    """Invalid or inconsistent CKKS / benchmark / machine parameters."""


class PrimeGenerationError(ReproError):
    """Could not find enough NTT-friendly primes with the requested shape."""


class EncodingError(ReproError):
    """A message cannot be encoded/decoded with the given parameters."""


class KeySwitchError(ReproError):
    """Inconsistent inputs to a key-switching operation."""


class ScheduleError(ReproError):
    """A dataflow scheduler produced or was asked for an invalid schedule."""


class MemoryModelError(ReproError):
    """On-chip memory bookkeeping violation (double free, overflow, ...)."""


class SimulationError(ReproError):
    """The RPU simulator detected an inconsistent task graph.

    When raised by the B1K VM the error is located: ``pc`` holds the
    failing program counter and ``instruction`` the offending
    :class:`~repro.rpu.program.AsmInstr` (both ``None`` for errors that
    have no single instruction, e.g. graph-level inconsistencies).
    """

    pc = None
    instruction = None


class NoiseBudgetError(ReproError):
    """A tracked ciphertext's noise budget is exhausted (strict policy).

    Raised at decryption when the session's
    :class:`~repro.ckks.noise.NoiseModel` bound says the error term has
    reached ``Q_level / 2`` — the decode would be unreliable.  Bootstrap
    earlier, spend fewer levels, or relax the session's
    ``noise_policy`` to ``"warn"``.
    """


class NoiseBudgetWarning(UserWarning):
    """Same condition as :class:`NoiseBudgetError`, under the default
    ``"warn"`` policy: decryption proceeds, but the result is suspect."""


class AnalysisError(ReproError):
    """Static analysis found error-severity diagnostics.

    ``report`` carries the full :class:`~repro.analysis.AnalysisReport`
    so callers can render or filter the individual diagnostics.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report
