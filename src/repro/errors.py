"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish parameter problems from scheduling or
simulation problems.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError):
    """Invalid or inconsistent CKKS / benchmark / machine parameters."""


class PrimeGenerationError(ReproError):
    """Could not find enough NTT-friendly primes with the requested shape."""


class EncodingError(ReproError):
    """A message cannot be encoded/decoded with the given parameters."""


class KeySwitchError(ReproError):
    """Inconsistent inputs to a key-switching operation."""


class ScheduleError(ReproError):
    """A dataflow scheduler produced or was asked for an invalid schedule."""


class MemoryModelError(ReproError):
    """On-chip memory bookkeeping violation (double free, overflow, ...)."""


class SimulationError(ReproError):
    """The RPU simulator detected an inconsistent task graph."""
