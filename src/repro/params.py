"""Benchmark parameter sets (paper Table III) and size accounting.

The five 128-bit-secure HKS parameterizations evaluated in the paper come
from BTS (ISCA'22), ARK (MICRO'22) and the DARPA DPRIVE program.  All sizes
below use the paper's convention of 8-byte machine words, under which our
closed-form ``evk`` size reproduces every row of Table III exactly
(1 MB = 2**20 bytes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ParameterError

#: Bytes per polynomial coefficient in the performance model (the paper's
#: machine word).  One "tower" is ``N * WORD_BYTES`` bytes.
WORD_BYTES = 8

MB = 1 << 20


@dataclass(frozen=True)
class BenchmarkSpec:
    """One HKS parameterization from Table III.

    Attributes
    ----------
    name:
        Benchmark id used throughout the paper (BTS1..3, ARK, DPRIVE).
    log_n:
        log2 of the polynomial ring degree.
    kl:
        Number of chain towers (the paper's ``l``) at the evaluated level.
    kp:
        Number of auxiliary towers (the paper's ``K``).
    dnum:
        Number of decomposition digits.
    """

    name: str
    log_n: int
    kl: int
    kp: int
    dnum: int

    def __post_init__(self) -> None:
        if self.kl < 1 or self.kp < 1 or self.dnum < 1:
            raise ParameterError("kl, kp and dnum must be positive")
        if self.dnum > self.kl:
            raise ParameterError(f"dnum={self.dnum} exceeds kl={self.kl}")

    # -- derived structure -------------------------------------------------------

    @property
    def n(self) -> int:
        return 1 << self.log_n

    @property
    def alpha(self) -> int:
        """Towers per (full) digit: ``ceil(kl / dnum)`` (paper Table I)."""
        return -(-self.kl // self.dnum)

    @property
    def digit_sizes(self) -> Tuple[int, ...]:
        """Tower count of each digit; the last digit may be partial."""
        sizes: List[int] = []
        remaining = self.kl
        for _ in range(self.dnum):
            take = min(self.alpha, remaining)
            if take <= 0:
                raise ParameterError(
                    f"{self.name}: dnum={self.dnum} leaves an empty digit"
                )
            sizes.append(take)
            remaining -= take
        if remaining:
            raise ParameterError(f"{self.name}: digit partition does not cover kl")
        return tuple(sizes)

    def beta(self, digit: int) -> int:
        """ModUp P2 output towers for ``digit``: ``kl + kp - alpha_d``."""
        return self.kl + self.kp - self.digit_sizes[digit]

    @property
    def extended_towers(self) -> int:
        """Towers of a polynomial over the extended basis: ``kl + kp``."""
        return self.kl + self.kp

    # -- sizes (bytes) --------------------------------------------------------------

    @property
    def tower_bytes(self) -> int:
        return self.n * WORD_BYTES

    @property
    def input_bytes(self) -> int:
        """The key-switched polynomial: ``kl`` towers."""
        return self.kl * self.tower_bytes

    @property
    def output_bytes(self) -> int:
        """Both ModDown results (C0new, C1new): ``2 * kl`` towers."""
        return 2 * self.kl * self.tower_bytes

    @property
    def evk_bytes(self) -> int:
        """``dnum x 2 x N x (l + K)`` words — Table III's "evk Size" column."""
        return self.dnum * 2 * self.extended_towers * self.tower_bytes

    @property
    def temp_bytes(self) -> int:
        """Peak intermediate footprint — Table III's "Temp data" column.

        ApplyKey outputs (``2*dnum*(l+K)`` towers) + extended digits
        (``dnum*(l+K)``) + INTT outputs (``kl``).  Matches the paper exactly
        for BTS1-3 and ARK; DPRIVE differs by <1% (the paper appears to pad
        the partial last digit to ``alpha``).
        """
        towers = (
            2 * self.dnum * self.extended_towers
            + self.dnum * self.extended_towers
            + self.kl
        )
        return towers * self.tower_bytes

    def describe(self) -> Dict[str, object]:
        """Row dictionary used by the Table III report."""
        return {
            "benchmark": self.name,
            "N": f"2^{self.log_n}",
            "kl": self.kl,
            "kp": self.kp,
            "dnum": self.dnum,
            "alpha": self.alpha,
            "evk_mb": self.evk_bytes / MB,
            "temp_mb": self.temp_bytes / MB,
        }


#: The five Table III benchmarks, in the paper's row order.
BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in (
        BenchmarkSpec("BTS1", log_n=17, kl=28, kp=28, dnum=1),
        BenchmarkSpec("BTS2", log_n=17, kl=40, kp=20, dnum=2),
        BenchmarkSpec("BTS3", log_n=17, kl=45, kp=15, dnum=3),
        BenchmarkSpec("ARK", log_n=16, kl=24, kp=6, dnum=4),
        BenchmarkSpec("DPRIVE", log_n=16, kl=26, kp=7, dnum=3),
    )
}


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a Table III benchmark by (case-insensitive) name."""
    key = name.upper()
    if key not in BENCHMARKS:
        raise ParameterError(
            f"unknown benchmark {name!r}; choose from {sorted(BENCHMARKS)}"
        )
    return BENCHMARKS[key]
