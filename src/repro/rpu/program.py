"""B1K assembly programs: instructions, registers, and the assembler.

The RPU front-end fetches scalar and vector instructions from an
instruction memory; this module models that layer concretely.  A
:class:`Program` is an ordered list of :class:`AsmInstr` with labels for
control flow; :func:`assemble` parses the small textual syntax used by
tests and examples::

    setvl   1024
    setmod  m0
    vld     v1, s0          ; load vector at address in s0
    vmmul   v2, v1, v1
    vst     v2, s1
    halt

Register files mirror the RPU (Section V-A): 64 vector registers
(``v0..v63``), 64 scalar registers (``s0..s63``) and a modulus register
file (``m0..m31``).  The VM in :mod:`repro.rpu.vm` executes programs
functionally, so kernels written against this ISA can be validated
bit-for-bit against the numpy reference implementations.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from repro.errors import ParameterError
from repro.rpu.isa import B1K_ISA

NUM_VREGS = 64
NUM_SREGS = 64
NUM_MREGS = 32

#: Pseudo-instructions the VM understands beyond the 28 ISA entries.
PSEUDO_OPS = frozenset({"halt", "label", "li"})

Operand = Union[str, int]


def is_vreg(op: Operand) -> bool:
    return isinstance(op, str) and re.fullmatch(r"v\d{1,2}", op) is not None


def is_sreg(op: Operand) -> bool:
    return isinstance(op, str) and re.fullmatch(r"s\d{1,2}", op) is not None


def is_mreg(op: Operand) -> bool:
    return isinstance(op, str) and re.fullmatch(r"m\d{1,2}", op) is not None


def reg_index(op: str) -> int:
    return int(op[1:])


@dataclass(frozen=True)
class AsmInstr:
    """One assembled instruction."""

    mnemonic: str
    operands: Tuple[Operand, ...] = ()

    def __post_init__(self) -> None:
        if self.mnemonic not in B1K_ISA and self.mnemonic not in PSEUDO_OPS:
            raise ParameterError(f"unknown mnemonic {self.mnemonic!r}")

    def render(self) -> str:
        if not self.operands:
            return self.mnemonic
        return f"{self.mnemonic} " + ", ".join(str(o) for o in self.operands)


class Program:
    """An ordered instruction list with named labels."""

    def __init__(self, name: str = ""):
        self.name = name
        self.instructions: List[AsmInstr] = []
        self.labels: Dict[str, int] = {}

    def emit(self, mnemonic: str, *operands: Operand) -> "Program":
        self.instructions.append(AsmInstr(mnemonic, tuple(operands)))
        return self

    def label(self, name: str) -> "Program":
        if name in self.labels:
            raise ParameterError(f"duplicate label {name!r}")
        self.labels[name] = len(self.instructions)
        return self

    def __len__(self) -> int:
        return len(self.instructions)

    def render(self) -> str:
        """Textual listing (labels interleaved at their positions)."""
        by_pos: Dict[int, List[str]] = {}
        for name, pos in self.labels.items():
            by_pos.setdefault(pos, []).append(name)
        lines: List[str] = []
        for i, instr in enumerate(self.instructions):
            for name in by_pos.get(i, ()):
                lines.append(f"{name}:")
            lines.append("    " + instr.render())
        for name in by_pos.get(len(self.instructions), ()):
            lines.append(f"{name}:")
        return "\n".join(lines)

    def validate(self) -> None:
        """Static checks: register ranges and branch targets exist."""
        for instr in self.instructions:
            for op in instr.operands:
                if is_vreg(op) and reg_index(op) >= NUM_VREGS:
                    raise ParameterError(f"vector register out of range: {op}")
                if is_sreg(op) and reg_index(op) >= NUM_SREGS:
                    raise ParameterError(f"scalar register out of range: {op}")
                if is_mreg(op) and reg_index(op) >= NUM_MREGS:
                    raise ParameterError(f"modulus register out of range: {op}")
            if instr.mnemonic in ("bnez", "jal"):
                target = instr.operands[-1]
                if not isinstance(target, str) or target not in self.labels:
                    raise ParameterError(
                        f"branch to unknown label {target!r} in {instr.render()}"
                    )


def assemble(source: str, name: str = "") -> Program:
    """Assemble the textual syntax into a :class:`Program`.

    Supports comments (``;`` or ``#``), ``label:`` lines, integer
    immediates, and register operands.
    """
    program = Program(name)
    for raw in source.splitlines():
        line = raw.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        if line.endswith(":"):
            program.label(line[:-1].strip())
            continue
        parts = line.replace(",", " ").split()
        mnemonic, ops = parts[0], parts[1:]
        operands: List[Operand] = []
        for op in ops:
            if re.fullmatch(r"-?\d+", op):
                operands.append(int(op))
            else:
                operands.append(op)
        program.emit(mnemonic, *operands)
    program.validate()
    return program
