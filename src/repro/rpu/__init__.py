"""RPU substrate: machine model, B1K ISA, kernels, and the task simulator."""

from repro.rpu.config import (BANDWIDTH_TECH, DEFAULT_KIND_EFFICIENCY, GB,
                              RPUConfig, standard_sweep)
from repro.rpu.isa import B1K_ISA, Instruction, InstructionMix, Pipe
from repro.rpu.kernels import (
    bconv_kernel_mix,
    graph_instruction_histogram,
    mulkey_kernel_mix,
    ntt_kernel_mix,
    pwise_kernel_mix,
    task_instruction_mix,
)
from repro.rpu.simulator import RPUSimulator, SimResult, TaskTiming, lower_bounds

__all__ = [
    "B1K_ISA",
    "DEFAULT_KIND_EFFICIENCY",
    "BANDWIDTH_TECH",
    "GB",
    "Instruction",
    "InstructionMix",
    "Pipe",
    "RPUConfig",
    "RPUSimulator",
    "SimResult",
    "TaskTiming",
    "bconv_kernel_mix",
    "graph_instruction_histogram",
    "lower_bounds",
    "mulkey_kernel_mix",
    "ntt_kernel_mix",
    "pwise_kernel_mix",
    "standard_sweep",
    "task_instruction_mix",
]
