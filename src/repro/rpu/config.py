"""RPU machine configuration (paper Section V-A).

The RPU (Ring Processing Unit, ISPASS'23) is a decoupled vector processor:
128 HPLEs (high-performance large-arithmetic-word engines) at 1.7 GHz, a
32 MB vector data memory, and a B1K ISA with 1K-element vectors.  The paper
sweeps three knobs, all exposed here: off-chip bandwidth, on-chip SRAM
split (data vs pre-loaded keys), and computational throughput (MODOPS).

Calibration: ``compute_efficiency`` scales peak MODOPS
(``hples * frequency``) down to the *effective* modular-op throughput.
The default 0.31 is calibrated so that ARK's OC dataflow saturates around
128 GB/s, the paper's "ARK saturation point" (Section VI-C); all other
results are produced with this single calibration constant.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional

from repro.errors import ParameterError
from repro.params import MB

GB = 10**9

#: Default relative kernel efficiencies (1.0 = the calibrated baseline).
#: NTT stages stress the shuffle crossbar and twiddle bandwidth, so real
#: implementations achieve somewhat lower lane utilization than the pure
#: MAC loops of BConv/ApplyKey; exposing the knob lets the ablation bench
#: quantify how much the dataflow conclusions depend on it (they don't).
DEFAULT_KIND_EFFICIENCY: Dict[str, float] = {
    "ntt": 1.0,
    "intt": 1.0,
    "bconv": 1.0,
    "mulkey": 1.0,
    "pwise": 1.0,
    "accum": 1.0,
}


@dataclass(frozen=True)
class RPUConfig:
    """One simulated RPU configuration.

    Attributes
    ----------
    hples:
        Number of modular lanes (128 in the paper's setup).
    frequency_hz:
        Core clock (1.7 GHz).
    vector_length:
        B1K vector length in elements (1024).
    bandwidth_bytes_per_s:
        Off-chip DRAM bandwidth (the paper sweeps 8 GB/s .. 1 TB/s).
    data_sram_bytes:
        On-chip memory available to inputs/intermediates (32 MB).
    key_sram_bytes:
        Dedicated key region; 360 MB holds the largest benchmark's evks
        (392 MB total = the paper's "large SRAM" scenario).  0 when keys
        are streamed.
    modops_scale:
        Computational-throughput multiplier (the paper's 1x..16x MODOPS).
    compute_efficiency:
        Effective fraction of peak lane throughput HKS kernels achieve.
    memory_latency_s:
        Fixed DRAM transaction latency added to each memory task.
    """

    hples: int = 128
    frequency_hz: float = 1.7e9
    vector_length: int = 1024
    bandwidth_bytes_per_s: float = 64 * GB
    data_sram_bytes: int = 32 * MB
    key_sram_bytes: int = 360 * MB
    modops_scale: float = 1.0
    compute_efficiency: float = 0.31
    memory_latency_s: float = 200e-9
    #: Optional per-kernel-class efficiency multipliers (task kind value ->
    #: factor on top of ``compute_efficiency``); None = all 1.0.
    kind_efficiency: Optional[Mapping[str, float]] = None

    def __post_init__(self) -> None:
        if self.hples < 1:
            raise ParameterError("need at least one HPLE")
        if self.bandwidth_bytes_per_s <= 0:
            raise ParameterError("bandwidth must be positive")
        if self.data_sram_bytes <= 0:
            raise ParameterError("data SRAM must be positive")
        if self.modops_scale <= 0 or self.compute_efficiency <= 0:
            raise ParameterError("throughput scales must be positive")

    @property
    def peak_modops_per_s(self) -> float:
        """Peak modular operations per second: one per HPLE per cycle."""
        return self.hples * self.frequency_hz * self.modops_scale

    @property
    def effective_modops_per_s(self) -> float:
        return self.peak_modops_per_s * self.compute_efficiency

    def kernel_efficiency(self, kind_value: str) -> float:
        """Per-kind multiplier on the effective throughput (default 1.0)."""
        if self.kind_efficiency is None:
            return 1.0
        factor = self.kind_efficiency.get(kind_value, 1.0)
        if factor <= 0:
            raise ParameterError(f"kernel efficiency for {kind_value!r} must be > 0")
        return factor

    def with_kind_efficiency(self, **factors: float) -> "RPUConfig":
        base = dict(self.kind_efficiency or {})
        base.update(factors)
        return replace(self, kind_efficiency=base)

    @property
    def bandwidth_gbs(self) -> float:
        return self.bandwidth_bytes_per_s / GB

    @property
    def evk_on_chip(self) -> bool:
        """Keys are pre-loaded when a key region exists."""
        return self.key_sram_bytes > 0

    @property
    def total_sram_bytes(self) -> int:
        return self.data_sram_bytes + self.key_sram_bytes

    # -- sweeps --------------------------------------------------------------------

    def with_bandwidth(self, gbs: float) -> "RPUConfig":
        return replace(self, bandwidth_bytes_per_s=gbs * GB)

    def with_modops(self, scale: float) -> "RPUConfig":
        return replace(self, modops_scale=scale)

    def with_streamed_keys(self) -> "RPUConfig":
        return replace(self, key_sram_bytes=0)

    def describe(self) -> Dict[str, object]:
        return {
            "hples": self.hples,
            "freq_GHz": self.frequency_hz / 1e9,
            "bandwidth_GBs": self.bandwidth_gbs,
            "data_sram_MB": self.data_sram_bytes / MB,
            "key_sram_MB": self.key_sram_bytes / MB,
            "modops_scale": self.modops_scale,
            "effective_GOPS": self.effective_modops_per_s / 1e9,
        }


#: Bandwidth points used in paper Figure 4 (GB/s), by memory technology.
BANDWIDTH_TECH = {
    "DDR4": (8.0, 12.8, 25.6),
    "DDR5": (32.0, 48.0, 64.0),
    "HBM2": (128.0, 256.0, 410.0),
    "HBM3": (512.0, 1000.0),
}


def standard_sweep(extended: bool = False) -> tuple:
    """The paper's bandwidth sweep: 8..64 GB/s, extended to 1 TB/s."""
    base = (8.0, 12.8, 16.0, 25.6, 32.0, 45.62, 48.0, 64.0)
    if not extended:
        return base
    return base + (128.0, 256.0, 410.0, 512.0, 1000.0)
