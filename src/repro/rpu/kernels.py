"""Lowering of HKS stage kernels to B1K instruction mixes.

Each task kind of :mod:`repro.core.taskgraph` maps to a vectorized kernel
on the RPU.  The counts follow the classic vector implementations:

* an N-point (i)NTT runs ``log2(N)`` stages of ``N/2`` butterflies with a
  lane shuffle between stages and one twiddle load per stage/block;
* BConv from ``a`` source towers is ``a`` broadcast-scaled MAC passes per
  output tower;
* ApplyKey / point-wise stages are streaming multiply(-accumulate) loops.

The mixes are used for reporting (instructions per HKS) and to derive the
frontend issue-pressure term in the simulator's cost model.
"""

from __future__ import annotations

from typing import Dict

from repro.core.taskgraph import Kind, Task
from repro.errors import ParameterError
from repro.rpu.isa import InstructionMix


def ntt_kernel_mix(n: int, vector_length: int) -> InstructionMix:
    """One tower (i)NTT: butterflies + per-stage shuffles and twiddles."""
    log_n = n.bit_length() - 1
    vectors = max(1, n // vector_length)
    mix = InstructionMix()
    mix.add("setmod")
    mix.add("vld", vectors)
    per_stage_bfly = max(1, n // 2 // vector_length)
    mix.add("vbfly", per_stage_bfly * log_n)
    mix.add("vswap", vectors * log_n)
    mix.add("ldtw", log_n)
    mix.add("bnez", log_n)
    mix.add("vst", vectors)
    return mix


def bconv_kernel_mix(n: int, source_towers: int, vector_length: int) -> InstructionMix:
    """One output tower of BConv: ``source_towers`` scaled MAC passes."""
    vectors = max(1, n // vector_length)
    mix = InstructionMix()
    mix.add("setmod")
    mix.add("vbcast", source_towers)
    mix.add("vld", vectors * source_towers)
    mix.add("vmmac", vectors * source_towers)
    mix.add("bnez", source_towers)
    mix.add("vst", vectors)
    return mix


def mulkey_kernel_mix(n: int, accumulate: bool, vector_length: int) -> InstructionMix:
    """ApplyKey for one tower: two key halves, optionally accumulating."""
    vectors = max(1, n // vector_length)
    mix = InstructionMix()
    mix.add("setmod")
    mix.add("vld", vectors)      # extended tower
    mix.add("vldk", 2 * vectors)  # both key halves
    if accumulate:
        mix.add("vmmac", 2 * vectors)
    else:
        mix.add("vmmul", 2 * vectors)
    mix.add("vst", 2 * vectors)
    return mix


def pwise_kernel_mix(n: int, vector_length: int) -> InstructionMix:
    """ModDown P4: subtract and scale one tower."""
    vectors = max(1, n // vector_length)
    mix = InstructionMix()
    mix.add("setmod")
    mix.add("vld", 2 * vectors)
    mix.add("vmsub", vectors)
    mix.add("vmscale", vectors)
    mix.add("vst", vectors)
    return mix


def task_instruction_mix(task: Task, n: int, vector_length: int) -> InstructionMix:
    """Instruction mix of one compute task (memory tasks lower to DMA)."""
    if task.kind in (Kind.LOAD, Kind.STORE):
        raise ParameterError("memory tasks are DMA transfers, not instructions")
    if task.kind is Kind.INTT or task.kind is Kind.NTT:
        towers = max(1, round(task.mod_muls / ((n // 2) * (n.bit_length() - 1))))
        mix = InstructionMix()
        for _ in range(towers):
            mix.merge(ntt_kernel_mix(n, vector_length))
        return mix
    if task.kind is Kind.BCONV:
        sources = max(1, task.mod_muls // n)
        return bconv_kernel_mix(n, sources, vector_length)
    if task.kind is Kind.MULKEY:
        return mulkey_kernel_mix(n, accumulate=task.mod_adds > 0,
                                 vector_length=vector_length)
    if task.kind in (Kind.PWISE, Kind.ACCUM):
        return pwise_kernel_mix(n, vector_length)
    raise ParameterError(f"no kernel lowering for task kind {task.kind}")


def graph_instruction_histogram(tasks, n: int, vector_length: int) -> Dict[str, int]:
    """Total instruction counts for all compute tasks of a schedule."""
    total = InstructionMix()
    for task in tasks:
        if task.kind not in (Kind.LOAD, Kind.STORE):
            total.merge(task_instruction_mix(task, n, vector_length))
    return dict(sorted(total.items()))
