"""Dual-queue decoupled RPU simulator.

Replays a :class:`~repro.core.taskgraph.TaskGraph` on the RPU performance
model: one in-order memory queue (DMA to/from DRAM) and one in-order
compute queue (HKS kernels on the HPLEs) execute in parallel; the task at
the head of each queue dispatches as soon as the resource is free and all
its dependencies have completed.  This is precisely the paper's simulation
framework (Section V-C): data prefetching and compute/memory overlap arise
from the decoupling, dependency stalls show up as idle time.

The cost model:

* memory task: ``latency + bytes / bandwidth``;
* compute task: ``modops / (HPLEs * f * scale * efficiency)``, floored by
  the frontend issue rate (one vector instruction per cycle).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.taskgraph import DATA_TAG, EVK_TAG, Queue, Task, TaskGraph
from repro.errors import SimulationError
from repro.rpu.config import RPUConfig


@dataclass(frozen=True)
class TaskTiming:
    """Start/end of one task in the simulated timeline."""

    index: int
    kind: str
    label: str
    start: float
    end: float


@dataclass
class SimResult:
    """Outcome of simulating one schedule on one configuration."""

    runtime_s: float
    compute_busy_s: float
    memory_busy_s: float
    total_bytes: int
    data_bytes: int
    evk_bytes: int
    total_modops: int
    num_tasks: int
    config: RPUConfig
    timeline: Optional[List[TaskTiming]] = None

    @property
    def runtime_ms(self) -> float:
        return self.runtime_s * 1e3

    @property
    def compute_idle_fraction(self) -> float:
        """Fraction of the makespan the compute pipes sit idle — the
        paper's "idle time" metric (e.g. 20.87% for DPRIVE OC at 12.8 GB/s)."""
        if self.runtime_s == 0:
            return 0.0
        return 1.0 - self.compute_busy_s / self.runtime_s

    @property
    def memory_idle_fraction(self) -> float:
        if self.runtime_s == 0:
            return 0.0
        return 1.0 - self.memory_busy_s / self.runtime_s

    @property
    def achieved_gbs(self) -> float:
        if self.runtime_s == 0:
            return 0.0
        return self.total_bytes / self.runtime_s / 1e9

    @property
    def achieved_gops(self) -> float:
        if self.runtime_s == 0:
            return 0.0
        return self.total_modops / self.runtime_s / 1e9


class RPUSimulator:
    """Event-driven replay of task graphs under one machine configuration."""

    def __init__(self, config: RPUConfig):
        self.config = config

    # -- cost model ----------------------------------------------------------------

    def task_duration(self, task: Task) -> float:
        cfg = self.config
        if task.queue is Queue.MEMORY:
            return cfg.memory_latency_s + task.bytes_moved / cfg.bandwidth_bytes_per_s
        throughput = cfg.effective_modops_per_s * cfg.kernel_efficiency(
            task.kind.value
        )
        modops_time = task.mod_ops / throughput
        # Frontend floor: at least one cycle per issued vector instruction.
        issue_time = (task.mod_ops / cfg.vector_length) / cfg.frequency_hz
        return max(modops_time, issue_time)

    # -- simulation -----------------------------------------------------------------

    def simulate(self, graph: TaskGraph, collect_trace: bool = False) -> SimResult:
        """Run both queues to completion; returns aggregate timing."""
        finish: List[Optional[float]] = [None] * len(graph.tasks)
        queues: Dict[Queue, deque] = {
            Queue.MEMORY: deque(graph.queue_tasks(Queue.MEMORY)),
            Queue.COMPUTE: deque(graph.queue_tasks(Queue.COMPUTE)),
        }
        free = {Queue.MEMORY: 0.0, Queue.COMPUTE: 0.0}
        busy = {Queue.MEMORY: 0.0, Queue.COMPUTE: 0.0}
        timeline: List[TaskTiming] = [] if collect_trace else None

        while queues[Queue.MEMORY] or queues[Queue.COMPUTE]:
            progressed = False
            for q in (Queue.MEMORY, Queue.COMPUTE):
                if not queues[q]:
                    continue
                head = queues[q][0]
                if any(finish[d] is None for d in head.deps):
                    continue
                deps_ready = max((finish[d] for d in head.deps), default=0.0)
                start = max(free[q], deps_ready)
                duration = self.task_duration(head)
                end = start + duration
                finish[head.index] = end
                free[q] = end
                busy[q] += duration
                queues[q].popleft()
                if collect_trace:
                    timeline.append(
                        TaskTiming(head.index, head.kind.value, head.label, start, end)
                    )
                progressed = True
            if not progressed:
                stuck = [queues[q][0].index for q in queues if queues[q]]
                raise SimulationError(
                    f"queues deadlocked at task(s) {stuck}: a queue head "
                    "depends on a later task in the other queue"
                )

        runtime = max(free.values())
        return SimResult(
            runtime_s=runtime,
            compute_busy_s=busy[Queue.COMPUTE],
            memory_busy_s=busy[Queue.MEMORY],
            total_bytes=graph.total_bytes(),
            data_bytes=graph.total_bytes(DATA_TAG),
            evk_bytes=graph.total_bytes(EVK_TAG),
            total_modops=graph.total_mod_ops(),
            num_tasks=len(graph.tasks),
            config=self.config,
            timeline=timeline,
        )


def lower_bounds(graph: TaskGraph, config: RPUConfig) -> Tuple[float, float]:
    """(memory-only, compute-only) runtime lower bounds for one schedule.

    Any simulated makespan must be at least the larger of the two; the gap
    to the simulated value is dependency stall.
    """
    sim = RPUSimulator(config)
    mem = sum(sim.task_duration(t) for t in graph.queue_tasks(Queue.MEMORY))
    comp = sum(sim.task_duration(t) for t in graph.queue_tasks(Queue.COMPUTE))
    return mem, comp
