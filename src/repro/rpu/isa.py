"""B1K instruction set model (paper Section V-A).

The RPU's B512 ISA was widened by the CiFlow authors to 1K-element vectors
("B1K") and "consists of 28 instructions ranging from general purpose
point-wise arithmetic operations to HE-specific shuffle instructions for
(i)NTT kernels".  We model those 28 instructions with their issue queue
(compute / shuffle / memory — the RPU's three decoupled queues) and a
per-element cost class, and provide per-kernel instruction mixes so that
schedules can be lowered to instruction counts for reporting and for the
frontend-pressure term of the cost model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ParameterError


class Pipe(enum.Enum):
    """Which RPU backend pipe executes an instruction."""

    COMPUTE = "compute"
    SHUFFLE = "shuffle"
    MEMORY = "memory"
    SCALAR = "scalar"


@dataclass(frozen=True)
class Instruction:
    """One B1K instruction."""

    mnemonic: str
    pipe: Pipe
    #: modular operations per vector element (0 for moves/shuffles).
    modops_per_element: int
    description: str


def _make_isa() -> Dict[str, Instruction]:
    defs: List[Tuple[str, Pipe, int, str]] = [
        # Vector memory (4)
        ("vld", Pipe.MEMORY, 0, "load vector register from vector data memory"),
        ("vst", Pipe.MEMORY, 0, "store vector register to vector data memory"),
        ("vldk", Pipe.MEMORY, 0, "load vector register from key memory"),
        ("vbcast", Pipe.MEMORY, 0, "broadcast scalar into a vector register"),
        # Vector modular arithmetic (8)
        ("vmadd", Pipe.COMPUTE, 1, "element-wise modular addition"),
        ("vmsub", Pipe.COMPUTE, 1, "element-wise modular subtraction"),
        ("vmmul", Pipe.COMPUTE, 1, "element-wise modular multiplication"),
        ("vmmac", Pipe.COMPUTE, 2, "element-wise modular multiply-accumulate"),
        ("vmneg", Pipe.COMPUTE, 1, "element-wise modular negation"),
        ("vmscale", Pipe.COMPUTE, 1, "vector-by-scalar modular multiply"),
        ("vbfly", Pipe.COMPUTE, 3, "radix-2 NTT butterfly (mul + add + sub)"),
        ("vmsel", Pipe.COMPUTE, 0, "element-wise select/merge"),
        # Shuffle / permutation for (i)NTT (6)
        ("vshuf", Pipe.SHUFFLE, 0, "arbitrary lane shuffle via crossbar"),
        ("vswap", Pipe.SHUFFLE, 0, "stride-swap halves (NTT stage exchange)"),
        ("vrev", Pipe.SHUFFLE, 0, "bit-reversal permutation"),
        ("vrotl", Pipe.SHUFFLE, 0, "rotate vector lanes left"),
        ("vsplit", Pipe.SHUFFLE, 0, "deinterleave even/odd lanes"),
        ("vmerge", Pipe.SHUFFLE, 0, "interleave two half-vectors"),
        # Twiddle / modulus control (4)
        ("ldtw", Pipe.MEMORY, 0, "load twiddle factors into a register slice"),
        ("setmod", Pipe.SCALAR, 0, "select the active RNS modulus register"),
        ("setvl", Pipe.SCALAR, 0, "set the active vector length"),
        ("fence", Pipe.SCALAR, 0, "order memory and compute queues"),
        # Scalar control (6)
        ("sadd", Pipe.SCALAR, 0, "scalar add"),
        ("smul", Pipe.SCALAR, 0, "scalar multiply"),
        ("sld", Pipe.SCALAR, 0, "scalar load"),
        ("sst", Pipe.SCALAR, 0, "scalar store"),
        ("bnez", Pipe.SCALAR, 0, "branch if non-zero (loop control)"),
        ("jal", Pipe.SCALAR, 0, "jump and link"),
    ]
    isa = {m: Instruction(m, p, ops, d) for m, p, ops, d in defs}
    if len(isa) != 28:
        raise ParameterError(f"B1K must have 28 instructions, got {len(isa)}")
    return isa


#: The 28-instruction B1K ISA, keyed by mnemonic.
B1K_ISA: Dict[str, Instruction] = _make_isa()


class InstructionMix(dict):
    """Multiset of instructions: mnemonic -> count."""

    def add(self, mnemonic: str, count: int = 1) -> "InstructionMix":
        if mnemonic not in B1K_ISA:
            raise ParameterError(f"unknown B1K instruction {mnemonic!r}")
        if count < 0:
            raise ParameterError("instruction counts cannot be negative")
        self[mnemonic] = self.get(mnemonic, 0) + count
        return self

    def merge(self, other: "InstructionMix") -> "InstructionMix":
        for mnemonic, count in other.items():
            self.add(mnemonic, count)
        return self

    def total(self) -> int:
        return sum(self.values())

    def per_pipe(self) -> Dict[Pipe, int]:
        counts: Dict[Pipe, int] = {p: 0 for p in Pipe}
        for mnemonic, count in self.items():
            counts[B1K_ISA[mnemonic].pipe] += count
        return counts

    def modops(self, vector_length: int) -> int:
        """Total modular operations this mix performs."""
        return sum(
            count * B1K_ISA[mnemonic].modops_per_element * vector_length
            for mnemonic, count in self.items()
        )
