"""B1K code generation for the HKS stage kernels.

Builds executable assembly programs (run on :class:`~repro.rpu.vm.B1KVM`)
for the kernels the dataflows schedule: the negacyclic (i)NTT, basis
conversion, and the point-wise ApplyKey / ModDown-finish stages.  The
builders also lay out all constants (twiddle vectors, stage permutations,
scaled hat factors) in VM memory, playing the role of the paper's
"software framework [that] generates instructions for each step ...
based on the B1K ISA" (Section V-C).

The generated programs are validated bit-for-bit against the numpy
reference kernels in the test suite — the ISA model is executable, not
decorative.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.ntt.modmath import inv_mod
from repro.ntt.transform import NTTContext, is_power_of_two
from repro.rpu.program import Program
from repro.rpu.vm import B1KVM

_INT64 = np.int64


@dataclass
class KernelImage:
    """A generated program plus its VM memory layout.

    Attributes
    ----------
    program:
        The assembled B1K program.
    input_address / output_address:
        Where the caller writes inputs and reads results.
    memory:
        Constant pool to preload (address -> array).
    moduli:
        Modulus register file contents (index -> modulus).
    """

    program: Program
    input_address: int
    output_address: int
    memory: Dict[int, np.ndarray]
    moduli: Dict[int, int]

    def load_into(self, vm: B1KVM) -> None:
        for index, q in self.moduli.items():
            vm.set_modulus_register(index, q)
        for address, values in self.memory.items():
            vm.write_memory(address, values)


class _Layout:
    """Bump allocator for the VM constant pool."""

    def __init__(self, base: int = 0):
        self.cursor = base
        self.pool: Dict[int, np.ndarray] = {}

    def place(self, values) -> int:
        arr = np.asarray(values, dtype=_INT64)
        addr = self.cursor
        self.pool[addr] = arr
        self.cursor += arr.size
        return addr

    def reserve(self, count: int) -> int:
        addr = self.cursor
        self.cursor += count
        return addr


def _finalize(program: Program) -> Program:
    """Validate an emitted kernel, and statically verify it when
    ``REPRO_VERIFY_CODEGEN`` is set (enabled in CI): every builder then
    proves def-before-use, modulus discipline and capacity before the
    kernel image is returned."""
    program.validate()
    if os.environ.get("REPRO_VERIFY_CODEGEN"):
        from repro.analysis import verify

        verify(program)
    return program


def _stage_tables(
    ctx: NTTContext, inverse: bool
) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """(gather, twiddle, scatter) per stage, in execution order.

    Gather moves the stage's butterfly uppers into lanes ``[0, n/2)`` and
    lowers into ``[n/2, n)`` (the ``vbfly`` bit-split layout); scatter is
    the inverse permutation.
    """
    n = ctx.n
    tables = []
    if not inverse:
        m, t = 1, n
        while m < n:
            t //= 2
            upper = np.concatenate(
                [np.arange(b * 2 * t, b * 2 * t + t) for b in range(m)]
            )
            gather = np.concatenate([upper, upper + t])
            tw = np.repeat(ctx._psi_rev[m : 2 * m], t)
            scatter = np.argsort(gather)
            tables.append((gather, tw, scatter))
            m *= 2
    else:
        t, m = 1, n
        while m > 1:
            h = m // 2
            upper = np.concatenate(
                [np.arange(b * 2 * t, b * 2 * t + t) for b in range(h)]
            )
            gather = np.concatenate([upper, upper + t])
            tw = np.repeat(ctx._psi_inv_rev[h : 2 * h], t)
            scatter = np.argsort(gather)
            tables.append((gather, tw, scatter))
            t *= 2
            m = h
    return tables


def build_ntt_kernel(n: int, q: int, inverse: bool = False) -> KernelImage:
    """Full-vector negacyclic (i)NTT as an executable B1K program.

    Requires ``n`` to equal the VM's vector length (single-register
    kernel; multi-vector NTTs tile this building block).
    """
    if not is_power_of_two(n):
        raise ParameterError(f"NTT size must be a power of two, got {n}")
    ctx = NTTContext(n, q)
    layout = _Layout()
    input_addr = layout.reserve(n)
    output_addr = input_addr  # transformed in place

    program = Program(("intt" if inverse else "ntt") + f"_{n}")
    program.emit("setvl", n)
    program.emit("setmod", "m0")
    # s0 holds the data address; v1 is the working vector.
    program.emit("li", "s0", input_addr)
    program.emit("vld", "v1", "s0")
    mode = 1 if inverse else 0
    for gather, tw, scatter in _stage_tables(ctx, inverse):
        g_addr = layout.place(gather)
        t_addr = layout.place(tw)
        s_addr = layout.place(scatter)
        program.emit("li", "s1", g_addr)
        program.emit("vld", "v2", "s1")          # gather indices
        program.emit("vshuf", "v3", "v1", "v2")  # bit-split layout
        program.emit("li", "s1", t_addr)
        program.emit("ldtw", "v4", "s1")         # stage twiddles
        program.emit("vbfly", "v5", "v3", "v4", mode)
        program.emit("li", "s1", s_addr)
        program.emit("vld", "v2", "s1")          # scatter indices
        program.emit("vshuf", "v1", "v5", "v2")
    if inverse:
        program.emit("li", "s2", inv_mod(n, q))
        program.emit("vmscale", "v1", "v1", "s2")
    program.emit("vst", "v1", "s0")
    program.emit("halt")
    _finalize(program)
    return KernelImage(
        program=program,
        input_address=input_addr,
        output_address=output_addr,
        memory=layout.pool,
        moduli={0: q},
    )


def build_bconv_kernel(source_moduli: List[int], target_modulus: int,
                       n: int) -> KernelImage:
    """One output tower of BConv as an executable B1K program.

    Phase 1 computes ``y_i = x_i * hat_inv_i (mod q_i)`` per source tower;
    phase 2 accumulates ``sum_i y_i * (Q/q_i mod t) (mod t)``.  ``n`` must
    equal the vector length (multi-vector towers tile this kernel).
    """
    from repro.rns.basis import RNSBasis

    source = RNSBasis(source_moduli)
    layout = _Layout()
    input_addrs = [layout.reserve(n) for _ in source_moduli]
    y_addrs = [layout.reserve(n) for _ in source_moduli]
    output_addr = layout.reserve(n)

    program = Program(f"bconv_{len(source_moduli)}to1_{n}")
    program.emit("setvl", n)
    # Phase 1: per-source scaling in the source modulus.
    for i, (addr, y_addr) in enumerate(zip(input_addrs, y_addrs)):
        program.emit("setmod", f"m{i}")
        program.emit("li", "s0", addr)
        program.emit("vld", "v1", "s0")
        program.emit("li", "s2", source.hat_invs[i])
        program.emit("vmscale", "v1", "v1", "s2")
        program.emit("li", "s0", y_addr)
        program.emit("vst", "v1", "s0")
    # Phase 2: accumulate in the target modulus.
    t_index = len(source_moduli)
    program.emit("setmod", f"m{t_index}")
    program.emit("li", "s3", 0)
    program.emit("vbcast", "v2", "s3")  # accumulator = 0
    for i, y_addr in enumerate(y_addrs):
        program.emit("li", "s0", y_addr)
        program.emit("vld", "v1", "s0")
        program.emit("li", "s2", source.hats[i] % target_modulus)
        program.emit("vbcast", "v3", "s2")
        program.emit("vmmac", "v2", "v1", "v3")
    program.emit("li", "s0", output_addr)
    program.emit("vst", "v2", "s0")
    program.emit("halt")
    _finalize(program)
    moduli = {i: q for i, q in enumerate(source_moduli)}
    moduli[t_index] = target_modulus
    return KernelImage(
        program=program,
        input_address=input_addrs[0],
        output_address=output_addr,
        memory=layout.pool,
        moduli=moduli,
    )


def build_mulkey_kernel(n: int, q: int, accumulate: bool) -> KernelImage:
    """ApplyKey for one tower/half: ``acc (+)= src * key (mod q)``.

    Memory layout: [src | key | acc]; a scalar loop tiles towers larger
    than the vector length.
    """
    layout = _Layout()
    src_addr = layout.reserve(n)
    key_addr = layout.reserve(n)
    acc_addr = layout.reserve(n)
    vl = min(n, 1024)
    if n % vl:
        raise ParameterError("tower size must be a multiple of the vector length")
    program = Program(f"mulkey_{n}")
    program.emit("setvl", vl)
    program.emit("setmod", "m0")
    program.emit("li", "s0", src_addr)
    program.emit("li", "s1", key_addr)
    program.emit("li", "s2", acc_addr)
    program.emit("li", "s3", n // vl)  # remaining vector count
    program.label("loop")
    program.emit("vld", "v1", "s0")
    program.emit("vldk", "v2", "s1")
    if accumulate:
        program.emit("vld", "v3", "s2")
        program.emit("vmmac", "v3", "v1", "v2")
    else:
        program.emit("vmmul", "v3", "v1", "v2")
    program.emit("vst", "v3", "s2")
    program.emit("sadd", "s0", "s0", vl)
    program.emit("sadd", "s1", "s1", vl)
    program.emit("sadd", "s2", "s2", vl)
    program.emit("sadd", "s3", "s3", -1)
    program.emit("bnez", "s3", "loop")
    program.emit("halt")
    _finalize(program)
    return KernelImage(
        program=program,
        input_address=src_addr,
        output_address=acc_addr,
        memory=layout.pool,
        moduli={0: q},
    )


def build_moddown_finish_kernel(n: int, q: int, p_inv: int) -> KernelImage:
    """ModDown P4 for one tower: ``out = (acc - conv) * P^-1 (mod q)``."""
    layout = _Layout()
    acc_addr = layout.reserve(n)
    conv_addr = layout.reserve(n)
    out_addr = layout.reserve(n)
    vl = min(n, 1024)
    if n % vl:
        raise ParameterError("tower size must be a multiple of the vector length")
    program = Program(f"mdfinish_{n}")
    program.emit("setvl", vl)
    program.emit("setmod", "m0")
    program.emit("li", "s0", acc_addr)
    program.emit("li", "s1", conv_addr)
    program.emit("li", "s2", out_addr)
    program.emit("li", "s4", p_inv)
    program.emit("li", "s3", n // vl)
    program.label("loop")
    program.emit("vld", "v1", "s0")
    program.emit("vld", "v2", "s1")
    program.emit("vmsub", "v3", "v1", "v2")
    program.emit("vmscale", "v3", "v3", "s4")
    program.emit("vst", "v3", "s2")
    program.emit("sadd", "s0", "s0", vl)
    program.emit("sadd", "s1", "s1", vl)
    program.emit("sadd", "s2", "s2", vl)
    program.emit("sadd", "s3", "s3", -1)
    program.emit("bnez", "s3", "loop")
    program.emit("halt")
    _finalize(program)
    return KernelImage(
        program=program,
        input_address=acc_addr,
        output_address=out_addr,
        memory=layout.pool,
        moduli={0: q},
    )


def run_kernel(image: KernelImage, vm: B1KVM, inputs: Dict[int, np.ndarray],
               output_count: int) -> np.ndarray:
    """Load constants + inputs, execute, and read back the result."""
    image.load_into(vm)
    for address, values in inputs.items():
        vm.write_memory(address, values)
    vm.run(image.program)
    return vm.read_memory(image.output_address, output_count)
