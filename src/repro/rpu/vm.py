"""Functional B1K virtual machine.

Executes :class:`~repro.rpu.program.Program` objects instruction by
instruction on real data: 64 vector registers of ``vector_length`` 64-bit
lanes, 64 scalar registers, a 32-entry modulus register file (the RPU's
dedicated RNS-modulus state) and a flat word-addressed data memory.  All
vector arithmetic is performed modulo the *active* modulus selected by
``setmod`` — exactly how the RPU threads the current RNS tower through
its HPLEs.

The VM exists so that kernels written in B1K assembly (see
:mod:`repro.rpu.codegen`) can be validated bit-for-bit against the numpy
reference implementations — closing the loop between the ISA-level model
and the functional layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import SimulationError
from repro.rpu.isa import B1K_ISA, Pipe
from repro.rpu.program import (
    NUM_MREGS,
    NUM_SREGS,
    NUM_VREGS,
    AsmInstr,
    Program,
    is_mreg,
    is_sreg,
    is_vreg,
    reg_index,
)

_INT64 = np.int64


@dataclass
class VMStats:
    """Dynamic execution statistics."""

    executed: int = 0
    per_mnemonic: Dict[str, int] = field(default_factory=dict)

    def count(self, mnemonic: str) -> None:
        self.executed += 1
        self.per_mnemonic[mnemonic] = self.per_mnemonic.get(mnemonic, 0) + 1

    def per_pipe(self) -> Dict[Pipe, int]:
        out = {p: 0 for p in Pipe}
        for mnemonic, count in self.per_mnemonic.items():
            if mnemonic in B1K_ISA:
                out[B1K_ISA[mnemonic].pipe] += count
        return out


class B1KVM:
    """A functional interpreter for B1K programs."""

    def __init__(self, vector_length: int = 1024, memory_words: int = 1 << 20):
        self.vl_max = vector_length
        self.vl = vector_length
        self.vregs = np.zeros((NUM_VREGS, vector_length), dtype=_INT64)
        self.sregs = [0] * NUM_SREGS
        self.mregs = [0] * NUM_MREGS
        self.memory = np.zeros(memory_words, dtype=_INT64)
        self.active_modulus = 0
        self.stats = VMStats()
        # Vector registers have no host-side write path, so a read
        # before any in-program write can only observe garbage; the VM
        # rejects it (and repro.analysis diagnoses it statically).
        self._vdef = [False] * NUM_VREGS

    # -- host-side setup -----------------------------------------------------------

    def set_modulus_register(self, index: int, q: int) -> None:
        self.mregs[index] = int(q)

    def write_memory(self, address: int, values) -> None:
        arr = np.asarray(values, dtype=_INT64)
        self.memory[address : address + arr.size] = arr

    def read_memory(self, address: int, count: int) -> np.ndarray:
        return self.memory[address : address + count].copy()

    def write_scalar(self, index: int, value: int) -> None:
        self.sregs[index] = int(value)

    # -- execution ------------------------------------------------------------------

    def run(self, program: Program, max_steps: int = 2_000_000) -> VMStats:
        program.validate()
        pc = 0
        steps = 0
        n = len(program.instructions)
        while pc < n:
            instr = program.instructions[pc]
            if steps >= max_steps:
                raise self._located(
                    SimulationError(
                        f"VM exceeded {max_steps} steps (runaway loop?)"
                    ),
                    pc, instr,
                )
            steps += 1
            self.stats.count(instr.mnemonic)
            next_pc = pc + 1
            try:
                jump = self._execute(instr, program, pc)
            except SimulationError as exc:
                raise self._located(exc, pc, instr) from None
            if jump is not None:
                next_pc = jump
            if instr.mnemonic == "halt":
                break
            pc = next_pc
        return self.stats

    @staticmethod
    def _located(exc: SimulationError, pc: int, instr: AsmInstr) -> SimulationError:
        """Attach the failing program counter and instruction to ``exc``."""
        if exc.pc is not None:  # already located (nested run)
            return exc
        located = SimulationError(f"pc={pc} `{instr.render()}`: {exc}")
        located.pc = pc
        located.instruction = instr
        return located

    # -- operand helpers --------------------------------------------------------------

    def _v(self, op) -> np.ndarray:
        if not is_vreg(op):
            raise SimulationError(f"expected vector register, got {op!r}")
        return self.vregs[reg_index(op)]

    def _vr(self, op) -> np.ndarray:
        """Read access: the register must have been written first."""
        arr = self._v(op)
        if not self._vdef[reg_index(op)]:
            raise SimulationError(
                f"read of uninitialized vector register {op}"
            )
        return arr

    def _vw(self, op) -> np.ndarray:
        """Write access: marks the register defined."""
        arr = self._v(op)
        self._vdef[reg_index(op)] = True
        return arr

    def _s(self, op) -> int:
        if isinstance(op, int):
            return op
        if not is_sreg(op):
            raise SimulationError(f"expected scalar register/immediate, got {op!r}")
        return self.sregs[reg_index(op)]

    def _q(self) -> int:
        if self.active_modulus < 2:
            raise SimulationError("no active modulus: execute setmod first")
        return self.active_modulus

    def _lanes(self) -> slice:
        return slice(0, self.vl)

    # -- semantics ----------------------------------------------------------------------

    def _execute(self, instr: AsmInstr, program: Program, pc: int) -> Optional[int]:
        m = instr.mnemonic
        ops = instr.operands
        lanes = self._lanes()

        if m == "halt" or m == "fence":
            return None
        if m == "setvl":
            vl = self._s(ops[0])
            if not 1 <= vl <= self.vl_max:
                raise SimulationError(f"setvl {vl} out of range 1..{self.vl_max}")
            self.vl = vl
            return None
        if m == "setmod":
            if not is_mreg(ops[0]):
                raise SimulationError(f"setmod expects a modulus register, got {ops[0]!r}")
            self.active_modulus = self.mregs[reg_index(ops[0])]
            return None
        if m == "li":
            self.sregs[reg_index(ops[0])] = self._s(ops[1])
            return None

        # -- scalar ALU / memory ------------------------------------------------
        if m == "sadd":
            self.sregs[reg_index(ops[0])] = self._s(ops[1]) + self._s(ops[2])
            return None
        if m == "smul":
            self.sregs[reg_index(ops[0])] = self._s(ops[1]) * self._s(ops[2])
            return None
        if m == "sld":
            self.sregs[reg_index(ops[0])] = int(self.memory[self._s(ops[1])])
            return None
        if m == "sst":
            self.memory[self._s(ops[1])] = self._s(ops[0])
            return None
        if m == "bnez":
            return program.labels[ops[1]] if self._s(ops[0]) != 0 else None
        if m == "jal":
            self.sregs[reg_index(ops[0])] = pc + 1
            return program.labels[ops[1]]

        # -- vector memory --------------------------------------------------------
        # Sources are read (and checked) before the destination is
        # marked written, so e.g. `vmadd v1, v1, v2` with v1 undefined
        # still faults on the read.
        if m in ("vld", "vldk", "ldtw"):
            addr = self._s(ops[1])
            self._vw(ops[0])[lanes] = self.memory[addr : addr + self.vl]
            return None
        if m == "vst":
            addr = self._s(ops[1])
            self.memory[addr : addr + self.vl] = self._vr(ops[0])[lanes]
            return None
        if m == "vbcast":
            self._vw(ops[0])[lanes] = self._s(ops[1])
            return None

        # -- vector modular arithmetic ----------------------------------------------
        q = None
        if m in ("vmadd", "vmsub", "vmmul", "vmmac", "vmneg", "vmscale", "vbfly"):
            q = self._q()
        if m == "vmadd":
            result = (self._vr(ops[1])[lanes] + self._vr(ops[2])[lanes]) % q
            self._vw(ops[0])[lanes] = result
            return None
        if m == "vmsub":
            result = (self._vr(ops[1])[lanes] - self._vr(ops[2])[lanes]) % q
            self._vw(ops[0])[lanes] = result
            return None
        if m == "vmmul":
            result = self._vr(ops[1])[lanes] * self._vr(ops[2])[lanes] % q
            self._vw(ops[0])[lanes] = result
            return None
        if m == "vmmac":
            acc = self._vr(ops[0])[lanes]
            self._vw(ops[0])[lanes] = (
                acc + self._vr(ops[1])[lanes] * self._vr(ops[2])[lanes] % q
            ) % q
            return None
        if m == "vmneg":
            src = self._vr(ops[1])[lanes]
            self._vw(ops[0])[lanes] = np.where(src == 0, src, q - src)
            return None
        if m == "vmscale":
            scalar = self._s(ops[2]) % q
            result = self._vr(ops[1])[lanes] * scalar % q
            self._vw(ops[0])[lanes] = result
            return None
        if m == "vmsel":
            mask = self._vr(ops[3])[lanes]
            result = np.where(
                mask != 0, self._vr(ops[1])[lanes], self._vr(ops[2])[lanes]
            )
            self._vw(ops[0])[lanes] = result
            return None
        if m == "vbfly":
            # Bit-split layout: lanes [0, vl/2) are the butterfly uppers,
            # lanes [vl/2, vl) the lowers; the twiddle sits in the first
            # vl/2 lanes of the twiddle register.  mode 0 = Cooley-Tukey
            # (forward), mode 1 = Gentleman-Sande (inverse).
            half = self.vl // 2
            src = self._vr(ops[1])
            tw = self._vr(ops[2])[:half]
            mode = self._s(ops[3]) if len(ops) > 3 else 0
            upper = src[:half].copy()
            lower = src[half : 2 * half].copy()
            dst = self._vw(ops[0])
            if mode == 0:
                scaled = lower * tw % q
                dst[:half] = (upper + scaled) % q
                dst[half : 2 * half] = (upper - scaled) % q
            else:
                dst[:half] = (upper + lower) % q
                dst[half : 2 * half] = (upper - lower) % q * tw % q
            return None

        # -- shuffles ----------------------------------------------------------------
        if m == "vshuf":
            idx = self._vr(ops[2])[lanes]
            if idx.min() < 0 or idx.max() >= self.vl:
                raise SimulationError("vshuf index out of range")
            result = self._vr(ops[1])[lanes][idx]
            self._vw(ops[0])[lanes] = result
            return None
        if m == "vswap":
            t = self._s(ops[2])
            if t <= 0 or self.vl % (2 * t) != 0:
                raise SimulationError(f"vswap width {t} incompatible with vl {self.vl}")
            src = self._vr(ops[1])[lanes].reshape(-1, 2, t)
            self._vw(ops[0])[lanes] = src[:, ::-1, :].reshape(-1)
            return None
        if m == "vrev":
            from repro.ntt.transform import bit_reverse_indices

            rev = bit_reverse_indices(self.vl)
            result = self._vr(ops[1])[lanes][rev]
            self._vw(ops[0])[lanes] = result
            return None
        if m == "vrotl":
            k = self._s(ops[2]) % self.vl
            result = np.roll(self._vr(ops[1])[lanes], -k)
            self._vw(ops[0])[lanes] = result
            return None
        if m == "vsplit":
            src = self._vr(ops[2])[lanes]
            half = self.vl // 2
            self._vw(ops[0])[:half] = src[0::2]
            self._vw(ops[1])[:half] = src[1::2]
            return None
        if m == "vmerge":
            half = self.vl // 2
            merged = np.empty(self.vl, dtype=_INT64)
            merged[0::2] = self._vr(ops[1])[:half]
            merged[1::2] = self._vr(ops[2])[:half]
            self._vw(ops[0])[lanes] = merged
            return None

        raise SimulationError(f"VM has no semantics for {m!r}")
