"""Human-readable reports from simulation timelines.

Turns a traced :class:`~repro.rpu.simulator.SimResult` into text: a
per-kind time breakdown (where do the cycles go?) and an ASCII Gantt
strip showing the memory/compute overlap that the decoupled queues
achieve — the visual version of the paper's idle-time numbers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.taskgraph import Kind
from repro.errors import SimulationError
from repro.rpu.simulator import SimResult

_MEMORY_KINDS = {Kind.LOAD.value, Kind.STORE.value}


def kind_breakdown(result: SimResult) -> List[Dict[str, object]]:
    """Busy time and task count per task kind, sorted by time."""
    if result.timeline is None:
        raise SimulationError("simulate with collect_trace=True first")
    totals: Dict[str, Tuple[float, int]] = {}
    for t in result.timeline:
        busy, count = totals.get(t.kind, (0.0, 0))
        totals[t.kind] = (busy + (t.end - t.start), count + 1)
    rows = []
    for kind, (busy, count) in sorted(totals.items(), key=lambda kv: -kv[1][0]):
        rows.append(
            {
                "kind": kind,
                "tasks": count,
                "busy_ms": round(busy * 1e3, 3),
                "share_%": round(100 * busy / result.runtime_s, 1),
            }
        )
    return rows


def occupancy_strip(result: SimResult, width: int = 72) -> str:
    """Two-row ASCII strip: when each resource was busy across the run.

    ``#`` marks a busy time bucket, ``.`` an idle one.  A mostly-idle
    compute row at low bandwidth is MP's signature; OC's rows are dense.
    """
    if result.timeline is None:
        raise SimulationError("simulate with collect_trace=True first")
    if result.runtime_s <= 0:
        raise SimulationError("empty timeline")
    buckets = {"memory": [0.0] * width, "compute": [0.0] * width}
    scale = width / result.runtime_s
    for t in result.timeline:
        row = "memory" if t.kind in _MEMORY_KINDS else "compute"
        lo = int(t.start * scale)
        hi = min(width - 1, int(t.end * scale))
        for b in range(lo, hi + 1):
            span = min(t.end, (b + 1) / scale) - max(t.start, b / scale)
            buckets[row][b] += max(span, 0.0)
    bucket_span = result.runtime_s / width
    lines = []
    for row in ("memory", "compute"):
        cells = "".join(
            "#" if busy > 0.5 * bucket_span else
            "+" if busy > 0.05 * bucket_span else "."
            for busy in buckets[row]
        )
        lines.append(f"{row:8} |{cells}|")
    lines.append(
        f"{'':8}  0 ms{'':{max(width - 18, 1)}}{result.runtime_ms:.2f} ms"
    )
    return "\n".join(lines)


def render_trace_summary(result: SimResult, title: str = "") -> str:
    """Breakdown table + occupancy strip in one report string."""
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"runtime {result.runtime_ms:.2f} ms | compute idle "
        f"{result.compute_idle_fraction * 100:.1f}% | memory idle "
        f"{result.memory_idle_fraction * 100:.1f}% | "
        f"{result.achieved_gbs:.1f} GB/s | {result.achieved_gops:.1f} GOPS"
    )
    lines.append("")
    lines.append(f"{'kind':8} {'tasks':>6} {'busy_ms':>9} {'share_%':>8}")
    for row in kind_breakdown(result):
        lines.append(
            f"{row['kind']:8} {row['tasks']:>6} {row['busy_ms']:>9} "
            f"{row['share_%']:>8}"
        )
    lines.append("")
    lines.append(occupancy_strip(result))
    return "\n".join(lines)
