"""Encrypted linear transforms via diagonal decomposition + BSGS.

Computes ``W @ z`` for an encrypted slot vector ``z`` using the classic
diagonal method: ``W @ z = sum_d diag_d(W) * rot(z, d)``, organized
baby-step/giant-step so only ``O(sqrt(D))`` distinct rotations are needed.
This is how fully-connected layers and convolutions run under CKKS — the
workload whose thousands of rotations make hybrid key switching the
bottleneck the paper attacks (ResNet-20: 3,306 rotations, ~70% HKS time).

The baby steps are computed with *hoisting* (one shared ModUp), composing
the two classical optimizations this library implements.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.ckks.encoding import Encoder
from repro.ckks.encrypt import Ciphertext
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeyGenerator, KeySwitchKey
from repro.errors import EncodingError, ParameterError


class LinearTransform:
    """A plaintext matrix prepared for encrypted evaluation.

    Parameters
    ----------
    encoder:
        Encoder bound to the evaluation context.
    matrix:
        Real/complex square matrix of size ``<= num_slots``; it acts on
        the first ``dim`` slots (cyclically within that block requires
        ``dim`` to divide the slot count).
    """

    def __init__(self, encoder: Encoder, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=np.complex128)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ParameterError("linear transform needs a square matrix")
        dim = matrix.shape[0]
        slots = encoder.num_slots
        if dim > slots or slots % dim != 0:
            raise ParameterError(
                f"matrix dim {dim} must divide the slot count {slots}"
            )
        self.encoder = encoder
        self.dim = dim
        self.matrix = matrix
        self.baby = int(math.ceil(math.sqrt(dim)))
        self.giant = int(math.ceil(dim / self.baby))
        #: encoded, pre-rotated diagonals keyed by (giant i, baby j).
        self._diagonals: Dict[tuple, Optional[np.ndarray]] = {}
        #: plaintext encodings of the diagonals keyed by (i, j, level) — a
        #: transform evaluated repeatedly at one level (every bootstrap
        #: call, every BSGS giant step) encodes each diagonal only once.
        self._encoded: Dict[tuple, "object"] = {}
        self._prepare()

    def _diagonal(self, d: int) -> np.ndarray:
        """Generalized diagonal d of the matrix, tiled across all slots."""
        idx = np.arange(self.dim)
        diag = self.matrix[idx, (idx + d) % self.dim]
        reps = self.encoder.num_slots // self.dim
        return np.tile(diag, reps)

    def _prepare(self) -> None:
        for i in range(self.giant):
            for j in range(self.baby):
                d = i * self.baby + j
                if d >= self.dim:
                    continue
                diag = self._diagonal(d)
                if not np.any(diag):
                    self._diagonals[(i, j)] = None  # skip zero diagonals
                    continue
                # BSGS pre-rotation: giant step i rotates by baby*i after
                # the plaintext product, so the diagonal is pre-rotated back.
                self._diagonals[(i, j)] = np.roll(diag, self.baby * i)

    def _encoded_diagonal(self, i: int, j: int, level: int):
        """Cached encoding of diagonal ``(i, j)`` at ``level`` (scale Delta)."""
        key = (i, j, level)
        pt = self._encoded.get(key)
        if pt is None:
            pt = self.encoder.encode(self._diagonals[(i, j)], level=level)
            self._encoded[key] = pt
        return pt

    def required_rotations(self) -> Dict[str, List[int]]:
        """Baby and giant rotation steps actually used by non-zero diagonals.

        Baby steps a zero diagonal would have used are pruned — for sparse
        matrices (e.g. the factored DFT stages of bootstrapping, three
        diagonals each) this is the difference between ``O(sqrt(D))`` and
        ``O(1)`` rotations per stage.
        """
        baby = sorted({
            j
            for (i, j), diag in self._diagonals.items()
            if diag is not None and j > 0
        })
        giant = [
            self.baby * i
            for i in range(1, self.giant)
            if any(self._diagonals.get((i, j)) is not None for j in range(self.baby))
        ]
        return {"baby": baby, "giant": giant}

    def evaluate(
        self,
        evaluator: Evaluator,
        ct: Ciphertext,
        baby_keys: Dict[int, KeySwitchKey],
        giant_keys: Dict[int, KeySwitchKey],
        hoist: bool = True,
    ) -> Ciphertext:
        """Encrypted ``W @ z``; one rescale is applied at the end."""
        needed = self.required_rotations()
        missing = [s for s in needed["baby"] if s not in baby_keys]
        missing += [s for s in needed["giant"] if s not in giant_keys]
        if missing:
            raise ParameterError(f"missing rotation keys for steps {missing}")

        # Baby steps: rot(z, j) for j in [0, baby); hoisting shares ModUp.
        baby_cts: Dict[int, Ciphertext] = {0: ct}
        steps = [j for j in needed["baby"]]
        if steps:
            if hoist:
                baby_cts.update(
                    evaluator.hoisted_rotations(
                        ct, {j: baby_keys[j] for j in steps}
                    )
                )
            else:
                for j in steps:
                    baby_cts[j] = evaluator.rotate(ct, j, baby_keys[j])

        # Giant steps: accumulate sum_j diag * rot_j, rotate by baby*i, sum.
        total: Optional[Ciphertext] = None
        for i in range(self.giant):
            inner: Optional[Ciphertext] = None
            for j in range(self.baby):
                diag = self._diagonals.get((i, j))
                if diag is None:
                    continue
                pt = self._encoded_diagonal(i, j, ct.level)
                term = evaluator.multiply_plain(baby_cts[j], pt)
                inner = term if inner is None else evaluator.add(inner, term)
            if inner is None:
                continue
            if i > 0:
                inner = evaluator.rotate(inner, self.baby * i, giant_keys[self.baby * i])
            total = inner if total is None else evaluator.add(total, inner)
        if total is None:
            raise EncodingError("matrix is identically zero")
        return evaluator.rescale(total)


def generate_bsgs_keys(
    keygen: KeyGenerator, transform: LinearTransform
) -> tuple:
    """Convenience: rotation keys for all required baby and giant steps."""
    needed = transform.required_rotations()
    baby = {j: keygen.rotation_key(j) for j in needed["baby"]}
    giant = {s: keygen.rotation_key(s) for s in needed["giant"]}
    return baby, giant
