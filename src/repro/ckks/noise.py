"""Noise tracking: heuristic bounds and exact measurement.

CKKS correctness is a noise budget: every operation grows the error term
and decryption fails once it reaches ``Q/2``.  :class:`NoiseModel` tracks
a conservative ``log2`` bound through the operation DAG using standard
canonical-embedding heuristics; :func:`measure_noise` computes the *actual*
coefficient-domain error of a ciphertext against its intended plaintext,
so the tests can assert the model really is an upper bound (and not a
vacuous one).

The hybrid key-switching noise term here is the quantity the paper's
``P`` modulus exists to suppress: ``B_ks ~ dnum * alpha * q * N * sigma / P``
— undersized ``P`` (fewer ``kp`` towers than ``alpha``) makes it blow up,
which is why Table III pairs ``kp`` with ``alpha``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.ckks.context import CKKSContext
from repro.ckks.encoding import Encoder
from repro.ckks.encrypt import Ciphertext
from repro.ckks.keys import SecretKey
from repro.errors import ParameterError


@dataclass(frozen=True)
class NoiseEstimate:
    """A tracked bound: ``log2`` of the coefficient-domain error."""

    log2_noise: float
    level: int
    scale: float

    def budget_bits(self, context: CKKSContext) -> float:
        """Remaining bits before the error reaches ``Q_level / 2``."""
        log_q = math.log2(context.level_basis(self.level).product)
        return log_q - 1 - self.log2_noise


class NoiseModel:
    """Forward noise propagation with standard heuristic bounds."""

    def __init__(self, context: CKKSContext):
        self.context = context
        p = context.params
        self._sigma = p.error_std
        self._sqrt_n = math.sqrt(p.n)

    # -- sources --------------------------------------------------------------

    def fresh(self) -> NoiseEstimate:
        """Public-key encryption noise: ~ sigma * (sqrt-N scaled) terms."""
        bound = 16.0 * self._sigma * self._sqrt_n
        return NoiseEstimate(
            math.log2(bound), self.context.params.max_level, self.context.params.scale
        )

    def key_switch_bits(self, level: int) -> float:
        """log2 of the additive hybrid key-switching noise after ModDown."""
        p = self.context.params
        alpha = p.alpha
        dnum = self.context.num_digits(level)
        q_max = max(self.context.q_basis.moduli[: level + 1])
        p_prod = self.context.p_basis.product
        bound = (
            dnum * (alpha + 1) * q_max * self._sqrt_n * self._sigma * 8.0 / p_prod
        )
        # ModDown's own rounding adds a small sqrt(N)-sized term.
        return math.log2(max(bound, 1.0) + 4.0 * self._sqrt_n)

    # -- operations --------------------------------------------------------------

    def add(self, a: NoiseEstimate, b: NoiseEstimate) -> NoiseEstimate:
        if a.level != b.level:
            raise ParameterError("noise add: level mismatch")
        return NoiseEstimate(max(a.log2_noise, b.log2_noise) + 1.0, a.level, a.scale)

    def multiply_plain(self, a: NoiseEstimate, plain_infinity: float = 1.0,
                       plain_scale: float | None = None) -> NoiseEstimate:
        scale = plain_scale or self.context.params.scale
        grown = a.log2_noise + math.log2(scale * max(plain_infinity, 1e-9)) \
            + 0.5 * math.log2(self.context.params.n)
        return NoiseEstimate(grown, a.level, a.scale * scale)

    def multiply(self, a: NoiseEstimate, b: NoiseEstimate,
                 msg_a: float = 1.0, msg_b: float = 1.0) -> NoiseEstimate:
        if a.level != b.level:
            raise ParameterError("noise multiply: level mismatch")
        half_log_n = 0.5 * math.log2(self.context.params.n)
        cross_a = a.log2_noise + math.log2(b.scale * max(msg_b, 1e-9)) + half_log_n
        cross_b = b.log2_noise + math.log2(a.scale * max(msg_a, 1e-9)) + half_log_n
        grown = max(cross_a, cross_b) + 1.0
        grown = max(grown, self.key_switch_bits(a.level))
        return NoiseEstimate(grown + 1.0, a.level, a.scale * b.scale)

    def rescale(self, a: NoiseEstimate) -> NoiseEstimate:
        if a.level == 0:
            raise ParameterError("cannot rescale at level 0")
        q_last = self.context.q_basis.moduli[a.level]
        reduced = a.log2_noise - math.log2(q_last)
        rounding = math.log2(4.0 * self._sqrt_n)
        return NoiseEstimate(
            max(reduced, rounding) + 0.5, a.level - 1, a.scale / q_last
        )

    def rotate(self, a: NoiseEstimate) -> NoiseEstimate:
        grown = max(a.log2_noise, self.key_switch_bits(a.level)) + 1.0
        return NoiseEstimate(grown, a.level, a.scale)


def measure_noise(
    context: CKKSContext,
    secret_key: SecretKey,
    ct: Ciphertext,
    expected_slots: np.ndarray,
) -> float:
    """Exact ``log2`` coefficient error of ``ct`` vs the intended message.

    Decrypts, re-encodes ``expected_slots`` at the ciphertext's scale and
    level, and returns ``log2`` of the max absolute coefficient difference
    (composed through CRT, so this sees the true integer error).
    """
    encoder = Encoder(context)
    decrypted = ct.c0 + ct.c1 * secret_key.poly(ct.c0.basis)
    expected = encoder.encode(expected_slots, level=ct.level, scale=ct.scale)
    diff = (decrypted - expected).to_coeff()
    ints = diff.basis.compose(diff.data, centered=True)
    worst = max(abs(int(v)) for v in ints)
    return math.log2(worst) if worst else 0.0
