"""Full-RNS CKKS scheme with hybrid key switching (the HKS substrate)."""

from repro.ckks.context import CKKSContext, CKKSParams
from repro.ckks.encoding import Encoder
from repro.ckks.encrypt import Ciphertext, Decryptor, Encryptor
from repro.ckks.evaluator import Evaluator
from repro.ckks.hoisting import (
    hoisted_rotations,
    hoisting_savings,
    power_of_two_steps,
    rotate_arbitrary,
)
from repro.ckks.keys import (
    KeyGenerator,
    KeySwitchKey,
    PublicKey,
    SecretKey,
    rotation_galois_element,
)
from repro.ckks.keyswitch import apply_evk, key_switch, mod_down, mod_up_digit
from repro.ckks.bootstrap import (
    BootstrapConfig,
    BootstrapKeys,
    BootstrapPlan,
    Bootstrapper,
    CountingEvaluator,
    generate_bootstrap_keys,
    mod_raise,
)
from repro.ckks.linear import LinearTransform, generate_bsgs_keys
from repro.ckks.noise import NoiseEstimate, NoiseModel, measure_noise
from repro.ckks.polyeval import (
    evaluate_chebyshev,
    evaluate_horner,
    evaluate_power_basis,
)

__all__ = [
    "BootstrapConfig",
    "BootstrapKeys",
    "BootstrapPlan",
    "Bootstrapper",
    "CountingEvaluator",
    "evaluate_chebyshev",
    "generate_bootstrap_keys",
    "mod_raise",
    "LinearTransform",
    "NoiseEstimate",
    "NoiseModel",
    "evaluate_horner",
    "evaluate_power_basis",
    "generate_bsgs_keys",
    "hoisted_rotations",
    "hoisting_savings",
    "measure_noise",
    "power_of_two_steps",
    "rotate_arbitrary",
    "CKKSContext",
    "CKKSParams",
    "Ciphertext",
    "Decryptor",
    "Encoder",
    "Encryptor",
    "Evaluator",
    "KeyGenerator",
    "KeySwitchKey",
    "PublicKey",
    "SecretKey",
    "apply_evk",
    "key_switch",
    "mod_down",
    "mod_up_digit",
    "rotation_galois_element",
]
