"""CKKS bootstrapping: ModRaise -> CoeffToSlot -> EvalMod -> SlotToCoeff.

The subsystem that turns the library's levelled CKKS scheme into an
unlimited-depth one — and the workload class (thousands of rotations and
relinearizations, all hybrid key switches) the paper's accelerator
analysis exists for.  See :mod:`repro.ckks.bootstrap.pipeline` for the
circuit, :mod:`repro.ckks.bootstrap.plan` for the op accounting that
feeds the ``BOOT`` performance workload.
"""

from repro.ckks.bootstrap.dft import (
    coeff_to_slot_matrices,
    grouped_diagonal_sets,
    slot_to_coeff_matrices,
    special_dft_matrix,
)
from repro.ckks.bootstrap.evalmod import (
    choose_sine_degree,
    sine_chebyshev_coeffs,
    sine_fit_error,
)
from repro.ckks.bootstrap.instrument import CountingEvaluator
from repro.ckks.bootstrap.modraise import mod_raise, overflow_bound
from repro.ckks.bootstrap.pipeline import (
    BootstrapConfig,
    BootstrapKeys,
    Bootstrapper,
    generate_bootstrap_keys,
)
from repro.ckks.bootstrap.plan import BootstrapPlan, OpCounts

__all__ = [
    "BootstrapConfig",
    "BootstrapKeys",
    "BootstrapPlan",
    "Bootstrapper",
    "CountingEvaluator",
    "OpCounts",
    "choose_sine_degree",
    "coeff_to_slot_matrices",
    "generate_bootstrap_keys",
    "grouped_diagonal_sets",
    "mod_raise",
    "overflow_bound",
    "sine_chebyshev_coeffs",
    "sine_fit_error",
    "slot_to_coeff_matrices",
    "special_dft_matrix",
]
