"""Structural op accounting for the bootstrap circuit.

A :class:`BootstrapPlan` knows the *shape* of the pipeline — the diagonal
sets of every grouped DFT factor and the Chebyshev ladder of EvalMod —
and derives the homomorphic operation counts from it without touching a
ciphertext.  The same arithmetic serves two masters:

* the functional pipeline (:mod:`repro.ckks.bootstrap.pipeline`) builds a
  plan from its materialized matrices, and the tests assert the derived
  counts match an instrumented run of the real circuit op-for-op;
* the ``BOOT`` accelerator workload (:mod:`repro.workloads`) builds a
  plan at paper scale (``N = 2^16``, 32k slots) — far too large to
  execute functionally — and feeds the counts to the dataflow/RPU
  backends, so ``estimate("BOOT")`` prices exactly the circuit the
  functional layer runs.

Every rotation, conjugation and ciphertext multiply is one hybrid key
switch — ``hks_calls`` is the number the paper's analysis revolves around
(bootstrapping is *the* HKS-dominated workload).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, sqrt
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.ckks.bootstrap.dft import grouped_diagonal_sets
from repro.ckks.polyeval import chebyshev_ladder_order
from repro.errors import ParameterError


@dataclass(frozen=True)
class OpCounts:
    """Homomorphic operation counts of (part of) a circuit."""

    rotations: int = 0
    conjugations: int = 0
    ct_multiplies: int = 0
    pt_multiplies: int = 0
    additions: int = 0
    rescales: int = 0

    @property
    def hks_calls(self) -> int:
        """Hybrid key switches: every rotation, conjugation and multiply."""
        return self.rotations + self.conjugations + self.ct_multiplies

    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            self.rotations + other.rotations,
            self.conjugations + other.conjugations,
            self.ct_multiplies + other.ct_multiplies,
            self.pt_multiplies + other.pt_multiplies,
            self.additions + other.additions,
            self.rescales + other.rescales,
        )

    def scaled(self, factor: int) -> "OpCounts":
        return OpCounts(*(factor * v for v in (
            self.rotations, self.conjugations, self.ct_multiplies,
            self.pt_multiplies, self.additions, self.rescales,
        )))

    def as_dict(self) -> Dict[str, int]:
        return {
            "rotations": self.rotations,
            "conjugations": self.conjugations,
            "ct_multiplies": self.ct_multiplies,
            "pt_multiplies": self.pt_multiplies,
            "additions": self.additions,
            "rescales": self.rescales,
            "hks_calls": self.hks_calls,
        }


def bsgs_rotation_steps(dim: int,
                        diagonals: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Baby and giant rotation steps of a BSGS pass over ``diagonals``.

    Mirrors :meth:`repro.ckks.linear.LinearTransform.required_rotations`
    exactly: diagonal ``d`` decomposes as ``i*ceil(sqrt(dim)) + j``; zero
    baby/giant components cost nothing.
    """
    baby_size = int(ceil(sqrt(dim)))
    babies = sorted({d % baby_size for d in diagonals if d % baby_size})
    giants = sorted({
        (d // baby_size) * baby_size for d in diagonals if d // baby_size
    })
    return babies, giants


def transform_counts(dim: int, diagonals: FrozenSet[int]) -> OpCounts:
    """Ops of one BSGS linear-transform factor over ``diagonals``."""
    if not diagonals:
        raise ParameterError("a transform factor needs at least one diagonal")
    babies, giants = bsgs_rotation_steps(dim, diagonals)
    baby_size = int(ceil(sqrt(dim)))
    groups: Dict[int, int] = {}
    for d in diagonals:
        groups[d // baby_size] = groups.get(d // baby_size, 0) + 1
    inner_adds = sum(count - 1 for count in groups.values())
    return OpCounts(
        rotations=len(babies) + len(giants),
        pt_multiplies=len(diagonals),
        additions=inner_adds + (len(groups) - 1),
        rescales=1,
    )


def evalmod_branch_counts(ladder: Sequence[int]) -> OpCounts:
    """Ops of one EvalMod branch (normalize + ladder + combine).

    ``ladder`` is the scaled-Chebyshev build order; odd rungs above 1 pay
    one extra plaintext multiply to scale-match the ``S_1`` subtrahend,
    and each odd-degree coefficient contributes one combine term.
    """
    rungs = [k for k in ladder if k > 1]
    odd_rungs = sum(1 for k in rungs if k % 2 == 1)
    terms = sum(1 for k in ladder if k % 2 == 1)
    return OpCounts(
        ct_multiplies=len(rungs),
        pt_multiplies=1 + odd_rungs + terms,
        additions=len(rungs) + (terms - 1),
        rescales=1 + len(rungs) + terms,
    )


@dataclass(frozen=True)
class BootstrapPlan:
    """Shape of one bootstrap circuit, sufficient to count every op."""

    num_slots: int
    cts_diagonals: Tuple[FrozenSet[int], ...]
    stc_diagonals: Tuple[FrozenSet[int], ...]
    sine_periods: int
    sine_degree: int
    ladder: Tuple[int, ...]

    @classmethod
    def from_shape(
        cls,
        num_slots: int,
        cts_stages: int = 1,
        stc_stages: int = 1,
        sine_periods: int = 5,
        sine_degree: int = 31,
    ) -> "BootstrapPlan":
        """Structural plan (no matrices) — usable at accelerator scale."""
        mask = [0.0] * (sine_degree + 1)
        for k in range(1, sine_degree + 1, 2):
            mask[k] = 1.0
        return cls(
            num_slots=num_slots,
            cts_diagonals=tuple(
                frozenset(s) for s in
                grouped_diagonal_sets(num_slots, cts_stages, reverse=True)
            ),
            stc_diagonals=tuple(
                frozenset(s) for s in
                grouped_diagonal_sets(num_slots, stc_stages, reverse=False)
            ),
            sine_periods=sine_periods,
            sine_degree=sine_degree,
            ladder=tuple(chebyshev_ladder_order(mask)),
        )

    # -- per-phase counts -----------------------------------------------------

    def coeff_to_slot_counts(self) -> OpCounts:
        total = OpCounts()
        for diag in self.cts_diagonals:
            total = total + transform_counts(self.num_slots, diag)
        return total

    def slot_to_coeff_counts(self) -> OpCounts:
        total = OpCounts()
        for diag in self.stc_diagonals:
            total = total + transform_counts(self.num_slots, diag)
        return total

    def evalmod_counts(self) -> OpCounts:
        # Conjugate split (1 conj + add/sub), two branches, recombine add.
        split = OpCounts(conjugations=1, additions=2)
        recombine = OpCounts(additions=1)
        return split + evalmod_branch_counts(self.ladder).scaled(2) + recombine

    def op_counts(self) -> OpCounts:
        """Whole pipeline (ModRaise itself is key-switch free)."""
        return (
            self.coeff_to_slot_counts()
            + self.evalmod_counts()
            + self.slot_to_coeff_counts()
        )

    def phase_hks_calls(self) -> Dict[str, int]:
        """HKS calls by pipeline stage (the benchmark's per-stage view)."""
        return {
            "coeff_to_slot": self.coeff_to_slot_counts().hks_calls,
            "eval_mod": self.evalmod_counts().hks_calls,
            "slot_to_coeff": self.slot_to_coeff_counts().hks_calls,
        }

    def levels_consumed(self) -> int:
        """Levels the pipeline burns: one per DFT factor, one to normalize
        into the Chebyshev domain, ``ceil(log2 degree)`` for the ladder and
        one for the combine."""
        k_max = self.ladder[-1] if self.ladder else 1
        ladder_depth = max(1, (k_max - 1).bit_length())
        return (
            len(self.cts_diagonals) + 1 + ladder_depth + 1
            + len(self.stc_diagonals)
        )

    def rotation_steps(self) -> List[int]:
        """All distinct rotation steps the DFT factors need keys for."""
        steps = set()
        for diag in self.cts_diagonals + self.stc_diagonals:
            babies, giants = bsgs_rotation_steps(self.num_slots, diag)
            steps.update(babies)
            steps.update(giants)
        return sorted(steps)
