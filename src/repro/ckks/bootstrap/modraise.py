"""ModRaise: re-embed an exhausted ciphertext in the full modulus chain.

A level-0 ciphertext's towers are residues modulo ``q_0`` alone.  Lifting
the centered representatives of ``(c0, c1)`` into the full chain basis
(:meth:`repro.rns.basis.RNSBasis.convert_centered`) produces a level-``L``
ciphertext that decrypts to

    ``m + e + q_0 * I(X)``

where the overflow polynomial ``I`` collects the ``mod q_0`` wraps of
``c0 + c1*s``; with a sparse ternary secret of Hamming weight ``h``,
``|I| <= (h + 1) / 2``.  Removing ``q_0 * I`` homomorphically is EvalMod's
job — ModRaise itself costs no key switch and no level.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.ckks.context import CKKSContext
from repro.ckks.encrypt import Ciphertext
from repro.errors import ParameterError
from repro.rns.poly import Domain, PolyBatch, RNSPoly


def mod_raise(context: CKKSContext, ct: Ciphertext) -> Ciphertext:
    """Lift a level-0 ciphertext to the top of the chain (scale preserved)."""
    if ct.level != 0:
        raise ParameterError(
            f"ModRaise expects a level-0 ciphertext, got level {ct.level} "
            "(mod-switch down first)"
        )
    target = context.q_basis

    def lift(poly: Union[RNSPoly, PolyBatch]) -> Union[RNSPoly, PolyBatch]:
        coeff = poly.to_coeff()
        if isinstance(coeff, PolyBatch):
            # convert_centered is exact and column-independent, so the
            # (B, L0, N) batch lifts as one wide (L0, B*N) matrix laid
            # side by side — same arithmetic per column as per member.
            bsz, towers, n = coeff.data.shape
            wide = coeff.data.transpose(1, 0, 2).reshape(towers, bsz * n)
            raised = coeff.basis.convert_centered(wide, target)
            stacked = raised.reshape(len(target), bsz, n).transpose(1, 0, 2)
            return PolyBatch(
                target, np.ascontiguousarray(stacked), Domain.COEFF
            ).to_eval()
        raised = coeff.basis.convert_centered(coeff.data, target)
        return RNSPoly(target, raised, Domain.COEFF).to_eval()

    return Ciphertext(
        lift(ct.c0), lift(ct.c1), context.params.max_level, ct.scale
    )


def overflow_bound(context: CKKSContext) -> float:
    """Worst-case ``|I|`` after ModRaise: ``(h + 1) / 2`` for weight-``h``
    secrets (``h = N`` for dense ternary — why bootstrapping wants sparse).
    """
    weight = context.params.hamming_weight
    if weight is None:
        weight = context.params.n
    return (weight + 1) / 2.0
