"""The bootstrap pipeline: ModRaise -> CoeffToSlot -> EvalMod -> SlotToCoeff.

:class:`Bootstrapper` composes the library's existing building blocks —
BSGS linear transforms with hoisted rotations, conjugation, the Chebyshev
evaluator — into the full CKKS bootstrapping circuit:

1. **ModRaise** lifts the exhausted level-0 ciphertext into the whole
   chain; it now decrypts to ``m + q_0 * I`` for a small-integer overflow
   polynomial ``I``.
2. **CoeffToSlot** applies the factored inverse special-DFT so each slot
   holds a folded pair of *coefficients* ``(u_k - i*u_{k+N/2}) / 2``.
3. A conjugation splits real and imaginary parts, **EvalMod** removes
   ``q_0 * I`` from each via the Chebyshev sine approximation (the
   imaginary branch folds ``-i`` into its normalization constant and
   ``i`` into its combine coefficients, so recombining is a plain add).
4. **SlotToCoeff** applies the forward factors, turning the cleaned
   coefficients back into slot values: a fresh encryption of the original
   message with the level budget restored.

Everything routes through the :class:`~repro.ckks.evaluator.Evaluator`
passed per call, so instrumented evaluators observe the exact circuit,
and every rotation key is requested through :class:`BootstrapKeys` —
mirroring how the facade stages evks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.ckks.bootstrap.dft import (
    coeff_to_slot_matrices,
    slot_to_coeff_matrices,
)
from repro.ckks.bootstrap.evalmod import (
    choose_sine_degree,
    sine_chebyshev_coeffs,
    sine_fit_error,
)
from repro.ckks.bootstrap.modraise import mod_raise, overflow_bound
from repro.ckks.bootstrap.plan import BootstrapPlan
from repro.ckks.context import CKKSContext
from repro.ckks.encoding import Encoder
from repro.ckks.encrypt import Ciphertext
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeyGenerator, KeySwitchKey
from repro.ckks.linear import LinearTransform
from repro.ckks.polyeval import (
    _stack_plaintexts,
    evaluate_chebyshev,
    evaluate_chebyshev_rows,
)
from repro.errors import ParameterError


@dataclass(frozen=True)
class BootstrapConfig:
    """Tunable shape of the pipeline.

    ``cts_stages`` / ``stc_stages`` split the DFT into that many grouped
    factors: more stages means fewer rotations per factor but one level
    each.  ``sine_periods`` must cover the ModRaise overflow bound
    ``(h+1)/2`` (default: bound + 1); ``sine_degree`` defaults to the
    smallest fit under ``sine_tol``.
    """

    cts_stages: int = 1
    stc_stages: int = 1
    sine_periods: Optional[int] = None
    sine_degree: Optional[int] = None
    #: Max fit error of the sine series (in units of sin/2pi).  The slot
    #: error budget sees this scaled by q_0/Delta and amplified ~sqrt(slots)
    #: by SlotToCoeff, so it is kept well below the 1e-2 headline target.
    sine_tol: float = 1e-5


@dataclass
class BootstrapKeys:
    """Evaluation keys one bootstrap call consumes."""

    relin: KeySwitchKey
    conjugation: KeySwitchKey
    rotations: Dict[int, KeySwitchKey] = field(default_factory=dict)


class Bootstrapper:
    """A bootstrap circuit specialized to one context (reusable)."""

    def __init__(self, context: CKKSContext,
                 config: Optional[BootstrapConfig] = None):
        self.context = context
        self.config = config or BootstrapConfig()
        self.encoder = Encoder(context)
        params = context.params

        bound = overflow_bound(context)
        periods = self.config.sine_periods
        if periods is None:
            if params.hamming_weight is None:
                raise ParameterError(
                    "bootstrapping needs a sparse secret (set "
                    "CKKSParams.hamming_weight) or an explicit sine_periods"
                )
            periods = int(np.ceil(bound)) + 1
        if periods < bound:
            raise ParameterError(
                f"sine_periods={periods} does not cover the ModRaise "
                f"overflow bound {bound:g}"
            )
        self.sine_periods = periods
        degree = self.config.sine_degree
        if degree is None:
            degree = choose_sine_degree(periods, self.config.sine_tol)
        self.sine_degree = degree
        #: Chebyshev series of sin(2*pi*periods*x)/(2*pi); scaled by
        #: q_tilde per call (the input's scale fixes q_tilde).
        self.sine_coeffs = sine_chebyshev_coeffs(periods, degree)
        self.sine_error = sine_fit_error(periods, self.sine_coeffs)

        slots = params.n // 2
        self.cts_transforms = [
            LinearTransform(self.encoder, m)
            for m in coeff_to_slot_matrices(slots, self.config.cts_stages)
        ]
        self.stc_transforms = [
            LinearTransform(self.encoder, m)
            for m in slot_to_coeff_matrices(slots, self.config.stc_stages)
        ]
        self.plan = self._build_plan()
        needed = self.plan.levels_consumed()
        if params.max_level < needed + 1:
            raise ParameterError(
                f"bootstrapping needs {needed} levels plus headroom; "
                f"the chain has only {params.max_level} "
                "(increase num_levels)"
            )

    # -- structure -------------------------------------------------------------

    def _build_plan(self) -> BootstrapPlan:
        """Plan from the *materialized* transforms' non-zero diagonals."""
        from repro.ckks.polyeval import chebyshev_ladder_order

        def diag_set(transform: LinearTransform) -> frozenset:
            return frozenset(
                i * transform.baby + j
                for (i, j), diag in transform._diagonals.items()
                if diag is not None
            )

        return BootstrapPlan(
            num_slots=self.context.params.n // 2,
            cts_diagonals=tuple(diag_set(t) for t in self.cts_transforms),
            stc_diagonals=tuple(diag_set(t) for t in self.stc_transforms),
            sine_periods=self.sine_periods,
            sine_degree=self.sine_degree,
            ladder=tuple(chebyshev_ladder_order(self.sine_coeffs)),
        )

    def required_rotation_steps(self) -> List[int]:
        steps = set()
        for transform in self.cts_transforms + self.stc_transforms:
            needed = transform.required_rotations()
            steps.update(needed["baby"])
            steps.update(needed["giant"])
        return sorted(steps)

    def levels_consumed(self) -> int:
        return self.plan.levels_consumed()

    # -- execution --------------------------------------------------------------

    def bootstrap(self, evaluator: Evaluator, ct: Ciphertext,
                  keys: BootstrapKeys) -> Ciphertext:
        """Refresh ``ct``: same message, level budget restored.

        Accepts a ciphertext at any level (it is mod-switched to 0 first —
        bootstrapping is only worth its key switches when the budget is
        gone, and EvalMod's modulus is ``q_0``).
        """
        if evaluator.context is not self.context:
            raise ParameterError("evaluator belongs to a different context")
        missing = [s for s in self.required_rotation_steps()
                   if s not in keys.rotations]
        if missing:
            raise ParameterError(f"missing bootstrap rotation keys: {missing}")

        if ct.level != 0:
            ct = evaluator.mod_switch_to_level(ct, 0)
        q_tilde = self.context.q_basis.moduli[0] / ct.scale
        if q_tilde < 2.0:
            raise ParameterError(
                f"q_0/scale = {q_tilde:.2f} leaves EvalMod no headroom "
                "(use a wider q0_bits or a smaller scale)"
            )

        raised = mod_raise(self.context, ct)

        folded = self._apply_transforms(evaluator, raised,
                                        self.cts_transforms, keys)

        conj = evaluator.conjugate(folded, keys.conjugation)
        real_part = evaluator.add(folded, conj)     # slots: Re(v)
        imag_part = evaluator.sub(folded, conj)     # slots: i * Im(v)

        norm = 2.0 / (self.sine_periods * q_tilde)
        if getattr(evaluator, "supports_batched_hks", False):
            # Batch-capable evaluator: both branches through one stacked
            # Chebyshev ladder (half the ladder dispatches per bootstrap).
            # Instrumented/plain evaluators keep the two-ladder circuit,
            # whose op counts BootstrapPlan pins.
            cleaned = self._eval_mod_stacked(
                evaluator, real_part, imag_part, norm, q_tilde, keys
            )
        else:
            real_mod = self._eval_mod(evaluator, real_part, norm,
                                      q_tilde * self.sine_coeffs, keys)
            imag_mod = self._eval_mod(evaluator, imag_part, -1j * norm,
                                      1j * q_tilde * self.sine_coeffs, keys)
            cleaned = evaluator.add(real_mod, imag_mod)

        return self._apply_transforms(evaluator, cleaned,
                                      self.stc_transforms, keys)

    def _apply_transforms(self, evaluator: Evaluator, ct: Ciphertext,
                          transforms: List[LinearTransform],
                          keys: BootstrapKeys) -> Ciphertext:
        for transform in transforms:
            needed = transform.required_rotations()
            baby = {s: keys.rotations[s] for s in needed["baby"]}
            giant = {s: keys.rotations[s] for s in needed["giant"]}
            ct = transform.evaluate(evaluator, ct, baby, giant)
        return ct

    def _eval_mod(self, evaluator: Evaluator, ct: Ciphertext,
                  normalize: complex, coeffs: np.ndarray,
                  keys: BootstrapKeys) -> Ciphertext:
        """One EvalMod branch: normalize into [-1, 1] (folding the
        doubling for the Chebyshev ladder), then the sine series."""
        q_top = float(self.context.q_basis.moduli[ct.level])
        pt = self.encoder.encode(
            [normalize] * self.encoder.num_slots, level=ct.level, scale=q_top
        )
        prescaled = evaluator.rescale(
            evaluator.multiply_plain(ct, pt, plain_scale=q_top)
        )
        return evaluate_chebyshev(
            evaluator, self.encoder, prescaled, coeffs, keys.relin,
            prescaled=True,
        )

    def _eval_mod_stacked(self, evaluator: Evaluator, real_part: Ciphertext,
                          imag_part: Ciphertext, norm: float, q_tilde: float,
                          keys: BootstrapKeys) -> Ciphertext:
        """Both EvalMod branches through one stacked Chebyshev ladder.

        The branches differ only in their normalization constant and
        combine coefficients (by the exact factor ``-1j`` / ``1j``), so
        they batch as a ``2B``-member ciphertext: per-row prescale and
        combine plaintexts, one shared ladder.  Each member's arithmetic
        is bit-identical to :meth:`_eval_mod` on that member alone, and
        the return value is already the recombined ``real + imag`` sum.
        """
        from repro.ckks.batch import stack_ciphertexts, unstack_ciphertexts

        members = (unstack_ciphertexts(real_part)
                   + unstack_ciphertexts(imag_part))
        bsz = len(members) // 2
        both = stack_ciphertexts(members)
        q_top = float(self.context.q_basis.moduli[both.level])
        slots = self.encoder.num_slots
        pts = [
            self.encoder.encode([normalize] * slots, level=both.level,
                                scale=q_top)
            for normalize in (norm, -1j * norm)
        ]
        pt = _stack_plaintexts(pts, [bsz, bsz])
        prescaled = evaluator.rescale(
            evaluator.multiply_plain(both, pt, plain_scale=q_top)
        )
        modded = evaluate_chebyshev_rows(
            evaluator, self.encoder, prescaled,
            [q_tilde * self.sine_coeffs, 1j * q_tilde * self.sine_coeffs],
            [bsz, bsz], keys.relin, prescaled=True,
        )
        halves = unstack_ciphertexts(modded)
        real_mod = stack_ciphertexts(halves[:bsz])
        imag_mod = stack_ciphertexts(halves[bsz:])
        return evaluator.add(real_mod, imag_mod)


def generate_bootstrap_keys(keygen: KeyGenerator,
                            bootstrapper: Bootstrapper) -> BootstrapKeys:
    """All evks one bootstrapper needs, fresh from a key generator."""
    return BootstrapKeys(
        relin=keygen.relinearization_key(),
        conjugation=keygen.conjugation_key(),
        rotations={
            s: keygen.rotation_key(s)
            for s in bootstrapper.required_rotation_steps()
        },
    )
