"""Instrumentation: count homomorphic ops of a real circuit execution.

:class:`CountingEvaluator` is a drop-in :class:`~repro.ckks.evaluator.
Evaluator` that tallies every operation it performs.  Running the actual
bootstrap pipeline under it yields the measured op profile the structural
:class:`~repro.ckks.bootstrap.plan.BootstrapPlan` must reproduce — the
tests pin the two together, which is what lets the ``BOOT`` accelerator
workload claim its HKS count is "derived from the real circuit".
"""

from __future__ import annotations

from typing import Dict

from repro.ckks.bootstrap.plan import OpCounts
from repro.ckks.encrypt import Ciphertext
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeySwitchKey
from repro.rns.poly import RNSPoly


class CountingEvaluator(Evaluator):
    """Evaluator that counts rotations, multiplies, additions and rescales.

    Rotations that normalize to zero steps are not counted (they perform
    no key switch); hoisted batches count one rotation per produced
    ciphertext, since each still pays ApplyKey + ModDown.
    """

    def __init__(self, context):
        super().__init__(context)
        self.counters: Dict[str, int] = {
            "rotations": 0,
            "conjugations": 0,
            "ct_multiplies": 0,
            "pt_multiplies": 0,
            "additions": 0,
            "rescales": 0,
        }

    def snapshot(self) -> OpCounts:
        c = self.counters
        return OpCounts(
            rotations=c["rotations"],
            conjugations=c["conjugations"],
            ct_multiplies=c["ct_multiplies"],
            pt_multiplies=c["pt_multiplies"],
            additions=c["additions"],
            rescales=c["rescales"],
        )

    def reset(self) -> None:
        for key in self.counters:
            self.counters[key] = 0

    # -- counted operations ---------------------------------------------------

    def rotate(self, x: Ciphertext, steps: int, galois_key) -> Ciphertext:
        if steps % (self.context.params.n // 2) != 0:
            self.counters["rotations"] += 1
        return super().rotate(x, steps, galois_key)

    def hoisted_rotations(self, x: Ciphertext,
                          galois_keys: Dict[int, KeySwitchKey]):
        self.counters["rotations"] += len(galois_keys)
        return super().hoisted_rotations(x, galois_keys)

    def conjugate(self, x: Ciphertext, conj_key: KeySwitchKey) -> Ciphertext:
        self.counters["conjugations"] += 1
        return super().conjugate(x, conj_key)

    def multiply(self, x: Ciphertext, y: Ciphertext,
                 relin_key: KeySwitchKey) -> Ciphertext:
        self.counters["ct_multiplies"] += 1
        return super().multiply(x, y, relin_key)

    def multiply_plain(self, x: Ciphertext, plaintext: RNSPoly,
                       plain_scale=None) -> Ciphertext:
        self.counters["pt_multiplies"] += 1
        return super().multiply_plain(x, plaintext, plain_scale)

    def add(self, x: Ciphertext, y: Ciphertext) -> Ciphertext:
        self.counters["additions"] += 1
        return super().add(x, y)

    def sub(self, x: Ciphertext, y: Ciphertext) -> Ciphertext:
        self.counters["additions"] += 1
        return super().sub(x, y)

    def add_plain(self, x: Ciphertext, plaintext: RNSPoly,
                  plain_scale=None) -> Ciphertext:
        self.counters["additions"] += 1
        return super().add_plain(x, plaintext, plain_scale)

    def rescale(self, x: Ciphertext) -> Ciphertext:
        self.counters["rescales"] += 1
        return super().rescale(x)
