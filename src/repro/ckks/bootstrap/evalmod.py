"""EvalMod: approximate ``x mod q_0`` via a Chebyshev sine approximation.

After ModRaise + CoeffToSlot each slot holds ``t = eps + q_tilde * I``
with ``q_tilde = q_0 / Delta``, integer ``|I| <= K`` and the small message
residue ``eps``.  Since ``eps`` is exactly ``t mod q_tilde`` (centered),
and messages are small relative to ``q_tilde``,

    ``eps ~= (q_tilde / 2*pi) * sin(2*pi * t / q_tilde)``

with approximation error ``(2*pi^2/3) * eps^3 / q_tilde^2`` — the reason
bootstrapping parameters give the base prime extra bits (``q0_bits``).
The sine is evaluated over ``t / (K * q_tilde) in [-1, 1]`` as a Chebyshev
series (:func:`repro.ckks.polyeval.evaluate_chebyshev`); monomial
coefficients of the same fit would grow ``2^degree``-fold and drown the
fixed-point encoding.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

#: Degrees are capped where the ladder depth stops paying for itself on
#: the chains this library instantiates (depth 8 = degree 255).
MAX_SINE_DEGREE = 255


def sine_chebyshev_coeffs(periods: int, degree: int) -> np.ndarray:
    """Chebyshev coefficients of ``sin(2*pi*periods*x) / (2*pi)`` on [-1, 1].

    The caller scales by ``q_tilde`` to obtain EvalMod's target function.
    Only odd coefficients are non-zero (enforced exactly so the ciphertext
    ladder skips even terms).
    """
    if periods < 1 or degree < 1:
        raise ParameterError("sine approximation needs periods >= 1, degree >= 1")
    # Least-squares fit on Chebyshev nodes (well conditioned in this basis).
    samples = max(4 * (degree + 1), 64)
    nodes = np.cos(np.pi * (np.arange(samples) + 0.5) / samples)
    values = np.sin(2.0 * np.pi * periods * nodes) / (2.0 * np.pi)
    coeffs = np.polynomial.chebyshev.chebfit(nodes, values, degree)
    coeffs[0::2] = 0.0
    return coeffs


def sine_fit_error(periods: int, coeffs: np.ndarray) -> float:
    """Max deviation of the fit from ``sin(2*pi*periods*x) / (2*pi)``."""
    grid = np.linspace(-1.0, 1.0, 4096)
    approx = np.polynomial.chebyshev.chebval(grid, coeffs)
    exact = np.sin(2.0 * np.pi * periods * grid) / (2.0 * np.pi)
    return float(np.max(np.abs(approx - exact)))


def choose_sine_degree(periods: int, tol: float = 1e-4) -> int:
    """Smallest odd degree whose Chebyshev fit meets ``tol``.

    The coefficients are Bessel values ``J_k(2*pi*periods)``, which decay
    super-exponentially once ``k`` passes ``2*pi*periods`` — the search
    starts there and grows by ladder-friendly increments.
    """
    base = int(np.ceil(2.0 * np.pi * periods))
    degree = base | 1
    while degree <= MAX_SINE_DEGREE:
        coeffs = sine_chebyshev_coeffs(periods, degree)
        if sine_fit_error(periods, coeffs) <= tol:
            return degree
        degree += 8
    raise ParameterError(
        f"no sine fit under {tol:g} for {periods} periods within degree "
        f"{MAX_SINE_DEGREE} (reduce the secret's hamming_weight)"
    )
