"""Factored DFT matrices for CoeffToSlot / SlotToCoeff.

CKKS decoding evaluates the message polynomial at the odd ``2N``-th roots
of unity indexed by powers of five.  For a real polynomial ``u`` the slot
view factors through the *folded* coefficient vector

    ``v_k = u_k - i * u_{k + N/2}``,   ``slots(u) = E @ v``

with the square special-DFT matrix ``E[j, k] = exp(-i*pi*5^j*k / N)``
(matching :class:`repro.ckks.encoding.Encoder`'s FFT conventions).
Bootstrapping needs ``E`` and ``E^{-1}`` evaluated *homomorphically*:
SlotToCoeff multiplies the slot vector by ``E``; CoeffToSlot by
``E^{-1}``.

Like the plaintext FFT, ``E`` factors into ``log2(N/2)`` butterfly stages
whose matrices have only three generalized diagonals ``{0, +h, -h}`` —
the sparsity that turns an ``O(sqrt(N))``-rotation dense transform into a
few rotations per stage.  The factorization here is decimation-in-time
with the bit-reversal permutation *dropped*: CoeffToSlot then produces
coefficients in bit-reversed slot order, which is invisible to the
point-wise EvalMod between the two transforms, and SlotToCoeff (built
from the same stage list applied in reverse) consumes the same order, so
the permutations cancel exactly.  Grouping consecutive stages trades
levels (one per grouped factor) against rotations per factor — the knob
real bootstrapping implementations expose, reproduced here.
"""

from __future__ import annotations

from typing import List, Sequence, Set

import numpy as np

from repro.errors import ParameterError


def _rot_group(num_slots: int) -> np.ndarray:
    """Root indices ``5^j mod 2N`` for ``j < N/2`` (``N = 2 * num_slots``)."""
    two_n = 4 * num_slots
    out = np.empty(num_slots, dtype=np.int64)
    power = 1
    for j in range(num_slots):
        out[j] = power
        power = power * 5 % two_n
    return out


def special_dft_matrix(num_slots: int) -> np.ndarray:
    """The dense ``E`` with ``E[j, k] = exp(-i*pi*5^j*k / N)``."""
    rot = _rot_group(num_slots)
    n = 2 * num_slots
    return np.exp(-1j * np.pi * np.outer(rot, np.arange(num_slots)) / n)


def _butterfly_stage(num_slots: int, block: int, inverse: bool) -> np.ndarray:
    """One decimation-in-time butterfly stage (or its inverse) as a matrix.

    ``block`` is the butterfly span (2, 4, ..., num_slots).  The forward
    stage maps ``out[r] = in[r] + t*in[r+h]``, ``out[r+h] = in[r] -
    t*in[r+h]`` within each block (``h = block/2``); its inverse is again
    a three-diagonal butterfly.
    """
    m = num_slots
    rot = _rot_group(m)
    two_n = 4 * m
    h = block // 2
    quad = block * 4
    gap = two_n // quad
    mat = np.zeros((m, m), dtype=np.complex128)
    for base in range(0, m, block):
        for j in range(h):
            idx = (int(rot[j]) % quad) * gap
            t = np.exp(-2j * np.pi * idx / two_n)
            lo, hi = base + j, base + j + h
            if inverse:
                mat[lo, lo] = 0.5
                mat[lo, hi] = 0.5
                mat[hi, lo] = 0.5 / t
                mat[hi, hi] = -0.5 / t
            else:
                mat[lo, lo] = 1.0
                mat[lo, hi] = t
                mat[hi, lo] = 1.0
                mat[hi, hi] = -t
    return mat


def _compose(factors: Sequence[np.ndarray]) -> np.ndarray:
    """Product of factors *in application order* (first applied first)."""
    total = factors[0]
    for f in factors[1:]:
        total = f @ total
    return total


def _balanced_runs(count: int, groups: int) -> List[range]:
    """Split ``range(count)`` into ``groups`` contiguous runs, larger runs
    first (earlier factors run at higher levels where towers are cheapest).

    Both the matrix grouping and the structural diagonal accounting use
    this one partition — the plan-equals-instrumented-run invariant
    depends on them never diverging.
    """
    if not 1 <= groups <= count:
        raise ParameterError(
            f"cannot split {count} DFT stages into {groups} groups"
        )
    sizes = [count // groups + (1 if i < count % groups else 0)
             for i in range(groups)]
    runs: List[range] = []
    pos = 0
    for size in sizes:
        runs.append(range(pos, pos + size))
        pos += size
    return runs


def _group(matrices: List[np.ndarray], groups: int) -> List[np.ndarray]:
    """Merge consecutive stage matrices (application order) into factors."""
    return [
        _compose([matrices[i] for i in run])
        for run in _balanced_runs(len(matrices), groups)
    ]


def coeff_to_slot_matrices(num_slots: int, stages: int) -> List[np.ndarray]:
    """CoeffToSlot factors, in application order (one level each).

    Their product is ``(1/2) * E^{-1}`` up to the internal bit-reversal:
    applied to the slot view of a raised ciphertext they leave ``v_k / 2``
    (folded coefficients, halved for the conjugate split) in the slots, in
    bit-reversed order.
    """
    if num_slots < 2:
        raise ParameterError("CoeffToSlot needs at least 2 slots")
    blocks = []
    block = 2
    while block <= num_slots:
        blocks.append(block)
        block *= 2
    # E = B_K ... B_1 P, so E^{-1} (sans P) applies B_K^{-1} first.
    inverse_stages = [
        _butterfly_stage(num_slots, b, inverse=True) for b in reversed(blocks)
    ]
    grouped = _group(inverse_stages, stages)
    grouped[-1] = grouped[-1] * 0.5
    return grouped


def slot_to_coeff_matrices(num_slots: int, stages: int) -> List[np.ndarray]:
    """SlotToCoeff factors, in application order (one level each).

    Consumes the bit-reversed folded coefficients CoeffToSlot produced
    (after EvalMod) and returns the slot view — i.e. the product is ``E``
    restricted to that ordering, cancelling the dropped permutation.
    """
    if num_slots < 2:
        raise ParameterError("SlotToCoeff needs at least 2 slots")
    blocks = []
    block = 2
    while block <= num_slots:
        blocks.append(block)
        block *= 2
    forward_stages = [_butterfly_stage(num_slots, b, inverse=False) for b in blocks]
    return _group(forward_stages, stages)


# -- structural diagonal accounting (no matrices) -------------------------------


def stage_diagonal_sets(num_slots: int) -> List[Set[int]]:
    """Generalized-diagonal index set of each butterfly stage.

    A butterfly of span ``block`` touches diagonals ``{0, +h, -h}`` with
    ``h = block/2`` (mod the slot count); both the forward stage and its
    inverse share the set.  Listed smallest block first.
    """
    sets: List[Set[int]] = []
    block = 2
    while block <= num_slots:
        h = block // 2
        sets.append({0, h % num_slots, (num_slots - h) % num_slots})
        block *= 2
    return sets


def grouped_diagonal_sets(
    num_slots: int, stages: int, reverse: bool
) -> List[Set[int]]:
    """Diagonal sets of the grouped factors, by sumset composition.

    The product of matrices supported on diagonal sets ``D1`` and ``D2``
    is supported on the sumset ``D1 + D2 (mod slots)`` — exact for these
    butterflies (twiddle products never cancel a whole diagonal; the
    functional tests cross-check against the materialized matrices).
    ``reverse=True`` gives the CoeffToSlot ordering (largest block first).
    """
    per_stage = stage_diagonal_sets(num_slots)
    if reverse:
        per_stage = list(reversed(per_stage))
    out: List[Set[int]] = []
    for run in _balanced_runs(len(per_stage), stages):
        merged = {0}
        for i in run:
            merged = {(a + b) % num_slots for a in merged for b in per_stage[i]}
        out.append(merged)
    return out
