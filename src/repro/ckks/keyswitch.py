"""Reference hybrid key switching (HKS) — paper Section III.

The implementation mirrors the paper's stage names so that the dataflow
schedulers in :mod:`repro.core` can be validated stage-by-stage against it:

ModUp
    P1 INTT (digit towers to coefficient domain) ->
    P2 BConv (extend digit from its ``alpha`` towers to the complement
    ``beta = l + K - alpha`` towers) -> P3 NTT -> P4 apply evk
    (point-wise multiply with both key halves) -> P5 reduce (sum digits).

ModDown
    P1 INTT of the ``K`` auxiliary towers -> P2 BConv ``P -> Q_l`` ->
    P3 NTT -> P4 subtract and scale by ``P^-1``.

Everything operates on EVAL-domain inputs/outputs, as on the RPU.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple
from weakref import WeakKeyDictionary

import numpy as np

from repro.ckks.context import CKKSContext
from repro.ckks.keys import KeySwitchKey
from repro.errors import KeySwitchError
from repro.ntt.batch import get_batch_ntt
from repro.rns import dispatch
from repro.rns.bconv import get_converter
from repro.rns.poly import Domain, PolyBatch, RNSPoly


def mod_up_digit(
    context: CKKSContext, poly: RNSPoly, level: int, digit: int
) -> RNSPoly:
    """ModUp P1-P3 for one digit: returns the digit extended to ``Q_l ++ P``.

    The output tower order matches :meth:`CKKSContext.extended_basis`:
    chain towers first (original digit rows bypass P1-P3 untouched — the
    "bypass" arrows of paper Figure 1), then the ``P`` towers.
    """
    if poly.domain is not Domain.EVAL:
        raise KeySwitchError("ModUp expects an EVAL-domain input")
    digit_groups = context.digit_indices(level)
    indices = digit_groups[digit]
    digit_poly = poly.select_towers(indices)

    # P1: INTT the digit's towers into the coefficient domain.
    digit_coeff = digit_poly.to_coeff()

    # P2: BConv from the digit basis to the complement basis (both served
    # from the context's derived-basis caches, as is the converter).
    complement = context.complement_indices(level, digit)
    extended = context.extended_basis(level)
    target = context.complement_basis(level, digit)
    converter = get_converter(digit_coeff.basis, target)
    converted = RNSPoly(target, converter.convert(digit_coeff.data), Domain.COEFF)

    # P3: NTT back to the evaluation domain.
    converted_eval = converted.to_eval()

    # Reassemble rows in extended-basis order (bypass towers + converted):
    # every tower index belongs to exactly one of the two groups, so two
    # fancy-indexed assignments fill the preallocated matrix completely.
    total = level + 1 + len(context.p_basis)
    out = np.empty((total, poly.n), dtype=converted_eval.data.dtype)
    out[np.asarray(complement, dtype=np.intp)] = converted_eval.data
    out[np.asarray(indices, dtype=np.intp)] = digit_poly.data
    return RNSPoly(extended, out, Domain.EVAL)


def apply_evk(
    context: CKKSContext,
    extended_digits: Sequence[RNSPoly],
    key: KeySwitchKey,
    level: int,
) -> Tuple[RNSPoly, RNSPoly]:
    """ModUp P4 + P5: multiply each extended digit by its evk pair and sum."""
    if not dispatch.batched_enabled():
        pairs = key.restricted(context, level)
        if len(extended_digits) != len(pairs):
            raise KeySwitchError(
                f"{len(extended_digits)} digits but key provides {len(pairs)} pairs"
            )
        acc0 = acc1 = None
        for digit_poly, (b_d, a_d) in zip(extended_digits, pairs):
            part0 = digit_poly * b_d
            part1 = digit_poly * a_d
            acc0 = part0 if acc0 is None else acc0 + part0
            acc1 = part1 if acc1 is None else acc1 + part1
        return acc0, acc1
    # Whole-matrix P4/P5: stack every digit, multiply both key halves in
    # two passes, then fold the digit axis with one unreduced sum per half
    # (dnum canonical residues sum far below 2**63, so a single ``% q``
    # after the fold matches the per-digit running reduction exactly).
    count, b_tall, a_tall, q_tall = _stacked_evk(context, key, level)
    if len(extended_digits) != count:
        raise KeySwitchError(
            f"{len(extended_digits)} digits but key provides {count} pairs"
        )
    basis = extended_digits[0].basis
    towers = len(basis)
    n = extended_digits[0].n
    ext = (
        extended_digits[0].data
        if count == 1
        else np.concatenate([d.data for d in extended_digits])
    )
    acc = []
    for keys_tall in (b_tall, a_tall):
        prod = ext * keys_tall % q_tall
        folded = prod.reshape(count, towers, n).sum(axis=0) % basis.q_column
        acc.append(RNSPoly(basis, folded, Domain.EVAL))
    return acc[0], acc[1]


#: Stacked evk tower matrices per (key, level) — the restriction and row
#: concatenation allocate the same arrays on every HKS call otherwise.
_EVK_STACK_CACHE: "WeakKeyDictionary[KeySwitchKey, dict]" = WeakKeyDictionary()


def _stacked_evk(context: CKKSContext, key: KeySwitchKey, level: int):
    try:
        per_key = _EVK_STACK_CACHE.setdefault(key, {})
    except TypeError:  # un-weakref-able key subclass: build uncached
        per_key = {}
    entry = per_key.get(level)
    if entry is None:
        pairs = key.restricted(context, level)
        b_tall = np.concatenate([b.data for b, _ in pairs])
        a_tall = np.concatenate([a.data for _, a in pairs])
        q_tall = np.concatenate([pairs[0][0].basis.q_column] * len(pairs))
        entry = (len(pairs), b_tall, a_tall, q_tall)
        per_key[level] = entry
    return entry


def mod_down(context: CKKSContext, poly: RNSPoly, level: int) -> RNSPoly:
    """ModDown: divide an extended-basis polynomial by ``P`` back into ``Q_l``."""
    if poly.domain is not Domain.EVAL:
        raise KeySwitchError("ModDown expects an EVAL-domain input")
    num_q = level + 1
    num_p = len(context.p_basis)
    if poly.num_towers != num_q + num_p:
        raise KeySwitchError(
            f"expected {num_q + num_p} towers, got {poly.num_towers}"
        )
    q_part = poly.select_towers(range(num_q))
    p_part = poly.select_towers(range(num_q, num_q + num_p))

    # P1: INTT of the K auxiliary towers.
    p_coeff = p_part.to_coeff()
    # P2: BConv P -> Q_l.
    converter = get_converter(context.p_basis, context.level_basis(level))
    conv = RNSPoly(
        context.level_basis(level), converter.convert(p_coeff.data), Domain.COEFF
    )
    # P3: NTT back.
    conv_eval = conv.to_eval()
    # P4: (q_part - conv) * P^-1 per tower.
    inv_scalars = [context.p_inv_mod_q[i] for i in range(num_q)]
    return (q_part - conv_eval).scale_by(inv_scalars)


def mod_up_all(context: CKKSContext, poly: RNSPoly, level: int) -> List[RNSPoly]:
    """ModUp P1-P3 for *every* digit in whole-matrix passes.

    Bit-identical to ``[mod_up_digit(context, poly, level, d) for d in
    range(dnum)]`` but batched: the digit bases partition the chain
    towers, so P1 is one INTT of the full ``(l+1, N)`` matrix, P2 runs
    one blocked BConv per digit, and P3 is a single NTT over the
    concatenation of every complement basis (the batched engine keys
    twiddles per row, so duplicated moduli across digits are fine).
    """
    if poly.domain is not Domain.EVAL:
        raise KeySwitchError("ModUp expects an EVAL-domain input")
    if not dispatch.batched_enabled():
        return [
            mod_up_digit(context, poly, level, d)
            for d in range(context.num_digits(level))
        ]
    n = poly.n
    digit_groups = context.digit_indices(level)
    # P1: one batched INTT covers every digit's towers at once.
    coeff = get_batch_ntt(n, poly.basis.moduli).inverse(poly.data)
    # P2: blocked BConv per digit into its complement basis.
    converted = []
    for digit, indices in enumerate(digit_groups):
        digit_basis = poly.basis.subbasis(indices)
        target = context.complement_basis(level, digit)
        rows = coeff[np.asarray(indices, dtype=np.intp)]
        converted.append(get_converter(digit_basis, target).convert(rows))
    # P3: one stacked NTT across every digit's complement towers.
    stacked_moduli = tuple(
        m
        for digit in range(len(digit_groups))
        for m in context.complement_basis(level, digit).moduli
    )
    stacked = get_batch_ntt(n, stacked_moduli).forward(np.concatenate(converted))
    # Reassemble each digit in extended-basis order (bypass + converted).
    extended = context.extended_basis(level)
    total = level + 1 + len(context.p_basis)
    out_polys: List[RNSPoly] = []
    row = 0
    for digit, indices in enumerate(digit_groups):
        complement = context.complement_indices(level, digit)
        block = stacked[row : row + len(complement)]
        row += len(complement)
        out = np.empty((total, n), dtype=block.dtype)
        out[np.asarray(complement, dtype=np.intp)] = block
        idx = np.asarray(indices, dtype=np.intp)
        out[idx] = poly.data[idx]
        out_polys.append(RNSPoly(extended, out, Domain.EVAL))
    return out_polys


def mod_down_pair(
    context: CKKSContext, a: RNSPoly, b: RNSPoly, level: int
) -> Tuple[RNSPoly, RNSPoly]:
    """ModDown of the ``(c0', c1')`` accumulator pair in shared passes.

    Bit-identical to ``(mod_down(a), mod_down(b))``: the two halves stack
    into one INTT / one NTT (duplicated moduli tuples), and the single
    shared converter sees both halves side by side along the coefficient
    axis — BConv is column-independent, so widening ``N`` is free.
    """
    if not dispatch.batched_enabled():
        return mod_down(context, a, level), mod_down(context, b, level)
    for poly in (a, b):
        if poly.domain is not Domain.EVAL:
            raise KeySwitchError("ModDown expects an EVAL-domain input")
    num_q = level + 1
    num_p = len(context.p_basis)
    n = a.n
    for poly in (a, b):
        if poly.num_towers != num_q + num_p:
            raise KeySwitchError(
                f"expected {num_q + num_p} towers, got {poly.num_towers}"
            )
    level_basis = context.level_basis(level)
    # P1: one INTT of both halves' K auxiliary towers.
    p_rows = np.concatenate([a.data[num_q:], b.data[num_q:]])
    p_coeff = get_batch_ntt(n, context.p_basis.moduli * 2).inverse(p_rows)
    # P2: one BConv P -> Q_l with the halves side by side along N.
    converter = get_converter(context.p_basis, level_basis)
    side_by_side = np.concatenate([p_coeff[:num_p], p_coeff[num_p:]], axis=1)
    conv = converter.convert(side_by_side)
    # P3: one NTT back over both halves.
    conv_rows = np.concatenate([conv[:, :n], conv[:, n:]])
    conv_eval = get_batch_ntt(n, level_basis.moduli * 2).forward(conv_rows)
    # P4: (q_part - conv) * P^-1 for both halves in one matrix pass.
    q_rows = np.concatenate([a.data[:num_q], b.data[:num_q]])
    q_col2 = np.concatenate([level_basis.q_column, level_basis.q_column])
    inv_col2 = np.array(
        [context.p_inv_mod_q[i] for i in range(num_q)] * 2, dtype=np.int64
    )[:, None]
    diff = q_rows - conv_eval
    diff = np.where(diff < 0, diff + q_col2, diff)
    out = diff * inv_col2 % q_col2
    return (
        RNSPoly(level_basis, out[:num_q].copy(), Domain.EVAL),
        RNSPoly(level_basis, out[num_q:].copy(), Domain.EVAL),
    )


def key_switch(
    context: CKKSContext, poly: RNSPoly, key: KeySwitchKey, level: int
) -> Tuple[RNSPoly, RNSPoly]:
    """Full HKS of one polynomial: returns the ``(c0', c1')`` correction pair.

    For input ``c`` under source secret ``s_from`` (with ``key`` switching
    ``s_from -> s``), the outputs satisfy
    ``c0' + c1' * s ~= c * s_from (mod Q_l)`` up to key-switching noise.
    """
    digits = mod_up_all(context, poly, level)
    acc0, acc1 = apply_evk(context, digits, key, level)
    return mod_down_pair(context, acc0, acc1, level)


# -- cross-ciphertext batch axis -----------------------------------------------
#
# The (B, L, N) analogues of the stacked HKS kernels above.  The evk, hat
# and twiddle tables are all (L, ...)-shaped and broadcast over the batch
# axis, so B ciphertexts pay one kernel dispatch per stage instead of B.
# Every function is bit-identical to looping its 2-D counterpart over the
# batch members (the looped kernel mode literally does), which is what
# tests/test_kernel_equivalence.py asserts.


def mod_up_all_batch(
    context: CKKSContext, batch: PolyBatch, level: int
) -> List[PolyBatch]:
    """ModUp P1-P3 for every digit of every batch member in shared passes."""
    if batch.domain is not Domain.EVAL:
        raise KeySwitchError("ModUp expects an EVAL-domain input")
    if not dispatch.batched_enabled():
        per_member = [
            mod_up_all(context, member, level) for member in batch.unstack()
        ]
        return [
            PolyBatch.stack([digits[d] for digits in per_member])
            for d in range(context.num_digits(level))
        ]
    n = batch.n
    bsz = batch.batch_size
    digit_groups = context.digit_indices(level)
    # P1: one 3-D INTT covers every member's digit towers at once.
    coeff = get_batch_ntt(n, batch.basis.moduli).inverse(batch.data)
    # P2: blocked BConv per digit, batch axis leading.
    converted = []
    for digit, indices in enumerate(digit_groups):
        digit_basis = batch.basis.subbasis(indices)
        target = context.complement_basis(level, digit)
        rows = coeff[:, np.asarray(indices, dtype=np.intp)]
        converted.append(get_converter(digit_basis, target).convert(rows))
    # P3: one stacked NTT across every digit's complement towers.
    stacked_moduli = tuple(
        m
        for digit in range(len(digit_groups))
        for m in context.complement_basis(level, digit).moduli
    )
    stacked = get_batch_ntt(n, stacked_moduli).forward(
        np.concatenate(converted, axis=1)
    )
    # Reassemble each digit in extended-basis order (bypass + converted).
    extended = context.extended_basis(level)
    total = level + 1 + len(context.p_basis)
    out_batches: List[PolyBatch] = []
    row = 0
    for digit, indices in enumerate(digit_groups):
        complement = context.complement_indices(level, digit)
        block = stacked[:, row : row + len(complement)]
        row += len(complement)
        out = np.empty((bsz, total, n), dtype=block.dtype)
        out[:, np.asarray(complement, dtype=np.intp)] = block
        idx = np.asarray(indices, dtype=np.intp)
        out[:, idx] = batch.data[:, idx]
        out_batches.append(PolyBatch(extended, out, Domain.EVAL))
    return out_batches


def apply_evk_batch(
    context: CKKSContext,
    extended_digits: Sequence[PolyBatch],
    key: KeySwitchKey,
    level: int,
) -> Tuple[PolyBatch, PolyBatch]:
    """ModUp P4 + P5 over the batch: two multiply passes, one fold per half."""
    extended_digits = list(extended_digits)
    if not dispatch.batched_enabled():
        bsz = extended_digits[0].batch_size
        halves: List[List[RNSPoly]] = [[], []]
        for b in range(bsz):
            acc0, acc1 = apply_evk(
                context, [d.member(b) for d in extended_digits], key, level
            )
            halves[0].append(acc0)
            halves[1].append(acc1)
        return PolyBatch.stack(halves[0]), PolyBatch.stack(halves[1])
    count, b_tall, a_tall, _ = _stacked_evk(context, key, level)
    if len(extended_digits) != count:
        raise KeySwitchError(
            f"{len(extended_digits)} digits but key provides {count} pairs"
        )
    basis = extended_digits[0].basis
    towers = len(basis)
    n = extended_digits[0].n
    q_col = basis.q_column
    acc = []
    for keys_tall in (b_tall, a_tall):
        # Accumulate digit by digit instead of one (B, count*towers, N)
        # tall pass: each term stays cache-resident and the reduced
        # partial sums (count * q < 2**32) need just one final fold.
        k4 = keys_tall.reshape(count, towers, n)
        folded = extended_digits[0].data * k4[0] % q_col
        for digit in range(1, count):
            folded += extended_digits[digit].data * k4[digit] % q_col
        if count > 1:
            folded %= q_col
        acc.append(PolyBatch(basis, folded, Domain.EVAL))
    return acc[0], acc[1]


def mod_down_pair_batch(
    context: CKKSContext, a: PolyBatch, b: PolyBatch, level: int
) -> Tuple[PolyBatch, PolyBatch]:
    """ModDown of the batched accumulator pair in shared passes.

    Both halves of all B members stack into one ``(2B, ...)`` INTT /
    BConv / NTT, the batch-axis generalization of :func:`mod_down_pair`'s
    side-by-side trick.
    """
    if not dispatch.batched_enabled():
        outs = [
            mod_down(context, member, level)
            for half in (a, b)
            for member in half.unstack()
        ]
        bsz = a.batch_size
        return PolyBatch.stack(outs[:bsz]), PolyBatch.stack(outs[bsz:])
    for half in (a, b):
        if half.domain is not Domain.EVAL:
            raise KeySwitchError("ModDown expects an EVAL-domain input")
    num_q = level + 1
    num_p = len(context.p_basis)
    n = a.n
    bsz = a.batch_size
    for half in (a, b):
        if half.num_towers != num_q + num_p:
            raise KeySwitchError(
                f"expected {num_q + num_p} towers, got {half.num_towers}"
            )
    level_basis = context.level_basis(level)
    rows = np.concatenate([a.data, b.data])  # (2B, num_q + num_p, N)
    # P1: one INTT of every member's K auxiliary towers.
    p_coeff = get_batch_ntt(n, context.p_basis.moduli).inverse(rows[:, num_q:])
    # P2: one blocked BConv P -> Q_l over the whole stack.
    converter = get_converter(context.p_basis, level_basis)
    conv = converter.convert(p_coeff)
    # P3: one NTT back.
    conv_eval = get_batch_ntt(n, level_basis.moduli).forward(conv)
    # P4: (q_part - conv) * P^-1 in one matrix pass.
    inv_col = np.array(
        [context.p_inv_mod_q[i] for i in range(num_q)], dtype=np.int64
    )[:, None]
    diff = rows[:, :num_q] - conv_eval
    diff = np.where(diff < 0, diff + level_basis.q_column, diff)
    out = diff * inv_col % level_basis.q_column
    return (
        PolyBatch(level_basis, out[:bsz].copy(), Domain.EVAL),
        PolyBatch(level_basis, out[bsz:].copy(), Domain.EVAL),
    )


def key_switch_batch(
    context: CKKSContext, batch: PolyBatch, key: KeySwitchKey, level: int
) -> Tuple[PolyBatch, PolyBatch]:
    """Full HKS of a ciphertext batch: one stacked pass per HKS stage.

    Bit-identical to ``[key_switch(context, p, key, level) for p in
    batch.unstack()]`` — the per-member results, stacked.
    """
    digits = mod_up_all_batch(context, batch, level)
    acc0, acc1 = apply_evk_batch(context, digits, key, level)
    return mod_down_pair_batch(context, acc0, acc1, level)
