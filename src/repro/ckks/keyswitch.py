"""Reference hybrid key switching (HKS) — paper Section III.

The implementation mirrors the paper's stage names so that the dataflow
schedulers in :mod:`repro.core` can be validated stage-by-stage against it:

ModUp
    P1 INTT (digit towers to coefficient domain) ->
    P2 BConv (extend digit from its ``alpha`` towers to the complement
    ``beta = l + K - alpha`` towers) -> P3 NTT -> P4 apply evk
    (point-wise multiply with both key halves) -> P5 reduce (sum digits).

ModDown
    P1 INTT of the ``K`` auxiliary towers -> P2 BConv ``P -> Q_l`` ->
    P3 NTT -> P4 subtract and scale by ``P^-1``.

Everything operates on EVAL-domain inputs/outputs, as on the RPU.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.ckks.context import CKKSContext
from repro.ckks.keys import KeySwitchKey
from repro.errors import KeySwitchError
from repro.rns.bconv import get_converter
from repro.rns.poly import Domain, RNSPoly


def mod_up_digit(
    context: CKKSContext, poly: RNSPoly, level: int, digit: int
) -> RNSPoly:
    """ModUp P1-P3 for one digit: returns the digit extended to ``Q_l ++ P``.

    The output tower order matches :meth:`CKKSContext.extended_basis`:
    chain towers first (original digit rows bypass P1-P3 untouched — the
    "bypass" arrows of paper Figure 1), then the ``P`` towers.
    """
    if poly.domain is not Domain.EVAL:
        raise KeySwitchError("ModUp expects an EVAL-domain input")
    digit_groups = context.digit_indices(level)
    indices = digit_groups[digit]
    digit_poly = poly.select_towers(indices)

    # P1: INTT the digit's towers into the coefficient domain.
    digit_coeff = digit_poly.to_coeff()

    # P2: BConv from the digit basis to the complement basis (both served
    # from the context's derived-basis caches, as is the converter).
    complement = context.complement_indices(level, digit)
    extended = context.extended_basis(level)
    target = context.complement_basis(level, digit)
    converter = get_converter(digit_coeff.basis, target)
    converted = RNSPoly(target, converter.convert(digit_coeff.data), Domain.COEFF)

    # P3: NTT back to the evaluation domain.
    converted_eval = converted.to_eval()

    # Reassemble rows in extended-basis order (bypass towers + converted).
    conv_rows = {tower: row for row, tower in enumerate(complement)}
    total = level + 1 + len(context.p_basis)
    rows = []
    for tower in range(total):
        if tower in conv_rows:
            rows.append(converted_eval.data[conv_rows[tower]])
        else:
            local = indices.index(tower)
            rows.append(digit_poly.data[local])
    return RNSPoly(extended, np.stack(rows), Domain.EVAL)


def apply_evk(
    context: CKKSContext,
    extended_digits: Sequence[RNSPoly],
    key: KeySwitchKey,
    level: int,
) -> Tuple[RNSPoly, RNSPoly]:
    """ModUp P4 + P5: multiply each extended digit by its evk pair and sum."""
    pairs = key.restricted(context, level)
    if len(extended_digits) != len(pairs):
        raise KeySwitchError(
            f"{len(extended_digits)} digits but key provides {len(pairs)} pairs"
        )
    acc0 = acc1 = None
    for digit_poly, (b_d, a_d) in zip(extended_digits, pairs):
        part0 = digit_poly * b_d
        part1 = digit_poly * a_d
        acc0 = part0 if acc0 is None else acc0 + part0
        acc1 = part1 if acc1 is None else acc1 + part1
    return acc0, acc1


def mod_down(context: CKKSContext, poly: RNSPoly, level: int) -> RNSPoly:
    """ModDown: divide an extended-basis polynomial by ``P`` back into ``Q_l``."""
    if poly.domain is not Domain.EVAL:
        raise KeySwitchError("ModDown expects an EVAL-domain input")
    num_q = level + 1
    num_p = len(context.p_basis)
    if poly.num_towers != num_q + num_p:
        raise KeySwitchError(
            f"expected {num_q + num_p} towers, got {poly.num_towers}"
        )
    q_part = poly.select_towers(range(num_q))
    p_part = poly.select_towers(range(num_q, num_q + num_p))

    # P1: INTT of the K auxiliary towers.
    p_coeff = p_part.to_coeff()
    # P2: BConv P -> Q_l.
    converter = get_converter(context.p_basis, context.level_basis(level))
    conv = RNSPoly(
        context.level_basis(level), converter.convert(p_coeff.data), Domain.COEFF
    )
    # P3: NTT back.
    conv_eval = conv.to_eval()
    # P4: (q_part - conv) * P^-1 per tower.
    inv_scalars = [context.p_inv_mod_q[i] for i in range(num_q)]
    return (q_part - conv_eval).scale_by(inv_scalars)


def key_switch(
    context: CKKSContext, poly: RNSPoly, key: KeySwitchKey, level: int
) -> Tuple[RNSPoly, RNSPoly]:
    """Full HKS of one polynomial: returns the ``(c0', c1')`` correction pair.

    For input ``c`` under source secret ``s_from`` (with ``key`` switching
    ``s_from -> s``), the outputs satisfy
    ``c0' + c1' * s ~= c * s_from (mod Q_l)`` up to key-switching noise.
    """
    digits = [
        mod_up_digit(context, poly, level, d)
        for d in range(context.num_digits(level))
    ]
    acc0, acc1 = apply_evk(context, digits, key, level)
    return mod_down(context, acc0, level), mod_down(context, acc1, level)
