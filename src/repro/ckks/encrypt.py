"""Ciphertexts, encryption and decryption."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ckks.context import CKKSContext
from repro.ckks.keys import PublicKey, SecretKey, sample_error, sample_ternary
from repro.errors import ParameterError
from repro.rns.poly import Domain, RNSPoly


@dataclass
class Ciphertext:
    """A CKKS ciphertext ``(c0, c1)`` with level and scale metadata.

    Decryption invariant: ``c0 + c1 * s = Delta * m + e (mod Q_level)``.
    """

    c0: RNSPoly
    c1: RNSPoly
    level: int
    scale: float

    def __post_init__(self) -> None:
        if self.c0.basis != self.c1.basis:
            raise ParameterError("ciphertext halves live in different bases")
        if self.c0.num_towers != self.level + 1:
            raise ParameterError(
                f"level {self.level} needs {self.level + 1} towers, "
                f"got {self.c0.num_towers}"
            )

    @property
    def n(self) -> int:
        return self.c0.n

    def copy(self) -> "Ciphertext":
        return Ciphertext(self.c0.copy(), self.c1.copy(), self.level, self.scale)


class Encryptor:
    """Public-key (and secret-key) encryption of encoded plaintexts."""

    def __init__(self, context: CKKSContext, public_key: PublicKey,
                 seed: int | None = None):
        self.context = context
        self.public_key = public_key
        self.rng = np.random.default_rng(seed)

    def encrypt(self, plaintext: RNSPoly, level: int | None = None,
                scale: float | None = None) -> Ciphertext:
        """Standard RLWE public-key encryption of an EVAL-domain plaintext."""
        ctx = self.context
        if level is None:
            level = ctx.params.max_level
        if scale is None:
            scale = ctx.params.scale
        basis = ctx.level_basis(level)
        n = ctx.params.n
        rows = list(range(level + 1))
        pk_b = self.public_key.b.select_towers(rows)
        pk_a = self.public_key.a.select_towers(rows)
        v = RNSPoly.from_integers(
            basis, list(sample_ternary(n, self.rng)), domain=Domain.EVAL
        )
        e0 = RNSPoly.from_integers(
            basis, list(sample_error(n, ctx.params.error_std, self.rng)),
            domain=Domain.EVAL,
        )
        e1 = RNSPoly.from_integers(
            basis, list(sample_error(n, ctx.params.error_std, self.rng)),
            domain=Domain.EVAL,
        )
        pt = plaintext if plaintext.num_towers == level + 1 else plaintext.select_towers(rows)
        c0 = pk_b * v + e0 + pt
        c1 = pk_a * v + e1
        return Ciphertext(c0, c1, level, scale)


class Decryptor:
    """Secret-key decryption back to an EVAL-domain plaintext polynomial."""

    def __init__(self, context: CKKSContext, secret_key: SecretKey):
        self.context = context
        self.secret_key = secret_key

    def decrypt(self, ct: Ciphertext) -> RNSPoly:
        s = self.secret_key.poly(ct.c0.basis)
        return ct.c0 + ct.c1 * s
