"""Hoisted rotations: amortize ModUp across many rotations of one input.

The dominant cost of a rotation's key switch is ModUp (P1 INTT + P2 BConv
+ P3 NTT of every digit).  Because the Galois automorphism permutes
coefficients *within* each tower and basis conversion acts on each
coefficient independently, ModUp commutes with the automorphism up to the
approximate-lift slack:

    ModUp(kappa_g(c1)) == kappa_g(ModUp(c1)) + u * Q_d,  |u| < alpha

so a batch of rotations {r_1..r_k} of the same ciphertext can share one
ModUp: extend ``c1`` once, then per rotation permute the extended digits,
apply that rotation's evk and ModDown.  The ``u * Q_d`` slack lands in the
same place ordinary BConv slack does and is divided away by ModDown, so
hoisted outputs decrypt identically to unhoisted ones up to key-switching
noise (the tests check both decrypt to the same plaintext).  This is the Halevi-Shoup hoisting
used by BTS/ARK-class accelerators and CKKS bootstrapping, and it stacks
with the paper's dataflow optimizations (fewer ModUps means the OC
residency argument applies to an even more memory-bound remainder).
"""

from __future__ import annotations

from typing import Dict, List

from repro.ckks.context import CKKSContext
from repro.ckks.encrypt import Ciphertext
from repro.ckks.keys import KeySwitchKey, rotation_galois_element
from repro.ckks.keyswitch import apply_evk, mod_down_pair, mod_up_all
from repro.core.stages import bconv_tower_ops, ntt_tower_ops
from repro.errors import KeySwitchError
from repro.params import BenchmarkSpec
from repro.rns.poly import RNSPoly, automorphism_stacked


def hoisted_rotations(
    context: CKKSContext,
    ct: Ciphertext,
    galois_keys: Dict[int, KeySwitchKey],
) -> Dict[int, Ciphertext]:
    """Rotate ``ct`` by every step in ``galois_keys`` with one shared ModUp.

    ``galois_keys`` maps rotation steps to their switching keys.  Returns
    a ciphertext per step, each bit-identical to the unhoisted
    ``Evaluator.rotate`` result.
    """
    if not galois_keys:
        raise KeySwitchError("hoisted_rotations needs at least one rotation")
    level = ct.level
    n = context.params.n
    # The shared, expensive part: ModUp of c1 (all digits, whole-matrix).
    extended: List[RNSPoly] = mod_up_all(context, ct.c1, level)
    results: Dict[int, Ciphertext] = {}
    for steps, key in galois_keys.items():
        g = rotation_galois_element(steps, n)
        # One stacked pass permutes c0 and every extended digit together.
        rot_c0, *rotated_digits = automorphism_stacked([ct.c0, *extended], g)
        acc0, acc1 = apply_evk(context, rotated_digits, key, level)
        ks0, ks1 = mod_down_pair(context, acc0, acc1, level)
        results[steps] = Ciphertext(rot_c0 + ks0, ks1, level, ct.scale)
    return results


def power_of_two_steps(steps: int, num_slots: int) -> List[int]:
    """Decompose a rotation into power-of-two steps (binary expansion).

    A full rotation-key set needs one key per distinct step; with this
    decomposition ``log2(num_slots)`` keys cover every rotation amount at
    the cost of up to ``log2`` key switches per rotation — the classic
    key-storage/latency trade accelerators make.
    """
    steps %= num_slots
    out: List[int] = []
    bit = 1
    while steps:
        if steps & 1:
            out.append(bit)
        steps >>= 1
        bit <<= 1
    return out


def rotate_arbitrary(
    evaluator,
    ct: Ciphertext,
    steps: int,
    pow2_keys: Dict[int, KeySwitchKey],
) -> Ciphertext:
    """Rotate by any amount using only power-of-two rotation keys."""
    num_slots = evaluator.context.params.n // 2
    parts = power_of_two_steps(steps, num_slots)
    missing = [p for p in parts if p not in pow2_keys]
    if missing:
        raise KeySwitchError(f"missing power-of-two rotation keys: {missing}")
    out = ct
    for part in parts:
        out = evaluator.rotate(out, part, pow2_keys[part])
    return out


def hoisting_savings(spec: BenchmarkSpec, num_rotations: int) -> Dict[str, object]:
    """Analytical modular-op savings of hoisting ``num_rotations`` rotations.

    Without hoisting every rotation pays the full ModUp P1-P3; with
    hoisting that cost is paid once.  (ApplyKey, Reduce and ModDown are
    per-rotation either way.)
    """
    if num_rotations < 1:
        raise KeySwitchError("need at least one rotation")
    n = spec.n
    modup = spec.kl * ntt_tower_ops(n)  # P1
    for d in range(spec.dnum):
        modup = modup + spec.beta(d) * bconv_tower_ops(n, spec.digit_sizes[d])
        modup = modup + spec.beta(d) * ntt_tower_ops(n)  # P3
    saved = (num_rotations - 1) * modup.total
    from repro.core.stages import HKSShape

    full = HKSShape(spec).total_ops().total * num_rotations
    return {
        "benchmark": spec.name,
        "rotations": num_rotations,
        "modup_ops": modup.total,
        "saved_ops": saved,
        "unhoisted_ops": full,
        "savings_fraction": saved / full,
    }
