"""CKKS cryptographic context: moduli chains, digits, and derived bases.

The context owns everything that is fixed once parameters are chosen: the
``Q`` moduli chain, the auxiliary ``P`` chain used by hybrid key switching,
the digit partition (``dnum`` digits of ``alpha`` towers each, Table I of
the paper), and the precomputed scalars HKS and rescaling need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ParameterError
from repro.ntt.modmath import inv_mod
from repro.ntt.primes import generate_primes
from repro.ntt.transform import is_power_of_two
from repro.rns.basis import RNSBasis


@dataclass(frozen=True)
class CKKSParams:
    """User-chosen CKKS parameters (functional layer).

    Attributes
    ----------
    n:
        Ring degree (power of two).  The functional layer typically runs at
        ``2**10 .. 2**13``; performance modelling uses the paper's ``2**16``
        and ``2**17`` without touching this class.
    num_levels:
        ``L + 1`` — the number of ``q`` moduli in the chain.
    num_aux:
        ``K`` — the number of ``p`` moduli in the key-switching basis.
    dnum:
        Number of digits the chain is decomposed into for hybrid KS.
    q_bits / p_bits:
        Bit sizes of the chain and auxiliary primes.
    scale_bits:
        log2 of the encoding scale Delta.
    """

    n: int = 1 << 10
    num_levels: int = 6
    num_aux: int = 2
    dnum: int = 3
    q_bits: int = 28
    p_bits: int = 29
    scale_bits: int = 26
    error_std: float = 3.2
    #: Bit size of the base prime ``q_0`` (defaults to ``q_bits``).  A wider
    #: base prime gives bootstrapping its headroom: EvalMod's sine
    #: approximation error shrinks with ``q_0 / Delta``.
    q0_bits: int | None = None
    #: Hamming weight of the ternary secret (``None`` = dense ternary).
    #: Bootstrapping uses a sparse secret so that the ModRaise overflow
    #: polynomial ``I`` stays small: ``|I| <= (h + 1) / 2``.
    hamming_weight: int | None = None

    def __post_init__(self) -> None:
        if not is_power_of_two(self.n):
            raise ParameterError(f"N must be a power of two, got {self.n}")
        if self.num_levels < 1 or self.num_aux < 1:
            raise ParameterError("need at least one q modulus and one p modulus")
        if not 1 <= self.dnum <= self.num_levels:
            raise ParameterError(
                f"dnum={self.dnum} must be in [1, num_levels={self.num_levels}]"
            )
        if self.scale_bits >= self.q_bits + 3:
            raise ParameterError("scale must not exceed the prime size")
        if self.q0_bits is not None and self.q0_bits < self.q_bits:
            raise ParameterError(
                f"q0_bits={self.q0_bits} must be >= q_bits={self.q_bits}"
            )
        if self.hamming_weight is not None and not 1 <= self.hamming_weight <= self.n:
            raise ParameterError(
                f"hamming_weight={self.hamming_weight} out of range [1, {self.n}]"
            )

    @property
    def alpha(self) -> int:
        """Towers per digit, ``ceil((L+1)/dnum)`` (paper Table I)."""
        return -(-self.num_levels // self.dnum)

    @property
    def max_level(self) -> int:
        """``L``: the level of a fresh ciphertext."""
        return self.num_levels - 1

    @property
    def scale(self) -> float:
        return float(1 << self.scale_bits)


class CKKSContext:
    """Precomputed cryptographic state shared by all keys and ciphertexts."""

    def __init__(self, params: CKKSParams):
        self.params = params
        n = params.n
        if params.q0_bits is not None and params.q0_bits != params.q_bits:
            q0 = generate_primes(1, n, params.q0_bits)
            q_moduli = q0 + generate_primes(
                params.num_levels - 1, n, params.q_bits, distinct_from=q0
            )
        else:
            q_moduli = generate_primes(params.num_levels, n, params.q_bits)
        p_moduli = generate_primes(
            params.num_aux, n, params.p_bits, distinct_from=q_moduli
        )
        #: Chain basis Q = q_0 * ... * q_L.
        self.q_basis = RNSBasis(q_moduli)
        #: Auxiliary basis P = p_0 * ... * p_{K-1}.
        self.p_basis = RNSBasis(p_moduli)
        #: Full key-switching basis D = Q ++ P (q towers first, then p).
        self.full_basis = self.q_basis.concat(self.p_basis)
        #: [P^-1 mod q_i] for ModDown's final scaling.
        self.p_inv_mod_q: Tuple[int, ...] = tuple(
            inv_mod(self.p_basis.product % q, q) for q in q_moduli
        )
        #: [P mod q_i] used when forming evk plaintext terms.
        self.p_mod_q: Tuple[int, ...] = tuple(
            self.p_basis.product % q for q in q_moduli
        )

    # -- digit structure -------------------------------------------------------

    def digit_indices(self, level: int) -> List[List[int]]:
        """Tower-index groups for each active digit at ``level``.

        At level ``l`` the active towers are ``0..l``; they are split into
        chunks of ``alpha``, so the last digit may be partial.  This is the
        digit decomposition drawn as the three colours in paper Figure 1.
        """
        self._check_level(level)
        alpha = self.params.alpha
        active = list(range(level + 1))
        return [active[i : i + alpha] for i in range(0, len(active), alpha)]

    def num_digits(self, level: int) -> int:
        """Active digit count at ``level`` (= dnum at the top level)."""
        return len(self.digit_indices(level))

    # The derivation helpers below return shared per-process instances:
    # prefix/subbasis/concat route through repro.rns.basis.get_basis, so
    # repeated key switches never re-run RNSBasis construction (O(L^2)
    # coprimality checks + CRT-constant inverses).

    def level_basis(self, level: int) -> RNSBasis:
        """Basis of the active chain towers ``{q_0 .. q_level}``."""
        self._check_level(level)
        return self.q_basis.prefix(level + 1)

    def extended_basis(self, level: int) -> RNSBasis:
        """``{q_0..q_level} ++ P`` — the ModUp target basis at ``level``."""
        return self.level_basis(level).concat(self.p_basis)

    def digit_basis(self, level: int, digit: int) -> RNSBasis:
        """Basis of one digit's towers at ``level``."""
        return self.q_basis.subbasis(self.digit_indices(level)[digit])

    def complement_basis(self, level: int, digit: int) -> RNSBasis:
        """ModUp P2's target: the extended basis minus ``digit``'s towers.

        This is what every ModUp BConv converts *into* (and what the
        converter cache of :func:`repro.rns.bconv.get_converter` is keyed
        on)."""
        return self.extended_basis(level).subbasis(
            self.complement_indices(level, digit)
        )

    def complement_indices(self, level: int, digit: int) -> List[int]:
        """Indices (into the *extended* basis) of towers outside ``digit``.

        The extended basis orders towers as ``q_0..q_level, p_0..p_{K-1}``;
        the complement is everything the digit's BConv must produce.
        """
        digit_set = set(self.digit_indices(level)[digit])
        q_part = [i for i in range(level + 1) if i not in digit_set]
        p_part = [level + 1 + j for j in range(len(self.p_basis))]
        return q_part + p_part

    def digit_gadget_scalars(self, digit: int) -> List[int]:
        """``[P * T_d mod t]`` for every modulus ``t`` of the full basis.

        ``T_d = (Q/Q_d) * [(Q/Q_d)^-1]_{Q_d}`` is the gadget factor hidden in
        digit ``d``'s evaluation key: it is ``1 (mod q_i in digit d)`` and
        ``0 (mod q_j elsewhere)``, so summing the digit products reassembles
        the original polynomial scaled by ``P``.
        """
        groups = self.digit_indices(self.params.max_level)
        if not 0 <= digit < len(groups):
            raise ParameterError(f"digit {digit} out of range")
        q_d = 1
        for i in groups[digit]:
            q_d *= self.q_basis.moduli[i]
        q_hat = self.q_basis.product // q_d
        t_d = q_hat * inv_mod(q_hat % q_d, q_d)
        p = self.p_basis.product
        return [(p * t_d) % t for t in self.full_basis.moduli]

    def rescale_inverses(self, level: int) -> List[int]:
        """``[q_level^-1 mod q_i]`` for ``i < level`` (rescale constants)."""
        self._check_level(level)
        if level == 0:
            raise ParameterError("cannot rescale below level 0")
        q_last = self.q_basis.moduli[level]
        return [inv_mod(q_last % q, q) for q in self.q_basis.moduli[:level]]

    def _check_level(self, level: int) -> None:
        if not 0 <= level <= self.params.max_level:
            raise ParameterError(
                f"level {level} out of range [0, {self.params.max_level}]"
            )

    def __repr__(self) -> str:
        p = self.params
        return (
            f"CKKSContext(N={p.n}, L+1={p.num_levels}, K={p.num_aux}, "
            f"dnum={p.dnum}, alpha={p.alpha})"
        )
