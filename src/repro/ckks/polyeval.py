"""Polynomial evaluation on ciphertexts (Horner, power-basis and Chebyshev).

Evaluating activation-function approximations is the other big consumer
of ciphertext multiplications (and hence relinearization key switches) in
private inference.  Three evaluators are provided:

* :func:`evaluate_horner` — depth = degree, minimal ciphertext state;
* :func:`evaluate_power_basis` — precomputes ``x^2, x^4, ...`` and
  combines them (fewer levels for the same degree on shallow chains);
* :func:`evaluate_chebyshev` — Chebyshev-basis evaluation for
  numerically stable high degrees.  Monomial coefficients of a good
  ``sin`` approximation grow like ``2^degree`` and cancel catastrophically
  under CKKS's fixed-point encoding; Chebyshev terms stay bounded by 1 on
  the domain, which is what makes bootstrapping's EvalMod (degree ~60)
  possible at all.

All manage CKKS scales explicitly: every ciphertext-ciphertext or
ciphertext-plaintext product is followed by a rescale, and constants are
encoded at the running scale so additions stay aligned.
"""

from __future__ import annotations

from typing import Dict, List, Sequence
from weakref import WeakKeyDictionary

import numpy as np

from repro.ckks.encoding import Encoder
from repro.ckks.encrypt import Ciphertext
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeySwitchKey
from repro.errors import ParameterError
from repro.rns import dispatch
from repro.rns.poly import PolyBatch, RNSPoly

#: Per-encoder cache of constant plaintexts keyed by (value, level, scale).
#: Encoding broadcasts a value into every slot and runs a length-2N FFT —
#: a measurable hot-path cost when BSGS and EvalMod re-add the same
#: constants at the same (level, scale) thousands of times per bootstrap.
_CONSTANT_CACHE: "WeakKeyDictionary[Encoder, Dict[tuple, RNSPoly]]" = (
    WeakKeyDictionary()
)

_CONSTANT_CACHE_MAX = 4096


def _encode_constant(encoder: Encoder, value: complex, level: int,
                     scale: float) -> RNSPoly:
    per_encoder = _CONSTANT_CACHE.get(encoder)
    if per_encoder is None:
        per_encoder = {}
        _CONSTANT_CACHE[encoder] = per_encoder
    key = (complex(value), level, float(scale))
    pt = per_encoder.get(key)
    if pt is None:
        if len(per_encoder) >= _CONSTANT_CACHE_MAX:
            per_encoder.clear()
        pt = encoder.encode([value] * encoder.num_slots, level=level, scale=scale)
        per_encoder[key] = pt
    return pt


def _add_constant(evaluator: Evaluator, encoder: Encoder, ct: Ciphertext,
                  value: complex) -> Ciphertext:
    pt = _encode_constant(encoder, value, ct.level, ct.scale)
    return evaluator.add_plain(ct, pt, plain_scale=ct.scale)


def _mul_constant(evaluator: Evaluator, encoder: Encoder, ct: Ciphertext,
                  value: float) -> Ciphertext:
    pt = _encode_constant(encoder, value, ct.level, encoder.context.params.scale)
    return evaluator.rescale(evaluator.multiply_plain(ct, pt))


def required_depth_horner(degree: int) -> int:
    """Multiplicative levels Horner consumes for the given degree."""
    return max(degree - 0, 0)


def evaluate_horner(
    evaluator: Evaluator,
    encoder: Encoder,
    ct: Ciphertext,
    coefficients: Sequence[float],
    relin_key: KeySwitchKey,
) -> Ciphertext:
    """``p(x) = c_0 + c_1 x + ... + c_d x^d`` via Horner's rule.

    ``coefficients`` is low-order first.  Consumes ``degree`` levels
    (one ciphertext multiply + rescale per step).
    """
    coeffs = [float(c) for c in coefficients]
    if not coeffs:
        raise ParameterError("need at least one coefficient")
    degree = len(coeffs) - 1
    if degree == 0:
        zero = evaluator.sub(ct, ct)
        return _add_constant(evaluator, encoder, zero, coeffs[0])
    if ct.level < degree:
        raise ParameterError(
            f"degree {degree} needs {degree} levels; ciphertext has {ct.level}"
        )
    # acc = c_d * x  (+ c_{d-1}), then repeatedly acc = acc*x + c_k.
    acc = _mul_constant(evaluator, encoder, ct, coeffs[degree])
    acc = _add_constant(evaluator, encoder, acc, coeffs[degree - 1])
    for k in range(degree - 2, -1, -1):
        x_here = _drop_to_level(evaluator, ct, acc.level)
        acc = evaluator.rescale(evaluator.multiply(acc, x_here, relin_key))
        acc = _add_constant(evaluator, encoder, acc, coeffs[k])
    return acc


def evaluate_power_basis(
    evaluator: Evaluator,
    encoder: Encoder,
    ct: Ciphertext,
    coefficients: Sequence[float],
    relin_key: KeySwitchKey,
) -> Ciphertext:
    """Evaluate via precomputed powers ``x, x^2, x^3, ...``.

    Builds each power from the largest smaller power (depth
    ``ceil(log2 d)`` for the powers of two, same total multiplies as
    Horner but a shallower critical path).
    """
    coeffs = [float(c) for c in coefficients]
    degree = len(coeffs) - 1
    if degree < 1:
        raise ParameterError("power-basis evaluation needs degree >= 1")
    powers: Dict[int, Ciphertext] = {1: ct}
    for k in range(2, degree + 1):
        half = k // 2
        a = powers[half]
        b = powers[k - half]
        a, b = _mutual_align(evaluator, a, b)
        powers[k] = evaluator.rescale(evaluator.multiply(a, b, relin_key))
    # Combine: encode each coefficient at a corrective plaintext scale so
    # every term comes out at exactly the canonical scale Delta, then the
    # terms only need level alignment (an exact tower drop) to be summed.
    delta = evaluator.context.params.scale
    terms: List[Ciphertext] = []
    for k in range(1, degree + 1):
        if coeffs[k] == 0.0:
            continue
        power = powers[k]
        q_next = evaluator.context.q_basis.moduli[power.level]
        plain_scale = delta * q_next / power.scale
        pt = encoder.encode(
            [coeffs[k]] * encoder.num_slots, level=power.level, scale=plain_scale
        )
        term = evaluator.rescale(
            evaluator.multiply_plain(power, pt, plain_scale=plain_scale)
        )
        terms.append(term)
    if not terms:
        zero = evaluator.sub(ct, ct)
        return _add_constant(evaluator, encoder, zero, coeffs[0])
    deepest = min(t.level for t in terms)
    total = None
    for term in terms:
        term = _drop_to_level(evaluator, term, deepest)
        total = term if total is None else evaluator.add(total, term)
    return _add_constant(evaluator, encoder, total, coeffs[0])


# -- Chebyshev basis -----------------------------------------------------------


def chebyshev_ladder_order(coefficients: Sequence[complex]) -> List[int]:
    """Build order of the scaled-Chebyshev terms ``S_k = 2*T_k`` needed to
    evaluate the given coefficient vector (index = Chebyshev degree).

    The ladder builds ``S_k`` from ``S_ceil(k/2)`` and ``S_floor(k/2)`` via

        ``S_2m = S_m^2 - 2``   and   ``S_2m+1 = S_m+1 * S_m - S_1``

    so each term needs its two halves (and ``S_1`` when odd).  Returns the
    dependency closure of all non-zero coefficient indices ``>= 1`` in
    ascending order — every entry after ``S_1`` costs exactly one
    ciphertext multiply, so ``len(order) - 1`` is the relinearization-HKS
    count of the evaluation (the number the BOOT workload model needs).
    """
    needed = {k for k, c in enumerate(coefficients) if k >= 1 and c != 0}
    if not needed:
        return []
    work = set(needed)
    closure = set()
    while work:
        k = work.pop()
        if k in closure:
            continue
        closure.add(k)
        if k > 1:
            deps = {(k + 1) // 2, k // 2}
            if k % 2 == 1:
                deps.add(1)
            work.update(deps - closure)
    return sorted(closure)


def chebyshev_depth(coefficients: Sequence[complex]) -> int:
    """Multiplicative levels :func:`evaluate_chebyshev` consumes for
    ``coefficients`` when given a prescaled input (``S_1`` directly):
    ``ceil(log2 k_max)`` for the ladder plus one for the combine."""
    order = chebyshev_ladder_order(coefficients)
    if not order:
        return 0
    k_max = order[-1]
    return max(1, (k_max - 1).bit_length()) + 1


def _match_scale(evaluator: Evaluator, encoder: Encoder, ct: Ciphertext,
                 level: int, target_scale: float) -> Ciphertext:
    """Bring ``ct`` to ``level`` and *exactly* ``target_scale``.

    Uses one plaintext multiply without a rescale, so unlike
    :func:`_scale_correct` it costs no level — the caller's subsequent
    rescale absorbs it.  Only valid when the scale grows (``corr >= 1``).
    """
    ct = _drop_to_level(evaluator, ct, level)
    corr = target_scale / ct.scale
    if abs(corr - 1.0) < 1e-12:
        return ct
    if corr < 1.0:
        raise ParameterError(
            f"cannot match scale {ct.scale:g} down to {target_scale:g}"
        )
    # corr is deterministic per circuit position, so the constant cache
    # serves repeated bootstraps without re-encoding (the looped reference
    # mode re-encodes every time, as the pre-optimization code did).
    if dispatch.batched_enabled():
        pt = _encode_constant(encoder, 1.0, level, corr)
    else:
        pt = encoder.encode([1.0] * encoder.num_slots, level=level, scale=corr)
    out = evaluator.multiply_plain(ct, pt, plain_scale=corr)
    # Rebuild with the exact float target: corr was rounded, and additions
    # tolerate at most 0.5 of absolute scale mismatch.
    return Ciphertext(out.c0, out.c1, level, target_scale)


def evaluate_chebyshev(
    evaluator: Evaluator,
    encoder: Encoder,
    ct: Ciphertext,
    coefficients: Sequence[complex],
    relin_key: KeySwitchKey,
    prescaled: bool = False,
) -> Ciphertext:
    """``p(x) = sum_k c_k T_k(x)`` for slot values ``x`` in ``[-1, 1]``.

    ``coefficients`` are Chebyshev-basis (index = degree; complex allowed —
    bootstrapping's imaginary branch folds ``i`` into them).  Internally
    the scaled basis ``S_k = 2*T_k`` is used: its recurrences are pure
    multiply-subtract, and the subtrahend is scale-matched *before* the
    rescale, so every ladder rung costs exactly one level regardless of
    the small scale drift real prime chains exhibit.

    With ``prescaled=True`` the input ciphertext must already hold
    ``2x`` (callers that normalize their input with a plaintext multiply
    anyway — EvalMod — fold the doubling in for free); otherwise one
    level is spent doubling.
    """
    coeffs = [complex(c) for c in coefficients]
    order = chebyshev_ladder_order(coeffs)
    if not order:
        zero = evaluator.sub(ct, ct)
        return _add_constant(evaluator, encoder, zero,
                             coeffs[0] if coeffs else 0.0)

    if prescaled:
        s1 = ct
    else:
        # S_1 = 2x via a scale-preserving constant multiply (one level).
        q_top = evaluator.context.q_basis.moduli[ct.level]
        pt = _encode_constant(encoder, 2.0, ct.level, float(q_top))
        s1 = evaluator.rescale(
            evaluator.multiply_plain(ct, pt, plain_scale=float(q_top))
        )
    terms: Dict[int, Ciphertext] = {1: s1}

    for k in order:
        if k == 1:
            continue
        hi, lo = (k + 1) // 2, k // 2
        a, b = terms[hi], terms[lo]
        level = min(a.level, b.level)
        if level < 1:
            raise ParameterError(
                f"chebyshev degree {order[-1]} exhausts the level budget"
            )
        a = _drop_to_level(evaluator, a, level)
        b = _drop_to_level(evaluator, b, level)
        prod = evaluator.multiply(a, b, relin_key)
        if k % 2 == 0:
            # S_2m = S_m^2 - 2: subtract the constant at the product scale.
            pt = _encode_constant(encoder, -2.0, level, prod.scale)
            sub = evaluator.add_plain(prod, pt)
        else:
            # S_2m+1 = S_m+1 * S_m - S_1.
            s1_matched = _match_scale(evaluator, encoder, terms[1], level,
                                      prod.scale)
            sub = evaluator.sub(prod, s1_matched)
        terms[k] = evaluator.rescale(sub)

    # Combine: encode c_k/2 at a corrective scale so every term rescales
    # to exactly Delta (the power-basis trick), then align and sum.
    delta = evaluator.context.params.scale
    parts: List[Ciphertext] = []
    for k in order:
        if k >= len(coeffs) or coeffs[k] == 0:
            continue
        s_k = terms[k]
        if s_k.level < 1:
            raise ParameterError("chebyshev combine ran out of levels")
        q_next = evaluator.context.q_basis.moduli[s_k.level]
        plain_scale = delta * q_next / s_k.scale
        pt = encoder.encode(
            [coeffs[k] / 2.0] * encoder.num_slots,
            level=s_k.level, scale=plain_scale,
        )
        part = evaluator.rescale(
            evaluator.multiply_plain(s_k, pt, plain_scale=plain_scale)
        )
        parts.append(Ciphertext(part.c0, part.c1, part.level, delta))
    deepest = min(p.level for p in parts)
    total = None
    for part in parts:
        part = _drop_to_level(evaluator, part, deepest)
        total = part if total is None else evaluator.add(total, part)
    c0 = coeffs[0]
    if c0 != 0:
        pt = _encode_constant(encoder, c0, total.level, total.scale)
        total = evaluator.add_plain(total, pt)
    return total


def _stack_plaintexts(pts: Sequence[RNSPoly],
                      counts: Sequence[int]) -> PolyBatch:
    """Tile per-row plaintexts into a ``(sum(counts), L, N)`` batch."""
    data = np.concatenate([
        np.broadcast_to(pt.data, (count,) + pt.data.shape)
        for pt, count in zip(pts, counts)
    ])
    return PolyBatch(
        pts[0].basis, np.ascontiguousarray(data), pts[0].domain
    )


def evaluate_chebyshev_rows(
    evaluator: Evaluator,
    encoder: Encoder,
    ct: Ciphertext,
    coefficient_rows: Sequence[Sequence[complex]],
    row_counts: Sequence[int],
    relin_key: KeySwitchKey,
    prescaled: bool = False,
) -> Ciphertext:
    """Chebyshev evaluation over a batched ciphertext whose consecutive
    member groups use *different* coefficient vectors.

    ``ct`` must be batched with ``sum(row_counts)`` members: the first
    ``row_counts[0]`` members are combined with ``coefficient_rows[0]``,
    the next group with row 1, and so on.  The ladder terms ``S_k``
    depend only on the input values, so one stacked ladder (over the
    union of the rows' non-zero indices) serves every row — only the
    final combine and the ``c_0`` addition use per-row plaintexts, tiled
    into a :class:`PolyBatch` via :func:`_stack_plaintexts`.

    When the rows share a non-zero coefficient pattern (EvalMod's real
    and imaginary branches do: they differ by the exact factor ``1j``),
    each member's result is bit-identical to running
    :func:`evaluate_chebyshev` on it alone with its row's coefficients.
    Rows with *differing* patterns stay exact too — a zero coefficient
    encodes to an exactly-zero plaintext, contributing nothing — but
    their members come out mod-switched to the union ladder's combine
    depth rather than their solo depth.  Bootstrapping uses this to run
    EvalMod's real and imaginary branches through a single ladder —
    ``len(order) - 1`` ciphertext multiplies total instead of per
    branch.
    """
    rows = [[complex(c) for c in row] for row in coefficient_rows]
    if not rows or len(rows) != len(row_counts):
        raise ParameterError(
            "coefficient_rows and row_counts must pair up (and be non-empty)"
        )
    width = max(len(r) for r in rows)
    merged = [
        1.0 if any(k < len(r) and r[k] != 0 for r in rows) else 0.0
        for k in range(width)
    ]
    order = chebyshev_ladder_order(merged)

    def stacked_c0(total: Ciphertext) -> Ciphertext:
        c0s = [r[0] if r else 0.0 for r in rows]
        if all(c == 0 for c in c0s):
            return total
        pts = [
            _encode_constant(encoder, c, total.level, total.scale)
            for c in c0s
        ]
        pt = _stack_plaintexts(pts, row_counts)
        return evaluator.add_plain(total, pt, plain_scale=total.scale)

    if not order:
        return stacked_c0(evaluator.sub(ct, ct))

    # -- ladder: identical to evaluate_chebyshev (shared constants
    # broadcast over the batch axis) -------------------------------------
    if prescaled:
        s1 = ct
    else:
        q_top = evaluator.context.q_basis.moduli[ct.level]
        pt = _encode_constant(encoder, 2.0, ct.level, float(q_top))
        s1 = evaluator.rescale(
            evaluator.multiply_plain(ct, pt, plain_scale=float(q_top))
        )
    terms: Dict[int, Ciphertext] = {1: s1}
    for k in order:
        if k == 1:
            continue
        hi, lo = (k + 1) // 2, k // 2
        a, b = terms[hi], terms[lo]
        level = min(a.level, b.level)
        if level < 1:
            raise ParameterError(
                f"chebyshev degree {order[-1]} exhausts the level budget"
            )
        a = _drop_to_level(evaluator, a, level)
        b = _drop_to_level(evaluator, b, level)
        prod = evaluator.multiply(a, b, relin_key)
        if k % 2 == 0:
            pt = _encode_constant(encoder, -2.0, level, prod.scale)
            sub = evaluator.add_plain(prod, pt)
        else:
            s1_matched = _match_scale(evaluator, encoder, terms[1], level,
                                      prod.scale)
            sub = evaluator.sub(prod, s1_matched)
        terms[k] = evaluator.rescale(sub)

    # -- combine: per-row coefficient plaintexts, tiled over the batch ----
    delta = evaluator.context.params.scale
    parts: List[Ciphertext] = []
    for k in order:
        row_coeffs = [r[k] if k < len(r) else 0.0 for r in rows]
        if all(c == 0 for c in row_coeffs):
            continue
        s_k = terms[k]
        if s_k.level < 1:
            raise ParameterError("chebyshev combine ran out of levels")
        q_next = evaluator.context.q_basis.moduli[s_k.level]
        plain_scale = delta * q_next / s_k.scale
        pts = [
            encoder.encode(
                [c / 2.0] * encoder.num_slots,
                level=s_k.level, scale=plain_scale,
            )
            for c in row_coeffs
        ]
        pt = _stack_plaintexts(pts, row_counts)
        part = evaluator.rescale(
            evaluator.multiply_plain(s_k, pt, plain_scale=plain_scale)
        )
        parts.append(Ciphertext(part.c0, part.c1, part.level, delta))
    deepest = min(p.level for p in parts)
    total = None
    for part in parts:
        part = _drop_to_level(evaluator, part, deepest)
        total = part if total is None else evaluator.add(total, part)
    return stacked_c0(total)


# -- level/scale alignment helpers ---------------------------------------------


def _drop_to_level(evaluator: Evaluator, ct: Ciphertext, level: int) -> Ciphertext:
    """Mod-switch down by dropping towers (exact, no rescale)."""
    if level >= ct.level:
        return ct
    return evaluator.mod_switch_to_level(ct, level)


def _scale_correct(evaluator: Evaluator, ct: Ciphertext,
                   target_scale: float) -> Ciphertext:
    """Multiply by 1 encoded at a corrective scale, then rescale.

    Brings ``ct`` to exactly ``target_scale`` at the cost of one level.
    """
    encoder = Encoder(evaluator.context)
    q_next = evaluator.context.q_basis.moduli[ct.level]
    corr = target_scale * q_next / ct.scale
    pt = encoder.encode([1.0] * encoder.num_slots, level=ct.level, scale=corr)
    bumped = Ciphertext(ct.c0 * pt, ct.c1 * pt, ct.level, ct.scale * corr)
    return evaluator.rescale(bumped)


def _mutual_align(evaluator: Evaluator, a: Ciphertext, b: Ciphertext):
    """Equalize levels and scales so the pair can be added or multiplied."""
    for _ in range(4):
        level = min(a.level, b.level)
        a = _drop_to_level(evaluator, a, level)
        b = _drop_to_level(evaluator, b, level)
        if abs(a.scale - b.scale) <= 0.5:
            return a, b
        if a.scale < b.scale:
            a = _scale_correct(evaluator, a, b.scale)
        else:
            b = _scale_correct(evaluator, b, a.scale)
    raise ParameterError("could not align ciphertext scales")
