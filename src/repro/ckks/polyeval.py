"""Polynomial evaluation on ciphertexts (Horner and power-basis BSGS).

Evaluating activation-function approximations is the other big consumer
of ciphertext multiplications (and hence relinearization key switches) in
private inference.  Two evaluators are provided:

* :func:`evaluate_horner` — depth = degree, minimal ciphertext state;
* :func:`evaluate_power_basis` — precomputes ``x^2, x^4, ...`` and
  combines them (fewer levels for the same degree on shallow chains).

Both manage CKKS scales explicitly: every ciphertext-ciphertext or
ciphertext-plaintext product is followed by a rescale, and constants are
encoded at the running scale so additions stay aligned.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.ckks.encoding import Encoder
from repro.ckks.encrypt import Ciphertext
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeySwitchKey
from repro.errors import ParameterError
from repro.rns.poly import RNSPoly


def _encode_constant(encoder: Encoder, value: float, level: int,
                     scale: float) -> RNSPoly:
    return encoder.encode([value] * encoder.num_slots, level=level, scale=scale)


def _add_constant(evaluator: Evaluator, encoder: Encoder, ct: Ciphertext,
                  value: float) -> Ciphertext:
    pt = _encode_constant(encoder, value, ct.level, ct.scale)
    return evaluator.add_plain(ct, pt, plain_scale=ct.scale)


def _mul_constant(evaluator: Evaluator, encoder: Encoder, ct: Ciphertext,
                  value: float) -> Ciphertext:
    pt = _encode_constant(encoder, value, ct.level, encoder.context.params.scale)
    return evaluator.rescale(evaluator.multiply_plain(ct, pt))


def required_depth_horner(degree: int) -> int:
    """Multiplicative levels Horner consumes for the given degree."""
    return max(degree - 0, 0)


def evaluate_horner(
    evaluator: Evaluator,
    encoder: Encoder,
    ct: Ciphertext,
    coefficients: Sequence[float],
    relin_key: KeySwitchKey,
) -> Ciphertext:
    """``p(x) = c_0 + c_1 x + ... + c_d x^d`` via Horner's rule.

    ``coefficients`` is low-order first.  Consumes ``degree`` levels
    (one ciphertext multiply + rescale per step).
    """
    coeffs = [float(c) for c in coefficients]
    if not coeffs:
        raise ParameterError("need at least one coefficient")
    degree = len(coeffs) - 1
    if degree == 0:
        zero = evaluator.sub(ct, ct)
        return _add_constant(evaluator, encoder, zero, coeffs[0])
    if ct.level < degree:
        raise ParameterError(
            f"degree {degree} needs {degree} levels; ciphertext has {ct.level}"
        )
    # acc = c_d * x  (+ c_{d-1}), then repeatedly acc = acc*x + c_k.
    acc = _mul_constant(evaluator, encoder, ct, coeffs[degree])
    acc = _add_constant(evaluator, encoder, acc, coeffs[degree - 1])
    for k in range(degree - 2, -1, -1):
        x_here = _drop_to_level(evaluator, ct, acc.level)
        acc = evaluator.rescale(evaluator.multiply(acc, x_here, relin_key))
        acc = _add_constant(evaluator, encoder, acc, coeffs[k])
    return acc


def evaluate_power_basis(
    evaluator: Evaluator,
    encoder: Encoder,
    ct: Ciphertext,
    coefficients: Sequence[float],
    relin_key: KeySwitchKey,
) -> Ciphertext:
    """Evaluate via precomputed powers ``x, x^2, x^3, ...``.

    Builds each power from the largest smaller power (depth
    ``ceil(log2 d)`` for the powers of two, same total multiplies as
    Horner but a shallower critical path).
    """
    coeffs = [float(c) for c in coefficients]
    degree = len(coeffs) - 1
    if degree < 1:
        raise ParameterError("power-basis evaluation needs degree >= 1")
    powers: Dict[int, Ciphertext] = {1: ct}
    for k in range(2, degree + 1):
        half = k // 2
        a = powers[half]
        b = powers[k - half]
        a, b = _mutual_align(evaluator, a, b)
        powers[k] = evaluator.rescale(evaluator.multiply(a, b, relin_key))
    # Combine: encode each coefficient at a corrective plaintext scale so
    # every term comes out at exactly the canonical scale Delta, then the
    # terms only need level alignment (an exact tower drop) to be summed.
    delta = evaluator.context.params.scale
    terms: List[Ciphertext] = []
    for k in range(1, degree + 1):
        if coeffs[k] == 0.0:
            continue
        power = powers[k]
        q_next = evaluator.context.q_basis.moduli[power.level]
        plain_scale = delta * q_next / power.scale
        pt = encoder.encode(
            [coeffs[k]] * encoder.num_slots, level=power.level, scale=plain_scale
        )
        term = evaluator.rescale(
            evaluator.multiply_plain(power, pt, plain_scale=plain_scale)
        )
        terms.append(term)
    if not terms:
        zero = evaluator.sub(ct, ct)
        return _add_constant(evaluator, encoder, zero, coeffs[0])
    deepest = min(t.level for t in terms)
    total = None
    for term in terms:
        term = _drop_to_level(evaluator, term, deepest)
        total = term if total is None else evaluator.add(total, term)
    return _add_constant(evaluator, encoder, total, coeffs[0])


# -- level/scale alignment helpers ---------------------------------------------


def _drop_to_level(evaluator: Evaluator, ct: Ciphertext, level: int) -> Ciphertext:
    """Mod-switch down by dropping towers (exact, no rescale)."""
    if level >= ct.level:
        return ct
    return evaluator.mod_switch_to_level(ct, level)


def _scale_correct(evaluator: Evaluator, ct: Ciphertext,
                   target_scale: float) -> Ciphertext:
    """Multiply by 1 encoded at a corrective scale, then rescale.

    Brings ``ct`` to exactly ``target_scale`` at the cost of one level.
    """
    encoder = Encoder(evaluator.context)
    q_next = evaluator.context.q_basis.moduli[ct.level]
    corr = target_scale * q_next / ct.scale
    pt = encoder.encode([1.0] * encoder.num_slots, level=ct.level, scale=corr)
    bumped = Ciphertext(ct.c0 * pt, ct.c1 * pt, ct.level, ct.scale * corr)
    return evaluator.rescale(bumped)


def _mutual_align(evaluator: Evaluator, a: Ciphertext, b: Ciphertext):
    """Equalize levels and scales so the pair can be added or multiplied."""
    for _ in range(4):
        level = min(a.level, b.level)
        a = _drop_to_level(evaluator, a, level)
        b = _drop_to_level(evaluator, b, level)
        if abs(a.scale - b.scale) <= 0.5:
            return a, b
        if a.scale < b.scale:
            a = _scale_correct(evaluator, a, b.scale)
        else:
            b = _scale_correct(evaluator, b, a.scale)
    raise ParameterError("could not align ciphertext scales")
