"""CKKS encoder: complex vectors <-> integer polynomial coefficients.

Implements the canonical embedding ``sigma: R -> C^{N/2}``.  A length-``n``
slot vector (``n = N/2``) is placed at the primitive ``2N``-th roots of
unity indexed by powers of five — the ordering that makes slot rotation
correspond to the Galois automorphism ``X -> X^{5^r}`` — then pulled back
through an inverse FFT and rounded at scale ``Delta``.

The implementation uses length-``2N`` numpy FFTs: evaluations of a real
negacyclic polynomial at all ``2N``-th roots form a spectrum supported on
odd frequencies with the conjugate symmetry of real signals, so encode is
"fill the odd bins, inverse FFT, truncate" and decode is the reverse.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EncodingError
from repro.ckks.context import CKKSContext
from repro.rns.basis import RNSBasis
from repro.rns.poly import Domain, RNSPoly


class Encoder:
    """Canonical-embedding encoder bound to one context."""

    def __init__(self, context: CKKSContext):
        self.context = context
        n = context.params.n
        self.num_slots = n // 2
        #: Root index for slot j: 5^j mod 2N (and its conjugate 2N - 5^j).
        self._rot_group = np.empty(self.num_slots, dtype=np.int64)
        power = 1
        for j in range(self.num_slots):
            self._rot_group[j] = power
            power = power * 5 % (2 * n)

    # -- float <-> coefficient maps ------------------------------------------

    def embed(self, slots: np.ndarray) -> np.ndarray:
        """Slot vector (length N/2, complex) -> real coefficient vector (length N)."""
        slots = np.asarray(slots, dtype=np.complex128)
        if slots.shape != (self.num_slots,):
            raise EncodingError(
                f"expected {self.num_slots} slots, got shape {slots.shape}"
            )
        n = self.context.params.n
        spectrum = np.zeros(2 * n, dtype=np.complex128)
        spectrum[self._rot_group] = 2.0 * slots
        spectrum[2 * n - self._rot_group] = 2.0 * np.conj(slots)
        coeffs = np.fft.ifft(spectrum)[:n]
        return np.real(coeffs)

    def project(self, coeffs: np.ndarray) -> np.ndarray:
        """Real coefficient vector (length N) -> slot vector (length N/2)."""
        n = self.context.params.n
        coeffs = np.asarray(coeffs, dtype=np.float64)
        if coeffs.shape != (n,):
            raise EncodingError(f"expected {n} coefficients, got {coeffs.shape}")
        spectrum = np.fft.fft(coeffs, 2 * n)
        return spectrum[self._rot_group]

    # -- plaintext encode / decode ---------------------------------------------

    def encode(self, values, level: int | None = None, scale: float | None = None) -> RNSPoly:
        """Encode a slot vector (or scalar broadcast) into an EVAL-domain poly.

        ``values`` may be a scalar, a real/complex sequence of length
        ``<= N/2`` (zero-padded), or exactly ``N/2`` slots.
        """
        params = self.context.params
        if level is None:
            level = params.max_level
        if scale is None:
            scale = params.scale
        slots = self._as_slots(values)
        coeffs = self.embed(slots) * scale
        rounded = np.round(coeffs)
        limit = self.context.level_basis(level).product / 2
        if np.max(np.abs(rounded)) >= limit:
            raise EncodingError(
                "encoded coefficients exceed Q/2: message too large for scale/level"
            )
        ints = [int(c) for c in rounded]
        basis = self.context.level_basis(level)
        return RNSPoly.from_integers(basis, ints, domain=Domain.EVAL)

    def decode(self, poly: RNSPoly, scale: float | None = None) -> np.ndarray:
        """Decode an EVAL/COEFF-domain polynomial back to N/2 complex slots.

        CRT composition goes straight to ``float64`` through the limb
        engine (:meth:`repro.rns.basis.RNSBasis.compose_real`) — decode
        never materializes per-coefficient python big integers.
        """
        if scale is None:
            scale = self.context.params.scale
        coeff_poly = poly.to_coeff()
        coeffs = coeff_poly.basis.compose_real(coeff_poly.data)
        return self.project(coeffs / scale)

    def _as_slots(self, values) -> np.ndarray:
        arr = np.atleast_1d(np.asarray(values, dtype=np.complex128))
        if arr.ndim != 1 or arr.size > self.num_slots:
            raise EncodingError(
                f"message must be a vector of at most {self.num_slots} values"
            )
        if arr.size == self.num_slots:
            return arr
        padded = np.zeros(self.num_slots, dtype=np.complex128)
        padded[: arr.size] = arr
        return padded
