"""Cross-ciphertext batching: evaluate B same-level ciphertexts at once.

PR 4's kernels batch the towers *within* one polynomial; this module adds
the second axis.  A batched ciphertext is an ordinary
:class:`~repro.ckks.encrypt.Ciphertext` whose halves are
:class:`~repro.rns.poly.PolyBatch` stacks of ``(B, L, N)`` residues —
the dataclass's structural invariants (shared basis, ``level + 1``
towers) hold unchanged, so the generic circuit code (BSGS linear
transforms, the Chebyshev ladder, the whole bootstrap pipeline) runs on
a batch without modification.  Only the operations that touch hybrid key
switching or the rescale kernel need the batch-aware
:class:`BatchEvaluator` below; everything else is plain broadcast
arithmetic.

Because every batched kernel is bit-identical to looping its scalar
counterpart over the members, an entire batched circuit is bit-identical
to running the circuit B times — which is exactly what
``tests/test_batch.py`` asserts, end to end through bootstrapping.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.ckks.encrypt import Ciphertext
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeySwitchKey, rotation_galois_element
from repro.ckks.keyswitch import (
    apply_evk_batch,
    key_switch_batch,
    mod_down_pair_batch,
    mod_up_all_batch,
)
from repro.errors import ParameterError
from repro.ntt.batch import get_batch_ntt
from repro.rns import dispatch
from repro.rns.poly import Domain, PolyBatch, automorphism_stacked_batch

__all__ = [
    "BatchShapeError",
    "BatchEvaluator",
    "stack_ciphertexts",
    "unstack_ciphertexts",
    "is_batched",
    "batch_size",
]


class BatchShapeError(ParameterError):
    """Members of a ciphertext batch do not share level/scale/degree.

    The message is located like an analysis diagnostic —
    ``batch[i]: ...`` names the first offending member — so callers can
    tell *which* submission broke a coalesced group.
    """


def stack_ciphertexts(cts: Sequence[Ciphertext]) -> Ciphertext:
    """Stack B same-level ciphertexts into one batched ciphertext.

    All members must share level, scale (within the 0.5 addition
    tolerance) and ring degree; a mismatch raises :class:`BatchShapeError`
    naming the offending index.
    """
    cts = list(cts)
    if not cts:
        raise BatchShapeError("cannot stack an empty ciphertext batch")
    head = cts[0]
    for i, ct in enumerate(cts[1:], start=1):
        if ct.level != head.level:
            raise BatchShapeError(
                f"batch[{i}]: level {ct.level} != batch[0] level "
                f"{head.level} — mod-switch members to a shared level "
                f"before batching"
            )
        if abs(ct.scale - head.scale) > 0.5:
            raise BatchShapeError(
                f"batch[{i}]: scale {ct.scale:g} != batch[0] scale "
                f"{head.scale:g} — rescale/align members before batching"
            )
        if ct.n != head.n:
            raise BatchShapeError(
                f"batch[{i}]: ring degree {ct.n} != batch[0] degree {head.n}"
            )
    return Ciphertext(
        PolyBatch.stack([ct.c0 for ct in cts]),
        PolyBatch.stack([ct.c1 for ct in cts]),
        head.level,
        head.scale,
    )


def unstack_ciphertexts(ct: Ciphertext) -> List[Ciphertext]:
    """Split a batched ciphertext back into its B members."""
    if not is_batched(ct):
        return [ct.copy()]
    c0s = ct.c0.unstack()
    c1s = ct.c1.unstack()
    return [
        Ciphertext(a, b, ct.level, ct.scale) for a, b in zip(c0s, c1s)
    ]


def is_batched(ct: Ciphertext) -> bool:
    return isinstance(ct.c0, PolyBatch)


def batch_size(ct: Ciphertext) -> int:
    return ct.c0.batch_size if is_batched(ct) else 1


class BatchEvaluator(Evaluator):
    """Evaluator for ciphertexts whose halves are ``(B, L, N)`` batches.

    Inherits every linear operation from :class:`Evaluator` — broadcast
    arithmetic on :class:`PolyBatch` halves needs no override — and
    replaces the four kernels with a per-polynomial shape (HKS, rescale,
    Galois, hoisting) with their batch-axis counterparts, so B
    ciphertexts pay one kernel dispatch per stage instead of B.

    Results are bit-identical to running the base evaluator member by
    member (under either kernel mode).
    """

    #: Advertises the batched HKS path to the bootstrap pipeline, which
    #: then stacks EvalMod's real/imag Chebyshev branches into one ladder.
    supports_batched_hks = True

    # -- key-switched operations ------------------------------------------------

    def multiply(self, x: Ciphertext, y: Ciphertext,
                 relin_key: KeySwitchKey) -> Ciphertext:
        self._check_levels(x, y)
        d0 = x.c0 * y.c0
        d1 = x.c0 * y.c1 + x.c1 * y.c0
        d2 = x.c1 * y.c1
        ks0, ks1 = key_switch_batch(self.context, d2, relin_key, x.level)
        return Ciphertext(d0 + ks0, d1 + ks1, x.level, x.scale * y.scale)

    def apply_galois(self, x: Ciphertext, galois_element: int,
                     key: KeySwitchKey) -> Ciphertext:
        rot0, rot1 = automorphism_stacked_batch([x.c0, x.c1], galois_element)
        ks0, ks1 = key_switch_batch(self.context, rot1, key, x.level)
        return Ciphertext(rot0 + ks0, ks1, x.level, x.scale)

    def hoisted_rotations(self, x: Ciphertext,
                          galois_keys: Dict[int, KeySwitchKey]
                          ) -> Dict[int, Ciphertext]:
        """Batched Halevi-Shoup hoisting: one shared ModUp for the whole
        batch, then one stacked automorphism/ApplyKey/ModDown per step."""
        level = x.level
        n = self.context.params.n
        extended = mod_up_all_batch(self.context, x.c1, level)
        results: Dict[int, Ciphertext] = {}
        for steps, key in galois_keys.items():
            g = rotation_galois_element(steps, n)
            rot_c0, *rot_digits = automorphism_stacked_batch(
                [x.c0, *extended], g
            )
            acc0, acc1 = apply_evk_batch(self.context, rot_digits, key, level)
            ks0, ks1 = mod_down_pair_batch(self.context, acc0, acc1, level)
            results[steps] = Ciphertext(rot_c0 + ks0, ks1, level, x.scale)
        return results

    # -- rescale ------------------------------------------------------------------

    def rescale(self, x: Ciphertext) -> Ciphertext:
        level = x.level
        if level == 0:
            raise ParameterError("cannot rescale a level-0 ciphertext")
        q_last = self.context.q_basis.moduli[level]
        eval_domain = (
            x.c0.domain is Domain.EVAL and x.c1.domain is Domain.EVAL
        )
        if not (dispatch.batched_enabled() and eval_domain):
            # Looped reference: rescale member by member through the base
            # evaluator (which itself falls back to the per-tower loop).
            members = [
                Evaluator.rescale(self, ct) for ct in unstack_ciphertexts(x)
            ]
            return stack_ciphertexts(members)
        # The stacked EVAL-domain rescale of Evaluator.rescale with both
        # halves of every member folded onto the batch axis: one 2B-row
        # INTT of the dropped towers, one broadcast centered correction,
        # one 2B-stack NTT back.
        n = x.c0.n
        bsz = x.c0.batch_size
        inv = self.context.rescale_inverses(level)
        basis = self.context.level_basis(level - 1)
        both = np.concatenate([x.c0.data, x.c1.data])  # (2B, level+1, N)
        last_coeff = get_batch_ntt(n, (q_last,)).inverse(both[:, level:])
        half = q_last // 2
        # Conditional corrections as bool-scaled adds: every difference
        # below stays in (-q, q), so one add of q*(mask) replaces a full
        # int64 ``%`` pass (which numpy cannot vectorize).
        centered = last_coeff - q_last * (last_coeff > half)
        # broadcast to (2B, level, N); |centered| <= q_last/2 < q_i
        correction = centered + basis.q_column * (centered < 0)
        corr_eval = get_batch_ntt(n, basis.moduli).forward(correction)
        inv_col = np.array(list(inv), dtype=np.int64)[:, None]
        rows = both[:, :level] - corr_eval
        rows += basis.q_column * (rows < 0)
        rows = rows * inv_col % basis.q_column
        c0 = PolyBatch(basis, rows[:bsz].copy(), Domain.EVAL)
        c1 = PolyBatch(basis, rows[bsz:].copy(), Domain.EVAL)
        return Ciphertext(c0, c1, level - 1, x.scale / q_last)
