"""Key material: secret/public keys and hybrid key-switching keys.

A :class:`KeySwitchKey` holds ``dnum`` pairs over the extended basis
``Q ++ P`` — the ``evk`` of the paper, whose size
``dnum x 2 x N x (l+K)`` words drives the entire CiFlow analysis.  The
hidden plaintext of digit ``d`` is ``P * T_d * s_from`` with the gadget
factor ``T_d`` from :meth:`CKKSContext.digit_gadget_scalars`, so that

    sum_d ModUp(c_d) . evk_d  =  P * c * s_from  + noise   (mod PQ)

which ModDown divides back by ``P``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.ckks.context import CKKSContext
from repro.errors import KeySwitchError
from repro.rns.basis import RNSBasis
from repro.rns.poly import Domain, RNSPoly


def sample_ternary(n: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform ternary coefficients in {-1, 0, 1}."""
    return rng.integers(-1, 2, n, dtype=np.int64)


def sample_sparse_ternary(n: int, weight: int,
                          rng: np.random.Generator) -> np.ndarray:
    """Ternary coefficients with exactly ``weight`` non-zeros (signs uniform).

    Sparse secrets bound the ModRaise overflow polynomial: after lifting a
    level-0 ciphertext to the full chain, ``c0 + c1*s = m + e + q_0*I``
    with ``|I| <= (weight + 1) / 2`` — the interval EvalMod's sine
    approximation must cover during bootstrapping.
    """
    coeffs = np.zeros(n, dtype=np.int64)
    support = rng.choice(n, size=weight, replace=False)
    coeffs[support] = rng.choice(np.array([-1, 1], dtype=np.int64), size=weight)
    return coeffs


def sample_error(n: int, std: float, rng: np.random.Generator) -> np.ndarray:
    """Rounded Gaussian error coefficients."""
    return np.round(rng.normal(0.0, std, n)).astype(np.int64)


@dataclass
class SecretKey:
    """Ternary secret ``s`` stored both as raw coefficients and per-basis polys."""

    coeffs: np.ndarray
    context: CKKSContext

    def poly(self, basis: RNSBasis) -> RNSPoly:
        """The secret embedded in ``basis`` (EVAL domain)."""
        return RNSPoly.from_integers(basis, list(self.coeffs), domain=Domain.EVAL)


@dataclass
class PublicKey:
    """Encryption key ``(b, a) = (-a*s + e, a)`` over the chain basis."""

    b: RNSPoly
    a: RNSPoly


@dataclass
class KeySwitchKey:
    """Hybrid evk: per-digit pairs ``(b_d, a_d)`` over the full basis ``Q ++ P``."""

    digit_pairs: List[Tuple[RNSPoly, RNSPoly]]

    @property
    def dnum(self) -> int:
        return len(self.digit_pairs)

    def restricted(self, context: CKKSContext, level: int) -> List[Tuple[RNSPoly, RNSPoly]]:
        """Digit pairs restricted to the active towers at ``level``.

        Selects rows ``q_0..q_level`` plus all ``p`` rows from each pair and
        drops digits that have no active tower at this level.
        """
        num_q = context.params.num_levels
        rows = list(range(level + 1)) + [num_q + j for j in range(len(context.p_basis))]
        active_digits = context.num_digits(level)
        if active_digits > self.dnum:
            raise KeySwitchError("key has fewer digits than the level requires")
        return [
            (b.select_towers(rows), a.select_towers(rows))
            for b, a in self.digit_pairs[:active_digits]
        ]


class KeyGenerator:
    """Samples all key material for one context."""

    def __init__(self, context: CKKSContext, seed: int | None = None):
        self.context = context
        self.rng = np.random.default_rng(seed)
        n = context.params.n
        weight = context.params.hamming_weight
        coeffs = (
            sample_ternary(n, self.rng) if weight is None
            else sample_sparse_ternary(n, weight, self.rng)
        )
        self.secret_key = SecretKey(coeffs, context)

    # -- encryption keys ---------------------------------------------------------

    def public_key(self) -> PublicKey:
        ctx = self.context
        basis = ctx.q_basis
        n = ctx.params.n
        a = RNSPoly.random_uniform(basis, n, self.rng, domain=Domain.EVAL)
        e = RNSPoly.from_integers(
            basis,
            list(sample_error(n, ctx.params.error_std, self.rng)),
            domain=Domain.EVAL,
        )
        s = self.secret_key.poly(basis)
        return PublicKey(b=(-(a * s)) + e, a=a)

    # -- switching keys -----------------------------------------------------------

    def switch_key(self, s_from_coeffs: np.ndarray) -> KeySwitchKey:
        """Key converting ciphertext parts under ``s_from`` back to ``s``.

        ``s_from_coeffs`` are integer coefficients of the source secret
        (e.g. ``s^2`` for relinearisation, ``kappa_g(s)`` for rotation).
        """
        ctx = self.context
        basis = ctx.full_basis
        n = ctx.params.n
        s = self.secret_key.poly(basis)
        s_from = RNSPoly.from_integers(basis, list(s_from_coeffs), domain=Domain.EVAL)
        pairs: List[Tuple[RNSPoly, RNSPoly]] = []
        for digit in range(ctx.params.dnum):
            a_d = RNSPoly.random_uniform(basis, n, self.rng, domain=Domain.EVAL)
            e_d = RNSPoly.from_integers(
                basis,
                list(sample_error(n, ctx.params.error_std, self.rng)),
                domain=Domain.EVAL,
            )
            gadget = ctx.digit_gadget_scalars(digit)
            b_d = (-(a_d * s)) + e_d + s_from.scale_by(gadget)
            pairs.append((b_d, a_d))
        return KeySwitchKey(pairs)

    def relinearization_key(self) -> KeySwitchKey:
        """evk for ``s^2 -> s`` (used after ciphertext-ciphertext multiply)."""
        s = self.secret_key.poly(self.context.q_basis)
        s_sq = s * s
        coeffs = s_sq.basis.compose(s_sq.to_coeff().data, centered=True)
        return self.switch_key(np.array([int(c) for c in coeffs], dtype=object))

    def galois_key(self, galois_element: int) -> KeySwitchKey:
        """evk for ``kappa_g(s) -> s`` (used after slot rotation by ``g``)."""
        s = RNSPoly.from_integers(
            self.context.q_basis, list(self.secret_key.coeffs), domain=Domain.COEFF
        )
        rotated = s.automorphism(galois_element)
        coeffs = rotated.basis.compose(rotated.data, centered=True)
        return self.switch_key(np.array([int(c) for c in coeffs], dtype=object))

    def rotation_key(self, steps: int) -> KeySwitchKey:
        """Galois key for a cyclic slot rotation by ``steps``."""
        return self.galois_key(rotation_galois_element(steps, self.context.params.n))

    def conjugation_key(self) -> KeySwitchKey:
        """Galois key for complex conjugation (``g = 2N - 1``)."""
        return self.galois_key(2 * self.context.params.n - 1)


def rotation_galois_element(steps: int, n: int) -> int:
    """Galois element ``5^steps mod 2N`` implementing a rotation by ``steps``."""
    return pow(5, steps % (n // 2), 2 * n)
