"""Homomorphic evaluator: add, multiply, rescale, relinearize, rotate.

Multiplication and rotation are the two operations that trigger hybrid key
switching — the paper's motivating observation is that this key switching
dominates end-to-end runtime (~70% for private inference).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.ckks.context import CKKSContext
from repro.ckks.encrypt import Ciphertext
from repro.ckks.keys import KeySwitchKey, rotation_galois_element
from repro.ckks.keyswitch import key_switch
from repro.errors import KeySwitchError, ParameterError
from repro.ntt.batch import get_batch_ntt
from repro.rns import dispatch
from repro.rns.poly import Domain, RNSPoly, automorphism_stacked


class Evaluator:
    """Stateless homomorphic operations over one context.

    Keys are passed per call (relinearisation / Galois) so callers control
    which keys exist — mirroring how accelerator runtimes stage ``evks``.
    """

    def __init__(self, context: CKKSContext):
        self.context = context

    # -- linear operations ------------------------------------------------------

    def add(self, x: Ciphertext, y: Ciphertext) -> Ciphertext:
        self._check_aligned(x, y)
        return Ciphertext(x.c0 + y.c0, x.c1 + y.c1, x.level, x.scale)

    def sub(self, x: Ciphertext, y: Ciphertext) -> Ciphertext:
        self._check_aligned(x, y)
        return Ciphertext(x.c0 - y.c0, x.c1 - y.c1, x.level, x.scale)

    def negate(self, x: Ciphertext) -> Ciphertext:
        return Ciphertext(-x.c0, -x.c1, x.level, x.scale)

    def add_plain(self, x: Ciphertext, plaintext: RNSPoly,
                  plain_scale: float | None = None) -> Ciphertext:
        """Add an encoded plaintext (which must share the ciphertext's scale).

        ``plain_scale`` is the scale the plaintext was encoded at; it is
        validated against ``x.scale`` exactly as :meth:`_check_aligned`
        validates ciphertext pairs — adding a plaintext encoded at a
        different scale silently corrupts the message.  ``None`` asserts
        the plaintext was encoded at ``x.scale``.
        """
        if plain_scale is not None and abs(plain_scale - x.scale) > 0.5:
            raise ParameterError(
                f"plaintext scale mismatch: {plain_scale} vs ciphertext "
                f"{x.scale} (re-encode at the ciphertext's scale)"
            )
        pt = self._align_plain(x, plaintext)
        return Ciphertext(x.c0 + pt, x.c1.copy(), x.level, x.scale)

    def multiply_plain(self, x: Ciphertext, plaintext: RNSPoly,
                       plain_scale: float | None = None) -> Ciphertext:
        """Scale multiplies; callers usually follow with :meth:`rescale`."""
        pt = self._align_plain(x, plaintext)
        if plain_scale is None:
            plain_scale = self.context.params.scale
        if plain_scale <= 0:
            raise ParameterError(
                f"plaintext scale must be positive, got {plain_scale}"
            )
        return Ciphertext(x.c0 * pt, x.c1 * pt, x.level, x.scale * plain_scale)

    # -- multiplication ---------------------------------------------------------

    def multiply(self, x: Ciphertext, y: Ciphertext,
                 relin_key: KeySwitchKey) -> Ciphertext:
        """Ciphertext-ciphertext multiply, relinearised via hybrid KS.

        The tensor product leaves a degree-2 part ``d2`` decryptable only by
        ``s^2``; ``relin_key`` switches it back under ``s`` (this is one of
        the two HKS call sites the paper analyses).  Operands must share a
        level; scales need not match (the product's scale is their product).
        """
        self._check_levels(x, y)
        d0 = x.c0 * y.c0
        d1 = x.c0 * y.c1 + x.c1 * y.c0
        d2 = x.c1 * y.c1
        ks0, ks1 = key_switch(self.context, d2, relin_key, x.level)
        return Ciphertext(d0 + ks0, d1 + ks1, x.level, x.scale * y.scale)

    def square(self, x: Ciphertext, relin_key: KeySwitchKey) -> Ciphertext:
        return self.multiply(x, x, relin_key)

    def rescale(self, x: Ciphertext) -> Ciphertext:
        """Drop the top tower and divide by ``q_level`` (scale management)."""
        level = x.level
        if level == 0:
            raise ParameterError("cannot rescale a level-0 ciphertext")
        q_last = self.context.q_basis.moduli[level]
        inv = self.context.rescale_inverses(level)
        eval_domain = (
            x.c0.domain is Domain.EVAL and x.c1.domain is Domain.EVAL
        )
        if not (dispatch.batched_enabled() and eval_domain):
            # Looped reference path; also handles COEFF-domain inputs,
            # which the stacked EVAL-domain kernel below cannot.
            c0 = self._rescale_poly(x.c0, level, inv)
            c1 = self._rescale_poly(x.c1, level, inv)
            return Ciphertext(c0, c1, level - 1, x.scale / q_last)
        # Both halves share every constant, and the whole rescale happens
        # in the EVAL domain: the NTT is a ring homomorphism, so
        # ``NTT((c_i - centered) * inv) == (NTT(c_i) - NTT(centered)) * inv``
        # exactly.  Only the dropped top towers round-trip to COEFF (a
        # 2-row INTT) to produce the centered correction polynomial, whose
        # per-modulus NTT images are then subtracted from the retained
        # EVAL rows — bit-identical to rescaling c0 and c1 separately in
        # the coefficient domain.
        n = x.c0.n
        basis = self.context.level_basis(level - 1)
        last = np.stack([x.c0.data[level], x.c1.data[level]])
        last_coeff = get_batch_ntt(n, (q_last, q_last)).inverse(last)
        half = q_last // 2
        centered = np.where(last_coeff > half, last_coeff - q_last, last_coeff)
        correction = np.repeat(centered, level, axis=0) % np.concatenate(
            [basis.q_column, basis.q_column]
        )
        q_col2 = np.concatenate([basis.q_column, basis.q_column])
        corr_eval = get_batch_ntt(n, basis.moduli * 2).forward(correction)
        kept = np.concatenate([x.c0.data[:level], x.c1.data[:level]])
        inv_col2 = np.array(list(inv) * 2, dtype=np.int64)[:, None]
        rows = (kept - corr_eval) % q_col2
        rows = rows * inv_col2 % q_col2
        c0 = RNSPoly(basis, rows[:level].copy(), Domain.EVAL)
        c1 = RNSPoly(basis, rows[level:].copy(), Domain.EVAL)
        return Ciphertext(c0, c1, level - 1, x.scale / q_last)

    def _rescale_poly(self, poly: RNSPoly, level: int, inv_scalars) -> RNSPoly:
        """Per-tower rescale loop — the retained looped reference path."""
        coeff = poly.to_coeff()
        q_last = self.context.q_basis.moduli[level]
        last = coeff.data[level]
        half = q_last // 2
        centered_last = np.where(last > half, last - q_last, last)
        rows = []
        for i in range(level):
            q_i = self.context.q_basis.moduli[i]
            diff = (coeff.data[i] - centered_last) % q_i
            rows.append(diff * inv_scalars[i] % q_i)
        out = RNSPoly(
            self.context.level_basis(level - 1), np.stack(rows), Domain.COEFF
        )
        return out.to_eval()

    def mod_switch_to_level(self, x: Ciphertext, level: int) -> Ciphertext:
        """Drop towers down to ``level`` (exact, scale-preserving).

        Unlike :meth:`rescale` this does not divide the message; it only
        aligns levels so ciphertexts produced at different depths can be
        combined.
        """
        if level > x.level:
            raise ParameterError(
                f"cannot mod-switch up: {x.level} -> {level}"
            )
        if level == x.level:
            return x.copy()
        rows = range(level + 1)
        return Ciphertext(
            x.c0.select_towers(rows), x.c1.select_towers(rows), level, x.scale
        )

    # -- rotations ---------------------------------------------------------------

    def rotate(self, x: Ciphertext, steps: int,
               galois_key: KeySwitchKey | None) -> Ciphertext:
        """Cyclic slot rotation by ``steps`` (the other HKS call site).

        ``steps`` is reduced modulo the slot count (``N/2``); a rotation
        that normalizes to zero returns a copy without touching the key —
        the Galois element would be 1, so a full hybrid key switch would
        only add noise for a no-op.  ``galois_key`` may be ``None`` in
        that case.
        """
        steps %= self.context.params.n // 2
        if steps == 0:
            return x.copy()
        if galois_key is None:
            raise KeySwitchError(f"rotation by {steps} steps needs a Galois key")
        g = rotation_galois_element(steps, self.context.params.n)
        return self.apply_galois(x, g, galois_key)

    def hoisted_rotations(self, x: Ciphertext,
                          galois_keys: Dict[int, KeySwitchKey]
                          ) -> Dict[int, Ciphertext]:
        """Rotate ``x`` by every step in ``galois_keys`` sharing one ModUp.

        Thin dispatch to :func:`repro.ckks.hoisting.hoisted_rotations`;
        routing it through the evaluator lets instrumentation (and
        subclasses) observe batched rotations the same way as single ones.
        """
        from repro.ckks.hoisting import hoisted_rotations
        return hoisted_rotations(self.context, x, galois_keys)

    def conjugate(self, x: Ciphertext, conj_key: KeySwitchKey) -> Ciphertext:
        return self.apply_galois(x, 2 * self.context.params.n - 1, conj_key)

    def apply_galois(self, x: Ciphertext, galois_element: int,
                     key: KeySwitchKey) -> Ciphertext:
        """Apply ``X -> X^g`` then key-switch the rotated ``c1`` back to ``s``."""
        rot0, rot1 = automorphism_stacked([x.c0, x.c1], galois_element)
        ks0, ks1 = key_switch(self.context, rot1, key, x.level)
        return Ciphertext(rot0 + ks0, ks1, x.level, x.scale)

    # -- helpers -------------------------------------------------------------------

    def _check_levels(self, x: Ciphertext, y: Ciphertext) -> None:
        if x.level != y.level:
            raise ParameterError(
                f"level mismatch: {x.level} vs {y.level} (mod-switch first)"
            )

    def _check_aligned(self, x: Ciphertext, y: Ciphertext) -> None:
        self._check_levels(x, y)
        if abs(x.scale - y.scale) > 0.5:
            raise ParameterError(f"scale mismatch: {x.scale} vs {y.scale}")

    def _align_plain(self, x: Ciphertext, plaintext: RNSPoly) -> RNSPoly:
        if plaintext.num_towers == x.level + 1:
            return plaintext
        if plaintext.num_towers < x.level + 1:
            raise ParameterError("plaintext encoded at a lower level than ciphertext")
        return plaintext.select_towers(range(x.level + 1))
