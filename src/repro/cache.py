"""Cross-process disk cache for precomputed kernel tables.

Building an NTT twiddle table costs a ``2N``-th root-of-unity search plus
``N`` modular multiplies per ``(N, q)`` pair, and a BConv hat table costs
``|B| x |T|`` big-integer reductions per basis pair.  Within one process
those are amortized by ``lru_cache``; across processes — the CLI, a test
run, a sharded functional workload — every cold interpreter used to pay
them again.  This module persists the tables under a versioned cache
directory so a cold interpreter skips regeneration entirely.

Layout: one ``.npz`` file per table, named ``<kind>-<fingerprint>.npz``
with an embedded format-version array.  Writes are atomic
(``os.replace`` of a same-directory temp file) so concurrent processes
never observe a torn file; corrupted or stale-version files are treated
as misses and quietly rewritten.

Corruption policy: a file that exists but cannot be parsed is
*quarantined* — renamed aside to ``<name>.quarantine`` and logged — then
treated as a miss, so one damaged entry (torn write on a crashed host,
bit rot, a truncating copy) costs one recomputation instead of crashing
every worker that touches it.  A clean version mismatch is just a miss.

Configuration:

- ``REPRO_CACHE_DIR`` — overrides the cache location.  Set it to an
  empty string to disable disk caching entirely.
- default — ``$XDG_CACHE_HOME/repro-kernels`` (``~/.cache/repro-kernels``).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterable, Optional

import numpy as np

from repro.faults import fault_point

#: Bump when the on-disk layout of any cached table changes; stale files
#: are treated as misses and rewritten in the new format.
CACHE_VERSION = 1

_ENV_VAR = "REPRO_CACHE_DIR"

#: Corrupt entries quarantined by this process (observability for tests
#: and chaos harnesses).
QUARANTINED = 0

logger = logging.getLogger("repro.cache")


def cache_dir() -> Optional[Path]:
    """Resolve the active cache directory, or ``None`` when disabled.

    The environment variable is consulted on every call (not captured at
    import time) so tests and subprocesses can repoint or disable the
    cache without reloading the library.
    """
    override = os.environ.get(_ENV_VAR)
    if override is not None:
        if override == "":
            return None
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-kernels"


def fingerprint(parts: Iterable) -> str:
    """Stable short hex digest of a heterogeneous key tuple.

    Used for keys too long to embed in a filename, e.g. the full moduli
    lists of a BConv basis pair.
    """
    text = "|".join(str(p) for p in parts)
    return hashlib.sha256(text.encode()).hexdigest()[:24]


def _path_for(kind: str, key: str) -> Optional[Path]:
    root = cache_dir()
    if root is None:
        return None
    return root / f"{kind}-{key}.npz"


def _quarantine(path: Path, reason: BaseException) -> None:
    """Move an unparseable entry aside so it cannot poison readers again."""
    global QUARANTINED
    try:
        os.replace(path, path.with_name(path.name + ".quarantine"))
    except OSError:
        pass
    QUARANTINED += 1
    logger.warning(
        "quarantined corrupt cache entry %s (%s: %s); recomputing",
        path.name, type(reason).__name__, reason,
    )


def _damage(path: Path) -> None:
    """Truncate an entry in place (the ``corrupt`` fault action's effect)."""
    try:
        size = path.stat().st_size
        with open(path, "r+b") as handle:
            handle.truncate(max(1, size // 2))
    except OSError:
        pass


def load(kind: str, key: str) -> Optional[Dict[str, np.ndarray]]:
    """Fetch cached arrays for ``(kind, key)``; ``None`` on any miss.

    A file that exists but cannot be parsed is quarantined (renamed to
    ``<name>.quarantine``, logged) and reported as a miss; a clean
    :data:`CACHE_VERSION` mismatch is just a miss.  Either way the
    caller regenerates and :func:`store` rewrites the entry atomically —
    a corrupt entry never crashes the process that finds it.
    """
    path = _path_for(kind, key)
    if path is None or not path.is_file():
        return None
    if fault_point("cache.load", context=f"{kind}:{key}") == "corrupt":
        _damage(path)
    try:
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
    except Exception as exc:
        _quarantine(path, exc)
        return None
    version = arrays.pop("__cache_version__", None)
    if version is None or int(version) != CACHE_VERSION:
        return None
    return arrays


def store(kind: str, key: str, arrays: Dict[str, np.ndarray]) -> bool:
    """Persist arrays for ``(kind, key)``; returns False when disabled.

    Best-effort: an unwritable cache directory degrades to a no-op
    rather than failing the computation that produced the tables.
    """
    path = _path_for(kind, key)
    if path is None:
        return False
    if fault_point("cache.store", context=f"{kind}:{key}") == "corrupt":
        # Simulate a torn write that bypassed the atomic-rename protocol
        # (e.g. a crashed host flushing half a page): publish garbage at
        # the final path so the next load exercises quarantine+recompute.
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(b"\x93TORN-CACHE-ENTRY")
        except OSError:
            return False
        return True
    payload = dict(arrays)
    payload["__cache_version__"] = np.int64(CACHE_VERSION)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        # Each writer gets its own mkstemp-unique temp file in the target
        # directory, fully writes and flushes it, then os.replace()s it
        # over the entry.  Two racing serve workers therefore both
        # publish complete files; whichever rename lands last wins, and a
        # concurrent reader sees either the old or the new entry — never
        # a torn one.
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except OSError:
        return False
    return True


# -- JSON entries ---------------------------------------------------------------
#
# The serving layer caches RunReport payloads — plain JSON, not arrays.
# They ride the same versioned, atomically-replaced .npz container (the
# document is embedded as a uint8 array), so one namespace, one layout
# version and one concurrency story cover every cached artifact.

def store_json(kind: str, key: str, obj) -> bool:
    """Persist a JSON-serializable object for ``(kind, key)``."""
    data = np.frombuffer(json.dumps(obj).encode(), dtype=np.uint8)
    return store(kind, key, {"__json__": data})


def load_json(kind: str, key: str):
    """Fetch a JSON document stored by :func:`store_json`; ``None`` on miss."""
    arrays = load(kind, key)
    if arrays is None or "__json__" not in arrays:
        return None
    try:
        return json.loads(arrays["__json__"].tobytes().decode())
    except (ValueError, UnicodeDecodeError):
        return None
