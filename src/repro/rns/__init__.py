"""RNS substrate: bases, CRT, polynomials, and fast basis conversion."""

from repro.rns.basis import RNSBasis
from repro.rns.bconv import BasisConverter, get_converter
from repro.rns.poly import Domain, RNSPoly, get_ntt_context

__all__ = [
    "BasisConverter",
    "Domain",
    "RNSBasis",
    "RNSPoly",
    "get_converter",
    "get_ntt_context",
]
