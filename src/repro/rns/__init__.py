"""RNS substrate: bases, CRT, polynomials, and fast basis conversion."""

from repro.rns.basis import RNSBasis
from repro.rns.bconv import BasisConverter, get_converter
from repro.rns.crt import CRTEngine, get_engine
from repro.rns.dispatch import kernel_mode, set_kernel_mode, use_kernel_mode
from repro.rns.poly import Domain, RNSPoly, get_ntt_context

__all__ = [
    "BasisConverter",
    "CRTEngine",
    "Domain",
    "RNSBasis",
    "RNSPoly",
    "get_converter",
    "get_engine",
    "get_ntt_context",
    "kernel_mode",
    "set_kernel_mode",
    "use_kernel_mode",
]
