"""Fast (approximate) RNS basis conversion — the HKS ``BConv`` kernel.

Given residues of ``x`` in a source basis ``B = {q_i}`` with product ``Q_B``,
the conversion computes, for each target modulus ``t``:

    conv(x) = sum_i ( [x_i * (Q_B/q_i)^-1]_{q_i} ) * (Q_B/q_i)   mod t

This equals ``x + u * Q_B (mod t)`` for some integer ``0 <= u < |B|`` — the
well-known *approximate* lift of Bajard/Halevi-Polyakov-Shoup used by
full-RNS CKKS.  Hybrid key switching tolerates the ``u * Q_B`` slack because
the subsequent evk multiplication scales genuine data by ``P`` while the
slack stays ``P``-free (ModUp) or is divided away (ModDown).

Cost: ``N * |B| * |T|`` modular multiply-accumulates, exactly the count the
paper charges for ModUp/ModDown P2 (Section III-B).  The default kernel
performs them as a blocked integer matmul — ``|B| / chunk`` tensordot
passes with one reduction per chunk, where the chunk size is chosen so the
unreduced partial sums provably fit in int64; the original
``|B| x |T|`` accumulate-and-reduce loop is retained as the reference
path and proven bit-identical by ``tests/test_kernel_equivalence.py``
(modular reduction is associative, so reducing once per chunk instead of
once per term cannot change the result).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro import cache
from repro.errors import ParameterError
from repro.ntt.modmath import MAX_MODULUS_BITS
from repro.rns import dispatch
from repro.rns.basis import RNSBasis

_INT64 = np.int64

#: Process-wide count of hat-table builds (disk-cache misses), mirroring
#: ``repro.ntt.transform.POWER_TABLE_BUILDS``.
HAT_TABLE_BUILDS = 0


class BasisConverter:
    """Precomputed approximate conversion from ``source`` to ``target``.

    The two bases must be disjoint (no shared modulus), as in HKS where a
    digit is extended to the *complement* basis.
    """

    def __init__(self, source: RNSBasis, target: RNSBasis):
        global HAT_TABLE_BUILDS
        shared = set(source.moduli) & set(target.moduli)
        if shared:
            raise ParameterError(f"source and target bases share moduli: {shared}")
        self.source = source
        self.target = target
        key = cache.fingerprint(("bconv", source.moduli, target.moduli))
        cached = cache.load("bconv", key)
        if cached is not None and "hat_mod" in cached:
            # hat_mod[i, j] = (Q_B / q_i) mod t_j
            self._hat_mod = cached["hat_mod"].astype(_INT64, copy=False)
        else:
            HAT_TABLE_BUILDS += 1
            self._hat_mod = np.array(
                [[hat % t for t in target.moduli] for hat in source.hats],
                dtype=_INT64,
            )
            cache.store("bconv", key, {"hat_mod": self._hat_mod})
        self._hat_invs = np.array(source.hat_invs, dtype=_INT64)
        # Each unreduced term is below (max_q - 1) * (max_t - 1) < 2**60;
        # chunk so ``chunk * term_bound`` plus a reduced carry stays under
        # 2**63.  At the 30-bit modulus cap this is 8 source towers per
        # tensordot pass.
        term_bound = (max(source.moduli) - 1) * (max(target.moduli) - 1)
        self._chunk = max(1, ((1 << 63) - (1 << (MAX_MODULUS_BITS + 1))) // term_bound)

    def convert(self, residues: np.ndarray) -> np.ndarray:
        """Convert ``(|B|, N)`` residues to ``(|T|, N)`` residues.

        Runs as a blocked integer matmul: ``ceil(|B| / chunk)`` tensordot
        passes with a single ``% t`` per chunk — bit-identical to the
        per-tower running reduction of :meth:`convert_reference`.

        A stack of ``(B, |B|, N)`` residue matrices (the cross-ciphertext
        batch axis) converts in the same number of matmul passes — the
        hat table broadcasts over the leading axis, and the unreduced sum
        per element is the same as in the 2-D case, so the bound argument
        (and hence bit-identity with the per-ciphertext result) carries
        over unchanged.
        """
        if not dispatch.batched_enabled():
            return self.convert_reference(residues)
        y = self._scaled_sources(residues)
        t_col = self.target.q_column
        out = np.zeros(
            y.shape[:-2] + (len(self.target), y.shape[-1]), dtype=_INT64
        )
        for start in range(0, len(self.source), self._chunk):
            block = slice(start, start + self._chunk)
            out += self._hat_mod[block].T @ y[..., block, :]
            out %= t_col
        return out

    def convert_reference(self, residues: np.ndarray) -> np.ndarray:
        """Original ``|B| x |T|`` accumulate-and-reduce loop (reference)."""
        residues = np.asarray(residues, dtype=_INT64)
        if residues.shape[0] != len(self.source):
            raise ParameterError(
                f"expected {len(self.source)} source towers, got {residues.shape[0]}"
            )
        n = residues.shape[1]
        # y_i = [x_i * hat_inv_i]_{q_i}
        y = np.empty_like(residues)
        for i, q in enumerate(self.source.moduli):
            y[i] = residues[i] * self._hat_invs[i] % q
        out = np.zeros((len(self.target), n), dtype=_INT64)
        for j, t in enumerate(self.target.moduli):
            acc = np.zeros(n, dtype=_INT64)
            for i in range(len(self.source)):
                acc = (acc + y[i] * self._hat_mod[i, j]) % t
            out[j] = acc
        return out

    def _scaled_sources(self, residues: np.ndarray) -> np.ndarray:
        """``y_i = [x_i * hat_inv_i]_{q_i}`` for all towers in one pass."""
        residues = np.asarray(residues, dtype=_INT64)
        if residues.shape[-2] != len(self.source):
            raise ParameterError(
                f"expected {len(self.source)} source towers, "
                f"got {residues.shape[-2]}"
            )
        return residues * self._hat_invs[:, None] % self.source.q_column

    def exact_value_bound(self) -> int:
        """Upper bound on the lift slack multiplier ``u`` (exclusive)."""
        return len(self.source)

    def __repr__(self) -> str:
        return f"BasisConverter({len(self.source)} -> {len(self.target)} moduli)"


@lru_cache(maxsize=None)
def get_converter(source: RNSBasis, target: RNSBasis) -> BasisConverter:
    """Cached :class:`BasisConverter` per ``(source, target)`` basis pair.

    The same ``lru_cache`` pattern as the NTT twiddle tables
    (:func:`repro.ntt.transform.get_ntt_context`): :class:`RNSBasis` hashes
    by its moduli tuple, so every level/digit combination builds its hat
    tables exactly once per process no matter how many HKS calls a
    large-ring functional run performs — and, via :mod:`repro.cache`,
    at most once per machine.
    """
    return BasisConverter(source, target)
