"""Fast (approximate) RNS basis conversion — the HKS ``BConv`` kernel.

Given residues of ``x`` in a source basis ``B = {q_i}`` with product ``Q_B``,
the conversion computes, for each target modulus ``t``:

    conv(x) = sum_i ( [x_i * (Q_B/q_i)^-1]_{q_i} ) * (Q_B/q_i)   mod t

This equals ``x + u * Q_B (mod t)`` for some integer ``0 <= u < |B|`` — the
well-known *approximate* lift of Bajard/Halevi-Polyakov-Shoup used by
full-RNS CKKS.  Hybrid key switching tolerates the ``u * Q_B`` slack because
the subsequent evk multiplication scales genuine data by ``P`` while the
slack stays ``P``-free (ModUp) or is divided away (ModDown).

Cost: ``N * |B| * |T|`` modular multiply-accumulates, exactly the count the
paper charges for ModUp/ModDown P2 (Section III-B).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import ParameterError
from repro.rns.basis import RNSBasis

_INT64 = np.int64


class BasisConverter:
    """Precomputed approximate conversion from ``source`` to ``target``.

    The two bases must be disjoint (no shared modulus), as in HKS where a
    digit is extended to the *complement* basis.
    """

    def __init__(self, source: RNSBasis, target: RNSBasis):
        shared = set(source.moduli) & set(target.moduli)
        if shared:
            raise ParameterError(f"source and target bases share moduli: {shared}")
        self.source = source
        self.target = target
        # hat_mod[i, j] = (Q_B / q_i) mod t_j
        self._hat_mod = np.array(
            [[hat % t for t in target.moduli] for hat in source.hats],
            dtype=_INT64,
        )
        self._hat_invs = np.array(source.hat_invs, dtype=_INT64)

    def convert(self, residues: np.ndarray) -> np.ndarray:
        """Convert ``(|B|, N)`` residues to ``(|T|, N)`` residues.

        Runs as ``|B|`` vectorized passes per target modulus with running
        reduction so every intermediate stays below ``2**62``.
        """
        residues = np.asarray(residues, dtype=_INT64)
        if residues.shape[0] != len(self.source):
            raise ParameterError(
                f"expected {len(self.source)} source towers, got {residues.shape[0]}"
            )
        n = residues.shape[1]
        # y_i = [x_i * hat_inv_i]_{q_i}
        y = np.empty_like(residues)
        for i, q in enumerate(self.source.moduli):
            y[i] = residues[i] * self._hat_invs[i] % q
        out = np.zeros((len(self.target), n), dtype=_INT64)
        for j, t in enumerate(self.target.moduli):
            acc = np.zeros(n, dtype=_INT64)
            for i in range(len(self.source)):
                acc = (acc + y[i] * self._hat_mod[i, j]) % t
            out[j] = acc
        return out

    def exact_value_bound(self) -> int:
        """Upper bound on the lift slack multiplier ``u`` (exclusive)."""
        return len(self.source)

    def __repr__(self) -> str:
        return f"BasisConverter({len(self.source)} -> {len(self.target)} moduli)"


@lru_cache(maxsize=None)
def get_converter(source: RNSBasis, target: RNSBasis) -> BasisConverter:
    """Cached :class:`BasisConverter` per ``(source, target)`` basis pair.

    The same ``lru_cache`` pattern as the NTT twiddle tables
    (:func:`repro.rns.poly.get_ntt_context`): :class:`RNSBasis` hashes by
    its moduli tuple, so every level/digit combination builds its hat
    tables exactly once per process no matter how many HKS calls a
    large-ring functional run performs.
    """
    return BasisConverter(source, target)
