"""Residue Number System bases and CRT composition/decomposition.

An :class:`RNSBasis` is an ordered tuple of pairwise-coprime moduli
``(q_0, ..., q_{L})``.  Big integers modulo ``Q = prod(q_i)`` are
represented as matrices of residues; this module provides the exact CRT
maps between the two representations plus the precomputed constants
(``Q_hat_i = Q / q_i`` and its inverse) that both CRT and the approximate
basis conversion of :mod:`repro.rns.bconv` rely on.

The CRT maps run on the vectorized limb engine of :mod:`repro.rns.crt`
by default; the original per-coefficient python-int implementations are
retained as ``*_reference`` methods (and selected by the ``"looped"``
kernel mode) so equivalence is a testable property, not an assumption.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.ntt.modmath import check_modulus, inv_mod
from repro.rns import dispatch

_INT64 = np.int64


@lru_cache(maxsize=None)
def get_basis(moduli: Tuple[int, ...]) -> "RNSBasis":
    """Process-wide :class:`RNSBasis` cache keyed by the moduli tuple.

    A basis is immutable after construction, but constructing one runs
    O(L^2) pairwise-coprimality checks plus a modular inverse per tower.
    Key switching derives a digit/complement basis per call, so the
    derivation helpers (``subbasis``/``prefix``/``concat``) all route
    through this cache — the same ``lru_cache`` pattern as the NTT
    twiddle tables in :mod:`repro.rns.poly`.
    """
    return RNSBasis(moduli)


class RNSBasis:
    """An ordered set of pairwise-coprime word-sized moduli."""

    def __init__(self, moduli: Iterable[int]):
        moduli = tuple(int(q) for q in moduli)
        if not moduli:
            raise ParameterError("an RNS basis needs at least one modulus")
        for q in moduli:
            check_modulus(q)
        if len(set(moduli)) != len(moduli):
            raise ParameterError(f"duplicate moduli in basis: {moduli}")
        for i, a in enumerate(moduli):
            for b in moduli[i + 1 :]:
                if math.gcd(a, b) != 1:
                    raise ParameterError(f"moduli {a} and {b} are not coprime")
        self.moduli: Tuple[int, ...] = moduli
        #: Full product Q as an exact python integer.
        self.product: int = math.prod(moduli)
        #: Q / q_i as exact python integers.
        self.hats: Tuple[int, ...] = tuple(self.product // q for q in moduli)
        #: (Q / q_i)^-1 mod q_i.
        self.hat_invs: Tuple[int, ...] = tuple(
            inv_mod(h, q) for h, q in zip(self.hats, moduli)
        )
        #: (L, 1) int64 column of the moduli — the broadcast shape every
        #: whole-matrix kernel reduces against.
        self.q_column: np.ndarray = np.array(moduli, dtype=_INT64)[:, None]

    def __len__(self) -> int:
        return len(self.moduli)

    def __iter__(self):
        return iter(self.moduli)

    def __eq__(self, other) -> bool:
        return isinstance(other, RNSBasis) and self.moduli == other.moduli

    def __hash__(self) -> int:
        return hash(self.moduli)

    def __repr__(self) -> str:
        return f"RNSBasis({len(self.moduli)} moduli, ~2^{self.product.bit_length()})"

    # -- structure ----------------------------------------------------------

    def subbasis(self, indices: Sequence[int]) -> "RNSBasis":
        """Basis restricted to ``moduli[i] for i in indices`` (in order)."""
        return get_basis(tuple(self.moduli[i] for i in indices))

    def prefix(self, count: int) -> "RNSBasis":
        """Basis of the first ``count`` moduli."""
        if not 1 <= count <= len(self.moduli):
            raise ParameterError(f"prefix length {count} out of range")
        return get_basis(self.moduli[:count])

    def concat(self, other: "RNSBasis") -> "RNSBasis":
        """Union basis ``self ++ other`` (moduli must stay distinct)."""
        return get_basis(self.moduli + other.moduli)

    # -- CRT maps ------------------------------------------------------------

    def _crt_engine(self):
        from repro.rns.crt import get_engine

        return get_engine(self)

    def decompose(self, values) -> np.ndarray:
        """Exact integers (any magnitude, possibly negative) -> residue matrix.

        ``values`` is a length-``N`` sequence; the result has shape
        ``(len(basis), N)`` with canonical residues.  Integer-dtyped numpy
        input takes a single vectorized ``np.mod`` pass; python big
        integers go through the limb engine of :mod:`repro.rns.crt`.
        """
        arr = np.asarray(values)
        if arr.ndim > 1:
            arr = arr.ravel()
        if (
            arr.dtype != object
            and np.issubdtype(arr.dtype, np.integer)
            and not (arr.dtype.kind == "u" and arr.dtype.itemsize == 8)
        ):
            # int64-representable plaintexts: no object round-trip.
            # (uint64 is excluded: values >= 2**63 would wrap in the cast.)
            return np.mod(arr.astype(_INT64, copy=False)[None, :], self.q_column)
        if dispatch.batched_enabled():
            return self._crt_engine().decompose_ints(arr)
        return self.decompose_reference(arr)

    def decompose_reference(self, values) -> np.ndarray:
        """Per-coefficient python-int decomposition (scalar reference)."""
        vals = [int(v) for v in np.asarray(values, dtype=object).ravel()]
        out = np.empty((len(self.moduli), len(vals)), dtype=_INT64)
        for row, q in enumerate(self.moduli):
            out[row] = [v % q for v in vals]
        return out

    def convert_centered(self, residues: np.ndarray, target: "RNSBasis") -> np.ndarray:
        """Exact basis extension via the centered representative.

        Interprets ``residues`` (shape ``(len(self), N)``) as integers in
        ``(-Q/2, Q/2]`` and re-decomposes them into ``target``.  This is
        the ModRaise entry point of bootstrapping: a level-0 ciphertext's
        towers are lifted into the full chain, which changes its value by
        a multiple-of-``Q`` overflow polynomial that EvalMod later removes.
        Unlike :mod:`repro.rns.bconv` this conversion is exact, not
        approximate — but since PR 4 it is also fully vectorized (limb
        matrices end to end, no per-coefficient python ints).
        """
        residues = np.asarray(residues)
        if len(self.moduli) == 1:
            # Fast path for the common level-0 lift: no CRT needed.
            q = self.moduli[0]
            half = q // 2
            centered_row = np.where(residues[0] > half, residues[0] - q, residues[0])
            out = np.empty((len(target.moduli), residues.shape[1]), dtype=_INT64)
            for row, t in enumerate(target.moduli):
                out[row] = centered_row % t
            return out
        if dispatch.batched_enabled():
            return self._crt_engine().convert_centered(residues, target)
        ints = self.compose_reference(residues, centered=True)
        return target.decompose_reference(ints)

    def compose(self, residues: np.ndarray, centered: bool = True) -> np.ndarray:
        """Residue matrix ``(len(basis), N)`` -> exact integers (object array).

        With ``centered=True`` the result lies in ``(-Q/2, Q/2]``, which is
        the representative CKKS decoding needs.
        """
        if dispatch.batched_enabled():
            residues = np.asarray(residues)
            if residues.shape[0] != len(self.moduli):
                raise ParameterError(
                    f"residue matrix has {residues.shape[0]} rows, "
                    f"basis has {len(self.moduli)} moduli"
                )
            return self._crt_engine().compose_ints(residues, centered=centered)
        return self.compose_reference(residues, centered=centered)

    def compose_real(self, residues: np.ndarray) -> np.ndarray:
        """Centered composition straight to ``float64`` (CKKS decode path).

        Avoids materializing python big integers entirely; the centered
        magnitude is computed exactly in limb space before the single
        float conversion, so small decode outputs lose no precision.
        """
        residues = np.asarray(residues)
        if residues.shape[0] != len(self.moduli):
            raise ParameterError(
                f"residue matrix has {residues.shape[0]} rows, "
                f"basis has {len(self.moduli)} moduli"
            )
        if not dispatch.batched_enabled():
            ints = self.compose_reference(residues, centered=True)
            return np.array([float(v) for v in ints], dtype=np.float64)
        return self._crt_engine().compose_float(residues)

    def compose_reference(self, residues: np.ndarray, centered: bool = True) -> np.ndarray:
        """Per-coefficient python-bigint CRT (scalar reference)."""
        residues = np.asarray(residues)
        if residues.shape[0] != len(self.moduli):
            raise ParameterError(
                f"residue matrix has {residues.shape[0]} rows, "
                f"basis has {len(self.moduli)} moduli"
            )
        q_total = self.product
        n = residues.shape[1]
        acc = [0] * n
        # CRT: x = sum_i [x_i * hat_inv_i]_{q_i} * hat_i  (mod Q)
        for row, (hat, hat_inv, q) in enumerate(
            zip(self.hats, self.hat_invs, self.moduli)
        ):
            scaled = (residues[row].astype(object) * hat_inv) % q
            # Exact bigint reference path (the fast path is the limb
            # engine in repro.rns.crt); arbitrary-precision sums cannot
            # vectorize.
            for j in range(n):  # lint: allow-coeff-loop
                acc[j] += int(scaled[j]) * hat
        out = np.empty(n, dtype=object)
        half = q_total // 2
        for j in range(n):  # lint: allow-coeff-loop
            v = acc[j] % q_total
            if centered and v > half:
                v -= q_total
            out[j] = v
        return out
