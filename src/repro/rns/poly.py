"""RNS polynomials: ``N x L`` tower matrices with domain tracking.

An :class:`RNSPoly` is the object the paper draws in Figure 1 — a matrix
with one row ("tower") per RNS modulus, each row holding the residues of a
degree-``N`` negacyclic polynomial.  Rows live either in the coefficient
domain or the (bit-reversed) evaluation domain; the per-tower NTTs that move
between the two are exactly the P1/P3 stages of HKS.

All arithmetic and domain changes run as whole-matrix kernels: one numpy
pass against the basis' ``q[:, None]`` modulus column instead of a python
loop over towers, and ``log2(N)`` batched butterfly stages total for the
NTTs (:mod:`repro.ntt.batch`).  The per-tower loops survive as the
``"looped"`` kernel mode (:mod:`repro.rns.dispatch`) — the reference the
batched kernels are property-tested bit-exact against.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterable, List, Sequence, Union

import numpy as np

from repro.errors import ParameterError
from repro.ntt.batch import get_batch_ntt
from repro.ntt.modmath import add_mod, mul_mod, neg_mod, sub_mod
from repro.ntt.transform import galois_eval_permutation, get_ntt_context
from repro.rns import dispatch
from repro.rns.basis import RNSBasis

_INT64 = np.int64

__all__ = [
    "Domain",
    "RNSPoly",
    "PolyBatch",
    "automorphism_stacked",
    "automorphism_stacked_batch",
    "get_ntt_context",
]


class Domain(enum.Enum):
    """Representation domain of every tower of a polynomial."""

    COEFF = "coeff"
    EVAL = "eval"


class RNSPoly:
    """A polynomial in ``prod_i Z_{q_i}[X]/(X^N+1)``.

    Attributes
    ----------
    basis:
        The :class:`RNSBasis` listing the tower moduli, in row order.
    data:
        ``(len(basis), N)`` int64 matrix of canonical residues.
    domain:
        Whether rows are coefficients or NTT evaluations.
    """

    __slots__ = ("basis", "data", "domain")

    def __init__(self, basis: RNSBasis, data: np.ndarray, domain: Domain):
        data = np.asarray(data, dtype=_INT64)
        if data.ndim != 2 or data.shape[0] != len(basis):
            raise ParameterError(
                f"data shape {data.shape} does not match basis of {len(basis)} moduli"
            )
        self.basis = basis
        self.data = data
        self.domain = domain

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero(cls, basis: RNSBasis, n: int, domain: Domain = Domain.EVAL) -> "RNSPoly":
        return cls(basis, np.zeros((len(basis), n), dtype=_INT64), domain)

    @classmethod
    def from_integers(
        cls, basis: RNSBasis, coeffs: Sequence[int], domain: Domain = Domain.COEFF
    ) -> "RNSPoly":
        """Build from exact integer coefficients (reduced into every tower)."""
        poly = cls(basis, basis.decompose(coeffs), Domain.COEFF)
        return poly.to_domain(domain)

    @classmethod
    def random_uniform(
        cls, basis: RNSBasis, n: int, rng: np.random.Generator,
        domain: Domain = Domain.EVAL,
    ) -> "RNSPoly":
        """Uniform polynomial: independent uniform residues per tower.

        Sampling each tower independently is the standard RNS shortcut for a
        uniform element of ``R_Q`` (CRT is a bijection).
        """
        rows = [rng.integers(0, q, n, dtype=_INT64) for q in basis.moduli]
        return cls(basis, np.stack(rows), domain)

    # -- basic properties ----------------------------------------------------

    @property
    def n(self) -> int:
        return self.data.shape[1]

    @property
    def num_towers(self) -> int:
        return self.data.shape[0]

    def copy(self) -> "RNSPoly":
        return RNSPoly(self.basis, self.data.copy(), self.domain)

    def __repr__(self) -> str:
        return (
            f"RNSPoly(towers={self.num_towers}, n={self.n}, "
            f"domain={self.domain.value})"
        )

    # -- arithmetic ----------------------------------------------------------

    def _check_compatible(self, other: "RNSPoly") -> None:
        if self.basis != other.basis:
            raise ParameterError("operands have different RNS bases")
        if self.domain is not other.domain:
            raise ParameterError(
                f"operands in different domains: {self.domain} vs {other.domain}"
            )
        if self.n != other.n:
            raise ParameterError("operands have different ring degrees")

    def __add__(self, other: "RNSPoly") -> "RNSPoly":
        self._check_compatible(other)
        if dispatch.batched_enabled():
            s = self.data + other.data
            out = np.where(s >= self.basis.q_column, s - self.basis.q_column, s)
        else:
            out = np.empty_like(self.data)
            for i, q in enumerate(self.basis.moduli):
                out[i] = add_mod(self.data[i], other.data[i], q)
        return RNSPoly(self.basis, out, self.domain)

    def __sub__(self, other: "RNSPoly") -> "RNSPoly":
        self._check_compatible(other)
        if dispatch.batched_enabled():
            d = self.data - other.data
            out = np.where(d < 0, d + self.basis.q_column, d)
        else:
            out = np.empty_like(self.data)
            for i, q in enumerate(self.basis.moduli):
                out[i] = sub_mod(self.data[i], other.data[i], q)
        return RNSPoly(self.basis, out, self.domain)

    def __neg__(self) -> "RNSPoly":
        if dispatch.batched_enabled():
            out = np.where(self.data == 0, self.data, self.basis.q_column - self.data)
        else:
            out = np.empty_like(self.data)
            for i, q in enumerate(self.basis.moduli):
                out[i] = neg_mod(self.data[i], q)
        return RNSPoly(self.basis, out, self.domain)

    def __mul__(self, other: "RNSPoly") -> "RNSPoly":
        """Point-wise product; both operands must be in the EVAL domain."""
        self._check_compatible(other)
        if self.domain is not Domain.EVAL:
            raise ParameterError("polynomial product requires EVAL domain")
        if dispatch.batched_enabled():
            out = self.data * other.data % self.basis.q_column
        else:
            out = np.empty_like(self.data)
            for i, q in enumerate(self.basis.moduli):
                out[i] = mul_mod(self.data[i], other.data[i], q)
        return RNSPoly(self.basis, out, self.domain)

    def scale_by(self, scalars: Sequence[int]) -> "RNSPoly":
        """Multiply tower ``i`` by scalar ``scalars[i] mod q_i`` (any domain)."""
        if len(scalars) != self.num_towers:
            raise ParameterError("need one scalar per tower")
        if dispatch.batched_enabled():
            col = np.array(
                [int(s) % q for s, q in zip(scalars, self.basis.moduli)],
                dtype=_INT64,
            )[:, None]
            out = self.data * col % self.basis.q_column
        else:
            out = np.empty_like(self.data)
            for i, q in enumerate(self.basis.moduli):
                out[i] = mul_mod(self.data[i], int(scalars[i]) % q, q)
        return RNSPoly(self.basis, out, self.domain)

    # -- domain changes (HKS P1/P3) -------------------------------------------

    def to_eval(self) -> "RNSPoly":
        if self.domain is Domain.EVAL:
            return self.copy()
        if dispatch.batched_enabled():
            out = get_batch_ntt(self.n, self.basis.moduli).forward(self.data)
        else:
            out = np.empty_like(self.data)
            for i, q in enumerate(self.basis.moduli):
                out[i] = get_ntt_context(self.n, q).forward(self.data[i])
        return RNSPoly(self.basis, out, Domain.EVAL)

    def to_coeff(self) -> "RNSPoly":
        if self.domain is Domain.COEFF:
            return self.copy()
        if dispatch.batched_enabled():
            out = get_batch_ntt(self.n, self.basis.moduli).inverse(self.data)
        else:
            out = np.empty_like(self.data)
            for i, q in enumerate(self.basis.moduli):
                out[i] = get_ntt_context(self.n, q).inverse(self.data[i])
        return RNSPoly(self.basis, out, Domain.COEFF)

    def to_domain(self, domain: Domain) -> "RNSPoly":
        return self.to_eval() if domain is Domain.EVAL else self.to_coeff()

    # -- tower structure (digit decomposition) ---------------------------------

    def select_towers(self, indices: Sequence[int]) -> "RNSPoly":
        """Sub-polynomial restricted to the given tower rows."""
        indices = list(indices)
        return RNSPoly(self.basis.subbasis(indices), self.data[indices], self.domain)

    def drop_last_tower(self) -> "RNSPoly":
        """Remove the highest tower (used by rescale)."""
        if self.num_towers < 2:
            raise ParameterError("cannot drop the only tower")
        return RNSPoly(
            self.basis.prefix(self.num_towers - 1),
            self.data[:-1].copy(),
            self.domain,
        )

    @staticmethod
    def concat(parts: Iterable["RNSPoly"]) -> "RNSPoly":
        """Stack tower groups into one polynomial over the union basis."""
        parts = list(parts)
        if not parts:
            raise ParameterError("concat needs at least one part")
        domain = parts[0].domain
        basis = parts[0].basis
        for p in parts[1:]:
            if p.domain is not domain:
                raise ParameterError("concat parts must share a domain")
            basis = basis.concat(p.basis)
        data = np.concatenate([p.data for p in parts], axis=0)
        return RNSPoly(basis, data, domain)

    # -- Galois automorphism ----------------------------------------------------

    def automorphism(self, galois_element: int) -> "RNSPoly":
        """Apply ``X -> X^g`` for odd ``g`` (computed in the COEFF domain).

        Coefficient ``a_j`` moves to exponent ``j*g mod 2N``; exponents that
        land in ``[N, 2N)`` wrap with a sign flip because ``X^N = -1``.
        The permutation and sign mask are shared by every tower, so the
        whole matrix moves in one fancy-indexed assignment into a
        preallocated output — ``dest`` is a permutation of ``0..N-1``, so
        every output slot is written and no zero-fill pass is needed.
        """
        g = int(galois_element)
        if g % 2 == 0:
            raise ParameterError(f"Galois element must be odd, got {g}")
        coeff = self.to_coeff()
        n = self.n
        j = np.arange(n, dtype=np.int64)
        e = (j * g) % (2 * n)
        dest = np.where(e < n, e, e - n)
        flip = e >= n
        out = np.empty_like(coeff.data)
        if dispatch.batched_enabled():
            vals = np.where(
                flip[None, :],
                np.where(coeff.data == 0, coeff.data, self.basis.q_column - coeff.data),
                coeff.data,
            )
            out[:, dest] = vals
        else:
            for i, q in enumerate(self.basis.moduli):
                row = np.zeros(n, dtype=_INT64)
                vals = coeff.data[i]
                vals = np.where(flip, neg_mod(vals, q), vals)
                row[dest] = vals
                out[i] = row
        result = RNSPoly(self.basis, out, Domain.COEFF)
        return result.to_domain(self.domain)


def automorphism_stacked(
    polys: Sequence[RNSPoly], galois_element: int
) -> List[RNSPoly]:
    """Apply one Galois map to several polynomials in a single batched pass.

    The permutation and sign mask depend only on ``(N, g)``, so the
    polynomials' tower matrices are stacked into one tall matrix (their
    moduli tuples concatenated — duplicates are fine, the batched NTT
    keys per row) and moved through INTT -> permute -> NTT exactly once.
    Inputs must share ring degree and domain; outputs match
    ``[p.automorphism(g) for p in polys]`` bit for bit.
    """
    polys = list(polys)
    if not polys:
        return []
    if len(polys) == 1 or not dispatch.batched_enabled():
        return [p.automorphism(galois_element) for p in polys]
    g = int(galois_element)
    if g % 2 == 0:
        raise ParameterError(f"Galois element must be odd, got {g}")
    n = polys[0].n
    domain = polys[0].domain
    for p in polys[1:]:
        if p.n != n or p.domain is not domain:
            raise ParameterError("stacked automorphism needs a shared n and domain")
    moduli = tuple(m for p in polys for m in p.basis.moduli)
    q_col = np.array(moduli, dtype=_INT64)[:, None]
    data = np.concatenate([p.data for p in polys])
    engine = get_batch_ntt(n, moduli)
    coeff = engine.inverse(data) if domain is Domain.EVAL else data
    j = np.arange(n, dtype=np.int64)
    e = (j * g) % (2 * n)
    dest = np.where(e < n, e, e - n)
    flip = e >= n
    vals = np.where(
        flip[None, :], np.where(coeff == 0, coeff, q_col - coeff), coeff
    )
    out = np.empty_like(coeff)
    out[:, dest] = vals
    if domain is Domain.EVAL:
        out = engine.forward(out)
    results: List[RNSPoly] = []
    row = 0
    for p in polys:
        block = out[row : row + p.num_towers]
        row += p.num_towers
        results.append(RNSPoly(p.basis, block.copy(), domain))
    return results


class PolyBatch:
    """``B`` same-basis polynomials as one ``(B, L, N)`` residue stack.

    The cross-ciphertext batch axis: every operation runs as a single
    whole-stack kernel pass (the ``(L, ...)`` twiddle/hat/modulus tables
    broadcast over the batch axis, so no per-``B`` table exists), and
    every operation is bit-identical to applying the corresponding
    :class:`RNSPoly` op to each member — under the ``"looped"`` kernel
    mode the implementation literally *is* that per-member loop, which is
    the reference the batched path is property-tested against.

    A :class:`PolyBatch` deliberately mirrors the :class:`RNSPoly`
    surface (``basis``/``data``/``domain``, arithmetic, domain moves,
    tower selection), so ciphertexts whose halves are batches flow
    through the generic evaluator-driven code paths unchanged.
    """

    __slots__ = ("basis", "data", "domain")

    def __init__(self, basis: RNSBasis, data: np.ndarray, domain: Domain):
        data = np.asarray(data, dtype=_INT64)
        if data.ndim != 3 or data.shape[1] != len(basis):
            raise ParameterError(
                f"batch data shape {data.shape} does not match "
                f"(B, {len(basis)}, N) for a basis of {len(basis)} moduli"
            )
        self.basis = basis
        self.data = data
        self.domain = domain

    # -- constructors --------------------------------------------------------

    @classmethod
    def stack(cls, polys: Sequence[RNSPoly]) -> "PolyBatch":
        """Stack same-basis/domain/degree polynomials into one batch.

        Mismatches are rejected with the index of the offending member —
        the located-diagnostic style of :mod:`repro.analysis`.
        """
        polys = list(polys)
        if not polys:
            raise ParameterError("PolyBatch.stack needs at least one polynomial")
        head = polys[0]
        for i, p in enumerate(polys[1:], start=1):
            if p.basis != head.basis:
                raise ParameterError(
                    f"batch[{i}]: basis has {p.num_towers} towers "
                    f"(~2^{p.basis.product.bit_length()}), batch[0] has "
                    f"{head.num_towers} — members of a batch must share a level"
                )
            if p.domain is not head.domain:
                raise ParameterError(
                    f"batch[{i}]: domain {p.domain.value} != batch[0] "
                    f"domain {head.domain.value}"
                )
            if p.n != head.n:
                raise ParameterError(
                    f"batch[{i}]: ring degree {p.n} != batch[0] degree {head.n}"
                )
        data = np.stack([p.data for p in polys])
        return cls(head.basis, data, head.domain)

    @classmethod
    def zero(
        cls, basis: RNSBasis, n: int, batch_size: int,
        domain: Domain = Domain.EVAL,
    ) -> "PolyBatch":
        return cls(
            basis, np.zeros((batch_size, len(basis), n), dtype=_INT64), domain
        )

    def unstack(self) -> List[RNSPoly]:
        """The member polynomials, as independent copies."""
        return [
            RNSPoly(self.basis, self.data[b].copy(), self.domain)
            for b in range(self.batch_size)
        ]

    def member(self, b: int) -> RNSPoly:
        return RNSPoly(self.basis, self.data[b].copy(), self.domain)

    # -- basic properties ----------------------------------------------------

    @property
    def n(self) -> int:
        return int(self.data.shape[2])

    @property
    def num_towers(self) -> int:
        return int(self.data.shape[1])

    @property
    def batch_size(self) -> int:
        return int(self.data.shape[0])

    def copy(self) -> "PolyBatch":
        return PolyBatch(self.basis, self.data.copy(), self.domain)

    def __repr__(self) -> str:
        return (
            f"PolyBatch(batch={self.batch_size}, towers={self.num_towers}, "
            f"n={self.n}, domain={self.domain.value})"
        )

    # -- arithmetic ----------------------------------------------------------

    def _operand(self, other: Union["PolyBatch", RNSPoly]) -> np.ndarray:
        """Validate ``other`` and return its (broadcastable) data.

        An :class:`RNSPoly` operand (e.g. a shared plaintext) broadcasts
        across the batch axis.
        """
        if isinstance(other, PolyBatch) and other.batch_size != self.batch_size:
            raise ParameterError(
                f"operand batch sizes differ: {self.batch_size} vs "
                f"{other.batch_size}"
            )
        if self.basis != other.basis:
            raise ParameterError("operands have different RNS bases")
        if self.domain is not other.domain:
            raise ParameterError(
                f"operands in different domains: {self.domain} vs {other.domain}"
            )
        if self.n != other.n:
            raise ParameterError("operands have different ring degrees")
        if isinstance(other, PolyBatch):
            return other.data
        return other.data[None, :, :]

    def _loop(
        self,
        other: Union["PolyBatch", RNSPoly, None],
        fn: Callable[..., RNSPoly],
    ) -> "PolyBatch":
        """Looped-mode reference: apply ``fn`` member by member."""
        mine = self.unstack()
        if other is None:
            return PolyBatch.stack([fn(a) for a in mine])
        theirs = (
            other.unstack() if isinstance(other, PolyBatch)
            else [other] * self.batch_size
        )
        return PolyBatch.stack([fn(a, b) for a, b in zip(mine, theirs)])

    def __add__(self, other: Union["PolyBatch", RNSPoly]) -> "PolyBatch":
        data = self._operand(other)
        if not dispatch.batched_enabled():
            return self._loop(other, lambda a, b: a + b)
        s = self.data + data
        # Conditional correction via a bool-scaled subtract: measurably
        # cheaper than np.where at batch sizes (one temp, no select pass).
        s -= self.basis.q_column * (s >= self.basis.q_column)
        return PolyBatch(self.basis, s, self.domain)

    def __sub__(self, other: Union["PolyBatch", RNSPoly]) -> "PolyBatch":
        data = self._operand(other)
        if not dispatch.batched_enabled():
            return self._loop(other, lambda a, b: a - b)
        d = self.data - data
        d += self.basis.q_column * (d < 0)
        return PolyBatch(self.basis, d, self.domain)

    def __neg__(self) -> "PolyBatch":
        if not dispatch.batched_enabled():
            return self._loop(None, lambda a: -a)
        out = np.where(self.data == 0, self.data, self.basis.q_column - self.data)
        return PolyBatch(self.basis, out, self.domain)

    def __mul__(self, other: Union["PolyBatch", RNSPoly]) -> "PolyBatch":
        """Point-wise product; both operands must be in the EVAL domain."""
        data = self._operand(other)
        if self.domain is not Domain.EVAL:
            raise ParameterError("polynomial product requires EVAL domain")
        if not dispatch.batched_enabled():
            return self._loop(other, lambda a, b: a * b)
        out = self.data * data % self.basis.q_column
        return PolyBatch(self.basis, out, self.domain)

    def scale_by(self, scalars: Sequence[int]) -> "PolyBatch":
        """Multiply tower ``i`` of every member by ``scalars[i] mod q_i``."""
        if len(scalars) != self.num_towers:
            raise ParameterError("need one scalar per tower")
        if not dispatch.batched_enabled():
            return self._loop(None, lambda a: a.scale_by(scalars))
        col = np.array(
            [int(s) % q for s, q in zip(scalars, self.basis.moduli)],
            dtype=_INT64,
        )[:, None]
        out = self.data * col % self.basis.q_column
        return PolyBatch(self.basis, out, self.domain)

    # -- domain changes -------------------------------------------------------

    def to_eval(self) -> "PolyBatch":
        if self.domain is Domain.EVAL:
            return self.copy()
        if not dispatch.batched_enabled():
            return self._loop(None, lambda a: a.to_eval())
        out = get_batch_ntt(self.n, self.basis.moduli).forward(self.data)
        return PolyBatch(self.basis, out, Domain.EVAL)

    def to_coeff(self) -> "PolyBatch":
        if self.domain is Domain.COEFF:
            return self.copy()
        if not dispatch.batched_enabled():
            return self._loop(None, lambda a: a.to_coeff())
        out = get_batch_ntt(self.n, self.basis.moduli).inverse(self.data)
        return PolyBatch(self.basis, out, Domain.COEFF)

    def to_domain(self, domain: Domain) -> "PolyBatch":
        return self.to_eval() if domain is Domain.EVAL else self.to_coeff()

    # -- tower structure -------------------------------------------------------

    def select_towers(self, indices: Sequence[int]) -> "PolyBatch":
        indices = list(indices)
        return PolyBatch(
            self.basis.subbasis(indices), self.data[:, indices], self.domain
        )

    def drop_last_tower(self) -> "PolyBatch":
        if self.num_towers < 2:
            raise ParameterError("cannot drop the only tower")
        return PolyBatch(
            self.basis.prefix(self.num_towers - 1),
            self.data[:, :-1].copy(),
            self.domain,
        )

    # -- Galois automorphism ----------------------------------------------------

    def automorphism(self, galois_element: int) -> "PolyBatch":
        """Apply ``X -> X^g`` to every member in one stacked pass."""
        if not dispatch.batched_enabled():
            return self._loop(None, lambda a: a.automorphism(galois_element))
        return automorphism_stacked_batch([self], galois_element)[0]


def automorphism_stacked_batch(
    batches: Sequence[PolyBatch], galois_element: int
) -> List[PolyBatch]:
    """Batch-axis analogue of :func:`automorphism_stacked`.

    The batches (which may sit over different bases, e.g. a ciphertext
    half plus the ModUp digit extensions during hoisting) are
    concatenated along the *tower* axis into one ``(B, sum L_i, N)``
    stack and moved through INTT -> permute -> NTT exactly once.  All
    inputs must share batch size, ring degree and domain; outputs match
    ``[b.automorphism(g) for b in batches]`` bit for bit.
    """
    batches = list(batches)
    if not batches:
        return []
    if not dispatch.batched_enabled():
        return [b.automorphism(galois_element) for b in batches]
    g = int(galois_element)
    if g % 2 == 0:
        raise ParameterError(f"Galois element must be odd, got {g}")
    head = batches[0]
    n, domain, bsz = head.n, head.domain, head.batch_size
    for b in batches[1:]:
        if b.n != n or b.domain is not domain or b.batch_size != bsz:
            raise ParameterError(
                "stacked automorphism needs a shared n, domain and batch size"
            )
    if domain is Domain.EVAL:
        # In the evaluation domain the automorphism only re-labels the
        # evaluation points, so the whole stack moves in one gather with
        # no transforms at all (see galois_eval_permutation) — the
        # dominant cost of hoisted rotations at large batch sizes.
        perm = galois_eval_permutation(n, g)
        return [
            PolyBatch(b.basis, b.data[:, :, perm], domain) for b in batches
        ]
    # COEFF domain: the index map wraps through X^N = -1, so a shared
    # destination/negation pattern applies to the concatenated stack.
    moduli = tuple(m for b in batches for m in b.basis.moduli)
    q_col = np.array(moduli, dtype=_INT64)[:, None]
    coeff = np.concatenate([b.data for b in batches], axis=1)
    j = np.arange(n, dtype=np.int64)
    e = (j * g) % (2 * n)
    dest = np.where(e < n, e, e - n)
    flip = e >= n
    vals = np.where(
        flip[None, None, :], np.where(coeff == 0, coeff, q_col - coeff), coeff
    )
    out = np.empty_like(coeff)
    out[:, :, dest] = vals
    results: List[PolyBatch] = []
    row = 0
    for b in batches:
        block = out[:, row : row + b.num_towers]
        row += b.num_towers
        results.append(PolyBatch(b.basis, block.copy(), domain))
    return results
