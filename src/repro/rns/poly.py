"""RNS polynomials: ``N x L`` tower matrices with domain tracking.

An :class:`RNSPoly` is the object the paper draws in Figure 1 — a matrix
with one row ("tower") per RNS modulus, each row holding the residues of a
degree-``N`` negacyclic polynomial.  Rows live either in the coefficient
domain or the (bit-reversed) evaluation domain; the per-tower NTTs that move
between the two are exactly the P1/P3 stages of HKS.

All arithmetic and domain changes run as whole-matrix kernels: one numpy
pass against the basis' ``q[:, None]`` modulus column instead of a python
loop over towers, and ``log2(N)`` batched butterfly stages total for the
NTTs (:mod:`repro.ntt.batch`).  The per-tower loops survive as the
``"looped"`` kernel mode (:mod:`repro.rns.dispatch`) — the reference the
batched kernels are property-tested bit-exact against.
"""

from __future__ import annotations

import enum
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.ntt.batch import get_batch_ntt
from repro.ntt.modmath import add_mod, mul_mod, neg_mod, sub_mod
from repro.ntt.transform import get_ntt_context
from repro.rns import dispatch
from repro.rns.basis import RNSBasis

_INT64 = np.int64

__all__ = ["Domain", "RNSPoly", "automorphism_stacked", "get_ntt_context"]


class Domain(enum.Enum):
    """Representation domain of every tower of a polynomial."""

    COEFF = "coeff"
    EVAL = "eval"


class RNSPoly:
    """A polynomial in ``prod_i Z_{q_i}[X]/(X^N+1)``.

    Attributes
    ----------
    basis:
        The :class:`RNSBasis` listing the tower moduli, in row order.
    data:
        ``(len(basis), N)`` int64 matrix of canonical residues.
    domain:
        Whether rows are coefficients or NTT evaluations.
    """

    __slots__ = ("basis", "data", "domain")

    def __init__(self, basis: RNSBasis, data: np.ndarray, domain: Domain):
        data = np.asarray(data, dtype=_INT64)
        if data.ndim != 2 or data.shape[0] != len(basis):
            raise ParameterError(
                f"data shape {data.shape} does not match basis of {len(basis)} moduli"
            )
        self.basis = basis
        self.data = data
        self.domain = domain

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero(cls, basis: RNSBasis, n: int, domain: Domain = Domain.EVAL) -> "RNSPoly":
        return cls(basis, np.zeros((len(basis), n), dtype=_INT64), domain)

    @classmethod
    def from_integers(
        cls, basis: RNSBasis, coeffs: Sequence[int], domain: Domain = Domain.COEFF
    ) -> "RNSPoly":
        """Build from exact integer coefficients (reduced into every tower)."""
        poly = cls(basis, basis.decompose(coeffs), Domain.COEFF)
        return poly.to_domain(domain)

    @classmethod
    def random_uniform(
        cls, basis: RNSBasis, n: int, rng: np.random.Generator,
        domain: Domain = Domain.EVAL,
    ) -> "RNSPoly":
        """Uniform polynomial: independent uniform residues per tower.

        Sampling each tower independently is the standard RNS shortcut for a
        uniform element of ``R_Q`` (CRT is a bijection).
        """
        rows = [rng.integers(0, q, n, dtype=_INT64) for q in basis.moduli]
        return cls(basis, np.stack(rows), domain)

    # -- basic properties ----------------------------------------------------

    @property
    def n(self) -> int:
        return self.data.shape[1]

    @property
    def num_towers(self) -> int:
        return self.data.shape[0]

    def copy(self) -> "RNSPoly":
        return RNSPoly(self.basis, self.data.copy(), self.domain)

    def __repr__(self) -> str:
        return (
            f"RNSPoly(towers={self.num_towers}, n={self.n}, "
            f"domain={self.domain.value})"
        )

    # -- arithmetic ----------------------------------------------------------

    def _check_compatible(self, other: "RNSPoly") -> None:
        if self.basis != other.basis:
            raise ParameterError("operands have different RNS bases")
        if self.domain is not other.domain:
            raise ParameterError(
                f"operands in different domains: {self.domain} vs {other.domain}"
            )
        if self.n != other.n:
            raise ParameterError("operands have different ring degrees")

    def __add__(self, other: "RNSPoly") -> "RNSPoly":
        self._check_compatible(other)
        if dispatch.batched_enabled():
            s = self.data + other.data
            out = np.where(s >= self.basis.q_column, s - self.basis.q_column, s)
        else:
            out = np.empty_like(self.data)
            for i, q in enumerate(self.basis.moduli):
                out[i] = add_mod(self.data[i], other.data[i], q)
        return RNSPoly(self.basis, out, self.domain)

    def __sub__(self, other: "RNSPoly") -> "RNSPoly":
        self._check_compatible(other)
        if dispatch.batched_enabled():
            d = self.data - other.data
            out = np.where(d < 0, d + self.basis.q_column, d)
        else:
            out = np.empty_like(self.data)
            for i, q in enumerate(self.basis.moduli):
                out[i] = sub_mod(self.data[i], other.data[i], q)
        return RNSPoly(self.basis, out, self.domain)

    def __neg__(self) -> "RNSPoly":
        if dispatch.batched_enabled():
            out = np.where(self.data == 0, self.data, self.basis.q_column - self.data)
        else:
            out = np.empty_like(self.data)
            for i, q in enumerate(self.basis.moduli):
                out[i] = neg_mod(self.data[i], q)
        return RNSPoly(self.basis, out, self.domain)

    def __mul__(self, other: "RNSPoly") -> "RNSPoly":
        """Point-wise product; both operands must be in the EVAL domain."""
        self._check_compatible(other)
        if self.domain is not Domain.EVAL:
            raise ParameterError("polynomial product requires EVAL domain")
        if dispatch.batched_enabled():
            out = self.data * other.data % self.basis.q_column
        else:
            out = np.empty_like(self.data)
            for i, q in enumerate(self.basis.moduli):
                out[i] = mul_mod(self.data[i], other.data[i], q)
        return RNSPoly(self.basis, out, self.domain)

    def scale_by(self, scalars: Sequence[int]) -> "RNSPoly":
        """Multiply tower ``i`` by scalar ``scalars[i] mod q_i`` (any domain)."""
        if len(scalars) != self.num_towers:
            raise ParameterError("need one scalar per tower")
        if dispatch.batched_enabled():
            col = np.array(
                [int(s) % q for s, q in zip(scalars, self.basis.moduli)],
                dtype=_INT64,
            )[:, None]
            out = self.data * col % self.basis.q_column
        else:
            out = np.empty_like(self.data)
            for i, q in enumerate(self.basis.moduli):
                out[i] = mul_mod(self.data[i], int(scalars[i]) % q, q)
        return RNSPoly(self.basis, out, self.domain)

    # -- domain changes (HKS P1/P3) -------------------------------------------

    def to_eval(self) -> "RNSPoly":
        if self.domain is Domain.EVAL:
            return self.copy()
        if dispatch.batched_enabled():
            out = get_batch_ntt(self.n, self.basis.moduli).forward(self.data)
        else:
            out = np.empty_like(self.data)
            for i, q in enumerate(self.basis.moduli):
                out[i] = get_ntt_context(self.n, q).forward(self.data[i])
        return RNSPoly(self.basis, out, Domain.EVAL)

    def to_coeff(self) -> "RNSPoly":
        if self.domain is Domain.COEFF:
            return self.copy()
        if dispatch.batched_enabled():
            out = get_batch_ntt(self.n, self.basis.moduli).inverse(self.data)
        else:
            out = np.empty_like(self.data)
            for i, q in enumerate(self.basis.moduli):
                out[i] = get_ntt_context(self.n, q).inverse(self.data[i])
        return RNSPoly(self.basis, out, Domain.COEFF)

    def to_domain(self, domain: Domain) -> "RNSPoly":
        return self.to_eval() if domain is Domain.EVAL else self.to_coeff()

    # -- tower structure (digit decomposition) ---------------------------------

    def select_towers(self, indices: Sequence[int]) -> "RNSPoly":
        """Sub-polynomial restricted to the given tower rows."""
        indices = list(indices)
        return RNSPoly(self.basis.subbasis(indices), self.data[indices], self.domain)

    def drop_last_tower(self) -> "RNSPoly":
        """Remove the highest tower (used by rescale)."""
        if self.num_towers < 2:
            raise ParameterError("cannot drop the only tower")
        return RNSPoly(
            self.basis.prefix(self.num_towers - 1),
            self.data[:-1].copy(),
            self.domain,
        )

    @staticmethod
    def concat(parts: Iterable["RNSPoly"]) -> "RNSPoly":
        """Stack tower groups into one polynomial over the union basis."""
        parts = list(parts)
        if not parts:
            raise ParameterError("concat needs at least one part")
        domain = parts[0].domain
        basis = parts[0].basis
        for p in parts[1:]:
            if p.domain is not domain:
                raise ParameterError("concat parts must share a domain")
            basis = basis.concat(p.basis)
        data = np.concatenate([p.data for p in parts], axis=0)
        return RNSPoly(basis, data, domain)

    # -- Galois automorphism ----------------------------------------------------

    def automorphism(self, galois_element: int) -> "RNSPoly":
        """Apply ``X -> X^g`` for odd ``g`` (computed in the COEFF domain).

        Coefficient ``a_j`` moves to exponent ``j*g mod 2N``; exponents that
        land in ``[N, 2N)`` wrap with a sign flip because ``X^N = -1``.
        The permutation and sign mask are shared by every tower, so the
        whole matrix moves in one fancy-indexed assignment into a
        preallocated output — ``dest`` is a permutation of ``0..N-1``, so
        every output slot is written and no zero-fill pass is needed.
        """
        g = int(galois_element)
        if g % 2 == 0:
            raise ParameterError(f"Galois element must be odd, got {g}")
        coeff = self.to_coeff()
        n = self.n
        j = np.arange(n, dtype=np.int64)
        e = (j * g) % (2 * n)
        dest = np.where(e < n, e, e - n)
        flip = e >= n
        out = np.empty_like(coeff.data)
        if dispatch.batched_enabled():
            vals = np.where(
                flip[None, :],
                np.where(coeff.data == 0, coeff.data, self.basis.q_column - coeff.data),
                coeff.data,
            )
            out[:, dest] = vals
        else:
            for i, q in enumerate(self.basis.moduli):
                row = np.zeros(n, dtype=_INT64)
                vals = coeff.data[i]
                vals = np.where(flip, neg_mod(vals, q), vals)
                row[dest] = vals
                out[i] = row
        result = RNSPoly(self.basis, out, Domain.COEFF)
        return result.to_domain(self.domain)


def automorphism_stacked(polys: Sequence[RNSPoly], galois_element: int) -> list:
    """Apply one Galois map to several polynomials in a single batched pass.

    The permutation and sign mask depend only on ``(N, g)``, so the
    polynomials' tower matrices are stacked into one tall matrix (their
    moduli tuples concatenated — duplicates are fine, the batched NTT
    keys per row) and moved through INTT -> permute -> NTT exactly once.
    Inputs must share ring degree and domain; outputs match
    ``[p.automorphism(g) for p in polys]`` bit for bit.
    """
    polys = list(polys)
    if not polys:
        return []
    if len(polys) == 1 or not dispatch.batched_enabled():
        return [p.automorphism(galois_element) for p in polys]
    g = int(galois_element)
    if g % 2 == 0:
        raise ParameterError(f"Galois element must be odd, got {g}")
    n = polys[0].n
    domain = polys[0].domain
    for p in polys[1:]:
        if p.n != n or p.domain is not domain:
            raise ParameterError("stacked automorphism needs a shared n and domain")
    moduli = tuple(m for p in polys for m in p.basis.moduli)
    q_col = np.array(moduli, dtype=_INT64)[:, None]
    data = np.concatenate([p.data for p in polys])
    engine = get_batch_ntt(n, moduli)
    coeff = engine.inverse(data) if domain is Domain.EVAL else data
    j = np.arange(n, dtype=np.int64)
    e = (j * g) % (2 * n)
    dest = np.where(e < n, e, e - n)
    flip = e >= n
    vals = np.where(
        flip[None, :], np.where(coeff == 0, coeff, q_col - coeff), coeff
    )
    out = np.empty_like(coeff)
    out[:, dest] = vals
    if domain is Domain.EVAL:
        out = engine.forward(out)
    results = []
    row = 0
    for p in polys:
        block = out[row : row + p.num_towers]
        row += p.num_towers
        results.append(RNSPoly(p.basis, block.copy(), domain))
    return results
