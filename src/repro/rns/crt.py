"""Vectorized CRT composition/decomposition over fixed-radix limb matrices.

:meth:`repro.rns.basis.RNSBasis.compose` is exact CRT: ``x = sum_i
[x_i * hat_inv_i]_{q_i} * hat_i  (mod Q)``.  The reference implementation
walks python big integers per coefficient — ``O(L * N)`` interpreted
bigint operations — which is what makes ModRaise and CKKS decode the slow
steps of large-ring functional runs.

This engine represents multi-precision integers as radix ``2**32`` limb
matrices (stored as 16-bit half-limbs in int64 arrays so every
multiply-accumulate stays inside native numpy integer range: a half-limb
times a 30-bit residue is below ``2**46``, and summing even thousands of
those terms cannot reach ``2**63``).  The pipeline is:

1. ``acc = hat_limbs.T @ y`` — one integer matmul accumulates the CRT sum
   for all ``N`` coefficients and all limbs at once;
2. a carry-propagation sweep (``log``-free, one vectorized pass per limb)
   renormalizes to canonical radix-``2**16`` digits;
3. the multiple-of-``Q`` overshoot is removed exactly: a float64 estimate
   ``u ~= sum_i y_i / q_i`` (error far below 1) followed by an exact
   limb-space correction loop, so results are bit-identical to the
   reference — no tolerance anywhere;
4. decomposition into any target basis is one more integer matmul against
   a ``2**(16k) mod t`` power table.

Values that do not fit a basis' limb plan cannot occur: the plan is sized
from ``Q`` itself with headroom for the pre-reduction CRT sum.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Tuple

import numpy as np

from repro.errors import ParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.rns.basis import RNSBasis

_INT64 = np.int64

#: Half-limb width: limbs are radix ``2**32`` but stored and accumulated
#: as two 16-bit halves so products against 30-bit residues fit in int64.
_HALF_BITS = 16
_HALF_MASK = (1 << _HALF_BITS) - 1


def int_to_limbs(value: int, count: int) -> np.ndarray:
    """Non-negative python int -> ``count`` canonical 16-bit half-limbs."""
    if value < 0:
        raise ParameterError("limb encoding expects a non-negative integer")
    if value.bit_length() > count * _HALF_BITS:
        raise ParameterError(
            f"{value.bit_length()}-bit value exceeds the {count}-limb plan"
        )
    raw = value.to_bytes(count * 2, "little")
    return np.frombuffer(raw, dtype="<u2").astype(_INT64)


def limbs_to_int(limbs: np.ndarray) -> int:
    """Canonical half-limb vector -> python int (little-endian)."""
    return int.from_bytes(limbs.astype("<u2").tobytes(), "little")


def ints_to_limb_matrix(values, count: int) -> np.ndarray:
    """Sequence of non-negative ints -> ``(count, N)`` half-limb matrix."""
    raw = b"".join(int(v).to_bytes(count * 2, "little") for v in values)
    flat = np.frombuffer(raw, dtype="<u2").astype(_INT64)
    return flat.reshape(len(values), count).T


class CRTEngine:
    """Limb-plan precomputation for one :class:`RNSBasis`.

    Obtained via :func:`get_engine`; one engine serves every compose /
    decompose / centered-conversion call against its basis.
    """

    def __init__(self, basis: "RNSBasis"):
        self.basis = basis
        moduli = basis.moduli
        product = basis.product
        #: Half-limbs in the plan: sized for Q with headroom for the
        #: pre-reduction CRT sum (< L * Q) and the correction loop.
        self.num_limbs = (product.bit_length() + _HALF_BITS - 1) // _HALF_BITS + 2
        k = self.num_limbs
        self._q_col = np.array(moduli, dtype=_INT64)[:, None]
        self._hat_inv_col = np.array(basis.hat_invs, dtype=_INT64)[:, None]
        #: (L, K) half-limbs of each hat_i = Q / q_i.
        self._hat_limbs = np.stack([int_to_limbs(h, k) for h in basis.hats])
        self._q_limbs = int_to_limbs(product, k)
        #: Limbs of Q//2 + 1: ``value >= this`` <=> centered rep is negative.
        self._half_plus1 = int_to_limbs(product // 2 + 1, k)
        self._q_recip = 1.0 / np.array(moduli, dtype=np.float64)
        #: Float value of each limb position, for the float compose path.
        self._limb_scale = np.ldexp(1.0, _HALF_BITS * np.arange(k))
        self._q_float = float(product)

    # -- core: residues -> canonical limb matrix ------------------------------

    def compose_limbs(self, residues: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """CRT-compose a ``(L, N)`` residue matrix into limb form.

        Returns ``(limbs, negative)``: a ``(K, N)`` canonical half-limb
        matrix holding ``x mod Q`` in ``[0, Q)`` and the boolean mask of
        coefficients whose centered representative is negative
        (``x mod Q > Q/2``).
        """
        residues = np.asarray(residues, dtype=_INT64)
        if residues.shape[0] != len(self.basis.moduli):
            raise ParameterError(
                f"residue matrix has {residues.shape[0]} rows, "
                f"basis has {len(self.basis.moduli)} moduli"
            )
        y = residues * self._hat_inv_col % self._q_col
        # One matmul: acc[k, j] = sum_i hat_limbs[i, k] * y[i, j].
        acc = self._hat_limbs.T @ y
        # x / Q == sum_i y_i / q_i exactly; the float64 estimate is off by
        # far less than 1, so u = floor(.) errs by at most one unit —
        # which the exact limb-space loop below repairs.
        u = np.floor(self._q_recip @ y.astype(np.float64)).astype(_INT64)
        acc -= u[None, :] * self._q_limbs[:, None]
        carry = _renormalize(acc)
        for _ in range(4):
            negative = carry < 0
            over = ~negative & ((carry > 0) | _geq(acc, self._q_limbs))
            if not (negative.any() or over.any()):
                break
            if negative.any():
                acc[:, negative] += self._q_limbs[:, None]
            if over.any():
                acc[:, over] -= self._q_limbs[:, None]
            carry += _renormalize(acc)
        else:  # pragma: no cover - the estimate errs by at most 1
            raise ParameterError("CRT correction loop failed to converge")
        return acc, _geq(acc, self._half_plus1)

    # -- consumers ------------------------------------------------------------

    def compose_ints(self, residues: np.ndarray, centered: bool = True) -> np.ndarray:
        """Exact python-int composition (object array), via the limb path.

        The only per-coefficient python work is one ``int.from_bytes`` —
        the ``O(L)`` bigint accumulation happens inside numpy.
        """
        limbs, negative = self.compose_limbs(residues)
        width = self.num_limbs * 2
        raw = limbs.T.astype("<u2").tobytes()
        n = limbs.shape[1]
        out = np.empty(n, dtype=object)
        product = self.basis.product
        for j in range(n):  # lint: allow-coeff-loop (one O(1) from_bytes each)
            v = int.from_bytes(raw[j * width : (j + 1) * width], "little")
            if centered and negative[j]:
                v -= product
            out[j] = v
        return out

    def compose_float(self, residues: np.ndarray) -> np.ndarray:
        """Centered composition straight to float64 — no python ints at all.

        The centered magnitude is computed exactly in limb space first, so
        small values (the usual case for CKKS decode, where coefficients
        are ``scale * message + noise``) suffer no catastrophic
        cancellation against ``Q``.
        """
        limbs, negative = self.compose_limbs(residues)
        if negative.any():
            mag = limbs.copy()
            mag[:, negative] = self._q_limbs[:, None] - mag[:, negative]
            _renormalize(mag)
        else:
            mag = limbs
        values = self._limb_scale @ mag.astype(np.float64)
        return np.where(negative, -values, values)

    def convert_centered(self, residues: np.ndarray, target: "RNSBasis") -> np.ndarray:
        """Exact centered basis extension, entirely in numpy.

        Equivalent to ``target.decompose(self.compose(residues,
        centered=True))``: for a centered-negative coefficient the
        residue is shifted by ``-Q mod t`` instead of materializing the
        negative big integer.
        """
        limbs, negative = self.compose_limbs(residues)
        powers, t_col = _target_tables(target.moduli, self.num_limbs)
        vals = powers @ limbs % t_col
        q_mod_t = np.array(
            [self.basis.product % t for t in target.moduli], dtype=_INT64
        )[:, None]
        return np.where(negative[None, :], (vals - q_mod_t) % t_col, vals)

    # -- decomposition of arbitrary python ints -------------------------------

    def decompose_ints(self, values) -> np.ndarray:
        """Python ints (any magnitude/sign) -> ``(L, N)`` residue matrix.

        Sign-magnitude limb encoding: ``O(N)`` python ``to_bytes`` calls,
        then one matmul per plan regardless of ``L``.
        """
        ints = [int(v) for v in values]
        negative = np.array([v < 0 for v in ints], dtype=bool)
        mags = [-v if v < 0 else v for v in ints]
        max_bits = max((v.bit_length() for v in mags), default=1)
        count = max(1, (max_bits + _HALF_BITS - 1) // _HALF_BITS)
        limbs = ints_to_limb_matrix(mags, count)
        powers, t_col = _target_tables(self.basis.moduli, count)
        vals = powers @ limbs % t_col
        return np.where(negative[None, :], (t_col - vals) % t_col, vals)


# -- limb-space primitives -----------------------------------------------------


def _renormalize(limbs: np.ndarray) -> np.ndarray:
    """Carry/borrow-propagate to canonical digits in ``[0, 2**16)``.

    Operates in place on a ``(K, N)`` matrix whose entries may be any
    int64 values (positive or negative); returns the per-column carry out
    of the top limb (``floor(value / 2**(16K))``), so the represented
    value is ``canonical_limbs + carry * 2**(16K)``.
    """
    carry = np.zeros(limbs.shape[1], dtype=_INT64)
    for k in range(limbs.shape[0]):
        v = limbs[k] + carry
        limbs[k] = v & _HALF_MASK
        carry = v >> _HALF_BITS
    return carry


def _geq(limbs: np.ndarray, ref: np.ndarray) -> np.ndarray:
    """Vectorized lexicographic ``value >= ref`` over canonical limbs."""
    undecided = np.ones(limbs.shape[1], dtype=bool)
    result = np.ones(limbs.shape[1], dtype=bool)
    for k in range(limbs.shape[0] - 1, -1, -1):
        row = limbs[k]
        less = undecided & (row < ref[k])
        result[less] = False
        undecided &= row == ref[k]
        if not undecided.any():
            break
    return result


@lru_cache(maxsize=None)
def _target_tables(moduli: Tuple[int, ...], count: int) -> Tuple[np.ndarray, np.ndarray]:
    """``(|T|, count)`` table of ``2**(16k) mod t`` plus the ``t`` column.

    A dot product against this table reduces a half-limb vector modulo
    every target at once; each term is below ``2**46`` so the sum stays
    exact in int64 for any realistic limb count.
    """
    powers = np.empty((len(moduli), count), dtype=_INT64)
    for row, t in enumerate(moduli):
        acc = 1 % t
        for k in range(count):
            powers[row, k] = acc
            acc = acc * (1 << _HALF_BITS) % t
    return powers, np.array(moduli, dtype=_INT64)[:, None]


@lru_cache(maxsize=None)
def get_engine(basis: "RNSBasis") -> CRTEngine:
    """Process-wide engine cache (``RNSBasis`` hashes by its moduli)."""
    return CRTEngine(basis)
