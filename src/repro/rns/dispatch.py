"""Kernel-mode switch: batched engines vs the retained looped reference.

Every batched kernel in this package (whole-matrix NTT, blocked-matmul
BConv, limb-matrix CRT) keeps its original per-tower / per-coefficient
implementation alive as a *reference path*.  The property tests in
``tests/test_kernel_equivalence.py`` prove the two bit-identical, and the
benchmarks flip this switch to measure the speedup of the batched
engines against the exact pre-optimization code path on the same build.

The default is ``"batched"``; nothing in the library changes behaviour
between modes — only which implementation computes the identical result.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.errors import ParameterError

BATCHED = "batched"
LOOPED = "looped"

_MODE = BATCHED


def kernel_mode() -> str:
    """Currently active kernel mode (``"batched"`` or ``"looped"``)."""
    return _MODE


def batched_enabled() -> bool:
    return _MODE == BATCHED


def set_kernel_mode(mode: str) -> None:
    """Select the kernel implementation globally (process-wide)."""
    global _MODE
    if mode not in (BATCHED, LOOPED):
        raise ParameterError(
            f"unknown kernel mode {mode!r}; expected {BATCHED!r} or {LOOPED!r}"
        )
    _MODE = mode


@contextmanager
def use_kernel_mode(mode: str):
    """Temporarily run under the given kernel mode (benchmarks, tests)."""
    previous = kernel_mode()
    set_kernel_mode(mode)
    try:
        yield
    finally:
        set_kernel_mode(previous)
