"""repro — a reproduction of CiFlow (ISPASS 2024).

CiFlow analyzes the dataflow of hybrid key switching (HKS), the dominant
kernel of CKKS homomorphic encryption, and proposes three schedules —
Max-Parallel, Digit-Centric and Output-Centric — evaluated on the RPU
vector processor.  This package implements the full stack from scratch:

* :mod:`repro.ntt` / :mod:`repro.rns` — modular arithmetic, negacyclic
  NTT, RNS polynomials and fast basis conversion;
* :mod:`repro.ckks` — a working full-RNS CKKS scheme whose hybrid key
  switching is the algorithm under study;
* :mod:`repro.core` — the paper's contribution: HKS stage algebra, the
  three dataflow schedulers over a shared on-chip memory model, functional
  execution, and traffic/AI analytics;
* :mod:`repro.rpu` — the RPU machine model, B1K ISA and the dual-queue
  decoupled task simulator;
* :mod:`repro.experiments` — regenerates every table and figure of the
  paper's evaluation (``python -m repro.experiments``).
"""

from repro.ckks import (
    CKKSContext,
    CKKSParams,
    Ciphertext,
    Decryptor,
    Encoder,
    Encryptor,
    Evaluator,
    KeyGenerator,
    key_switch,
)
from repro.core import (
    DATAFLOWS,
    DataflowConfig,
    DigitCentric,
    HKSShape,
    MaxParallel,
    OutputCentric,
    TaskGraph,
    analyze_dataflow,
    get_dataflow,
)
from repro.params import BENCHMARKS, BenchmarkSpec, get_benchmark
from repro.rpu import RPUConfig, RPUSimulator

__version__ = "1.0.0"

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "CKKSContext",
    "CKKSParams",
    "Ciphertext",
    "DATAFLOWS",
    "DataflowConfig",
    "Decryptor",
    "DigitCentric",
    "Encoder",
    "Encryptor",
    "Evaluator",
    "HKSShape",
    "KeyGenerator",
    "MaxParallel",
    "OutputCentric",
    "RPUConfig",
    "RPUSimulator",
    "TaskGraph",
    "analyze_dataflow",
    "get_benchmark",
    "get_dataflow",
    "key_switch",
]
