"""repro — a reproduction of CiFlow (ISPASS 2024).

CiFlow analyzes the dataflow of hybrid key switching (HKS), the dominant
kernel of CKKS homomorphic encryption, and proposes three schedules —
Max-Parallel, Digit-Centric and Output-Centric — evaluated on the RPU
vector processor.  This package implements the full stack from scratch.

**Start with :mod:`repro.api`** — it is the documented surface::

    from repro import FHESession

    session = FHESession.create("n10_fast")
    ct = session.encrypt([1.0, 2.0, 3.0])
    print((ct * ct + 0.5).decrypt()[:3])
    report = session.estimate("ARK", backend="rpu", schedule="OC")

The research layers remain available underneath:

* :mod:`repro.ntt` / :mod:`repro.rns` — modular arithmetic, negacyclic
  NTT, RNS polynomials and fast basis conversion;
* :mod:`repro.ckks` — a working full-RNS CKKS scheme whose hybrid key
  switching is the algorithm under study;
* :mod:`repro.core` — the paper's contribution: HKS stage algebra, the
  three dataflow schedulers over a shared on-chip memory model, functional
  execution, and traffic/AI analytics;
* :mod:`repro.rpu` — the RPU machine model, B1K ISA and the dual-queue
  decoupled task simulator;
* :mod:`repro.experiments` — regenerates every table and figure of the
  paper's evaluation (``python -m repro.experiments``);
* :mod:`repro.serve` — the multi-session serving layer: batch, dedup,
  cache and shard :class:`~repro.api.plan.Plan` executions
  (``python -m repro serve-bench``).
"""

import warnings as _warnings

from repro.api import (
    CipherVector,
    FHESession,
    Plan,
    RunReport,
    build_plan,
    estimate,
    execute_plan,
    get_backend,
    list_backends,
    register_backend,
)
from repro.ckks import (
    CKKSContext,
    CKKSParams,
    Ciphertext,
    Decryptor,
    Encoder,
    Encryptor,
    Evaluator,
    KeyGenerator,
    key_switch,
)
from repro.core import (
    DATAFLOWS,
    DataflowConfig,
    DigitCentric,
    HKSShape,
    MaxParallel,
    OutputCentric,
    TaskGraph,
    get_dataflow,
)
from repro.params import BENCHMARKS, BenchmarkSpec, get_benchmark
from repro.rpu import RPUConfig

__version__ = "1.1.0"

#: Legacy top-level entry points whose job moved behind the repro.api
#: facade.  They keep working (PEP 562 lazy re-export) but emit a
#: DeprecationWarning pointing at the unified replacement.
_REROUTED = {
    "analyze_dataflow": (
        "repro.core", "analyze_dataflow",
        "repro.estimate(..., backend='analytic') or FHESession.estimate",
    ),
    "RPUSimulator": (
        "repro.rpu", "RPUSimulator",
        "repro.estimate(..., backend='rpu') or FHESession.estimate",
    ),
}


def __getattr__(name: str):
    if name in _REROUTED:
        module_name, attr, replacement = _REROUTED[name]
        _warnings.warn(
            f"importing {name!r} from the repro top level is deprecated; "
            f"use {replacement} (or import it from {module_name} directly)",
            DeprecationWarning,
            stacklevel=2,
        )
        import importlib

        value = getattr(importlib.import_module(module_name), attr)
        globals()[name] = value  # cache so the warning fires once per process
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "CKKSContext",
    "CKKSParams",
    "Ciphertext",
    "CipherVector",
    "DATAFLOWS",
    "DataflowConfig",
    "Decryptor",
    "DigitCentric",
    "Encoder",
    "Encryptor",
    "Evaluator",
    "FHESession",
    "HKSShape",
    "KeyGenerator",
    "MaxParallel",
    "OutputCentric",
    "RPUConfig",
    "RPUSimulator",
    "RunReport",
    "TaskGraph",
    "analyze_dataflow",
    "estimate",
    "get_backend",
    "get_benchmark",
    "get_dataflow",
    "key_switch",
    "list_backends",
    "register_backend",
]
