"""Monotonic deadlines that propagate across process and wire boundaries.

A :class:`Deadline` is an absolute point on the local ``time.monotonic``
clock.  Inside one process it travels by reference; across the wire it
travels as a *remaining-seconds budget* (:meth:`Deadline.to_wire` /
:meth:`Deadline.from_wire`), the gRPC convention that sidesteps clock
skew: the client sends "you have 2.5 s left" and the server rebuilds a
local deadline from its own clock, so each hop only needs a monotonic
clock, never a synchronized one.

Every layer of the serving stack checks the same object: the client
bounds its retry loop with it, the server rejects already-expired
submits, :class:`~repro.serve.aio.AsyncEstimateService` bounds its
flush wait, and :class:`~repro.serve.pool.ShardPool` abandons a batch
wait when it expires.  Expiry always surfaces as the structured
:class:`DeadlineExceeded` (error kind ``deadline_exceeded`` on the
wire), never as silence.
"""

from __future__ import annotations

import time
from typing import Optional, Union

from repro.errors import ReproError


class DeadlineExceeded(ReproError):
    """A request ran past its deadline (error kind ``deadline_exceeded``)."""


class Deadline:
    """An absolute expiry on the local monotonic clock."""

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float):
        self.expires_at = float(expires_at)

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(time.monotonic() + float(seconds))

    @classmethod
    def coerce(
        cls, value: "Union[None, int, float, Deadline]"
    ) -> "Optional[Deadline]":
        """Accept ``None`` / seconds-from-now / an existing deadline."""
        if value is None or isinstance(value, Deadline):
            return value
        return cls.after(float(value))

    def remaining(self) -> float:
        """Seconds left, clamped at 0.0."""
        return max(0.0, self.expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self, label: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        if self.expired:
            raise DeadlineExceeded(
                f"deadline exceeded{f' for {label}' if label else ''}"
            )

    def to_wire(self) -> float:
        """The remaining budget in seconds, as sent in a frame header."""
        return round(self.remaining(), 4)

    @classmethod
    def from_wire(cls, value: object) -> "Optional[Deadline]":
        """Rebuild a local deadline from a frame's ``deadline_s`` field.

        Lenient by design: a missing or malformed field means "no
        deadline" rather than a protocol error, so old clients keep
        working against new servers and vice versa.
        """
        if value is None or isinstance(value, bool):
            return None
        try:
            return cls.after(float(value))
        except (TypeError, ValueError):
            return None

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.3f}s)"
