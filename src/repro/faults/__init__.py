"""Deterministic fault injection and deadline propagation.

See :mod:`repro.faults.plan` for the injection registry (fault points,
``REPRO_FAULT_PLAN`` activation) and :mod:`repro.faults.deadline` for
wire-propagated deadlines.
"""

from repro.faults.deadline import Deadline, DeadlineExceeded
from repro.faults.plan import (
    ACTIONS,
    CRASH_EXIT_CODE,
    ENV_VAR,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    clear,
    fault_counts,
    fault_point,
    install,
)

__all__ = [
    "ACTIONS",
    "CRASH_EXIT_CODE",
    "ENV_VAR",
    "Deadline",
    "DeadlineExceeded",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "active_plan",
    "clear",
    "fault_counts",
    "fault_point",
    "install",
]
