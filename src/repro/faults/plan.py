"""Deterministic, process-wide fault injection.

Write-optimized storage systems earn their crash consistency by making
every failure point an explicitly tested state transition; this module
brings the same discipline to the serving stack.  A :class:`FaultPlan`
names *injection points* (stable string labels compiled into the hot
seams — cache read/write, worker dispatch, frame encode/decode, batch
compute) and maps them to actions:

``crash``
    ``os._exit`` the current process, mid-operation — the moral
    equivalent of an OOM kill or segfault at the worst possible moment.
``delay``
    Block for ``delay_s`` seconds — a hung worker, a stalled disk, a
    garbage-collection pause.  This is how stall-reaping is tested.
``error``
    Raise :class:`InjectedFault` — an unexpected exception on a path
    that normally cannot fail.
``corrupt``
    Return ``"corrupt"`` to the call site, which performs the actual
    data damage (truncate the cache file, flip a frame byte) so the
    *real* recovery path is exercised, not a simulation of it.

Determinism is the whole point: rules fire on exact visit counts
(``after``/``max_hits``) or from a per-rule PRNG stream seeded by the
plan's ``seed``, so a chaos run replays bit-identically.  Plans travel
as JSON and activate either programmatically (:func:`install`) or via
the ``REPRO_FAULT_PLAN`` environment variable (inline JSON or a file
path) — the env route is what forked :class:`~repro.serve.pool.ShardPool`
workers inherit, so one plan can crash a worker *child* while the parent
observes the recovery.

With no plan active, :func:`fault_point` is one ``os.environ`` lookup —
cheap enough to leave compiled into production paths.
"""

from __future__ import annotations

import json
import logging
import os
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError

#: Environment variable holding an active plan: inline JSON (starts with
#: ``{``) or a path to a JSON file.  Read lazily in every process, so
#: forked/spawned workers inherit the parent's plan.
ENV_VAR = "REPRO_FAULT_PLAN"

#: Actions a rule may take at its injection point.
ACTIONS = ("crash", "delay", "error", "corrupt")

#: Exit status of a ``crash`` action (BSD ``EX_SOFTWARE``), so a chaos
#: harness can tell an injected crash from a genuine one.
CRASH_EXIT_CODE = 70

logger = logging.getLogger("repro.faults")


class InjectedFault(ReproError):
    """The error raised by a rule whose action is ``"error"``."""

    def __init__(self, point: str, message: str):
        super().__init__(message)
        self.point = point


@dataclass
class FaultRule:
    """One injection-point -> action binding with firing conditions.

    A rule *matches* a visit when the point name equals ``point`` and
    ``match`` (if set) is a substring of the visit's context string.  A
    matching visit *fires* when the first ``after`` matches have passed,
    fewer than ``max_hits`` firings have happened, and the rule's PRNG
    draw lands under ``probability``.  ``visits``/``hits`` are per-process
    runtime state, not part of the serialized plan.
    """

    point: str
    action: str
    probability: float = 1.0
    #: Matching visits skipped before the rule may fire.
    after: int = 0
    #: Firing budget; ``None`` = unlimited.
    max_hits: Optional[int] = 1
    #: Sleep length of a ``delay`` action (seconds).
    delay_s: float = 0.05
    #: Substring the visit's context must contain ("" matches any).
    match: str = ""
    message: str = ""
    visits: int = field(default=0, compare=False)
    hits: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ReproError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {ACTIONS}"
            )
        if not self.point:
            raise ReproError("a fault rule needs a non-empty point name")
        if not 0.0 <= self.probability <= 1.0:
            raise ReproError(
                f"probability must be in [0, 1], got {self.probability}"
            )

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"point": self.point, "action": self.action}
        if self.probability != 1.0:
            out["probability"] = self.probability
        if self.after:
            out["after"] = self.after
        if self.max_hits != 1:
            out["max_hits"] = self.max_hits
        if self.action == "delay":
            out["delay_s"] = self.delay_s
        if self.match:
            out["match"] = self.match
        if self.message:
            out["message"] = self.message
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultRule":
        try:
            max_hits = data.get("max_hits", 1)
            return cls(
                point=str(data["point"]),
                action=str(data["action"]),
                probability=float(data.get("probability", 1.0)),
                after=int(data.get("after", 0)),
                max_hits=None if max_hits is None else int(max_hits),
                delay_s=float(data.get("delay_s", 0.05)),
                match=str(data.get("match", "")),
                message=str(data.get("message", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed fault rule: {exc}") from exc


class FaultPlan:
    """An ordered rule set with seeded per-rule randomness.

    The first matching rule that fires wins a visit (rules are checked
    in order).  Each rule draws from its own ``random.Random`` stream
    derived from ``(seed, rule index)``, so adding a rule does not
    perturb the firing pattern of the others — replays stay exact.
    """

    def __init__(self, rules: Sequence[FaultRule], *, seed: int = 0):
        self.rules: List[FaultRule] = list(rules)
        self.seed = int(seed)
        self._rngs = [
            random.Random(self.seed * 1_000_003 + index * 7_919 + 1)
            for index in range(len(self.rules))
        ]
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {"seed": self.seed,
                "rules": [rule.to_dict() for rule in self.rules]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        try:
            rules = [FaultRule.from_dict(r) for r in data.get("rules", [])]
            seed = int(data.get("seed", 0))
        except (TypeError, ValueError, AttributeError) as exc:
            raise ReproError(f"malformed fault plan: {exc}") from exc
        return cls(rules, seed=seed)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except (TypeError, ValueError) as exc:
            raise ReproError(
                f"fault plan is not valid JSON: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ReproError("fault plan must be a JSON object")
        return cls.from_dict(data)

    # -- activation -------------------------------------------------------------

    def install(self) -> "FaultPlan":
        """Make this plan the process's active plan (see :func:`install`)."""
        install(self)
        return self

    def counts(self) -> Dict[str, int]:
        """Faults fired so far in this process, by point name."""
        with self._lock:
            return dict(self._counts)

    # -- the hot path -----------------------------------------------------------

    def visit(self, point: str, context: str = "") -> Optional[str]:
        """Evaluate one injection-point visit; see :func:`fault_point`."""
        fired: Optional[FaultRule] = None
        with self._lock:
            for index, rule in enumerate(self.rules):
                if rule.point != point:
                    continue
                if rule.match and rule.match not in context:
                    continue
                rule.visits += 1
                if rule.visits <= rule.after:
                    continue
                if rule.max_hits is not None and rule.hits >= rule.max_hits:
                    continue
                if (rule.probability < 1.0
                        and self._rngs[index].random() >= rule.probability):
                    continue
                rule.hits += 1
                self._counts[point] = self._counts.get(point, 0) + 1
                fired = rule
                break
        if fired is None:
            return None
        logger.warning(
            "injecting %s at %r%s (pid=%d)", fired.action, point,
            f" [{context[:120]}]" if context else "", os.getpid(),
        )
        if fired.action == "delay":
            time.sleep(fired.delay_s)
            return "delay"
        if fired.action == "crash":
            os._exit(CRASH_EXIT_CODE)
        if fired.action == "error":
            raise InjectedFault(
                point, fired.message or f"injected fault at {point!r}"
            )
        return "corrupt"

    def __repr__(self) -> str:
        return f"FaultPlan(rules={len(self.rules)}, seed={self.seed})"


# -- process-wide registry -------------------------------------------------------

_installed: Optional[FaultPlan] = None
_env_value: Optional[str] = None
_env_plan: Optional[FaultPlan] = None
_env_lock = threading.Lock()


def install(plan: FaultPlan) -> None:
    """Activate ``plan`` in this process (overrides the env plan)."""
    global _installed
    _installed = plan


def clear() -> None:
    """Deactivate any plan and forget the cached env parse."""
    global _installed, _env_value, _env_plan
    _installed = None
    _env_value = None
    _env_plan = None


def active_plan() -> Optional[FaultPlan]:
    """The plan in force: installed first, else ``REPRO_FAULT_PLAN``.

    The env value is re-checked (one dict lookup) on every call and
    re-parsed only when it changes, so a child process forked after the
    variable was set picks the plan up on its first fault-point visit.
    """
    if _installed is not None:
        return _installed
    env = os.environ.get(ENV_VAR)
    if env != _env_value:
        with _env_lock:
            _set_env_plan(env)
    return _env_plan


def _set_env_plan(env: Optional[str]) -> None:
    global _env_value, _env_plan
    _env_value = env
    _env_plan = None
    if not env:
        return
    text = env
    if not env.lstrip().startswith("{"):
        try:
            text = Path(env).read_text(encoding="utf-8")
        except OSError as exc:
            logger.error("cannot read %s=%r: %s", ENV_VAR, env, exc)
            return
    try:
        _env_plan = FaultPlan.from_json(text)
    except ReproError as exc:
        logger.error("ignoring malformed %s: %s", ENV_VAR, exc)


def fault_point(name: str, context: str = "") -> Optional[str]:
    """Declare an injection point; fire the active plan's matching rule.

    Returns ``None`` (no fault, or after a completed ``delay``) or
    ``"corrupt"`` — the caller then damages its own data so the genuine
    recovery path runs.  ``crash`` exits the process here; ``error``
    raises :class:`InjectedFault` here.  ``context`` is a free-form
    label (cache key, payload head, op name) rules may ``match`` on.
    """
    plan = active_plan()
    if plan is None:
        return None
    return plan.visit(name, context)


def fault_counts() -> Dict[str, int]:
    """Faults fired in this process by point name ({} with no plan)."""
    plan = active_plan()
    return {} if plan is None else plan.counts()
