"""Cross-validation of the repro.api backend registry.

Runs every Table III benchmark through both registered backends and all
three schedules via the single ``repro.api.estimate`` entry point, and
checks the analytic and simulated views agree on the schedule-determined
quantities (traffic, op counts).  This is the facade-level counterpart of
the per-module experiments: one request path, every engine.
"""

from __future__ import annotations

from repro.api import SCHEDULES, estimate
from repro.experiments.report import ExperimentResult
from repro.params import BENCHMARKS


def run() -> ExperimentResult:
    rows = []
    mismatches = 0
    for name in BENCHMARKS:
        for schedule in SCHEDULES:
            analytic = estimate(name, backend="analytic", schedule=schedule,
                                evk_on_chip=False)
            rpu = estimate(name, backend="rpu", schedule=schedule,
                           evk_on_chip=False, bandwidth_gbs=64.0)
            agree = (
                analytic.total_bytes == rpu.total_bytes
                and analytic.mod_ops == rpu.mod_ops
            )
            mismatches += not agree
            rows.append(
                {
                    "benchmark": name,
                    "schedule": schedule,
                    "MB": round(analytic.total_mb, 1),
                    "AI": round(analytic.arithmetic_intensity, 2),
                    "rpu_ms": round(rpu.latency_ms, 2),
                    "idle_%": round(rpu.compute_idle_fraction * 100, 1),
                    "agree": agree,
                }
            )
    notes = [
        "one estimate() call per cell: analytic traffic/AI + RPU latency "
        "through the same backend registry",
    ]
    if mismatches:
        notes.append(f"WARNING: {mismatches} analytic/rpu traffic mismatches")
    return ExperimentResult(
        experiment="backends",
        description="repro.api backend registry: analytic vs RPU, all "
                    "benchmarks x schedules (evks streamed, 64 GB/s)",
        rows=rows,
        notes=notes,
    )
