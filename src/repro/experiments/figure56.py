"""Figures 5 and 6: streaming evks from off-chip (BTS3 and ARK).

Compares HKS runtime as a function of bandwidth when evks are streamed
(32 MB total on-chip) against the pre-loaded dotted-line reference
(392 MB on-chip).  Streaming shifts every curve up by the key-bandwidth
pressure but preserves the trend — the paper's argument for trading
12.25x SRAM for a modest bandwidth increase.
"""

from __future__ import annotations

from repro.experiments.common import runtime_ms
from repro.experiments.report import ExperimentResult
from repro.rpu import standard_sweep


def run(benchmark: str) -> ExperimentResult:
    result = ExperimentResult(
        experiment=f"Figure {'5' if benchmark.upper() == 'BTS3' else '6'}",
        description=(
            f"{benchmark}: runtime (ms) with evks streamed vs pre-loaded "
            "(the paper's dotted lines) across bandwidth"
        ),
    )
    for bw in standard_sweep(extended=True):
        row = {"BW_GBs": bw}
        for df in ("MP", "DC", "OC"):
            row[f"{df}_stream"] = round(
                runtime_ms(benchmark, df, bandwidth_gbs=bw, evk_on_chip=False), 2
            )
            row[f"{df}_onchip"] = round(
                runtime_ms(benchmark, df, bandwidth_gbs=bw, evk_on_chip=True), 2
            )
        result.rows.append(row)
    result.notes.append(
        "on-chip columns assume a 392 MB SRAM (32 MB data + 360 MB keys); "
        "streaming keeps only the 32 MB data memory (12.25x smaller)."
    )
    return result


def run_bts3() -> ExperimentResult:
    return run("BTS3")


def run_ark() -> ExperimentResult:
    return run("ARK")
