"""Bootstrapping experiment: the BOOT program across schedules/backends.

The paper's HKS analysis exists because of bootstrapping-class workloads —
ARK/BTS-style accelerators are sized around the thousands of key switches
one bootstrap performs.  This experiment prices exactly the circuit the
functional layer runs (phases lowered from the bootstrap plan, see
:func:`repro.workloads.boot_program`) on all three dataflow schedules,
with keys on-chip and streamed — *level-aware*: every pipeline stage is
charged at its true (descending) point of the modulus chain, and the
per-phase latency breakdown plus the saving over the deprecated flat
top-of-chain pricing are reported.
"""

from __future__ import annotations

from repro.api import estimate
from repro.experiments.report import ExperimentResult
from repro.workloads import boot_flat_workload, boot_program


def run() -> ExperimentResult:
    program = boot_program()
    rows = []
    for evk_on_chip in (True, False):
        reports = estimate("BOOT", backend="rpu", schedule="all",
                           evk_on_chip=evk_on_chip)
        flats = estimate(boot_flat_workload().as_program(), backend="rpu",
                         schedule="all", evk_on_chip=evk_on_chip)
        for report, flat in zip(reports, flats):
            rows.append(
                {
                    "schedule": report.schedule,
                    "evks": "on-chip" if evk_on_chip else "streamed",
                    "hks_calls": report.hks_calls,
                    "GB": round(report.total_bytes / 1e9, 1),
                    "AI": round(report.arithmetic_intensity, 2),
                    "latency_s": round(report.latency_ms / 1e3, 2),
                    "flat_latency_s": round(flat.latency_ms / 1e3, 2),
                    "level_aware_saving_%": round(
                        100 * (1 - report.latency_ms / flat.latency_ms), 1
                    ),
                    "idle_%": round(report.compute_idle_fraction * 100, 1),
                }
            )
    breakdown = estimate("BOOT", backend="rpu", schedule="OC")
    phase_note = ", ".join(
        f"{p.benchmark} {p.latency_ms / 1e3:.2f}s" for p in breakdown.phases
    )
    mix = program.mix
    notes = [
        program.description,
        f"op mix: {mix.rotations} rotations+conj, {mix.ct_multiplies} "
        f"ct-mults, {mix.pt_multiplies} pt-mults, {mix.additions} adds",
        f"OC per-phase latency: {phase_note}",
        "HKS counts derive from the same BootstrapPlan the functional "
        "pipeline is instrumentation-tested against (tests/test_bootstrap.py)",
        "flat_latency_s is the deprecated top-of-chain pricing: the "
        "level-aware program is strictly cheaper on every schedule",
    ]
    return ExperimentResult(
        experiment="bootstrap",
        description="one full CKKS bootstrap (BOOT program, level-aware "
                    "phases) on the RPU: all schedules, evks on-chip vs "
                    "streamed, 64 GB/s",
        rows=rows,
        notes=notes,
    )
