"""Bootstrapping experiment: the BOOT workload across schedules/backends.

The paper's HKS analysis exists because of bootstrapping-class workloads —
ARK/BTS-style accelerators are sized around the thousands of key switches
one bootstrap performs.  This experiment prices exactly the circuit the
functional layer runs (op counts derived from the bootstrap plan, see
:func:`repro.workloads.bootstrap_workload`) on all three dataflow
schedules, with keys on-chip and streamed, and reports the per-stage HKS
breakdown the benchmark harness also emits.
"""

from __future__ import annotations

from repro.api import estimate
from repro.experiments.report import ExperimentResult
from repro.workloads import bootstrap_workload


def run() -> ExperimentResult:
    workload = bootstrap_workload()
    rows = []
    for evk_on_chip in (True, False):
        reports = estimate("BOOT", backend="rpu", schedule="all",
                           evk_on_chip=evk_on_chip)
        for report in reports:
            rows.append(
                {
                    "schedule": report.schedule,
                    "evks": "on-chip" if evk_on_chip else "streamed",
                    "hks_calls": report.hks_calls,
                    "GB": round(report.total_bytes / 1e9, 1),
                    "AI": round(report.arithmetic_intensity, 2),
                    "latency_s": round(report.latency_ms / 1e3, 2),
                    "idle_%": round(report.compute_idle_fraction * 100, 1),
                }
            )
    mix = workload.mix
    notes = [
        workload.description,
        f"op mix: {mix.rotations} rotations+conj, {mix.ct_multiplies} "
        f"ct-mults, {mix.pt_multiplies} pt-mults, {mix.additions} adds",
        "HKS counts derive from the same BootstrapPlan the functional "
        "pipeline is instrumentation-tested against (tests/test_bootstrap.py)",
    ]
    return ExperimentResult(
        experiment="bootstrap",
        description="one full CKKS bootstrap (BOOT workload) on the RPU: "
                    "all schedules, evks on-chip vs streamed, 64 GB/s",
        rows=rows,
        notes=notes,
    )
