"""Figure 7: per-benchmark cost of streaming evks with the OC dataflow.

For every benchmark: the OC runtime at its ``OCbase`` bandwidth with keys
on-chip, the runtime at the same bandwidth with keys streamed (the
slowdown bar pairs of the paper's figure), and the *equivalent bandwidth*
— the streamed-key bandwidth restoring on-chip performance (e.g. 45.62
GB/s for BTS3, 23.4 GB/s for ARK in the paper).
"""

from __future__ import annotations

from repro.experiments.common import (
    baseline_runtime_ms,
    grid_ocbase,
    matching_bandwidth,
    runtime_ms,
)
from repro.experiments.report import ExperimentResult

#: Paper: (OCbase GB/s, equivalent streamed BW GB/s).
PAPER_FIG7 = {
    "ARK": (8.0, 23.4),
    "DPRIVE": (12.8, None),
    "BTS1": (25.6, None),
    "BTS2": (12.8, None),
    "BTS3": (32.0, 45.62),
}


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 7",
        description=(
            "OC with streamed evks: slowdown at OCbase bandwidth and the "
            "bandwidth needed to restore on-chip-key performance"
        ),
    )
    for bench in ("ARK", "DPRIVE", "BTS1", "BTS2", "BTS3"):
        base_ms = baseline_runtime_ms(bench)
        ocbase = grid_ocbase(bench, base_ms) or 64.0
        onchip_ms = runtime_ms(bench, "OC", bandwidth_gbs=ocbase,
                               evk_on_chip=True)
        stream_ms = runtime_ms(bench, "OC", bandwidth_gbs=ocbase,
                               evk_on_chip=False)
        equiv = matching_bandwidth(bench, "OC", onchip_ms, evk_on_chip=False)
        paper_base, paper_equiv = PAPER_FIG7[bench]
        result.rows.append(
            {
                "benchmark": bench,
                "OCbase_GBs": ocbase,
                "onchip_ms": round(onchip_ms, 2),
                "stream_ms": round(stream_ms, 2),
                "slowdown": round(stream_ms / onchip_ms, 2),
                "equiv_BW_GBs": round(equiv, 1) if equiv else "n/a",
                "BW_ratio": round(equiv / ocbase, 2) if equiv else "n/a",
                "paper_equiv": paper_equiv if paper_equiv else "-",
            }
        )
    result.notes.append(
        "Streaming saves 12.25x SRAM (392 MB -> 32 MB) for a 1.3x-2.9x "
        "bandwidth increase in the paper; BW_ratio is our measurement."
    )
    return result
