"""Figure 8: ARK OC runtime across bandwidth at 1x..16x MODOPS.

With evks on-chip.  At low bandwidth all MODOPS curves coincide (memory
bound); at high bandwidth they separate by the throughput multiplier.
The paper's headline: 2x MODOPS reaches the 1x saturation performance
with only 12.8 GB/s — a 10x bandwidth saving.
"""

from __future__ import annotations

from repro.experiments.common import runtime_ms
from repro.experiments.report import ExperimentResult
from repro.rpu import standard_sweep

MODOPS_SCALES = (1.0, 2.0, 4.0, 8.0, 16.0)


def run(benchmark: str = "ARK") -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 8",
        description=(
            f"{benchmark} OC runtime (ms) vs bandwidth at scaled MODOPS, "
            "evks on-chip"
        ),
    )
    for bw in standard_sweep(extended=True):
        row = {"BW_GBs": bw}
        for scale in MODOPS_SCALES:
            row[f"{scale:g}x"] = round(
                runtime_ms(benchmark, "OC", bandwidth_gbs=bw,
                           evk_on_chip=True, modops_scale=scale), 2
            )
        result.rows.append(row)
    result.notes.append(
        "Curves coincide when bandwidth-bound and fan out once compute "
        "bound; compare with the saturation analysis in Table V."
    )
    return result
