"""Figure 4: HKS runtime vs off-chip bandwidth for all benchmarks.

Sweeps DRAM bandwidth (DDR4 through HBM3 points) for MP, DC and OC with
evks pre-loaded on-chip.  ARK and BTS3 — the smallest and largest
benchmarks — extend to 1 TB/s as in the paper.
"""

from __future__ import annotations

from repro.experiments.common import all_benchmarks, runtime_ms, simulate
from repro.experiments.report import ExperimentResult
from repro.rpu import standard_sweep


def run(extended_for: tuple = ("ARK", "BTS3")) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 4",
        description=(
            "HKS runtime (ms) vs off-chip bandwidth, evks on-chip "
            "(MP / DC / OC per benchmark)"
        ),
    )
    for bench in all_benchmarks():
        sweep = standard_sweep(extended=bench in extended_for)
        for bw in sweep:
            oc = simulate(bench, "OC", bandwidth_gbs=bw, evk_on_chip=True)
            result.rows.append(
                {
                    "benchmark": bench,
                    "BW_GBs": bw,
                    "MP_ms": round(runtime_ms(bench, "MP", bandwidth_gbs=bw,
                                              evk_on_chip=True), 2),
                    "DC_ms": round(runtime_ms(bench, "DC", bandwidth_gbs=bw,
                                              evk_on_chip=True), 2),
                    "OC_ms": round(oc.runtime_ms, 2),
                    "OC_idle_%": round(oc.compute_idle_fraction * 100, 1),
                }
            )
    result.notes.append(
        "Expected shape: OC's advantage is largest at low bandwidth and the "
        "three dataflows converge once the RPU becomes compute bound."
    )
    return result
