"""Shared plumbing for all experiments: cached schedules, sweeps, searches."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core import DATAFLOWS, TaskGraph
from repro.params import MB, get_benchmark
from repro.rpu import RPUConfig, RPUSimulator, SimResult

#: The paper's reference operating point: MP at DDR5 peak with keys on-chip.
BASELINE_BW_GBS = 64.0

#: Discrete bandwidth grid the paper reports OCbase on (DDR4/DDR5 points).
OCBASE_GRID = (8.0, 12.8, 16.0, 25.6, 32.0, 45.62, 48.0, 64.0)


def _cached_graph(bench_name: str, dataflow_name: str, sram_mb: int,
                  evk_on_chip: bool) -> TaskGraph:
    # Delegates to the backend registry's schedule cache so the facade
    # and the experiment harness share one graph per configuration.
    from repro.api.backends import _cached_schedule

    spec = get_benchmark(bench_name)
    graph, _ = _cached_schedule(
        spec, dataflow_name.upper(), sram_mb, evk_on_chip, False
    )
    return graph


def build_schedule(
    benchmark: str, dataflow: str, *, sram_mb: int = 32, evk_on_chip: bool = True
) -> TaskGraph:
    """Cached schedule lookup (schedules do not depend on bandwidth/MODOPS)."""
    return _cached_graph(benchmark.upper(), dataflow.upper(), sram_mb, evk_on_chip)


def simulate(
    benchmark: str,
    dataflow: str,
    *,
    bandwidth_gbs: float,
    evk_on_chip: bool = True,
    modops_scale: float = 1.0,
    sram_mb: int = 32,
) -> SimResult:
    """Simulate one (benchmark, dataflow, machine) point."""
    graph = build_schedule(
        benchmark, dataflow, sram_mb=sram_mb, evk_on_chip=evk_on_chip
    )
    config = RPUConfig(
        bandwidth_bytes_per_s=bandwidth_gbs * 1e9,
        data_sram_bytes=sram_mb * MB,
        key_sram_bytes=360 * MB if evk_on_chip else 0,
        modops_scale=modops_scale,
    )
    return RPUSimulator(config).simulate(graph)


def runtime_ms(benchmark: str, dataflow: str, **kwargs) -> float:
    return simulate(benchmark, dataflow, **kwargs).runtime_ms


def baseline_runtime_ms(benchmark: str) -> float:
    """The paper's baseline: MP at 64 GB/s with evks pre-loaded on-chip."""
    return runtime_ms(benchmark, "MP", bandwidth_gbs=BASELINE_BW_GBS,
                      evk_on_chip=True)


def matching_bandwidth(
    benchmark: str,
    dataflow: str,
    target_ms: float,
    *,
    evk_on_chip: bool = True,
    modops_scale: float = 1.0,
    lo: float = 1.0,
    hi: float = 2000.0,
    tol: float = 0.01,
) -> Optional[float]:
    """Smallest bandwidth at which runtime <= ``target_ms`` (binary search).

    Returns ``None`` when even ``hi`` GB/s cannot reach the target (the
    configuration is compute-bound above the target runtime).
    """

    def run(bw: float) -> float:
        return runtime_ms(benchmark, dataflow, bandwidth_gbs=bw,
                          evk_on_chip=evk_on_chip, modops_scale=modops_scale)

    if run(hi) > target_ms:
        return None
    if run(lo) <= target_ms:
        return lo
    low, high = lo, hi
    while high - low > tol * low:
        mid = (low * high) ** 0.5  # geometric: bandwidths span decades
        if run(mid) <= target_ms:
            high = mid
        else:
            low = mid
    return high


def grid_ocbase(benchmark: str, target_ms: float,
                evk_on_chip: bool = True) -> Optional[float]:
    """Smallest grid bandwidth where OC matches the target runtime
    (how the paper quotes OCbase, Table IV)."""
    for bw in OCBASE_GRID:
        if runtime_ms(benchmark, "OC", bandwidth_gbs=bw,
                      evk_on_chip=evk_on_chip) <= target_ms:
            return bw
    return None


def all_benchmarks() -> Tuple[str, ...]:
    return ("BTS1", "BTS2", "BTS3", "ARK", "DPRIVE")


def all_dataflows() -> Tuple[str, ...]:
    return tuple(DATAFLOWS)
