"""Experiment harness: one module per table/figure of the paper."""

from repro.experiments.report import ExperimentResult, format_table

__all__ = ["ExperimentResult", "format_table"]
