"""Crossover analysis: where each configuration stops being memory bound.

The paper's Figure 4 narrative hinges on two regimes — memory bound
(runtime ~ traffic/BW) at low bandwidth, compute bound (runtime ~
ops/MODOPS) at high bandwidth — with OC reaching the compute roof at a
fraction of the bandwidth MP needs.  This module locates that crossover
bandwidth per (benchmark, dataflow) by bisecting for the point where
runtime comes within a tolerance of the compute-only floor.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import simulate
from repro.experiments.report import ExperimentResult


def compute_floor_ms(benchmark: str, dataflow: str,
                     evk_on_chip: bool = True) -> float:
    """Runtime with effectively infinite bandwidth (the compute roof)."""
    return simulate(
        benchmark, dataflow, bandwidth_gbs=10**6, evk_on_chip=evk_on_chip
    ).runtime_ms


def crossover_bandwidth(
    benchmark: str,
    dataflow: str,
    *,
    tolerance: float = 0.05,
    evk_on_chip: bool = True,
    lo: float = 1.0,
    hi: float = 4096.0,
) -> Optional[float]:
    """Smallest bandwidth with runtime <= (1 + tolerance) * compute floor."""
    floor = compute_floor_ms(benchmark, dataflow, evk_on_chip)
    target = floor * (1.0 + tolerance)

    def run(bw: float) -> float:
        return simulate(
            benchmark, dataflow, bandwidth_gbs=bw, evk_on_chip=evk_on_chip
        ).runtime_ms

    if run(hi) > target:
        return None
    low, high = lo, hi
    while high - low > 0.02 * low:
        mid = (low * high) ** 0.5
        if run(mid) <= target:
            high = mid
        else:
            low = mid
    return high


def run(evk_on_chip: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Extra: crossover",
        description=(
            "Bandwidth at which each dataflow becomes compute bound "
            "(runtime within 5% of the compute roof, evks "
            + ("on-chip" if evk_on_chip else "streamed") + ")"
        ),
    )
    for bench in ("ARK", "DPRIVE", "BTS1", "BTS2", "BTS3"):
        row: Dict[str, object] = {"benchmark": bench}
        for df in ("MP", "DC", "OC"):
            bw = crossover_bandwidth(bench, df, evk_on_chip=evk_on_chip)
            row[f"{df}_GBs"] = round(bw, 1) if bw else "n/a"
        if (
            isinstance(row["MP_GBs"], float)
            and isinstance(row["OC_GBs"], float)
        ):
            row["MP/OC"] = round(row["MP_GBs"] / row["OC_GBs"], 2)
        result.rows.append(row)
    result.notes.append(
        "OC needs a fraction of MP's bandwidth to reach the same compute "
        "roof — the bandwidth-saving claim of Table IV in roofline form."
    )
    return result
