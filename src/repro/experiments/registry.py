"""Registry mapping experiment ids (table/figure numbers) to runners."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.experiments import (
    bootstrap,
    crossover,
    deep,
    extras,
    facade,
    figure2,
    figure4,
    figure56,
    figure7,
    figure8,
    figure9,
    serving,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.report import ExperimentResult

#: Experiment id -> zero-argument runner.
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "fig2": figure2.run,
    "fig4": figure4.run,
    "fig5": figure56.run_bts3,
    "fig6": figure56.run_ark,
    "fig7": figure7.run,
    "fig8": figure8.run,
    "fig9": figure9.run,
    "keycompress": extras.run_key_compression,
    "motivation": extras.run_motivation,
    "hoisting": extras.run_hoisting,
    "ablation": extras.run_budget_ablation,
    "crossover": crossover.run,
    "backends": facade.run,
    "bootstrap": bootstrap.run,
    "deep": deep.run,
    "serving": serving.run,
}


def run_experiment(name: str) -> ExperimentResult:
    key = name.lower()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key]()


def run_all() -> List[ExperimentResult]:
    return [runner() for runner in EXPERIMENTS.values()]
