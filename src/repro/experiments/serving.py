"""Serving-layer experiment: multi-session estimate throughput.

The "millions of users" direction of the roadmap, made measurable: many
sessions repeatedly ask for the same deep-workload estimates, and the
serving layer (:mod:`repro.serve`) answers them by micro-batching,
digest-level dedup and report caching instead of re-running the backend
per request.  This experiment times a naive ``estimate()`` loop against
the service for each registered program and reports the dedup hit rate.
"""

from __future__ import annotations

import time

from repro.api import build_plan, estimate
from repro.experiments.report import ExperimentResult
from repro.serve import EstimateService

_PROGRAMS = ("BOOT", "RESNET_BOOT", "HELR")
_REQUESTS = 32


def run() -> ExperimentResult:
    rows = []
    for name in _PROGRAMS:
        # Steady state on both sides: model caches warm, service cold.
        estimate(name, backend="rpu", schedule="OC")

        start = time.perf_counter()
        for _ in range(_REQUESTS):
            estimate(name, backend="rpu", schedule="OC")
        naive_s = time.perf_counter() - start

        service = EstimateService(disk_cache=False)
        service.estimate(build_plan(name, backend="rpu", schedule="OC"))
        start = time.perf_counter()
        service.estimate_many(
            [build_plan(name, backend="rpu", schedule="OC")
             for _ in range(_REQUESTS)]
        )
        served_s = time.perf_counter() - start

        rows.append(
            {
                "program": name,
                "requests": _REQUESTS,
                "naive_req_s": round(_REQUESTS / naive_s),
                "served_req_s": round(_REQUESTS / served_s),
                "speedup": round(naive_s / served_s, 1),
                "dedup_hit_rate": round(service.stats.dedup_hit_rate, 3),
            }
        )
    return ExperimentResult(
        experiment="serving layer",
        description="repeated multi-session estimates through the "
                    "plan/execute serving layer vs a naive estimate() loop",
        rows=rows,
        notes=[
            "RPU backend, OC schedule; identical plans dedup to one "
            "computation per batch, answered from the report LRU",
            "python -m repro serve-bench adds shard-pool and disk-cache "
            "modes",
        ],
    )
