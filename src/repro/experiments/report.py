"""Plain-text table rendering for experiment reports.

Every experiment produces rows of dictionaries; this module renders them
in aligned monospace tables (the library is plotting-free by design — the
benchmark harness prints the same rows/series the paper charts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3g}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[format_value(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), *(len(r[i]) for r in cells)) for i, c in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).rjust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Uniform container every experiment returns."""

    experiment: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    columns: Optional[List[str]] = None

    def render(self) -> str:
        out = [
            f"=== {self.experiment} ===",
            self.description,
            "",
            format_table(self.rows, self.columns),
        ]
        if self.notes:
            out.append("")
            out.extend(f"note: {n}" for n in self.notes)
        return "\n".join(out)
