"""Extension experiments beyond the paper's numbered tables/figures.

Four studies the paper discusses in prose:

* **Key compression** (Section IV-D): seed-compressed evks halve key
  traffic; the paper notes this "will further boost our AI to 3.82".
* **Motivation** (Section I/II): the ~70% share of runtime spent in key
  switching for a rotation-heavy private-inference workload.
* **Hoisting**: analytical ModUp savings of batch rotations — the reuse
  opportunity *across* HKS calls that composes with the OC dataflow's
  reuse *within* one call.
* **Budget ablation**: DRAM traffic as the on-chip data memory shrinks,
  quantifying Section IV's "with unlimited on-chip memory the performance
  gap would decrease significantly".
"""

from __future__ import annotations

from repro.ckks.hoisting import hoisting_savings
from repro.core import DATAFLOWS, DataflowConfig, analyze_dataflow, get_dataflow
from repro.experiments.common import all_benchmarks
from repro.experiments.report import ExperimentResult
from repro.params import MB, get_benchmark
from repro.workloads import HEOpMix, hks_time_share


def run_key_compression(sram_mb: int = 32) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Extra: key compression",
        description=(
            "OC arithmetic intensity with streamed evks, plain vs "
            "seed-compressed keys (paper Section IV-D: AI boost to ~3.8)"
        ),
    )
    oc = get_dataflow("OC")
    for bench in all_benchmarks():
        spec = get_benchmark(bench)
        plain = analyze_dataflow(
            spec, oc, DataflowConfig(sram_mb * MB, evk_on_chip=False)
        )
        compressed = analyze_dataflow(
            spec, oc,
            DataflowConfig(sram_mb * MB, evk_on_chip=False, key_compression=True),
        )
        result.rows.append(
            {
                "benchmark": bench,
                "MB_plain": round(plain.total_mb, 0),
                "MB_compressed": round(compressed.total_mb, 0),
                "AI_plain": round(plain.arithmetic_intensity, 2),
                "AI_compressed": round(compressed.arithmetic_intensity, 2),
                "AI_gain": round(
                    compressed.arithmetic_intensity / plain.arithmetic_intensity, 2
                ),
            }
        )
    result.notes.append(
        "compression halves evk traffic and charges one regeneration pass "
        "per key tower; the paper projects AI up to 3.82 for DPRIVE."
    )
    return result


def run_motivation(dataflow: str = "MP", bandwidth_gbs: float = 64.0) -> ExperimentResult:
    mix = HEOpMix()
    result = ExperimentResult(
        experiment="Extra: motivation",
        description=(
            f"Share of application runtime inside HKS for a ResNet-20-class "
            f"mix ({mix.rotations} rotations, {mix.ct_multiplies} ct-ct and "
            f"{mix.pt_multiplies} ct-pt multiplies) — paper claims ~70%"
        ),
    )
    for bench in all_benchmarks():
        spec = get_benchmark(bench)
        row = hks_time_share(
            spec, mix, dataflow=dataflow, bandwidth_gbs=bandwidth_gbs
        )
        result.rows.append(
            {
                "benchmark": bench,
                "hks_ms_per_call": round(row["hks_ms_per_call"], 2),
                "hks_s": round(row["hks_s"], 1),
                "other_s": round(row["other_s"], 1),
                "hks_share_%": round(row["hks_share"] * 100, 1),
            }
        )
    result.notes.append(
        "HKS calls = rotations + ciphertext multiplies; the non-HKS parts "
        "are streamed element-wise kernels."
    )
    return result


def run_hoisting(num_rotations: int = 8) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Extra: hoisting",
        description=(
            f"Analytical modular-op savings of hoisting {num_rotations} "
            "rotations of one ciphertext (shared ModUp)"
        ),
    )
    for bench in all_benchmarks():
        row = hoisting_savings(get_benchmark(bench), num_rotations)
        result.rows.append(
            {
                "benchmark": bench,
                "modup_Gops": round(row["modup_ops"] / 1e9, 2),
                "saved_Gops": round(row["saved_ops"] / 1e9, 2),
                "savings_%": round(row["savings_fraction"] * 100, 1),
            }
        )
    result.notes.append(
        "hoisting composes with the OC dataflow: fewer ModUps shrink the "
        "very working set OC keeps on-chip."
    )
    return result


def run_budget_ablation(benchmark: str = "ARK") -> ExperimentResult:
    spec = get_benchmark(benchmark)
    result = ExperimentResult(
        experiment="Extra: budget ablation",
        description=(
            f"{benchmark} DRAM traffic (MB, evks streamed) vs on-chip data "
            "memory — the dataflow gap closes as SRAM grows"
        ),
    )
    for budget_mb in (8, 16, 32, 64, 128, 256, 512):
        row = {"SRAM_MB": budget_mb}
        for df in DATAFLOWS.values():
            report = analyze_dataflow(
                spec, df, DataflowConfig(budget_mb * MB, evk_on_chip=False)
            )
            row[f"{df.name}_MB"] = round(report.total_mb, 0)
        row["MP/OC"] = round(row["MP_MB"] / row["OC_MB"], 2)
        result.rows.append(row)
    result.notes.append(
        "at large budgets all three dataflows collapse to compulsory "
        "traffic (input + output + keys), as Section IV argues."
    )
    return result
