"""Table V: configurations matching ARK's saturation point.

The saturation point is OC at 128 GB/s with 1x MODOPS (evks on-chip) —
the point where ARK's data movement is fully masked by computation.  The
table reports, for each dataflow at 2x MODOPS, the bandwidth required to
match that runtime, relative to the saturation configuration.
"""

from __future__ import annotations

from repro.experiments.common import matching_bandwidth, runtime_ms
from repro.experiments.report import ExperimentResult

SATURATION_BW = 128.0

#: Paper Table V rows: (BW GB/s, MODOPS, rel BW, rel MODOPS).
PAPER_TABLE5 = {
    "Sat. Point": (128.0, 1.0, 1.0, 1.0),
    "OC": (12.8, 2.0, 0.10, 2.0),
    "DC": (54.64, 2.0, 0.42, 2.0),
    "MP": (128.0, 2.0, 1.0, 2.0),
}


def run() -> ExperimentResult:
    sat_ms = runtime_ms("ARK", "OC", bandwidth_gbs=SATURATION_BW,
                        evk_on_chip=True, modops_scale=1.0)
    result = ExperimentResult(
        experiment="Table V",
        description=(
            f"ARK configurations matching the saturation point "
            f"(OC @ {SATURATION_BW:.0f} GB/s, 1x MODOPS = {sat_ms:.2f} ms)"
        ),
    )
    result.rows.append(
        {
            "dataflow": "Sat. Point",
            "BW_GBs": SATURATION_BW,
            "MODOPS": "1.00x",
            "rel_BW": 1.0,
            "paper_rel_BW": PAPER_TABLE5["Sat. Point"][2],
        }
    )
    for name in ("OC", "DC", "MP"):
        bw = matching_bandwidth("ARK", name, sat_ms, evk_on_chip=True,
                                modops_scale=2.0)
        result.rows.append(
            {
                "dataflow": name,
                "BW_GBs": round(bw, 2) if bw else "n/a",
                "MODOPS": "2.00x",
                "rel_BW": round(bw / SATURATION_BW, 3) if bw else "n/a",
                "paper_rel_BW": PAPER_TABLE5[name][2],
            }
        )
    result.notes.append(
        "rel_BW < 1 means the dataflow reaches saturation performance with "
        "less bandwidth once compute throughput doubles."
    )
    return result
