"""Figure 9: bandwidth/MODOPS pairs matching ARK targets with streamed evks.

Both panels use OC with streamed keys (32 MB on-chip total):

* panel (a): bandwidth needed at each MODOPS multiplier to match the
  *saturation point* (OC @ 128 GB/s, 1x MODOPS, evks on-chip);
* panel (b): same, matching the *baseline* (MP @ 64 GB/s, evks on-chip).

The paper's headline numbers: matching saturation needs 2x MODOPS with
2.6x the 12.8 GB/s on-chip-key bandwidth (~33 GB/s), or 20x more bandwidth
at 1x MODOPS; doubling MODOPS saves ~1.2x bandwidth for the baseline.
"""

from __future__ import annotations

from repro.experiments.common import (
    baseline_runtime_ms,
    matching_bandwidth,
    runtime_ms,
)
from repro.experiments.report import ExperimentResult

MODOPS_SCALES = (1.0, 2.0, 4.0, 8.0)


def run(benchmark: str = "ARK") -> ExperimentResult:
    sat_ms = runtime_ms(benchmark, "OC", bandwidth_gbs=128.0,
                        evk_on_chip=True, modops_scale=1.0)
    base_ms = baseline_runtime_ms(benchmark)
    result = ExperimentResult(
        experiment="Figure 9",
        description=(
            f"{benchmark} OC with streamed evks: bandwidth required per "
            f"MODOPS to match saturation ({sat_ms:.2f} ms) and baseline "
            f"({base_ms:.2f} ms)"
        ),
    )
    for scale in MODOPS_SCALES:
        sat_bw = matching_bandwidth(benchmark, "OC", sat_ms,
                                    evk_on_chip=False, modops_scale=scale)
        base_bw = matching_bandwidth(benchmark, "OC", base_ms,
                                     evk_on_chip=False, modops_scale=scale)
        result.rows.append(
            {
                "MODOPS": f"{scale:g}x",
                "BW_for_saturation_GBs": round(sat_bw, 1) if sat_bw else "n/a",
                "BW_for_baseline_GBs": round(base_bw, 1) if base_bw else "n/a",
            }
        )
    result.notes.append(
        "Matching the saturation point at 1x MODOPS with streamed keys "
        "requires far more bandwidth than at 2x — trading compute for BW."
    )
    return result
