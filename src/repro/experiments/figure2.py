"""Figure 2: high-level ModUp stage timing per dataflow.

The paper's Figure 2 sketches *when* each ModUp stage (P1..P5) is active
under MP, DC and OC.  We regenerate it from simulated task timelines: for
each stage we report its first start, last end, and active span; MP shows
non-overlapping stage bands, DC shows per-digit repetition, OC shows all
stages interleaved across the whole ModUp window.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core import DATAFLOWS
from repro.experiments.common import build_schedule
from repro.experiments.report import ExperimentResult
from repro.rpu import RPUConfig, RPUSimulator

STAGES = ("ModUp.P1", "ModUp.P2", "ModUp.P3", "ModUp.P4")


def stage_windows(benchmark: str, dataflow: str,
                  bandwidth_gbs: float = 64.0) -> Dict[str, Tuple[float, float]]:
    """(first start, last end) in ms for each ModUp stage."""
    graph = build_schedule(benchmark, dataflow, evk_on_chip=True)
    config = RPUConfig(bandwidth_bytes_per_s=bandwidth_gbs * 1e9)
    sim = RPUSimulator(config).simulate(graph, collect_trace=True)
    windows: Dict[str, Tuple[float, float]] = {}
    for t in sim.timeline:
        for stage in STAGES:
            if t.label.startswith(stage):
                lo, hi = windows.get(stage, (float("inf"), 0.0))
                windows[stage] = (min(lo, t.start), max(hi, t.end))
    return {k: (v[0] * 1e3, v[1] * 1e3) for k, v in sorted(windows.items())}


def interleaving_metric(windows: Dict[str, Tuple[float, float]]) -> float:
    """Mean pairwise stage-window overlap, 0 (serial) .. ~1 (fully fused)."""
    keys = list(windows)
    if len(keys) < 2:
        return 0.0
    overlaps: List[float] = []
    for i, a in enumerate(keys):
        for b in keys[i + 1 :]:
            (s0, e0), (s1, e1) = windows[a], windows[b]
            inter = max(0.0, min(e0, e1) - max(s0, s1))
            union = max(e0, e1) - min(s0, s1)
            overlaps.append(inter / union if union else 0.0)
    return sum(overlaps) / len(overlaps)


def run(benchmark: str = "BTS3") -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 2",
        description=(
            f"ModUp stage activity windows for {benchmark} (ms; MP = "
            "serial stage bands, OC = fully interleaved stages)"
        ),
    )
    for dataflow in DATAFLOWS.values():
        windows = stage_windows(benchmark, dataflow.name)
        row: Dict[str, object] = {"dataflow": dataflow.name}
        for stage in STAGES:
            lo, hi = windows.get(stage, (0.0, 0.0))
            row[stage.split(".")[1]] = f"{lo:.1f}-{hi:.1f}"
        row["interleave"] = round(interleaving_metric(windows), 2)
        result.rows.append(row)
    result.notes.append(
        "interleave = mean pairwise overlap of stage windows; the paper's "
        "qualitative claim is MP < DC < OC."
    )
    return result
