"""CLI: regenerate paper tables/figures.

Usage::

    python -m repro.experiments            # run everything
    python -m repro.experiments table2 fig4
    python -m repro.experiments --list
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import EXPERIMENTS, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate CiFlow paper tables and figures",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    names = args.experiments or list(EXPERIMENTS)
    for name in names:
        result = run_experiment(name)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
