"""Table II: DRAM transfers and arithmetic intensity per dataflow.

Setup: 32 MB on-chip data memory, evks streamed from DRAM.  The paper's
reported values are included for side-by-side comparison.
"""

from __future__ import annotations

from repro.core import DATAFLOWS, DataflowConfig, analyze_dataflow
from repro.experiments.common import all_benchmarks
from repro.experiments.report import ExperimentResult
from repro.params import MB, get_benchmark

#: Paper Table II: (MB, arithmetic intensity in ops/byte).
PAPER_TABLE2 = {
    ("BTS1", "MP"): (600, 1.81), ("BTS1", "DC"): (600, 1.81), ("BTS1", "OC"): (420, 2.59),
    ("BTS2", "MP"): (1352, 1.14), ("BTS2", "DC"): (1278, 1.20), ("BTS2", "OC"): (716, 2.15),
    ("BTS3", "MP"): (1850, 1.00), ("BTS3", "DC"): (1766, 1.04), ("BTS3", "OC"): (1119, 1.65),
    ("ARK", "MP"): (432, 1.05), ("ARK", "DC"): (356, 1.27), ("ARK", "OC"): (180, 2.52),
    ("DPRIVE", "MP"): (365, 1.26), ("DPRIVE", "DC"): (336, 1.37), ("DPRIVE", "OC"): (170, 2.71),
}


def run(sram_mb: int = 32) -> ExperimentResult:
    config = DataflowConfig(data_sram_bytes=sram_mb * MB, evk_on_chip=False)
    result = ExperimentResult(
        experiment="Table II",
        description=(
            f"DRAM transfers (MB, incl. streamed evks) and arithmetic "
            f"intensity with {sram_mb} MB on-chip memory"
        ),
    )
    for bench in all_benchmarks():
        spec = get_benchmark(bench)
        for dataflow in DATAFLOWS.values():
            report = analyze_dataflow(spec, dataflow, config)
            paper_mb, paper_ai = PAPER_TABLE2[(bench, dataflow.name)]
            result.rows.append(
                {
                    "benchmark": bench,
                    "dataflow": dataflow.name,
                    "MB": round(report.total_mb, 0),
                    "paper_MB": paper_mb,
                    "AI": round(report.arithmetic_intensity, 2),
                    "paper_AI": paper_ai,
                    "evk_MB": round(report.evk_bytes / MB, 0),
                    "spills": report.spill_stores,
                }
            )
    result.notes.append(
        "AI counts modular multiplies + additions per DRAM byte; the op "
        "total is dataflow-independent (checked by analyze_dataflow)."
    )
    return result
