"""Table IV: OCbase bandwidth, bandwidth saving, and OC speedup over MP.

For each benchmark the baseline is MP at 64 GB/s with evks pre-loaded
on-chip.  ``OCbase`` is the smallest bandwidth (on the paper's discrete
DDR4/DDR5 grid) at which OC matches the baseline runtime; ``saved BW`` is
``64 / OCbase``; the OC and MP runtimes and the speedup are reported *at*
``OCbase``, following the paper's convention.
"""

from __future__ import annotations

from repro.experiments.common import (
    BASELINE_BW_GBS,
    all_benchmarks,
    baseline_runtime_ms,
    grid_ocbase,
    runtime_ms,
)
from repro.experiments.report import ExperimentResult

#: Paper Table IV: (OCbase GB/s, saved BW, OC ms, MP ms, speedup).
PAPER_TABLE4 = {
    "BTS1": (25.6, 2.5, 30.08, 39.13, 1.30),
    "BTS2": (12.8, 5.0, 43.24, 104.85, 2.42),
    "BTS3": (32.0, 2.0, 51.87, 71.50, 1.37),
    "ARK": (8.0, 8.0, 9.01, 37.54, 4.16),
    "DPRIVE": (12.8, 5.0, 7.81, 23.15, 2.96),
}


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="Table IV",
        description=(
            "Bandwidth at which OC matches the MP@64GB/s baseline "
            "(evks on-chip), and OC/MP runtimes at that bandwidth"
        ),
    )
    for bench in all_benchmarks():
        base_ms = baseline_runtime_ms(bench)
        ocbase = grid_ocbase(bench, base_ms)
        paper = PAPER_TABLE4[bench]
        if ocbase is None:
            result.rows.append({"benchmark": bench, "OCbase_GBs": "n/a"})
            continue
        oc_ms = runtime_ms(bench, "OC", bandwidth_gbs=ocbase, evk_on_chip=True)
        mp_ms = runtime_ms(bench, "MP", bandwidth_gbs=ocbase, evk_on_chip=True)
        result.rows.append(
            {
                "benchmark": bench,
                "OCbase_GBs": ocbase,
                "paper_OCbase": paper[0],
                "saved_BW": round(BASELINE_BW_GBS / ocbase, 2),
                "paper_saved": paper[1],
                "OC_ms": round(oc_ms, 2),
                "MP_ms": round(mp_ms, 2),
                "speedup": round(mp_ms / oc_ms, 2),
                "paper_speedup": paper[4],
                "baseline_ms": round(base_ms, 2),
            }
        )
    result.notes.append(
        "Baseline = MP @ 64 GB/s with pre-loaded evks; OCbase searched on "
        "the paper's DDR4/DDR5 grid (8..64 GB/s)."
    )
    return result
