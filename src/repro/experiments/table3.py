"""Table III: benchmark parameter sets with evk and temp-data sizes.

Our closed-form size model (``repro.params``) reproduces the paper's evk
column exactly for all five benchmarks and the temp-data column exactly
for four of five (DPRIVE differs by ~1%).
"""

from __future__ import annotations

from repro.core import HKSShape
from repro.experiments.common import all_benchmarks
from repro.experiments.report import ExperimentResult
from repro.params import MB, get_benchmark

#: Paper Table III (evk MB, temp MB).
PAPER_TABLE3 = {
    "BTS1": (112, 196),
    "BTS2": (240, 400),
    "BTS3": (360, 585),
    "ARK": (120, 192),
    "DPRIVE": (99, 163),
}


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="Table III",
        description="128-bit-secure HKS parameter sets and derived sizes",
    )
    for bench in all_benchmarks():
        spec = get_benchmark(bench)
        ops = HKSShape(spec).total_ops()
        paper_evk, paper_temp = PAPER_TABLE3[bench]
        result.rows.append(
            {
                "benchmark": bench,
                "N": f"2^{spec.log_n}",
                "kl": spec.kl,
                "kp": spec.kp,
                "dnum": spec.dnum,
                "alpha": spec.alpha,
                "evk_MB": round(spec.evk_bytes / MB, 1),
                "paper_evk": paper_evk,
                "temp_MB": round(spec.temp_bytes / MB, 1),
                "paper_temp": paper_temp,
                "Gops": round(ops.total / 1e9, 2),
            }
        )
    result.notes.append(
        "evk = dnum*2*(kl+kp) towers; temp = (3*dnum*(kl+kp) + kl) towers; "
        "1 tower = N*8 bytes, 1 MB = 2^20 bytes."
    )
    return result
