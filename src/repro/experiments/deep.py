"""Deep-workload experiment: bootstrapped programs priced level-aware.

The scenario-diversity direction of the roadmap: unlimited-depth circuits
built on top of bootstrapping.  ``RESNET_BOOT`` interleaves ResNet-20
inference segments with mid-network refreshes; ``HELR`` trains an
encrypted logistic-regression model with one bootstrap per iteration.
Both lower to the same phase IR as ``BOOT``, so every phase — application
slice or bootstrap stage — is priced at its true point of the modulus
chain on both backends.
"""

from __future__ import annotations

from repro.api import estimate
from repro.experiments.report import ExperimentResult
from repro.workloads import get_workload

_PROGRAMS = ("BOOT", "RESNET_BOOT", "HELR")


def run() -> ExperimentResult:
    rows = []
    for name in _PROGRAMS:
        program = get_workload(name)
        analytic = estimate(name, backend="analytic", schedule="OC")
        rpu = estimate(name, backend="rpu", schedule="OC")
        boot_phases = program.num_bootstrap_phases
        rows.append(
            {
                "program": name,
                "phases": len(program),
                "boot_phases": boot_phases,
                "hks_calls": program.hks_calls,
                "GB": round(analytic.total_bytes / 1e9, 1),
                "AI": round(rpu.arithmetic_intensity, 2),
                "latency_s": round(rpu.latency_ms / 1e3, 2),
                "idle_%": round(rpu.compute_idle_fraction * 100, 1),
            }
        )
    notes = [get_workload(name).description for name in _PROGRAMS] + [
        "OC schedule, 64 GB/s, evks on-chip; analytic and RPU backends "
        "agree on traffic by construction",
    ]
    return ExperimentResult(
        experiment="deep workloads",
        description="bootstrapped deep programs (BOOT, RESNET_BOOT, HELR) "
                    "folded phase-by-phase at descending chain levels",
        rows=rows,
        notes=notes,
    )
