"""Top-level CLI: inspect benchmarks, estimate dataflows, run simulations.

Usage::

    python -m repro info                      # library + benchmark summary
    python -m repro backends                  # registered estimation backends
    python -m repro analyze BTS3              # Table-II-style analysis
    python -m repro estimate ARK --backend rpu --schedule all
    python -m repro verify --graphs --kernels  # static analysis gate
    python -m repro simulate ARK --dataflow OC --bandwidth 12.8
    python -m repro trace ARK --dataflow MP --bandwidth 8
    python -m repro serve-bench HELR --requests 64 --workers 2

Everything routes through :mod:`repro.api` — the same facade user code
calls.  (Full paper regeneration lives in ``python -m repro.experiments``.)
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro.api import describe_backends, estimate, list_backends, list_presets
from repro.experiments.report import format_table
from repro.params import BENCHMARKS, MB, get_benchmark


def cmd_info(_args) -> int:
    from repro.core import DATAFLOWS

    print(f"repro {__version__} — CiFlow (ISPASS 2024) reproduction")
    print()
    rows = [spec.describe() for spec in BENCHMARKS.values()]
    print(format_table(rows, title="benchmarks (paper Table III):"))
    print()
    from repro.workloads import list_workloads

    print("dataflows:", ", ".join(f"{d.name} ({d.title})" for d in DATAFLOWS.values()))
    print("backends:", ", ".join(list_backends()))
    print("workload programs:", ", ".join(list_workloads()),
          "(e.g. `repro estimate BOOT --phases`)")
    print("session presets:", ", ".join(list_presets()))
    print("experiments: python -m repro.experiments --list")
    return 0


def cmd_backends(_args) -> int:
    """Stable, scriptable listing of the registered estimation backends."""
    rows = [
        {"backend": name, "description": doc}
        for name, doc in describe_backends().items()
    ]
    print(format_table(rows, title="registered backends (sorted, stable):"))
    return 0


def cmd_serve_bench(args) -> int:
    """Throughput of the serving layer vs a naive estimate() loop."""
    import time

    from repro.api import build_plan
    from repro.serve import EstimateService

    def plans():
        return [
            build_plan(args.workload, backend=args.backend,
                       schedule=args.schedule)
            for _ in range(args.requests)
        ]

    # Warm the model caches so both sides time steady-state request cost.
    build_plan(args.workload, backend=args.backend,
               schedule=args.schedule).run()

    start = time.perf_counter()
    for _ in range(args.requests):
        estimate(args.workload, backend=args.backend, schedule=args.schedule)
    naive_s = time.perf_counter() - start

    service = EstimateService(workers=args.workers,
                              disk_cache=not args.no_disk_cache)
    try:
        start = time.perf_counter()
        service.estimate_many(plans())
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        service.estimate_many(plans())
        warm_s = time.perf_counter() - start
    finally:
        service.close()

    rows = [
        {"mode": "naive estimate() loop", "seconds": naive_s,
         "req_per_s": args.requests / naive_s},
        {"mode": "service (first batch)", "seconds": cold_s,
         "req_per_s": args.requests / cold_s},
        {"mode": "service (warm)", "seconds": warm_s,
         "req_per_s": args.requests / warm_s},
    ]
    print(format_table(
        rows,
        title=f"{args.requests} x {args.workload} on {args.backend!r}/"
              f"{args.schedule} (workers={args.workers}):",
    ))
    stats = service.stats.as_row()
    print(f"\nservice stats: {stats}")
    print(f"warm speedup over naive loop: {naive_s / warm_s:.1f}x")
    return 0


def cmd_serve(args) -> int:
    """Run the network estimate server until shutdown or SIGINT/SIGTERM."""
    import asyncio
    import signal as _signal

    import os

    from repro.net import ServerConfig, load_mix, load_tenant_specs, serve

    tenants = load_tenant_specs(args.tenants) if args.tenants else ()
    warm_mix = load_mix(args.warm_mix) if args.warm_mix else ()
    if args.fault_plan:
        # Through the environment (not faults.install) so forked shard
        # workers inherit the plan too.
        os.environ["REPRO_FAULT_PLAN"] = args.fault_plan

    async def _run() -> int:
        config = ServerConfig(
            host=args.host, port=args.port, http_port=args.http_port,
            workers=args.workers, admission=args.admission,
            disk_cache=not args.no_disk_cache,
            max_queue_depth=args.max_queue_depth,
            idle_warm_after=args.idle_warm_after,
            warm_top_k=args.warm_top_k,
            stall_timeout=args.stall_timeout or None,
            tenants=tenants, warm_mix=warm_mix,
        )
        server = await serve(config)
        loop = asyncio.get_running_loop()
        for sig in (_signal.SIGINT, _signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    sig, lambda: loop.create_task(server.stop())
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        extras = [f"workers={config.workers}",
                  f"admission={config.admission}",
                  f"tenants={'open' if not tenants else len(tenants)}"]
        if server.http_port is not None:
            extras.append(f"http={config.host}:{server.http_port}")
        print(f"serving on {config.host}:{server.port} "
              f"({', '.join(extras)}); SIGHUP recycles workers, "
              f"Ctrl-C drains and stops")
        await server.wait_closed()
        return 0

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 130


def cmd_serve_load(args) -> int:
    """Drive a server with closed-loop load; optionally self-hosted."""
    import asyncio
    import json

    from repro.api import build_plan
    from repro.net import (
        EstimateClient,
        ServerConfig,
        load_mix,
        run_load,
        serve,
    )
    from repro.net.loadgen import weighted_plans

    if args.mix:
        plans = weighted_plans(load_mix(args.mix))
    else:
        # A small sweep of distinct machine points around the default
        # HELR request: realistic dedup (repeats) + real pool sharding.
        plans = [
            build_plan(args.workload, bandwidth_gbs=64.0 + 8 * i)
            for i in range(max(1, args.distinct))
        ]

    async def _run() -> int:
        server = None
        if args.connect:
            host, _, port_s = args.connect.rpartition(":")
            host, port = host or "127.0.0.1", int(port_s)
        else:
            server = await serve(ServerConfig(
                workers=args.workers, admission=args.admission,
                disk_cache=not args.no_disk_cache,
            ))
            host, port = server.config.host, server.port
        try:
            result = await run_load(
                host, port, plans=plans, duration_s=args.duration,
                concurrency=args.concurrency,
                connections=args.connections, token=args.token,
                deadline_s=args.deadline,
            )
            row = result.as_dict()
            print(format_table([row], title=(
                f"{args.duration:g}s x {args.concurrency} workers over "
                f"{args.connections} connections ({len(plans)} plan mix):"
            )))
            if args.save_mix:
                async with EstimateClient(host, port,
                                          token=args.token) as cli:
                    status = await cli.status(mix=True)
                with open(args.save_mix, "w", encoding="utf-8") as handle:
                    json.dump(status["mix"], handle, indent=2)
                    handle.write("\n")
                print(f"observed request mix saved to {args.save_mix} "
                      f"({len(status['mix']['mix'])} distinct plans)")
            return 0 if result.dropped == 0 else 1
        finally:
            if server is not None:
                await server.stop()

    return asyncio.run(_run())


def _kernel_images():
    """One representative of each codegen builder, at a quick size."""
    from repro.ntt.modmath import inv_mod
    from repro.ntt.primes import generate_primes
    from repro.rpu import codegen

    n = 64
    qs = generate_primes(3, n, 26)
    q, p = qs[0], qs[1]
    yield "ntt", codegen.build_ntt_kernel(n, q)
    yield "intt", codegen.build_ntt_kernel(n, q, inverse=True)
    yield "bconv", codegen.build_bconv_kernel(qs[:2], qs[2], n)
    yield "mulkey", codegen.build_mulkey_kernel(n, q, accumulate=False)
    yield "mulkey-acc", codegen.build_mulkey_kernel(n, q, accumulate=True)
    yield "mdfinish", codegen.build_moddown_finish_kernel(
        n, q, inv_mod(p % q, q))


def cmd_verify(args) -> int:
    """Static analysis over plans (and optionally graphs and kernels).

    Exit status 1 if any subject reports an error — the CI gate.
    """
    from repro.analysis import analyze
    from repro.api import build_plan
    from repro.workloads import list_workloads

    names = args.targets or sorted(BENCHMARKS) + list_workloads()
    subjects = []
    if getattr(args, "serve", None):
        # Vet a saved request-mix file (the serving/warming input
        # format) offline: every plan a server would be asked to warm
        # or replay goes through the same static analysis admission
        # would apply.
        from repro.net import load_mix

        for i, (plan, count) in enumerate(load_mix(args.serve)):
            subjects.append((
                f"mix[{i}] {plan.digest[:12]} x{count} "
                f"({plan.backend}/{plan.schedule})",
                analyze(plan),
            ))
    else:
        for name in names:
            for backend in list_backends():
                for schedule in ("MP", "DC", "OC", "SOLVER"):
                    plan = build_plan(name, backend=backend,
                                      schedule=schedule)
                    subjects.append(
                        (f"plan {name}/{backend}/{schedule}", analyze(plan))
                    )

    if args.graphs:
        from repro.core import DATAFLOWS, DataflowConfig

        config = DataflowConfig()
        for name in names:
            if name not in BENCHMARKS:
                continue
            spec = get_benchmark(name)
            for dataflow in DATAFLOWS.values():
                graph = dataflow.build(spec, config)
                subjects.append(
                    (f"graph {spec.name}/{dataflow.name}", analyze(graph))
                )

    if args.kernels:
        for label, image in _kernel_images():
            subjects.append((f"kernel {label}", analyze(image.program)))

    rows = [
        {"subject": label, "errors": len(report.errors),
         "warnings": len(report.warnings), "infos": len(report.infos)}
        for label, report in subjects
    ]
    print(format_table(rows, title="static analysis:"))
    failed = False
    for label, report in subjects:
        for diag in report.errors + report.warnings:
            print(f"{label}: {diag.render()}")
        failed = failed or bool(report.errors)
    clean = sum(1 for _, report in subjects if report.ok)
    print(f"\n{clean}/{len(subjects)} subjects clean; "
          f"{'FAIL' if failed else 'OK'}")
    return 1 if failed else 0


def _options(args) -> dict:
    opts = {
        "sram_mb": args.sram_mb,
        "evk_on_chip": not args.stream_keys,
        "key_compression": getattr(args, "compress_keys", False),
    }
    if hasattr(args, "bandwidth"):
        opts["bandwidth_gbs"] = args.bandwidth
    if hasattr(args, "modops"):
        opts["modops_scale"] = args.modops
    return opts


def cmd_analyze(args) -> int:
    spec = get_benchmark(args.benchmark)
    reports = estimate(spec, backend="analytic", schedule="all",
                       **_options(args))
    rows = [r.as_row() for r in reports]
    print(format_table(rows, title=f"{spec.name}: DRAM traffic and AI"))
    return 0


def cmd_estimate(args) -> int:
    reports = estimate(args.benchmark, backend=args.backend,
                       schedule=args.schedule, **_options(args))
    if not isinstance(reports, list):
        reports = [reports]
    print(format_table([r.as_row() for r in reports],
                       title=f"{args.benchmark.upper()} via {args.backend!r}:"))
    if args.phases:
        for report in reports:
            if not report.phases:
                print(f"\n{report.benchmark}/{report.schedule}: "
                      "no phase breakdown (single-HKS benchmark)")
                continue
            print()
            print(format_table(
                report.phase_rows(),
                title=f"{report.benchmark}/{report.schedule} "
                      "per-phase breakdown (descending chain levels):",
            ))
    return 0


def cmd_schedule(args) -> int:
    """Solve (or recall) the best schedule per spec of one workload."""
    from repro import sched
    from repro.core import DataflowConfig

    config = DataflowConfig(
        data_sram_bytes=args.sram_mb * MB,
        evk_on_chip=not args.stream_keys,
        key_compression=args.compress_keys,
    )
    if args.traffic:
        objective = sched.Objective.traffic()
        unit, scale = "MB", 1.0 / MB
    else:
        objective = sched.Objective.latency(
            bandwidth_gbs=args.bandwidth, modops_scale=args.modops
        )
        unit, scale = "ms", 1.0
    rows = []
    records = []
    for spec, calls, solved in sched.solve_workload(
        args.workload, config, objective
    ):
        rec = solved.record
        rows.append({
            "spec": f"{spec.name}(kl={spec.kl})",
            "hks": calls,
            "schedule": solved.decision.summary(),
            f"cost_{unit}": round(solved.cost * scale, 3),
            "hand-written": rec.legacy_best,
            f"hand_{unit}": round(rec.legacy_best_cost * scale, 3),
        })
        records.append(rec)
    keys = "streamed" if args.stream_keys else "on-chip"
    print(format_table(
        rows,
        title=(f"{args.workload.upper()} schedule solver "
               f"({objective.metric}, {args.sram_mb} MB SRAM, keys {keys}):"),
    ))
    if args.explain:
        for rec in records:
            print(f"\n{rec.spec_name}: {rec.reason}")
            print(f"  considered {rec.considered} candidates, "
                  f"evaluated {rec.evaluated} exactly")
        program_decision = {
            "RESNET_BOOT": sched.RESNET_DECISION,
            "HELR": sched.HELR_DECISION,
        }.get(args.workload.upper())
        if program_decision is not None:
            from repro.workloads import bootstrap_phases, bootstrap_plan
            from repro.workloads.builders import _BOOT_SPEC

            _, post_boot = bootstrap_phases(_BOOT_SPEC, bootstrap_plan())
            print(f"\n{args.workload.upper()} program structure:")
            for line in program_decision.explain(post_boot):
                print(f"  {line}")
    return 0


def cmd_simulate(args) -> int:
    reports = estimate(args.benchmark, backend="rpu", schedule=args.dataflow,
                       **_options(args))
    for report in reports if isinstance(reports, list) else [reports]:
        print(
            f"{report.benchmark}/{report.schedule} @ {args.bandwidth} GB/s, "
            f"{args.modops:g}x MODOPS, keys "
            f"{'streamed' if args.stream_keys else 'on-chip'}:"
        )
        print(f"  runtime        {report.latency_ms:10.2f} ms")
        print(f"  DRAM traffic   {report.total_bytes / MB:10.1f} MB")
        print(f"  compute idle   {report.compute_idle_fraction * 100:10.1f} %")
        print(f"  achieved       {report.achieved_gbs:10.1f} GB/s, "
              f"{report.achieved_gops:.1f} GOPS")
    return 0


def cmd_trace(args) -> int:
    # Timeline collection needs the raw simulator; this stays a research
    # view below the facade.
    from repro.core import DataflowConfig, get_dataflow
    from repro.rpu import RPUConfig, RPUSimulator
    from repro.rpu.trace_report import render_trace_summary

    spec = get_benchmark(args.benchmark)
    config = DataflowConfig(
        data_sram_bytes=args.sram_mb * MB,
        evk_on_chip=not args.stream_keys,
        key_compression=args.compress_keys,
    )
    graph = get_dataflow(args.dataflow).build(spec, config)
    machine = RPUConfig(
        bandwidth_bytes_per_s=args.bandwidth * 1e9,
        data_sram_bytes=args.sram_mb * MB,
        key_sram_bytes=0 if args.stream_keys else 360 * MB,
        modops_scale=args.modops,
    )
    result = RPUSimulator(machine).simulate(graph, collect_trace=True)
    print(render_trace_summary(
        result, title=f"{spec.name}/{args.dataflow.upper()} @ {args.bandwidth} GB/s"
    ))
    return 0


def _add_machine_args(parser, dataflow: bool = True) -> None:
    parser.add_argument("benchmark", help="BTS1..3, ARK or DPRIVE")
    if dataflow:
        parser.add_argument("--dataflow", default="OC", help="MP, DC or OC")
    parser.add_argument("--bandwidth", type=float, default=64.0,
                        help="off-chip bandwidth in GB/s")
    parser.add_argument("--modops", type=float, default=1.0,
                        help="compute throughput multiplier")
    parser.add_argument("--sram-mb", type=int, default=32,
                        help="on-chip data memory in MB")
    parser.add_argument("--stream-keys", action="store_true",
                        help="stream evks from DRAM instead of key SRAM")
    parser.add_argument("--compress-keys", action="store_true",
                        help="seed-compress streamed keys (half traffic)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("info", help="library and benchmark summary")
    p_backends = sub.add_parser(
        "backends", help="registered estimation backends (stable order)"
    )
    p_backends.set_defaults(func=cmd_backends)
    p_serve = sub.add_parser(
        "serve-bench",
        help="serving-layer throughput vs a naive estimate() loop",
    )
    p_serve.add_argument("workload", nargs="?", default="HELR",
                         help="benchmark or program name (default HELR)")
    p_serve.add_argument("--requests", type=int, default=64,
                         help="requests per timed loop")
    p_serve.add_argument("--backend", default="rpu",
                         help=f"one of {list_backends()}")
    p_serve.add_argument("--schedule", default="OC", help="MP, DC or OC")
    p_serve.add_argument("--workers", type=int, default=0,
                         help="shard pool size (0/1 = in-process)")
    p_serve.add_argument("--no-disk-cache", action="store_true",
                         help="skip the cross-process report cache")
    p_serve.set_defaults(func=cmd_serve_bench)
    p_verify = sub.add_parser(
        "verify",
        help="static analysis of plans, task graphs and generated kernels",
    )
    p_verify.add_argument("targets", nargs="*",
                          help="benchmark/workload names (default: all)")
    p_verify.add_argument("--graphs", action="store_true",
                          help="also verify the MP/DC/OC task graphs")
    p_verify.add_argument("--kernels", action="store_true",
                          help="also verify the generated B1K kernels")
    p_verify.add_argument("--serve", metavar="MIX_FILE",
                          help="verify every plan in a saved request-mix "
                               "file instead (the serve --warm-mix format)")
    p_verify.set_defaults(func=cmd_verify)
    p_srv = sub.add_parser(
        "serve", help="network estimate server (TCP frames + HTTP)"
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = pick a free one)")
    p_srv.add_argument("--http-port", type=int, default=None,
                       help="also serve HTTP/1.1 on this port")
    p_srv.add_argument("--workers", type=int, default=2,
                       help="shard pool size (0/1 = in-process)")
    p_srv.add_argument("--admission", default="strict",
                       choices=("strict", "warn", "off"))
    p_srv.add_argument("--max-queue-depth", type=int, default=256,
                       help="global backpressure bound")
    p_srv.add_argument("--tenants", metavar="FILE",
                       help="JSON tenant list (omit = open single-tenant)")
    p_srv.add_argument("--warm-mix", metavar="FILE",
                       help="request-mix file to pre-warm at startup")
    p_srv.add_argument("--idle-warm-after", type=float, default=2.0,
                       help="idle seconds before speculative warming")
    p_srv.add_argument("--stall-timeout", type=float, default=30.0,
                       help="kill shard workers hung longer than this "
                            "many seconds (0 disables)")
    p_srv.add_argument("--fault-plan", default=None, metavar="JSON_OR_FILE",
                       help="REPRO_FAULT_PLAN fault-injection plan "
                            "(inline JSON or a file path; chaos drills)")
    p_srv.add_argument("--warm-top-k", type=int, default=4,
                       help="hottest digests pre-submitted on idle")
    p_srv.add_argument("--no-disk-cache", action="store_true")
    p_srv.set_defaults(func=cmd_serve)
    p_load = sub.add_parser(
        "serve-load", help="closed-loop load against an estimate server"
    )
    p_load.add_argument("--connect", metavar="HOST:PORT",
                        help="target server (omit = self-host one)")
    p_load.add_argument("--workload", default="HELR",
                        help="plan workload when no --mix (default HELR)")
    p_load.add_argument("--distinct", type=int, default=4,
                        help="distinct machine points in the default mix")
    p_load.add_argument("--mix", metavar="FILE",
                        help="request-mix file to replay")
    p_load.add_argument("--duration", type=float, default=5.0)
    p_load.add_argument("--concurrency", type=int, default=16)
    p_load.add_argument("--connections", type=int, default=4)
    p_load.add_argument("--token", default=None,
                        help="tenant token for authenticated servers")
    p_load.add_argument("--deadline", type=float, default=None,
                        help="per-request deadline budget in seconds "
                             "(propagated to the server)")
    p_load.add_argument("--workers", type=int, default=2,
                        help="self-hosted server's pool size")
    p_load.add_argument("--admission", default="strict",
                        choices=("strict", "warn", "off"))
    p_load.add_argument("--save-mix", metavar="FILE",
                        help="save the server's observed mix afterwards")
    p_load.add_argument("--no-disk-cache", action="store_true")
    p_load.set_defaults(func=cmd_serve_load)
    p_analyze = sub.add_parser("analyze", help="traffic/AI analysis")
    p_analyze.add_argument("benchmark")
    p_analyze.add_argument("--sram-mb", type=int, default=32)
    p_analyze.add_argument("--stream-keys", action="store_true", default=True)
    p_analyze.add_argument("--onchip-keys", dest="stream_keys",
                           action="store_false")
    p_analyze.add_argument("--compress-keys", action="store_true")
    p_estimate = sub.add_parser(
        "estimate", help="any registered backend, any schedule set"
    )
    _add_machine_args(p_estimate, dataflow=False)
    p_estimate.add_argument("--backend", default="rpu",
                            help=f"one of {list_backends()}")
    p_estimate.add_argument("--schedule", default="all",
                            help="MP, DC, OC, SOLVER or 'all'")
    p_estimate.add_argument("--phases", action="store_true",
                            help="print the per-phase breakdown of "
                                 "workload programs (BOOT, RESNET_BOOT, "
                                 "HELR)")
    p_estimate.set_defaults(func=cmd_estimate)
    p_sched = sub.add_parser(
        "schedule",
        help="solve the best per-phase schedule for a workload",
    )
    p_sched.add_argument("workload",
                         help="benchmark (ARK) or workload program "
                              "(BOOT, RESNET_BOOT, HELR)")
    p_sched.add_argument("--explain", action="store_true",
                         help="print why each schedule was chosen, plus "
                              "the program-structure decisions")
    p_sched.add_argument("--traffic", action="store_true",
                         help="minimize DRAM traffic instead of latency")
    p_sched.add_argument("--bandwidth", type=float, default=64.0,
                         help="DRAM bandwidth in GB/s (latency objective)")
    p_sched.add_argument("--modops", type=float, default=1.0,
                         help="MODOPS throughput scale (latency objective)")
    p_sched.add_argument("--sram-mb", type=int, default=32,
                         help="on-chip data SRAM budget in MB")
    p_sched.add_argument("--stream-keys", action="store_true",
                         help="stream evaluation keys from DRAM")
    p_sched.add_argument("--compress-keys", action="store_true",
                         help="seed-compressed streamed keys")
    p_sched.set_defaults(func=cmd_schedule)
    for name, fn in (("simulate", cmd_simulate), ("trace", cmd_trace)):
        p = sub.add_parser(name, help=f"{name} one configuration")
        _add_machine_args(p)
        p.set_defaults(func=fn)
    args = parser.parse_args(argv)
    if args.command == "info" or args.command is None:
        return cmd_info(args)
    if args.command == "analyze":
        return cmd_analyze(args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
